package queue

import (
	"math"
	"testing"
	"testing/quick"

	"mcd/internal/workload"
)

func TestIssueQueueCapacity(t *testing.T) {
	q := NewIssueQueue(2)
	if !q.Push(Entry{Seq: 1}) || !q.Push(Entry{Seq: 2}) {
		t.Fatal("pushes into empty queue failed")
	}
	if q.Push(Entry{Seq: 3}) {
		t.Error("push into full queue succeeded")
	}
	if q.Len() != 2 || q.Free() != 0 || q.Cap() != 2 {
		t.Errorf("len/free/cap = %d/%d/%d", q.Len(), q.Free(), q.Cap())
	}
}

func TestIssueQueueSelectOldestFirst(t *testing.T) {
	q := NewIssueQueue(8)
	for i := uint64(0); i < 6; i++ {
		q.Push(Entry{Seq: i})
	}
	// Only even seqs ready; select at most 2: must pick 0 and 2.
	got := q.Select(2, func(e *Entry) bool { return e.Seq%2 == 0 }, nil)
	if len(got) != 2 || got[0].Seq != 0 || got[1].Seq != 2 {
		t.Fatalf("selected %+v, want seqs 0,2", got)
	}
	if q.Len() != 4 {
		t.Errorf("len after select = %d, want 4", q.Len())
	}
	// Remaining order preserved: 1,3,4,5.
	rest := q.Select(10, func(e *Entry) bool { return true }, nil)
	want := []uint64{1, 3, 4, 5}
	for i, e := range rest {
		if e.Seq != want[i] {
			t.Errorf("rest[%d].Seq = %d, want %d", i, e.Seq, want[i])
		}
	}
}

func TestIssueQueueSelectNoneReady(t *testing.T) {
	q := NewIssueQueue(4)
	q.Push(Entry{Seq: 9, Class: workload.Load})
	out := q.Select(4, func(e *Entry) bool { return false }, nil)
	if len(out) != 0 || q.Len() != 1 {
		t.Error("nothing should have been selected")
	}
}

func TestCompletionRingLifecycle(t *testing.T) {
	r := NewCompletionRing(512)
	// Unknown seq reads as long complete.
	if d, _ := r.Lookup(42); !math.IsInf(d, -1) {
		t.Errorf("unknown seq doneAt = %v, want -Inf", d)
	}
	r.Dispatch(42, 2)
	if d, dom := r.Lookup(42); !math.IsInf(d, 1) || dom != 2 {
		t.Errorf("in-flight = (%v,%d), want (+Inf,2)", d, dom)
	}
	r.Complete(42, 1234.5)
	if d, _ := r.Lookup(42); d != 1234.5 {
		t.Errorf("completed doneAt = %v, want 1234.5", d)
	}
	// Overwrite by a much newer seq in the same slot.
	r.Dispatch(42+512, 1)
	if d, _ := r.Lookup(42); !math.IsInf(d, -1) {
		t.Errorf("overwritten slot = %v, want -Inf", d)
	}
	r.Complete(42, 99) // stale complete must be ignored
	if d, _ := r.Lookup(42 + 512); !math.IsInf(d, 1) {
		t.Error("stale Complete corrupted newer entry")
	}
}

func TestCompletionRingPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCompletionRing(100)
}

func TestROBInOrderRetire(t *testing.T) {
	r := NewROB(4)
	for i := uint64(0); i < 4; i++ {
		if !r.Push(ROBEntry{Seq: i, DoneAt: math.Inf(1)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(ROBEntry{Seq: 9}) {
		t.Error("push into full ROB succeeded")
	}
	r.Complete(1, 10) // younger completes first: head must still block
	if h := r.Head(); h.Seq != 0 || !math.IsInf(h.DoneAt, 1) {
		t.Errorf("head = %+v, want seq 0 incomplete", h)
	}
	r.Complete(0, 20)
	if h := r.Head(); h.DoneAt != 20 {
		t.Errorf("head doneAt = %v, want 20", h.DoneAt)
	}
	r.Pop()
	if h := r.Head(); h.Seq != 1 || h.DoneAt != 10 {
		t.Errorf("next head = %+v, want seq 1 done at 10", h)
	}
	r.Pop()
	r.Pop()
	r.Pop()
	if r.Head() != nil || r.Len() != 0 {
		t.Error("ROB should be empty")
	}
	r.Pop() // popping empty is a no-op
}

func TestROBWraparound(t *testing.T) {
	r := NewROB(3)
	for i := uint64(0); i < 10; i++ {
		if !r.Push(ROBEntry{Seq: i, DoneAt: float64(i)}) {
			t.Fatalf("push %d failed", i)
		}
		if r.Head().Seq != i {
			t.Fatalf("head seq = %d, want %d", r.Head().Seq, i)
		}
		r.Pop()
	}
}

func TestLSQDisambiguation(t *testing.T) {
	l := NewLSQ(8, 64)
	inf := math.Inf(1)
	l.Push(LSQEntry{Seq: 0, IsStore: true, Addr: 0x100, DoneAt: inf})
	l.Push(LSQEntry{Seq: 1, IsStore: false, Addr: 0x104, DoneAt: inf}) // same block as store 0
	l.Push(LSQEntry{Seq: 2, IsStore: false, Addr: 0x400, DoneAt: inf})

	// Store 0 not issued: nothing resolved.
	allRes, match, fwd := l.OlderStores(1, 100)
	if allRes || !match || fwd {
		t.Errorf("pre-issue: (%v,%v,%v), want (false,true,false)", allRes, match, fwd)
	}
	allRes, match, _ = l.OlderStores(2, 100)
	if allRes || match {
		t.Errorf("different block: (%v,%v), want (false,false)", allRes, match)
	}

	// Issue + complete the store: load 1 may forward.
	l.Entries()[0].Issued = true
	l.Entries()[0].DoneAt = 50
	allRes, match, fwd = l.OlderStores(1, 100)
	if !allRes || !match || !fwd {
		t.Errorf("post-issue: (%v,%v,%v), want (true,true,true)", allRes, match, fwd)
	}
}

func TestLSQRetireInOrder(t *testing.T) {
	l := NewLSQ(4, 64)
	l.Push(LSQEntry{Seq: 5})
	l.Push(LSQEntry{Seq: 7})
	l.Retire(7) // not head: must be ignored
	if l.Len() != 2 {
		t.Error("out-of-order retire removed an entry")
	}
	l.Retire(5)
	if l.Len() != 1 || l.Entries()[0].Seq != 7 {
		t.Error("head retire failed")
	}
}

func TestLSQCapacity(t *testing.T) {
	l := NewLSQ(1, 64)
	if !l.Push(LSQEntry{Seq: 1}) || l.Push(LSQEntry{Seq: 2}) {
		t.Error("capacity not enforced")
	}
	if l.Free() != 0 || l.Cap() != 1 {
		t.Error("free/cap wrong")
	}
}

// Property: Select removes exactly the ready entries (up to max) and
// preserves relative order of the rest.
func TestSelectPreservesOrderProperty(t *testing.T) {
	f := func(readyMask uint16, maxSel uint8) bool {
		q := NewIssueQueue(16)
		for i := uint64(0); i < 16; i++ {
			q.Push(Entry{Seq: i})
		}
		max := int(maxSel % 17)
		got := q.Select(max, func(e *Entry) bool { return readyMask&(1<<e.Seq) != 0 }, nil)
		if len(got) > max {
			return false
		}
		prev := int64(-1)
		for _, e := range got {
			if int64(e.Seq) <= prev || readyMask&(1<<e.Seq) == 0 {
				return false
			}
			prev = int64(e.Seq)
		}
		rest := q.Select(16, func(e *Entry) bool { return true }, nil)
		prev = -1
		for _, e := range rest {
			if int64(e.Seq) <= prev {
				return false
			}
			prev = int64(e.Seq)
		}
		return len(got)+len(rest) == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
