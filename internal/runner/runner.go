// Package runner is the parallel experiment engine: a bounded worker
// pool that fans independent simulation runs out across CPUs and returns
// their results in submission order, so any output derived from a batch
// is byte-identical to running the same batch serially.
//
// Determinism contract (see DESIGN.md, "Runner determinism"): every task
// must be a pure function of its inputs — simulations seed their own RNGs
// and share no mutable state — so the outcome slice is identical for any
// worker count, including 1. The pool only changes wall-clock time.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"mcd/internal/sim"
	"mcd/internal/stats"
)

// Task is one named unit of work. Name labels progress reports and panic
// diagnostics; for simulation runs it is conventionally
// "benchmark/config".
type Task[T any] struct {
	Name string
	Run  func(ctx context.Context) (T, error)
}

// Outcome is the result of one task, in the position the task was
// submitted.
type Outcome[T any] struct {
	Name  string
	Value T
	// Err is the task's error, a *PanicError if the task panicked, or the
	// context error if the batch was cancelled before the task started.
	Err error
}

// PanicError reports a task that panicked. The pool recovers the panic so
// one bad run cannot silently kill its worker and hang the batch; the
// task's name and the original stack are preserved.
type PanicError struct {
	Task  string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: task %q panicked: %v", e.Task, e.Value)
}

// Repanic panics with err on behalf of a caller that cannot continue
// past a failed task, expanding a *PanicError so the crashed task's
// original stack stays visible (panicking with the bare error would
// print only the rethrowing goroutine's stack).
func Repanic(err error) {
	var pe *PanicError
	if errors.As(err, &pe) {
		panic(fmt.Sprintf("%v\n\noriginal stack:\n%s", pe, pe.Stack))
	}
	panic(err)
}

// Options configures a batch.
type Options struct {
	// Workers bounds the number of concurrently running tasks. Zero or
	// negative means runtime.GOMAXPROCS(0).
	Workers int
	// OnDone, if non-nil, is called after each task finishes with the
	// number of finished tasks, the batch size and the task's name.
	// Calls are serialized; done is strictly increasing. Tasks cancelled
	// before starting are not reported.
	OnDone func(done, total int, name string)
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs the tasks on a bounded worker pool and returns their outcomes
// in submission order. It blocks until every started task has finished.
//
// Cancellation: when ctx is cancelled, no further tasks are started;
// already-running tasks complete (their Run also receives ctx and may
// return early). Unstarted tasks get ctx.Err() as their outcome error,
// and Map returns ctx.Err(). Task errors — including recovered panics,
// surfaced as *PanicError — never abort the batch; they are reported in
// the corresponding outcome.
func Map[T any](ctx context.Context, tasks []Task[T], opts Options) ([]Outcome[T], error) {
	out := make([]Outcome[T], len(tasks))
	if len(tasks) == 0 {
		return out, ctx.Err()
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
		idx  = make(chan int)
	)
	for w := opts.workers(len(tasks)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				var ran bool
				out[i], ran = runTask(ctx, tasks[i])
				if ran && opts.OnDone != nil {
					mu.Lock()
					done++
					opts.OnDone(done, len(tasks), tasks[i].Name)
					mu.Unlock()
				}
			}
		}()
	}

	next := 0
feed:
	for next < len(tasks) {
		select {
		case idx <- next:
			next++
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := next; i < len(tasks); i++ {
			out[i] = Outcome[T]{Name: tasks[i].Name, Err: err}
		}
		return out, err
	}
	return out, nil
}

// runTask executes one task with panic recovery; ran reports whether the
// task's Run was actually invoked (false when the context was already
// cancelled), so callers can keep progress reporting honest.
func runTask[T any](ctx context.Context, t Task[T]) (o Outcome[T], ran bool) {
	o.Name = t.Name
	defer func() {
		if r := recover(); r != nil {
			o.Err = &PanicError{Task: t.Name, Value: r, Stack: debug.Stack()}
		}
	}()
	if err := ctx.Err(); err != nil {
		o.Err = err
		return o, false
	}
	ran = true
	o.Value, o.Err = t.Run(ctx)
	return o, ran
}

// SpecTask adapts one sim.Spec to a Task. The spec is captured by value,
// so a caller may reuse and mutate a loop variable.
func SpecTask(name string, spec sim.Spec) Task[stats.Result] {
	return Task[stats.Result]{Name: name, Run: func(context.Context) (stats.Result, error) {
		return sim.Run(spec), nil
	}}
}
