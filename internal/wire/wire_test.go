package wire

import (
	"strings"
	"testing"
)

func TestValidateListsValidSets(t *testing.T) {
	err := RunRequest{Benchmark: "adpcm", Config: "bogus"}.Validate()
	if err == nil {
		t.Fatal("unknown config accepted")
	}
	for _, c := range Configs() {
		if !strings.Contains(err.Error(), c) {
			t.Errorf("config error %q does not list %q", err, c)
		}
	}
	if err := (RunRequest{Benchmark: "nonesuch"}).Validate(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := (ExperimentRequest{Name: "bogus"}).Validate(); err == nil {
		t.Fatal("unknown experiment accepted")
	} else {
		for _, e := range Experiments() {
			if !strings.Contains(err.Error(), e) {
				t.Errorf("experiment error %q does not list %q", err, e)
			}
		}
	}
}

// TestKeysDistinguishRequests: every config of the same benchmark gets
// its own content address, and the defaults are part of it (an explicit
// default-valued request equals a zero-valued one).
func TestKeysDistinguishRequests(t *testing.T) {
	seen := map[string]string{}
	for _, cfg := range Configs() {
		k, err := (RunRequest{Benchmark: "adpcm", Config: cfg, Window: 8000, Warmup: U64(4000)}).Key()
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("configs %s and %s share a key", prev, cfg)
		}
		seen[k] = cfg
	}

	implicit, err := RunRequest{}.Key()
	if err != nil {
		t.Fatal(err)
	}
	slew := DefaultSlewNsPerMHz
	explicit, err := RunRequest{
		Benchmark: "epic.decode", Config: ConfigAttackDecay,
		Window: 400_000, Warmup: U64(200_000), Interval: U64(1000), SlewNsPerMHz: &slew,
	}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if implicit != explicit {
		t.Fatal("normalization is not part of the key: defaults and explicit values differ")
	}

	// Explicit zeros (ideal regulator, cold start, paper-scale default
	// interval) are distinct configurations, not "unset".
	zero := 0.0
	for label, req := range map[string]RunRequest{
		"slew 0":     {SlewNsPerMHz: &zero},
		"warmup 0":   {Warmup: U64(0)},
		"interval 0": {Interval: U64(0)},
	} {
		k, err := req.Key()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if k == implicit {
			t.Fatalf("%s collapsed onto the default", label)
		}
	}
}
