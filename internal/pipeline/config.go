// Package pipeline implements the cycle-level out-of-order MCD core: a
// 4-wide front end (fetch, branch prediction, rename, dispatch) feeding
// per-domain issue queues, independently clocked integer, floating-point
// and load/store execution domains, and in-order retirement — with all
// inter-domain communication paying the synchronization-window penalty of
// the paper's clocking model.
package pipeline

import (
	"mcd/internal/clock"
	"mcd/internal/dvfs"
	"mcd/internal/stats"
)

// Config collects the architectural (Table 4) and MCD-specific (Table 1)
// parameters of the simulated processor.
type Config struct {
	// Widths.
	DecodeWidth int // instructions fetched/renamed/dispatched per FE cycle
	RetireWidth int
	IntALUs     int
	IntMuls     int
	FPALUs      int
	FPMuls      int
	MemPorts    int

	// Capacities.
	IntIQSize int
	FPIQSize  int
	LSQSize   int
	ROBSize   int
	// Rename registers available beyond the architectural state: the
	// number of in-flight producers each register file supports.
	IntRenameRegs int
	FPRenameRegs  int

	// Latencies, in cycles of the owning domain.
	IntALULat         int
	IntMulLat         int
	FPALULat          int
	FPMulLat          int
	FPDivLat          int
	L1Lat             int
	L2Lat             int
	MispredictPenalty int // front-end cycles
	// MemLatPS is the main-memory latency in picoseconds; main memory is
	// independently clocked at a fixed frequency the processor cannot
	// control, so its latency does not scale with any domain frequency.
	MemLatPS float64

	// Clocking (Table 1).
	MaxFreqMHz   float64
	JitterPS     float64 // per-cycle clock jitter sigma
	SyncWindowPS float64 // Sjogren–Myers synchronization window
	SlewNsPerMHz float64 // XScale frequency change rate
	// SingleClock models the conventional fully synchronous processor:
	// one shared clock, no synchronization penalties, no jitter between
	// domains, and no MCD clock-energy overhead.
	SingleClock bool

	// CacheBlockBytes is the coherence/disambiguation granularity.
	CacheBlockBytes int

	Seed int64
}

// DefaultConfig returns the paper's configuration (Tables 1 and 4).
func DefaultConfig() Config {
	return Config{
		DecodeWidth: 4,
		RetireWidth: 11,
		IntALUs:     4,
		IntMuls:     1,
		FPALUs:      2,
		FPMuls:      1,
		MemPorts:    2,

		IntIQSize:     20,
		FPIQSize:      15,
		LSQSize:       64,
		ROBSize:       80,
		IntRenameRegs: 40, // 72 physical − 32 architectural
		FPRenameRegs:  40,

		IntALULat:         1,
		IntMulLat:         7,
		FPALULat:          4,
		FPMulLat:          4,
		FPDivLat:          12,
		L1Lat:             2,
		L2Lat:             12,
		MispredictPenalty: 7,
		MemLatPS:          80_000, // 80 ns

		MaxFreqMHz:   1000,
		JitterPS:     110,
		SyncWindowPS: 300,
		SlewNsPerMHz: dvfs.DefaultSlewNsPerMHz,

		CacheBlockBytes: 64,
		Seed:            1,
	}
}

// Controller observes one interval record and may retarget the domain
// frequencies. A zero target leaves that domain's frequency unchanged.
// The interval record carries exactly what the paper's hardware provides:
// per-domain queue-utilization accumulators and the global IPC counter.
type Controller interface {
	Name() string
	Observe(iv IntervalView) (targets [clock.NumControllable]float64)
}

// DecisionNoter is an optional Controller extension consulted by the
// serving layer's decision-audit trail: a one-line, human-readable
// summary of the controller's internal state after its latest Observe
// (coord reports its slack budget and IPC guard, pi its integral
// accumulators). It is called only when tracing is enabled, at measured
// interval boundaries — never inside the cycle loop — so implementations
// may format freely; controllers that carry no hidden state simply
// don't implement it.
type DecisionNoter interface {
	DecisionNote() string
}

// IntervalView is the per-interval information visible to a controller.
type IntervalView struct {
	Index        int
	Instructions uint64
	EndPS        float64
	// Warmup marks intervals that fall inside the warmup region. On-line
	// controllers adapt through them (so the measured window reflects
	// steady-state control, as in the paper's long windows); schedule
	// replay controllers ignore them to stay aligned with the measured
	// intervals they were built against.
	Warmup bool
	// QueueUtil is occupancy accumulated every domain cycle divided by
	// the interval's instruction count (the paper's normalization, which
	// can exceed the queue capacity when CPI > 1).
	QueueUtil [clock.NumControllable]float64
	// QueueAvg is mean occupancy per domain cycle — a frequency-invariant
	// view of the same accumulator, kept for traces and diagnostics.
	QueueAvg [clock.NumControllable]float64
	// FreqMHz is each domain's regulator target at the interval boundary.
	FreqMHz [clock.NumControllable]float64
	// IPC is instructions per 1 GHz reference cycle — the single global
	// performance counter the paper shares with every domain.
	IPC float64
	// Estimated marks a fast-forwarded interval under sampled fidelity:
	// the queue and IPC fields are extrapolations of the last detailed
	// interval, not measurements. Reactive controllers should hold (return
	// zero targets, update no state) rather than steer on replayed data —
	// the utilization deltas they react to are frozen across a skip, which
	// reads as an endless quiet phase and drives decay-style feedback off
	// its exact-tier trajectory. Schedule-replay controllers advance
	// normally so their interval indices stay aligned.
	Estimated bool
}

// RunOptions controls one simulation.
type RunOptions struct {
	// Window is the number of instructions to retire and measure.
	Window uint64
	// Warmup is the number of additional instructions executed before
	// the measured window to warm caches and predictors, mirroring the
	// paper's practice of skipping each benchmark's initialization
	// phase. Energy, time, intervals and controller observations all
	// start after warmup.
	Warmup uint64
	// IntervalLength is the controller sampling period in instructions
	// (paper: 10,000). Zero uses 10,000.
	IntervalLength uint64
	// Controller may be nil for fixed-frequency runs.
	Controller Controller
	// InitialFreqMHz pins each domain's starting frequency; zero entries
	// start at MaxFreqMHz. The regulator starts settled (no slew) at
	// this frequency, modeling a configuration chosen before the run.
	InitialFreqMHz [clock.NumControllable]float64
	// RecordIntervals retains per-interval records in the Result for
	// the Figure 2/3 traces.
	RecordIntervals bool
	// SampleEvery enables the sampled fidelity tier: every SampleEvery-th
	// control interval is simulated in detail and the rest are
	// fast-forwarded with an analytical model seeded by the most recent
	// detailed interval (functional warming keeps caches and predictors
	// trained through the skips). 0 (and 1) simulate every interval in
	// detail; 0 additionally keeps the exact tier's semantics of letting
	// on-line controllers observe warmup intervals, whereas any non-zero
	// value leaves warmup uncontrolled so warmed state is
	// controller-independent and checkpointed warmup reuse stays sound.
	SampleEvery int
	// OnInterval, if non-nil, is called with each measured control
	// interval's record as it is produced (after the controller has
	// observed the interval) — the streaming hook the session API and
	// the live CLI/service modes ride on. It sees exactly the records
	// RecordIntervals would retain and must not mutate simulation state;
	// the record is a copy, safe to retain.
	OnInterval func(iv stats.Interval)
	// ConfigName labels the Result.
	ConfigName string
}
