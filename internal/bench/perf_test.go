package bench

import "testing"

func report(hotAllocs, singleAllocs uint64, hotNs, singleNs float64) PerfReport {
	return PerfReport{
		Schema: PerfSchema,
		Benchmarks: map[string]PerfMeasurement{
			"hot_loop":   {NsPerOp: hotNs, AllocsPerOp: hotAllocs},
			"single_run": {NsPerOp: singleNs, AllocsPerOp: singleAllocs},
		},
	}
}

func TestPerfReportRoundTrip(t *testing.T) {
	r := report(0, 46, 700_000, 250e6)
	r.GoVersion, r.GOOS, r.GOARCH = "go1.24.0", "linux", "amd64"
	b, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePerfReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks["single_run"].AllocsPerOp != 46 || got.Benchmarks["hot_loop"].NsPerOp != 700_000 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if _, err := DecodePerfReport([]byte(`{"schema":"other"}`)); err == nil {
		t.Error("wrong schema accepted")
	}
}

func TestPerfCheckAgainst(t *testing.T) {
	base := report(0, 46, 700_000, 250e6)

	if fails := base.CheckAgainst(base); len(fails) != 0 {
		t.Errorf("identical report failed the gate: %v", fails)
	}
	// ns/op noise inside the tolerance passes; a blowout fails.
	if fails := report(0, 46, 2_000_000, 600e6).CheckAgainst(base); len(fails) != 0 {
		t.Errorf("in-tolerance wall-clock noise failed the gate: %v", fails)
	}
	if fails := report(0, 46, 700_000*nsTolerance*2, 250e6).CheckAgainst(base); len(fails) != 1 {
		t.Errorf("wall-clock blowout not caught: %v", fails)
	}
	// The hot loop's alloc count is exact: one allocation regresses.
	if fails := report(1, 46, 700_000, 250e6).CheckAgainst(base); len(fails) != 1 {
		t.Errorf("hot-loop alloc regression not caught: %v", fails)
	}
	// single_run gets the GC/pool slack, no more.
	if fails := report(0, 46+singleRunAllocSlack, 700_000, 250e6).CheckAgainst(base); len(fails) != 0 {
		t.Errorf("in-slack single_run allocs failed the gate: %v", fails)
	}
	if fails := report(0, 46+singleRunAllocSlack+1, 700_000, 250e6).CheckAgainst(base); len(fails) != 1 {
		t.Errorf("over-slack single_run allocs not caught: %v", fails)
	}
	// New benchmarks absent from the baseline are ignored.
	extra := report(0, 46, 700_000, 250e6)
	extra.Benchmarks["new_bench"] = PerfMeasurement{AllocsPerOp: 1000}
	if fails := extra.CheckAgainst(base); len(fails) != 0 {
		t.Errorf("unknown benchmark failed the gate: %v", fails)
	}
}
