package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mcd/internal/pipeline"
)

// Checkpointed warmup reuse for the sampled fidelity tier: a sweep runs
// the same benchmark's warmup prefix once, snapshots the warmed core at
// the last interval boundary safely before the measurement mark, and
// restores the snapshot into every cell's core. Soundness rests on two
// properties: sampled-mode warmup is uncontrolled (pipeline gates the
// controller off until the mark when SampleEvery > 0), so warmed state
// is controller-independent; and WarmState capture/restore is complete,
// so a restored core is byte-identical to one that warmed itself. Exact
// runs never touch this path — their warmup always executes in full.

// warmReuse can be flipped off (SetWarmReuse) so the byte-identity pin
// test can compare warm-restored runs against straight ones.
var warmReuse atomic.Bool

func init() { warmReuse.Store(true) }

// SetWarmReuse enables or disables checkpointed warmup reuse for sampled
// runs (enabled by default). Exact runs are unaffected. Intended for the
// warm-snapshot pin tests and for debugging; not safe to flip while
// sessions are being opened concurrently.
func SetWarmReuse(enabled bool) { warmReuse.Store(enabled) }

const warmCacheCap = 32 // snapshots are ~1 MB each; a sweep needs one per benchmark

type warmEntry struct {
	ready chan struct{}
	state *pipeline.WarmState
}

var warmCache = struct {
	sync.Mutex
	entries map[string]*warmEntry
	order   []string // insertion order, for bounded eviction
}{entries: make(map[string]*warmEntry)}

// warmIntervals returns how many control intervals of warmup can be
// snapshotted and shared: the last interval boundary strictly before the
// mark (boundary overshoot is bounded by the retire width, far below an
// interval). Runs with fewer than two warmup intervals are ineligible.
func warmIntervals(s Spec) int {
	l := s.IntervalLength
	if l == 0 {
		l = 10_000 // pipeline.RunOptions' default
	}
	k := int(s.Warmup/l) - 1
	if k < 1 {
		return 0
	}
	return k
}

// warmKey identifies a shareable warmup prefix: everything that shapes
// the pre-mark cycle stream, and nothing that doesn't (controller, name,
// recording — all inert before the mark at sampled fidelity).
func warmKey(s Spec) string {
	return fmt.Sprintf("cfg=%+v|prof=%+v|win=%d|warm=%d|iv=%d|init=%v|sample=%d",
		s.Config, s.Profile, s.Window, s.Warmup, s.IntervalLength,
		s.InitialFreqMHz, s.EffectiveSampleEvery())
}

// warmFor returns the shared warm snapshot for the spec's warmup prefix,
// building it (once, with single-flight) on first use. It returns nil
// when reuse is disabled, the warmup is too short to share, or the
// workload generator cannot checkpoint — callers then warm in-line.
func warmFor(s Spec) *pipeline.WarmState {
	if !warmReuse.Load() {
		return nil
	}
	k := warmIntervals(s)
	if k < 1 {
		return nil
	}
	key := warmKey(s)
	warmCache.Lock()
	e, ok := warmCache.entries[key]
	if ok {
		warmCache.Unlock()
		<-e.ready
		return e.state
	}
	e = &warmEntry{ready: make(chan struct{})}
	warmCache.entries[key] = e
	warmCache.order = append(warmCache.order, key)
	if len(warmCache.order) > warmCacheCap {
		oldest := warmCache.order[0]
		warmCache.order = warmCache.order[1:]
		delete(warmCache.entries, oldest)
	}
	warmCache.Unlock()
	e.state = buildWarm(s, k)
	close(e.ready)
	return e.state
}

// buildWarm executes the warmup prefix — controller-less, at the spec's
// sampled cadence — through k interval boundaries and captures the core.
func buildWarm(s Spec, k int) *pipeline.WarmState {
	gen := s.Profile.NewGenerator(s.Warmup + s.Window)
	var core *pipeline.Core
	if c, ok := corePool.Get().(*pipeline.Core); ok {
		c.Reset(s.Config, gen)
		core = c
	} else {
		core = pipeline.New(s.Config, gen)
	}
	core.Start(pipeline.RunOptions{
		Window:         s.Window,
		Warmup:         s.Warmup,
		IntervalLength: s.IntervalLength,
		InitialFreqMHz: s.InitialFreqMHz,
		SampleEvery:    s.EffectiveSampleEvery(),
	})
	core.StepIntervals(k)
	w := core.CaptureWarm()
	core.Release()
	corePool.Put(core)
	return w
}
