package runner_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcd/internal/core"
	"mcd/internal/pipeline"
	"mcd/internal/runner"
	"mcd/internal/sim"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// gridSpecs builds a small benchmark × configuration grid: each of six
// benchmarks under no controller and under Attack/Decay.
func gridSpecs(window uint64) (names []string, specs []sim.Spec) {
	cfg := pipeline.DefaultConfig()
	for _, bn := range []string{"adpcm", "epic", "mesa", "em3d", "mcf", "gzip"} {
		b, ok := workload.Lookup(bn)
		if !ok {
			panic("unknown benchmark " + bn)
		}
		for _, c := range []string{"mcd-base", "attack-decay"} {
			var ctrl pipeline.Controller
			if c == "attack-decay" {
				ctrl = core.NewAttackDecay(core.DefaultParams())
			}
			names = append(names, bn+"/"+c)
			specs = append(specs, sim.Spec{
				Config:         cfg,
				Profile:        b.Profile,
				Window:         window,
				Warmup:         window / 2,
				IntervalLength: 500,
				Controller:     ctrl,
				Name:           c,
			})
		}
	}
	return names, specs
}

// TestBatchMatchesSerial is the determinism equivalence test of the
// runner layer: a 6-benchmark grid run serially through sim.Run must be
// identical — every stats.Result field — to the pool at 1, 4 and 8
// workers. A mismatch means simulations share hidden mutable state.
func TestBatchMatchesSerial(t *testing.T) {
	names, specs := gridSpecs(12_000)

	serial := make([]stats.Result, len(specs))
	for i, s := range specs {
		serial[i] = sim.Run(s)
	}

	for _, workers := range []int{1, 4, 8} {
		// Controllers are stateful: rebuild the grid so each batch gets
		// fresh ones, exactly as a caller would.
		names2, specs2 := gridSpecs(12_000)
		tasks := make([]runner.Task[stats.Result], len(specs2))
		for i := range specs2 {
			tasks[i] = runner.SpecTask(names2[i], specs2[i])
		}
		got, err := runner.Map(context.Background(), tasks, runner.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i].Err != nil {
				t.Fatalf("workers=%d: %s: %v", workers, got[i].Name, got[i].Err)
			}
			if !reflect.DeepEqual(got[i].Value, serial[i]) {
				t.Errorf("workers=%d: %s diverged from serial run:\nserial:   %+v\nparallel: %+v",
					workers, names[i], serial[i], got[i].Value)
			}
		}
	}
}

func TestMapPreservesSubmissionOrder(t *testing.T) {
	const n = 100
	tasks := make([]runner.Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = runner.Task[int]{Name: fmt.Sprint(i), Run: func(context.Context) (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Millisecond) // shuffle completion order
			}
			return i * i, nil
		}}
	}
	outs, err := runner.Map(context.Background(), tasks, runner.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Value != i*i || o.Name != fmt.Sprint(i) {
			t.Fatalf("outcome %d = %+v, want value %d", i, o, i*i)
		}
	}
}

// TestMapStress hammers the pool with dozens of concurrent small
// simulation batches; run under -race it is the data-race canary for the
// whole sim stack.
func TestMapStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	b, _ := workload.Lookup("adpcm")
	var wg sync.WaitGroup
	for batch := 0; batch < 8; batch++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tasks := make([]runner.Task[stats.Result], 6)
			for i := range tasks {
				tasks[i] = runner.SpecTask(fmt.Sprintf("adpcm/%d", i), sim.Spec{
					Config:         pipeline.DefaultConfig(),
					Profile:        b.Profile,
					Window:         4_000,
					IntervalLength: 500,
					Controller:     core.NewAttackDecay(core.DefaultParams()),
					Name:           "stress",
				})
			}
			outs, err := runner.Map(context.Background(), tasks, runner.Options{Workers: 4})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 1; i < len(outs); i++ {
				if !reflect.DeepEqual(outs[i].Value, outs[0].Value) {
					t.Errorf("identical specs produced different results")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestMapProgressCallback(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	tasks := make([]runner.Task[int], 17)
	for i := range tasks {
		tasks[i] = runner.Task[int]{Name: "t", Run: func(context.Context) (int, error) { return 0, nil }}
	}
	_, err := runner.Map(context.Background(), tasks, runner.Options{
		Workers: 4,
		OnDone: func(done, total int, name string) {
			mu.Lock()
			defer mu.Unlock()
			if total != len(tasks) || name != "t" {
				t.Errorf("OnDone(%d, %d, %q)", done, total, name)
			}
			seen = append(seen, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(tasks) {
		t.Fatalf("OnDone called %d times, want %d", len(seen), len(tasks))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("done counts not strictly increasing: %v", seen)
		}
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	release := make(chan struct{})
	tasks := make([]runner.Task[int], 50)
	for i := range tasks {
		i := i
		tasks[i] = runner.Task[int]{Name: fmt.Sprint(i), Run: func(ctx context.Context) (int, error) {
			started.Add(1)
			<-release
			return i, nil
		}}
	}
	done := make(chan struct{})
	var outs []runner.Outcome[int]
	var reported atomic.Int32
	var err error
	go func() {
		defer close(done)
		outs, err = runner.Map(ctx, tasks, runner.Options{
			Workers: 2,
			OnDone:  func(int, int, string) { reported.Add(1) },
		})
	}()
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	<-done

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("runner.Map error = %v, want context.Canceled", err)
	}
	ran, cancelled := 0, 0
	for _, o := range outs {
		switch {
		case errors.Is(o.Err, context.Canceled):
			cancelled++
		default:
			ran++
		}
	}
	if cancelled == 0 {
		t.Error("no outcome reports cancellation")
	}
	if ran == 0 {
		t.Error("the already-started tasks should have completed")
	}
	if ran+cancelled != len(tasks) {
		t.Errorf("ran %d + cancelled %d != %d tasks", ran, cancelled, len(tasks))
	}
	// OnDone must count only tasks that actually executed, never the
	// cancelled ones.
	if int(reported.Load()) != ran {
		t.Errorf("OnDone reported %d tasks, want the %d that ran", reported.Load(), ran)
	}
}

func TestMapCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tasks := []runner.Task[int]{{Name: "never", Run: func(context.Context) (int, error) {
		t.Error("task ran despite pre-cancelled context")
		return 0, nil
	}}}
	outs, err := runner.Map(ctx, tasks, runner.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if !errors.Is(outs[0].Err, context.Canceled) || outs[0].Name != "never" {
		t.Fatalf("outcome = %+v", outs[0])
	}
}

// TestMapPanicPropagation: a panicking run must surface its name in a
// *runner.PanicError and must not kill the pool — every other task still runs.
func TestMapPanicPropagation(t *testing.T) {
	const n = 20
	tasks := make([]runner.Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = runner.Task[int]{Name: fmt.Sprintf("bench-%d", i), Run: func(context.Context) (int, error) {
			if i == 7 {
				panic("simulated pipeline bug")
			}
			return i, nil
		}}
	}
	outs, err := runner.Map(context.Background(), tasks, runner.Options{Workers: 3})
	if err != nil {
		t.Fatalf("panics must not abort the batch: %v", err)
	}
	for i, o := range outs {
		if i == 7 {
			var pe *runner.PanicError
			if !errors.As(o.Err, &pe) {
				t.Fatalf("task 7 error = %v, want *PanicError", o.Err)
			}
			if pe.Task != "bench-7" || !strings.Contains(pe.Error(), "bench-7") ||
				!strings.Contains(pe.Error(), "simulated pipeline bug") {
				t.Errorf("panic error lost the task name: %v", pe)
			}
			if len(pe.Stack) == 0 {
				t.Error("panic error lost the stack")
			}
			continue
		}
		if o.Err != nil || o.Value != i {
			t.Errorf("healthy task %d got outcome %+v", i, o)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	outs, err := runner.Map[int](context.Background(), nil, runner.Options{})
	if err != nil || len(outs) != 0 {
		t.Fatalf("runner.Map(nil) = %v, %v", outs, err)
	}
}
