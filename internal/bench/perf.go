package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"mcd/internal/core"
	"mcd/internal/pipeline"
	"mcd/internal/sim"
	"mcd/internal/workload"
)

// The perf suite pins the within-run hot path (PR 5): one cache-miss
// unit of work end to end (single_run) and the steady-state cycle engine
// alone (hot_loop). cmd/mcdbench -benchjson emits the report; the
// committed BENCH_5.json is the baseline CI gates against, with the
// tolerances encoded in CheckAgainst.

// PerfMeasurement is one benchmark's measured cost.
type PerfMeasurement struct {
	N           int     `json:"n"`             // iterations measured
	NsPerOp     float64 `json:"ns_per_op"`     // wall time per op (noisy across machines)
	AllocsPerOp uint64  `json:"allocs_per_op"` // heap allocations per op (exact, machine-independent)
	BytesPerOp  uint64  `json:"bytes_per_op"`
	SimMIPS     float64 `json:"sim_mips"` // simulated instructions per wall-clock second, in millions
}

// PerfReport is the -benchjson document (and BENCH_5.json's schema).
type PerfReport struct {
	Schema     string                     `json:"schema"`
	GoVersion  string                     `json:"go_version"`
	GOOS       string                     `json:"goos"`
	GOARCH     string                     `json:"goarch"`
	Benchmarks map[string]PerfMeasurement `json:"benchmarks"`
}

// PerfSchema versions the report; bump when measurements change meaning.
const PerfSchema = "mcd-bench-v1"

// Hot-path measurement scale: the QuickOptions-shaped single run every
// table cell, sweep point and streamed session bottoms out in.
const (
	perfBench    = "epic"
	perfWindow   = 120_000
	perfWarmup   = 60_000
	perfInterval = 500
	perfSlew     = 4.91
)

func perfSpec() sim.Spec {
	b, ok := workload.Lookup(perfBench)
	if !ok {
		panic("bench: perf benchmark missing from catalog")
	}
	cfg := pipeline.DefaultConfig()
	cfg.SlewNsPerMHz = perfSlew
	return sim.Spec{
		Config:         cfg,
		Profile:        b.Profile,
		Window:         perfWindow,
		Warmup:         perfWarmup,
		IntervalLength: perfInterval,
		Controller:     core.NewAttackDecay(core.DefaultParams()),
		Name:           "attack-decay",
	}
}

func measurement(r testing.BenchmarkResult, instrPerOp float64) PerfMeasurement {
	m := PerfMeasurement{
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: uint64(r.AllocsPerOp()),
		BytesPerOp:  uint64(r.AllocedBytesPerOp()),
	}
	if m.NsPerOp > 0 {
		m.SimMIPS = instrPerOp * 1e3 / m.NsPerOp
	}
	return m
}

// MeasurePerf runs the two hot-path benchmarks and assembles the report.
//
//   - single_run: one full sim.Run per op — session open (pooled core),
//     drain, close. Simulated work per op is Warmup+Window instructions.
//   - hot_loop: one steady-state control interval per op on a reused
//     core (Core.StepIntervals(1) past warmup); per-op allocations must
//     be exactly zero, the invariant TestStepIntervalsZeroAllocs pins.
//
// Restarts of the exhausted hot-loop run happen with the timer stopped,
// so they contribute neither time nor allocations.
func MeasurePerf() PerfReport {
	singles := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spec := perfSpec() // fresh controller: Attack/Decay is stateful
			if res := sim.Run(spec); res.Instructions != perfWindow {
				b.Fatalf("run retired %d measured instructions, want %d", res.Instructions, perfWindow)
			}
		}
	})

	sampled := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spec := perfSpec()
			spec.Fidelity = sim.FidelitySampled
			if res := sim.Run(spec); res.Instructions != perfWindow {
				b.Fatalf("sampled run retired %d measured instructions, want %d", res.Instructions, perfWindow)
			}
		}
	})

	hot := testing.Benchmark(func(b *testing.B) {
		spec := perfSpec()
		gen := spec.Profile.NewGenerator(perfWarmup + perfWindow)
		c := pipeline.New(spec.Config, gen)
		opts := pipeline.RunOptions{
			Window:         perfWindow,
			Warmup:         perfWarmup,
			IntervalLength: perfInterval,
			Controller:     spec.Controller,
		}
		warm := func() {
			c.Start(opts)
			c.StepIntervals(int(perfWarmup/perfInterval) + 8)
		}
		warm()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !c.StepIntervals(1) {
				b.StopTimer()
				gen.Reset()
				opts.Controller = core.NewAttackDecay(core.DefaultParams())
				c.Reset(spec.Config, gen)
				warm()
				b.StartTimer()
			}
		}
	})

	return PerfReport{
		Schema:    PerfSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchmarks: map[string]PerfMeasurement{
			"single_run": measurement(singles, perfWarmup+perfWindow),
			// sampled_run is the same unit of work at sampled fidelity with
			// warmup reuse warm (the steady state of a sampled sweep); its
			// sim-MIPS over single_run's is the fidelity tier's speedup.
			"sampled_run": measurement(sampled, perfWarmup+perfWindow),
			"hot_loop":    measurement(hot, perfInterval),
		},
	}
}

// Encode renders the report as indented JSON with a trailing newline —
// the exact bytes BENCH_5.json holds.
func (r PerfReport) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodePerfReport parses an Encode document.
func DecodePerfReport(data []byte) (PerfReport, error) {
	var r PerfReport
	if err := json.Unmarshal(data, &r); err != nil {
		return PerfReport{}, fmt.Errorf("bench: decoding perf baseline: %w", err)
	}
	if r.Schema != PerfSchema {
		return PerfReport{}, fmt.Errorf("bench: perf baseline schema %q, want %q", r.Schema, PerfSchema)
	}
	return r, nil
}

// Alloc slack for single_run: a GC cycle may clear the session core pool
// mid-benchmark, forcing one ~70-allocation reconstruction that amortizes
// over the iterations. The hot loop gets no slack — its steady state
// allocates nothing, exactly.
const singleRunAllocSlack = 64

// nsTolerance is the generous wall-clock regression factor: CI machines
// are noisy and heterogeneous, so only a blowout fails; the alloc counts
// carry the exact gate.
const nsTolerance = 4.0

// CheckAgainst compares the report with a committed baseline and returns
// human-readable regressions (empty: gate passes). Benchmarks present
// only on one side are ignored, so the suite can grow without breaking
// old baselines.
func (r PerfReport) CheckAgainst(base PerfReport) []string {
	var fails []string
	for name, b := range base.Benchmarks {
		n, ok := r.Benchmarks[name]
		if !ok {
			continue
		}
		slack := uint64(0)
		if name == "single_run" {
			slack = singleRunAllocSlack
		}
		if n.AllocsPerOp > b.AllocsPerOp+slack {
			fails = append(fails, fmt.Sprintf(
				"%s: %d allocs/op exceeds baseline %d (+%d slack) — the hot loop regressed",
				name, n.AllocsPerOp, b.AllocsPerOp, slack))
		}
		if b.NsPerOp > 0 && n.NsPerOp > b.NsPerOp*nsTolerance {
			fails = append(fails, fmt.Sprintf(
				"%s: %.0f ns/op is over %.0f× the baseline %.0f ns/op",
				name, n.NsPerOp, nsTolerance, b.NsPerOp))
		}
	}
	return fails
}
