// Package queue implements the decoupling structures of the MCD pipeline:
// the per-domain issue queues whose occupancy drives the Attack/Decay
// algorithm, the load/store queue, the reorder buffer, and the completion
// ring used for cross-domain wakeup with synchronization-window latching.
package queue

import (
	"math"

	"mcd/internal/workload"
)

// None marks an absent source operand.
const None int64 = -1

// Entry is an issue-queue entry. Producer seqs (Src1/Src2) are resolved
// against the CompletionRing at issue time; VisibleAt is the time the
// dispatched entry itself becomes visible in the consuming domain (it
// crossed from the front end through the domain-interface FIFO).
type Entry struct {
	Seq       uint64
	Class     workload.Class
	Src1      int64
	Src2      int64
	VisibleAt float64
	Addr      uint64
}

// ClassMask selects instruction classes by bit; it stands in for the
// per-pipe predicate closures the issue scan used to take, so the
// wakeup/select CAM walk makes no indirect calls (PR 5).
type ClassMask uint16

// MaskOf builds the mask accepting exactly the given classes.
func MaskOf(classes ...workload.Class) ClassMask {
	var m ClassMask
	for _, c := range classes {
		m |= 1 << c
	}
	return m
}

// Has reports whether class c is in the mask.
func (m ClassMask) Has(c workload.Class) bool { return m&(1<<c) != 0 }

// Wakeup carries one domain tick's readiness parameters: the CAM scan of
// every issue structure evaluates the same visibility rule, so the
// pipeline fills one Wakeup per tick and the queues test entries against
// it directly. Periods is indexed by producer domain and is a value
// copy — domain periods only move between ticks, never inside one, so
// the scan reads it from the stack; the pipeline refreshes it whenever a
// clock is reprogrammed. The floating-point expressions below reproduce
// pipeline.Core's cross-domain visibility rule operation-for-operation,
// which byte-identical results depend on.
type Wakeup struct {
	Now          float64
	Domain       uint8 // consuming domain
	SingleClock  bool
	SyncWindowPS float64
	Periods      [4]float64 // current period of each controllable domain, ps
	Ring         *CompletionRing

	// subPS/addPS fold the per-producer-domain visibility rule into two
	// tabulated operands, refreshed by SetTick: a producer in domain p is
	// visible at done − subPS[p] + addPS[p]. Same-domain (and
	// single-clock) producers use the half-cycle guard with addPS = 0 —
	// adding zero is exact, so the value ordering is unchanged — and
	// cross-domain producers use the full producer period plus the
	// synchronization window, the exact expression pipeline.Core.xvisible
	// evaluates. Keeping the rule as data lets the CAM scan's source test
	// inline.
	subPS [4]float64
	addPS [4]float64
}

// SetTick points the wakeup context at one domain tick: the scan time,
// the consuming domain, and the folded visibility operands for the
// current period table.
func (w *Wakeup) SetTick(now float64, dom uint8) {
	w.Now, w.Domain = now, dom
	for p := 0; p < 4; p++ {
		if w.SingleClock || uint8(p) == dom {
			w.subPS[p] = 0.5 * w.Periods[p]
			w.addPS[p] = 0
		} else {
			w.subPS[p] = w.Periods[p]
			w.addPS[p] = w.SyncWindowPS
		}
	}
}

// SrcReady reports whether producer src's result is visible in the
// consuming domain at Now. Within a domain (and in the fully synchronous
// configuration) the completion time minus a half-cycle guard is the
// bypass point; across domains the wakeup broadcast launches one producer
// cycle early and must clear the synchronization window (see
// pipeline.Core's clocking-model commentary). Overwritten or never-seen
// producers are ancient history, hence visible.
func (w *Wakeup) SrcReady(src int64) bool {
	if src < 0 {
		return true
	}
	s := w.Ring.slots[uint64(src)&w.Ring.mask]
	if s.meta&ringSeqMask != uint64(src) {
		return true
	}
	prod := (s.meta >> ringSeqBits) & 3 // producers are the three exec domains
	return w.Now >= s.doneAt-w.subPS[prod]+w.addPS[prod]
}

// Ready reports whether entry e itself has crossed into the domain and
// both its sources are visible.
func (w *Wakeup) Ready(e *Entry) bool {
	return e.VisibleAt <= w.Now && w.SrcReady(e.Src1) && w.SrcReady(e.Src2)
}

// srcReady is SrcReady over explicitly hoisted operands: the CAM scans
// load the wakeup parameters into locals once, and this form inlines
// with every operand already registerized (the compiler cannot otherwise
// prove the scans' entry writes don't alias the Wakeup).
func srcReady(slots []ringSlot, mask uint64, sub, add *[4]float64, now float64, src int64) bool {
	if src < 0 {
		return true
	}
	s := slots[uint64(src)&mask]
	if s.meta&ringSeqMask != uint64(src) {
		return true
	}
	p := (s.meta >> ringSeqBits) & 3
	return now >= s.doneAt-sub[p]+add[p]
}

// IssueQueue is a small in-order-storage, out-of-order-select queue.
type IssueQueue struct {
	entries []Entry
	cap     int
}

// NewIssueQueue returns a queue with the given capacity.
func NewIssueQueue(capacity int) *IssueQueue {
	return &IssueQueue{entries: make([]Entry, 0, capacity), cap: capacity}
}

// Reset empties the queue for a reused core, reallocating only when the
// capacity changed.
func (q *IssueQueue) Reset(capacity int) {
	if capacity != q.cap || cap(q.entries) < capacity {
		*q = *NewIssueQueue(capacity)
		return
	}
	q.entries = q.entries[:0]
}

// Len returns current occupancy; Cap the capacity; Free the open slots.
func (q *IssueQueue) Len() int  { return len(q.entries) }
func (q *IssueQueue) Cap() int  { return q.cap }
func (q *IssueQueue) Free() int { return q.cap - len(q.entries) }

// Push inserts an entry, reporting false when the queue is full.
func (q *IssueQueue) Push(e Entry) bool {
	if len(q.entries) >= q.cap {
		return false
	}
	q.entries = append(q.entries, e)
	return true
}

// Clone returns a deep copy — an independent snapshot for checkpointed
// warmup reuse.
func (q *IssueQueue) Clone() *IssueQueue {
	c := &IssueQueue{entries: make([]Entry, len(q.entries), q.cap), cap: q.cap}
	copy(c.entries, q.entries)
	return c
}

// CopyFrom restores src's exact state into the receiver, reusing its
// backing array. Both queues must share a capacity.
func (q *IssueQueue) CopyFrom(src *IssueQueue) {
	q.entries = append(q.entries[:0], src.entries...)
	q.cap = src.cap
}

// ShiftTimes adds dt to every resident entry's visibility time. The
// sampled fidelity tier calls it (on every queue) when fast-forwarding
// across a skipped interval: the pipeline is frozen, not drained, and
// shifting the in-flight timestamps along with the clock lets detail
// resume mid-steady-state instead of against a burst of stale-ready
// work. Infinity sentinels are unaffected by the addition.
func (q *IssueQueue) ShiftTimes(dt float64) {
	for i := range q.entries {
		q.entries[i].VisibleAt += dt
	}
}

// SelectReady removes and returns up to max entries whose class is in
// classes and that are ready under w, oldest first, appending to out.
// The scan models the wakeup/select CAM: every resident entry is
// examined, with no indirect calls. Compaction starts only at the first
// selected entry, so a scan that issues nothing (the common case) writes
// nothing back.
func (q *IssueQueue) SelectReady(max int, classes ClassMask, w *Wakeup, out []Entry) []Entry {
	if max <= 0 || len(q.entries) == 0 {
		return out
	}
	// The wakeup parameters are hoisted into locals so they stay
	// registerized across the scan (the compiler cannot prove the entry
	// writes below don't alias *w); readiness below is exactly
	// Wakeup.Ready over them.
	var slots []ringSlot
	var rmask uint64
	if r := w.Ring; r != nil { // entries without sources never consult it
		slots, rmask = r.slots, r.mask
	}
	subv, addv := w.subPS, w.addPS
	now := w.Now
	wr := -1
	for i := range q.entries {
		e := &q.entries[i]
		if max > 0 && classes.Has(e.Class) && e.VisibleAt <= now &&
			srcReady(slots, rmask, &subv, &addv, now, e.Src1) &&
			srcReady(slots, rmask, &subv, &addv, now, e.Src2) {
			out = append(out, *e)
			max--
			if wr < 0 {
				wr = i
			}
			continue
		}
		if wr >= 0 {
			q.entries[wr] = *e
			wr++
		}
	}
	if wr >= 0 {
		q.entries = q.entries[:wr]
	}
	return out
}

// SelectReady2 performs two disjoint selections in one CAM walk — the
// per-domain tick issues its ALU-class and multiplier-class pipes from
// the same queue, and fusing the passes halves the scan. Because the
// class sets are disjoint, the selections are exactly those the two
// corresponding SelectReady passes would make; callers process out1
// completely before out2 to keep side-effect order identical to the
// two-pass formulation.
func (q *IssueQueue) SelectReady2(max1 int, c1 ClassMask, max2 int, c2 ClassMask, w *Wakeup, out1, out2 []Entry) ([]Entry, []Entry) {
	if len(q.entries) == 0 || (max1 <= 0 && max2 <= 0) {
		return out1, out2
	}
	// Hoisted wakeup parameters; see SelectReady. Each entry is willing
	// for at most one pipe, so the readiness test runs at most once.
	var slots []ringSlot
	var rmask uint64
	if r := w.Ring; r != nil { // entries without sources never consult it
		slots, rmask = r.slots, r.mask
	}
	subv, addv := w.subPS, w.addPS
	now := w.Now
	wr := -1
	for i := range q.entries {
		e := &q.entries[i]
		pipe := 0
		if max1 > 0 && c1.Has(e.Class) {
			pipe = 1
		} else if max2 > 0 && c2.Has(e.Class) {
			pipe = 2
		}
		if pipe != 0 && e.VisibleAt <= now &&
			srcReady(slots, rmask, &subv, &addv, now, e.Src1) &&
			srcReady(slots, rmask, &subv, &addv, now, e.Src2) {
			if pipe == 1 {
				out1 = append(out1, *e)
				max1--
			} else {
				out2 = append(out2, *e)
				max2--
			}
		} else {
			if wr >= 0 {
				q.entries[wr] = *e
				wr++
			}
			continue
		}
		if wr < 0 {
			wr = i
		}
	}
	if wr >= 0 {
		q.entries = q.entries[:wr]
	}
	return out1, out2
}

// CompletionRing maps a dynamic instruction seq to its completion time and
// executing domain. Slots are recycled; because the ROB bounds in-flight
// distance well below the ring size, an overwritten slot can only belong
// to a much older instruction, which is by construction long complete.
//
// Each slot is 16 bytes — the seq and domain packed into one word next to
// the completion time — so the wakeup scan's lookups touch one cache line
// instead of three parallel arrays. Seqs are limited to 2⁵⁶−1, ten
// orders of magnitude beyond any simulated window.
type CompletionRing struct {
	slots []ringSlot
	mask  uint64
}

type ringSlot struct {
	meta   uint64 // seq in the low 56 bits, domain in the high 8
	doneAt float64
}

const (
	ringSeqBits = 56
	ringSeqMask = 1<<ringSeqBits - 1
)

// emptySlot reads as "ancient history": the seq field is all ones, which
// no real dispatch reaches.
var emptySlot = ringSlot{meta: math.MaxUint64, doneAt: math.Inf(-1)}

// NewCompletionRing returns a ring of the given power-of-two size.
func NewCompletionRing(size uint64) *CompletionRing {
	if size == 0 || size&(size-1) != 0 {
		panic("queue: completion ring size must be a power of two")
	}
	r := &CompletionRing{slots: make([]ringSlot, size), mask: size - 1}
	r.Reset()
	return r
}

// Reset empties the ring in place for a reused core.
func (r *CompletionRing) Reset() {
	for i := range r.slots {
		r.slots[i] = emptySlot
	}
}

// Clone returns a deep copy for checkpointed warmup reuse.
func (r *CompletionRing) Clone() *CompletionRing {
	c := &CompletionRing{slots: make([]ringSlot, len(r.slots)), mask: r.mask}
	copy(c.slots, r.slots)
	return c
}

// CopyFrom restores src's exact state into the receiver, reusing its
// backing array. Both rings must share a size.
func (r *CompletionRing) CopyFrom(src *CompletionRing) {
	copy(r.slots, src.slots)
	r.mask = src.mask
}

// ShiftTimes adds dt to every slot's completion time, preserving each
// producer's offset from the (fast-forwarded) clock. The ±Inf sentinels
// (in flight / ancient history) are unaffected by the addition.
func (r *CompletionRing) ShiftTimes(dt float64) {
	for i := range r.slots {
		r.slots[i].doneAt += dt
	}
}

// Dispatch registers seq as in flight in the given domain.
func (r *CompletionRing) Dispatch(seq uint64, domain uint8) {
	r.slots[seq&r.mask] = ringSlot{
		meta:   seq | uint64(domain)<<ringSeqBits,
		doneAt: math.Inf(1),
	}
}

// Complete records seq's completion time.
func (r *CompletionRing) Complete(seq uint64, t float64) {
	s := &r.slots[seq&r.mask]
	if s.meta&ringSeqMask == seq {
		s.doneAt = t
	}
}

// Lookup returns the completion time and domain of seq. Overwritten or
// never-seen slots return (-Inf, 0): the producer is ancient history.
func (r *CompletionRing) Lookup(seq uint64) (float64, uint8) {
	s := r.slots[seq&r.mask]
	if s.meta&ringSeqMask != seq {
		return math.Inf(-1), 0
	}
	return s.doneAt, uint8(s.meta >> ringSeqBits)
}

// ROBEntry is one reorder-buffer slot.
type ROBEntry struct {
	Seq    uint64
	DoneAt float64 // +Inf until complete
	Domain uint8
	Class  workload.Class
}

// ROB is the in-order retirement window.
type ROB struct {
	buf        []ROBEntry
	head, size int
}

// NewROB returns a reorder buffer with the given capacity.
func NewROB(capacity int) *ROB {
	return &ROB{buf: make([]ROBEntry, capacity)}
}

// Reset empties the ROB for a reused core, reallocating only when the
// capacity changed.
func (r *ROB) Reset(capacity int) {
	if capacity != len(r.buf) {
		r.buf = make([]ROBEntry, capacity)
	}
	r.head, r.size = 0, 0
}

// Len returns occupancy; Cap capacity; Free open slots.
func (r *ROB) Len() int  { return r.size }
func (r *ROB) Cap() int  { return len(r.buf) }
func (r *ROB) Free() int { return len(r.buf) - r.size }

// Clone returns a deep copy for checkpointed warmup reuse.
func (r *ROB) Clone() *ROB {
	c := &ROB{buf: make([]ROBEntry, len(r.buf)), head: r.head, size: r.size}
	copy(c.buf, r.buf)
	return c
}

// CopyFrom restores src's exact state into the receiver, reusing its
// backing array. Both ROBs must share a capacity.
func (r *ROB) CopyFrom(src *ROB) {
	copy(r.buf, src.buf)
	r.head, r.size = src.head, src.size
}

// ShiftTimes adds dt to every completion time in the buffer (stale slots
// outside the live window included — they are never read). See
// IssueQueue.ShiftTimes.
func (r *ROB) ShiftTimes(dt float64) {
	for i := range r.buf {
		r.buf[i].DoneAt += dt
	}
}

// Push appends an entry in program order, reporting false when full.
func (r *ROB) Push(e ROBEntry) bool {
	if r.size == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.size)%len(r.buf)] = e
	r.size++
	return true
}

// Head returns the oldest entry, or nil when empty.
func (r *ROB) Head() *ROBEntry {
	if r.size == 0 {
		return nil
	}
	return &r.buf[r.head]
}

// Complete marks seq complete at time t. Entries are pushed with
// consecutive seqs, so the slot is head + (seq − head.Seq); when the
// seqs are not consecutive — the sampled fidelity tier's fast-forward
// leaves a seq gap between frozen in-flight entries and post-resume
// dispatches — a bounded scan finds the entry instead. Exact runs never
// take the scan, so the hot path is unchanged.
func (r *ROB) Complete(seq uint64, t float64) {
	if r.size == 0 {
		return
	}
	head := r.buf[r.head].Seq
	if seq < head {
		return
	}
	if off := seq - head; off < uint64(r.size) {
		e := &r.buf[(r.head+int(off))%len(r.buf)]
		if e.Seq == seq {
			e.DoneAt = t
			return
		}
	}
	for i := 0; i < r.size; i++ {
		e := &r.buf[(r.head+i)%len(r.buf)]
		if e.Seq == seq {
			e.DoneAt = t
			return
		}
	}
}

// Pop removes the head entry.
func (r *ROB) Pop() {
	if r.size == 0 {
		return
	}
	r.head = (r.head + 1) % len(r.buf)
	r.size--
}

// LSQEntry is one load/store queue slot, kept in program order from
// dispatch to retirement.
type LSQEntry struct {
	Seq       uint64
	IsStore   bool
	Addr      uint64
	Block     uint64 // Addr >> blockBits, for disambiguation
	Src1      int64
	Src2      int64
	VisibleAt float64
	Issued    bool
	DoneAt    float64 // +Inf until the access (or store address resolve) completes
}

// LSQ is the load/store queue.
type LSQ struct {
	entries   []LSQEntry
	cap       int
	blockBits uint
}

// NewLSQ returns a load/store queue with the given capacity and cache
// block size (for store-to-load disambiguation granularity).
func NewLSQ(capacity int, blockBytes int) *LSQ {
	bb := uint(0)
	for 1<<bb < blockBytes {
		bb++
	}
	return &LSQ{entries: make([]LSQEntry, 0, capacity), cap: capacity, blockBits: bb}
}

// Reset empties the queue for a reused core, reallocating only when the
// capacity changed; the disambiguation granularity is re-derived from
// blockBytes either way.
func (l *LSQ) Reset(capacity, blockBytes int) {
	if capacity != l.cap || cap(l.entries) < capacity {
		*l = *NewLSQ(capacity, blockBytes)
		return
	}
	bb := uint(0)
	for 1<<bb < blockBytes {
		bb++
	}
	l.blockBits = bb
	l.entries = l.entries[:0]
}

// Len returns occupancy; Cap capacity; Free open slots.
func (l *LSQ) Len() int  { return len(l.entries) }
func (l *LSQ) Cap() int  { return l.cap }
func (l *LSQ) Free() int { return l.cap - len(l.entries) }

// Clone returns a deep copy for checkpointed warmup reuse.
func (l *LSQ) Clone() *LSQ {
	c := &LSQ{entries: make([]LSQEntry, len(l.entries), l.cap), cap: l.cap, blockBits: l.blockBits}
	copy(c.entries, l.entries)
	return c
}

// CopyFrom restores src's exact state into the receiver, reusing its
// backing array. Both queues must share a capacity.
func (l *LSQ) CopyFrom(src *LSQ) {
	l.entries = append(l.entries[:0], src.entries...)
	l.cap = src.cap
	l.blockBits = src.blockBits
}

// ShiftTimes adds dt to every resident entry's visibility and completion
// times. See IssueQueue.ShiftTimes.
func (l *LSQ) ShiftTimes(dt float64) {
	for i := range l.entries {
		l.entries[i].VisibleAt += dt
		l.entries[i].DoneAt += dt
	}
}

// Push appends a memory op in program order, reporting false when full.
func (l *LSQ) Push(e LSQEntry) bool {
	if len(l.entries) >= l.cap {
		return false
	}
	e.Block = e.Addr >> l.blockBits
	l.entries = append(l.entries, e)
	return true
}

// Entries exposes the backing slice for the issue scan. Callers may mutate
// Issued/DoneAt in place.
func (l *LSQ) Entries() []LSQEntry { return l.entries }

// OlderStores inspects stores older than the entry at index idx:
// allResolved is true when every older store has issued (address known);
// forwarded is true when the youngest older store to the same block has
// completed, making store-to-load forwarding possible.
func (l *LSQ) OlderStores(idx int, now float64) (allResolved, match, forwardable bool) {
	e := &l.entries[idx]
	allResolved = true
	for i := idx - 1; i >= 0; i-- {
		s := &l.entries[i]
		if !s.IsStore {
			continue
		}
		if !s.Issued || s.DoneAt > now {
			allResolved = false
		}
		if !match && s.Block == e.Block {
			match = true
			forwardable = s.Issued && s.DoneAt <= now
		}
	}
	return allResolved, match, forwardable
}

// Retire removes the oldest entry if it matches seq (entries retire in
// program order with the ROB).
func (l *LSQ) Retire(seq uint64) {
	if len(l.entries) > 0 && l.entries[0].Seq == seq {
		l.entries = l.entries[:copy(l.entries, l.entries[1:])]
	}
}
