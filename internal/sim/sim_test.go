package sim

import (
	"testing"

	"mcd/internal/clock"
	"mcd/internal/pipeline"
	"mcd/internal/workload"
)

func profile() workload.Profile {
	b, ok := workload.Lookup("adpcm")
	if !ok {
		panic("adpcm missing")
	}
	return b.Profile
}

func TestRunHonorsSpec(t *testing.T) {
	res := Run(Spec{
		Config:  pipeline.DefaultConfig(),
		Profile: profile(),
		Window:  30_000,
		Warmup:  10_000,
		Name:    "spec-test",
	})
	if res.Instructions != 30_000 {
		t.Errorf("instructions = %d, want 30000", res.Instructions)
	}
	if res.Config != "spec-test" {
		t.Errorf("config label = %q", res.Config)
	}
	if res.Benchmark != "adpcm" {
		t.Errorf("benchmark = %q", res.Benchmark)
	}
}

func TestSynchronousStripsMCDOverheads(t *testing.T) {
	cfg := Synchronous(pipeline.DefaultConfig())
	if !cfg.SingleClock {
		t.Fatal("Synchronous must set SingleClock")
	}
}

func TestRunSynchronousAtScalesFrequency(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	fast := RunSynchronousAt(cfg, profile(), 30_000, 0, 1000, "fast")
	slow := RunSynchronousAt(cfg, profile(), 30_000, 0, 500, "slow")
	if slow.TimePS <= fast.TimePS {
		t.Errorf("500 MHz run (%v ps) not slower than 1 GHz run (%v ps)", slow.TimePS, fast.TimePS)
	}
	// Compute-bound code at half frequency should take nearly twice as
	// long (memory latency is fixed, so slightly less than 2x).
	ratio := slow.TimePS / fast.TimePS
	if ratio < 1.5 || ratio > 2.1 {
		t.Errorf("slowdown ratio = %v, want ~2x for compute-bound code", ratio)
	}
	// And it must save energy (V² scaling).
	if slow.EnergyPJ >= fast.EnergyPJ {
		t.Error("global scaling saved no energy")
	}
	for d := 0; d < clock.NumControllable; d++ {
		if f := slow.AvgFreqMHz[d]; f > 510 || f < 490 {
			t.Errorf("domain %d avg freq %v, want ~500", d, f)
		}
	}
}
