// Command mcdtrace emits the per-interval traces behind Figures 2 and 3:
// queue utilization, utilization difference, and domain frequency for one
// domain of one or more benchmarks under Attack/Decay control, as CSV on
// stdout. Multiple benchmarks (comma-separated) are simulated in
// parallel and emitted in argument order, each section preceded by a
// "# benchmark <name>" comment line.
//
// Usage:
//
//	mcdtrace -bench epic.decode -domain fp   # Figure 3
//	mcdtrace -bench epic.decode -domain ls   # Figure 2
//	mcdtrace -bench epic,mcf,gzip -domain int -workers 4
//	mcdtrace -bench epic.decode -domain fp -follow   # rows stream live
//
// With -follow the run is driven through a stepped simulation session
// and each CSV row is printed as its control interval is produced
// (benchmarks run sequentially); the rows are byte-identical to the
// post-hoc output, and a warm -cache directory replays the stored trace
// instead of simulating.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"mcd/internal/bench"
	"mcd/internal/clock"
	"mcd/internal/stats"
)

func main() {
	var (
		benchNames = flag.String("bench", "epic.decode", "benchmark name(s), comma-separated")
		domain     = flag.String("domain", "fp", "domain to trace: int | fp | ls")
		window     = flag.Uint64("window", 500_000, "measured instructions")
		warmup     = flag.Uint64("warmup", 100_000, "warmup instructions")
		interval   = flag.Uint64("interval", 1000, "sampling interval (instructions)")
		workers    = flag.Int("workers", runtime.NumCPU(), "parallel simulation workers")
		cacheDir   = flag.String("cache", "", "result-store directory: completed traces are reused across invocations")
		follow     = flag.Bool("follow", false, "print trace rows as intervals are produced (benchmarks run sequentially)")
	)
	flag.Parse()

	var d clock.Domain
	switch *domain {
	case "int":
		d = clock.Integer
	case "fp":
		d = clock.FloatingPoint
	case "ls":
		d = clock.LoadStore
	default:
		fmt.Fprintf(os.Stderr, "mcdtrace: unknown domain %q (want int, fp or ls)\n", *domain)
		os.Exit(1)
	}

	opts := bench.DefaultOptions()
	opts.Window = *window
	opts.Warmup = *warmup
	opts.IntervalLength = *interval
	opts.Workers = *workers
	if err := opts.AttachCache(*cacheDir); err != nil {
		fmt.Fprintf(os.Stderr, "mcdtrace: %v\n", err)
		os.Exit(1)
	}

	names := bench.SplitNames(*benchNames)
	if len(names) == 0 {
		names = []string{"epic.decode"}
	}

	if *follow {
		for _, name := range names {
			if len(names) > 1 {
				fmt.Printf("# benchmark %s\n", name)
			}
			fmt.Print(bench.FigureCSVHeader())
			prev, row := 0.0, 0
			res, err := opts.FollowTrace(name, func(iv stats.Interval) {
				fmt.Print(bench.FigureCSVRow(row, iv, prev, d))
				prev = iv.QueueUtil[d]
				row++
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "mcdtrace: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "mcdtrace: %s, %d intervals, avg %s freq %.0f MHz\n",
				name, len(res.Intervals), *domain, res.AvgFreqMHz[d])
		}
		return
	}

	results, err := opts.TraceMany(names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdtrace: %v\n", err)
		os.Exit(1)
	}
	for i, res := range results {
		fmt.Fprintf(os.Stderr, "mcdtrace: %s, %d intervals, avg %s freq %.0f MHz\n",
			names[i], len(res.Intervals), *domain, res.AvgFreqMHz[d])
		if len(results) > 1 {
			fmt.Printf("# benchmark %s\n", names[i])
		}
		fmt.Print(bench.FigureCSV(res, d))
	}
}
