package trace

import (
	"encoding/json"
	"io"
	"strconv"
	"strings"
)

// Chrome trace-event process IDs: wall-clock job lifecycle spans live
// in one process, simulated-time controller decisions in another, so
// Perfetto renders them as two labelled tracks instead of smearing
// picosecond-scale decisions across wall-clock spans.
const (
	pidLifecycle = 1
	pidDecisions = 2
)

// chromeEvent is one entry of the Chrome trace-event JSON array (the
// format Perfetto and chrome://tracing open natively): "X" complete
// spans, "i" instants, "C" counters, "M" metadata.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// domainNames label the per-domain decision payload in export args, in
// clock-domain order.
var domainNames = [NumDomains]string{"frontend", "integer", "fp", "loadstore"}

// tidOf maps a job ID to a stable thread ID so each job renders as its
// own row: IDs are "j<seq>", so the sequence number is the natural tid.
func tidOf(job string) int {
	if n, err := strconv.Atoi(strings.TrimPrefix(job, "j")); err == nil && n > 0 {
		return n
	}
	return 1
}

// WriteChrome renders records as a Chrome trace-event JSON object —
// {"traceEvents":[...]} — viewable by dragging the body into Perfetto
// (ui.perfetto.dev) or chrome://tracing. Lifecycle spans and instants
// land in a wall-clock process; decision records land in a separate
// simulated-time process as instants plus per-domain frequency and
// occupancy counter tracks (the Figures 2–3 view). dropped > 0 reports
// records the bounded recorder overwrote before export; it surfaces as
// an explicit instant so a truncated trace is never mistaken for a
// complete one.
func WriteChrome(w io.Writer, recs []Record, dropped uint64) error {
	events := make([]chromeEvent, 0, 2*len(recs)+8)
	events = append(events,
		chromeEvent{Name: "process_name", Ph: "M", PID: pidLifecycle,
			Args: map[string]any{"name": "job lifecycle (wall clock)"}},
		chromeEvent{Name: "process_name", Ph: "M", PID: pidDecisions,
			Args: map[string]any{"name": "controller decisions (simulated time)"}},
	)
	named := map[int]bool{}
	for _, r := range recs {
		tid := tidOf(r.Job)
		if r.Job != "" && !named[tid] {
			named[tid] = true
			for _, pid := range []int{pidLifecycle, pidDecisions} {
				events = append(events, chromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
					Args: map[string]any{"name": r.Job}})
			}
		}
		switch r.Kind {
		case KindSpan, KindInstant:
			ev := chromeEvent{
				Name: r.Name, Cat: "lifecycle", PID: pidLifecycle, TID: tid,
				TS: float64(r.StartUS), Args: map[string]any{"job": r.Job},
			}
			if r.Kind == KindSpan {
				ev.Ph, ev.Dur = "X", float64(r.DurUS)
				if ev.Dur <= 0 {
					// Perfetto drops zero-duration complete events; a
					// sub-microsecond phase still deserves a visible sliver.
					ev.Dur = 1
				}
			} else {
				ev.Ph, ev.S = "i", "t"
			}
			if r.Client != "" {
				ev.Args["client"] = r.Client
			}
			if r.Key != "" {
				ev.Args["spec_key"] = r.Key
			}
			if r.Tier != "" {
				ev.Args["cache_tier"] = r.Tier
			}
			events = append(events, ev)
		case KindDecision:
			ts := r.SimPS / 1e6 // simulated ps → exported µs
			args := map[string]any{
				"job": r.Job, "interval": r.Interval, "ipc": r.IPC,
			}
			if r.Note != "" {
				args["note"] = r.Note
			}
			freq := map[string]any{}
			occ := map[string]any{}
			for d, name := range domainNames {
				args[name+"_mhz"] = r.FreqMHz[d]
				args[name+"_queue"] = r.QueueAvg[d]
				freq[name] = r.FreqMHz[d]
				occ[name] = r.QueueAvg[d]
			}
			events = append(events,
				chromeEvent{Name: r.Name, Ph: "i", Cat: "decision", S: "t",
					PID: pidDecisions, TID: tid, TS: ts, Args: args},
				chromeEvent{Name: "freq_mhz " + r.Job, Ph: "C",
					PID: pidDecisions, TID: tid, TS: ts, Args: freq},
				chromeEvent{Name: "queue_avg " + r.Job, Ph: "C",
					PID: pidDecisions, TID: tid, TS: ts, Args: occ},
			)
		}
	}
	if dropped > 0 {
		events = append(events, chromeEvent{
			Name: "trace-truncated", Ph: "i", S: "g", PID: pidLifecycle, TID: 1,
			Args: map[string]any{"dropped_records": dropped},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     events,
	})
}
