package wire

import (
	"bytes"
	"context"
	"testing"

	"mcd/internal/bench"
	"mcd/internal/control"
	"mcd/internal/pipeline"
	"mcd/internal/resultcache"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

func streamReq() RunRequest {
	return RunRequest{
		Benchmark: "adpcm",
		Config:    ConfigAttackDecay,
		Window:    20_000,
		Warmup:    U64(10_000),
	}
}

// A streamed run emits one frame per measured control interval and
// returns the exact bytes a one-shot run of the same request serves —
// the property that lets a completed stream populate the cache for
// non-streamed requests.
func TestRunStreamMatchesOneShot(t *testing.T) {
	req := streamReq()
	want, _, err := req.RunCachedBytes(nil)
	if err != nil {
		t.Fatal(err)
	}
	var frames []stats.Interval
	got, hit, err := req.RunStream(context.Background(), nil, func(iv stats.Interval) {
		frames = append(frames, iv)
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("uncached stream reported a hit")
	}
	if !bytes.Equal(want, got) {
		t.Errorf("streamed body differs from one-shot body:\n%s\n%s", want, got)
	}
	n := req.Normalize()
	if min := int(n.Window / *n.Interval); len(frames) < min {
		t.Errorf("got %d interval frames, want at least one per control interval (%d)", len(frames), min)
	}
	for i, iv := range frames {
		if iv.Index != i {
			t.Fatalf("frame %d carries interval index %d", i, iv.Index)
		}
	}
}

// A streamed run through the store writes the same entry a one-shot run
// would; the follow-up identical request is a hit with identical bytes
// and emits no interval frames.
func TestRunStreamPopulatesCache(t *testing.T) {
	c, err := resultcache.New(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	req := streamReq()
	first, hit, err := req.RunStream(context.Background(), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("cold cache reported a hit")
	}
	emitted := 0
	second, hit, err := req.RunStream(context.Background(), c, func(stats.Interval) { emitted++ })
	if err != nil {
		t.Fatal(err)
	}
	if !hit || emitted != 0 {
		t.Errorf("repeat stream: hit=%v emitted=%d, want a frame-less hit", hit, emitted)
	}
	if !bytes.Equal(first, second) {
		t.Error("cache hit bytes differ from the streamed run's")
	}
	plain, hit, err := req.RunCachedBytes(c)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || !bytes.Equal(first, plain) {
		t.Errorf("non-streamed follow-up: hit=%v, byte-identical=%v", hit, bytes.Equal(first, plain))
	}
}

// Cancellation closes the session at an interval boundary: the error is
// the context's and nothing is stored.
func TestRunStreamCancelled(t *testing.T) {
	c, err := resultcache.New(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	req := streamReq()
	ctx, cancel := context.WithCancel(context.Background())
	frames := 0
	_, _, err = req.RunStream(ctx, c, func(stats.Interval) {
		frames++
		if frames == 2 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if frames > 3 {
		t.Errorf("run kept producing %d frames after cancellation", frames)
	}
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetBytes(key); ok {
		t.Error("a cancelled run stored a partial result")
	}
}

// TestBenchGridSharesRegistryAddresses closes the ROADMAP cache-reuse
// gap: every Table 6 grid cell — the compound off-line and Global(·)
// cells included — is stored under the control.Resolve-derived key the
// service would compute for the equivalent request, so a -cache DIR
// shared between mcdbench and mcdserve computes each cell once.
func TestBenchGridSharesRegistryAddresses(t *testing.T) {
	c, err := resultcache.New(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := bench.QuickOptions()
	o.Window, o.Warmup, o.IntervalLength = 20_000, 10_000, 500
	o.Cache = c
	b, ok := workload.Lookup("adpcm")
	if !ok {
		t.Fatal("adpcm missing from catalog")
	}
	cmp := o.RunComparison(b)

	slew := o.SlewNsPerMHz
	base := RunRequest{
		Benchmark:    "adpcm",
		Window:       o.Window,
		Warmup:       U64(o.Warmup),
		Interval:     U64(o.IntervalLength),
		SlewNsPerMHz: &slew,
	}
	iters := map[string]float64{"iters": float64(o.OfflineIters)}
	for _, tc := range []struct {
		controller string
		params     map[string]float64
	}{
		{"sync", nil},
		{"mcd", nil},
		{"attack-decay", nil}, // schema defaults == bench default core.Params
		{"dynamic-1", iters},
		{"dynamic-5", iters},
	} {
		req := base
		req.Controller = tc.controller
		req.Params = tc.params
		key, err := req.Key()
		if err != nil {
			t.Fatalf("%s: %v", tc.controller, err)
		}
		if _, ok := c.GetBytes(key); !ok {
			t.Errorf("grid cell %q not stored under its registry request key", tc.controller)
		}
	}

	// The Global(·) compounds are registry cells too, parameterized by
	// the measured baseline and degradation.
	cfg := pipeline.DefaultConfig()
	cfg.SlewNsPerMHz = o.SlewNsPerMHz
	run := control.Run{
		Config:         cfg,
		Profile:        b.Profile,
		Window:         o.Window,
		Warmup:         o.Warmup,
		IntervalLength: o.IntervalLength,
	}
	for _, g := range []struct {
		label string
		deg   float64
	}{
		{"global-ad", cmp.AD.TimePS/cmp.MCDBase.TimePS - 1},
		{"global-d1", cmp.Dyn1.TimePS/cmp.MCDBase.TimePS - 1},
		{"global-d5", cmp.Dyn5.TimePS/cmp.MCDBase.TimePS - 1},
	} {
		res, err := control.Resolve("global", control.Params{"deg": g.deg, "base_ps": cmp.Sync.TimePS})
		if err != nil {
			t.Fatal(err)
		}
		key, err := res.Key(run)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := c.GetBytes(key); !ok {
			t.Errorf("compound cell %q not stored under its registry key", g.label)
		}
	}
}
