// Command mcdtrace emits the per-interval traces behind Figures 2 and 3:
// queue utilization, utilization difference, and domain frequency for one
// domain of one or more benchmarks under Attack/Decay control, as CSV on
// stdout. Multiple benchmarks (comma-separated) are simulated in
// parallel and emitted in argument order, each section preceded by a
// "# benchmark <name>" comment line.
//
// Usage:
//
//	mcdtrace -bench epic.decode -domain fp   # Figure 3
//	mcdtrace -bench epic.decode -domain ls   # Figure 2
//	mcdtrace -bench epic,mcf,gzip -domain int -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"mcd/internal/bench"
	"mcd/internal/clock"
)

func main() {
	var (
		benchNames = flag.String("bench", "epic.decode", "benchmark name(s), comma-separated")
		domain     = flag.String("domain", "fp", "domain to trace: int | fp | ls")
		window     = flag.Uint64("window", 500_000, "measured instructions")
		warmup     = flag.Uint64("warmup", 100_000, "warmup instructions")
		interval   = flag.Uint64("interval", 1000, "sampling interval (instructions)")
		workers    = flag.Int("workers", runtime.NumCPU(), "parallel simulation workers")
		cacheDir   = flag.String("cache", "", "result-store directory: completed traces are reused across invocations")
	)
	flag.Parse()

	var d clock.Domain
	switch *domain {
	case "int":
		d = clock.Integer
	case "fp":
		d = clock.FloatingPoint
	case "ls":
		d = clock.LoadStore
	default:
		fmt.Fprintf(os.Stderr, "mcdtrace: unknown domain %q (want int, fp or ls)\n", *domain)
		os.Exit(1)
	}

	opts := bench.DefaultOptions()
	opts.Window = *window
	opts.Warmup = *warmup
	opts.IntervalLength = *interval
	opts.Workers = *workers
	if err := opts.AttachCache(*cacheDir); err != nil {
		fmt.Fprintf(os.Stderr, "mcdtrace: %v\n", err)
		os.Exit(1)
	}

	names := bench.SplitNames(*benchNames)
	if len(names) == 0 {
		names = []string{"epic.decode"}
	}
	results, err := opts.TraceMany(names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdtrace: %v\n", err)
		os.Exit(1)
	}
	for i, res := range results {
		fmt.Fprintf(os.Stderr, "mcdtrace: %s, %d intervals, avg %s freq %.0f MHz\n",
			names[i], len(res.Intervals), *domain, res.AvgFreqMHz[d])
		if len(results) > 1 {
			fmt.Printf("# benchmark %s\n", names[i])
		}
		fmt.Print(bench.FigureCSV(res, d))
	}
}
