// Command mcdsweep regenerates the sensitivity figures: Figure 5
// (performance-degradation target), Figures 6/7 (Decay, ReactionChange,
// DeviationThreshold sensitivity), printing one row per swept value with
// the suite-averaged metrics.
//
// Usage:
//
//	mcdsweep -param target     # Figure 5
//	mcdsweep -param decay      # Figures 6a / 7a
//	mcdsweep -param reaction   # Figures 6b / 7b
//	mcdsweep -param deviation  # Figures 6c / 7c
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"mcd/internal/bench"
	"mcd/internal/wire"
)

func main() {
	var (
		param    = flag.String("param", "target", "target | decay | reaction | deviation")
		quick    = flag.Bool("quick", true, "reduced scale (10-benchmark subset)")
		benchF   = flag.String("bench", "", "comma-separated benchmark filter")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel simulation workers (results are identical for any value)")
		cacheDir = flag.String("cache", "", "result-store directory: completed sweep cells are reused across invocations")
	)
	flag.Parse()

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	if *benchF != "" {
		opts.Benchmarks = bench.SplitNames(*benchF)
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	opts.Workers = *workers
	if err := opts.AttachCache(*cacheDir); err != nil {
		fmt.Fprintf(os.Stderr, "mcdsweep: %v\n", err)
		os.Exit(1)
	}

	// One rendering path with the service: wire owns the sweep titles,
	// so CLI output and mcdserve experiment bodies stay byte-for-byte
	// in agreement.
	res, err := wire.RunExperiment(opts, "sweep-"+*param)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdsweep: unknown parameter %q (want target, decay, reaction or deviation)\n", *param)
		os.Exit(1)
	}
	fmt.Print(res.Output)
}
