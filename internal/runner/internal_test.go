package runner

import "testing"

func TestOptionsWorkerClamp(t *testing.T) {
	for _, tc := range []struct{ workers, n, want int }{
		{0, 100, 0}, // 0 → GOMAXPROCS, resolved below
		{-3, 100, 0},
		{4, 2, 2},
		{1, 10, 1},
		{16, 16, 16},
	} {
		got := Options{Workers: tc.workers}.workers(tc.n)
		want := tc.want
		if want == 0 {
			want = min(Options{}.workers(1<<30), tc.n)
		}
		if got != want {
			t.Errorf("workers(%d) with Workers=%d = %d, want %d", tc.n, tc.workers, got, want)
		}
	}
}
