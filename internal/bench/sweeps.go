package bench

import (
	"context"
	"fmt"

	"mcd/internal/control"
	"mcd/internal/core"
	"mcd/internal/resultcache"
	"mcd/internal/runner"
	"mcd/internal/sim"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// SweepPoint is one x-axis value of a sensitivity figure with the
// suite-averaged metrics at that parameter value (vs the baseline MCD
// processor, as in the paper's sensitivity analysis).
type SweepPoint struct {
	Value   float64
	Summary stats.Summary
}

// baselines runs the per-benchmark baseline MCD cells every sweep
// summarizes against, as one parallel batch in catalog order. The cells
// are registry-resolved, so they share their content addresses with the
// Table 6 grid and with service requests for the "mcd" controller.
func (o Options) baselines(cat []workload.Benchmark) []stats.Result {
	tasks := make([]runner.Task[stats.Result], len(cat))
	for i, b := range cat {
		tasks[i] = o.resolvedTask(b.Name, b.Name+"/mcd-base", "mcd", nil, o.controlRun(b))
	}
	return o.mapTasks(tasks)
}

// sweep runs Attack/Decay across the catalog once per parameter value.
// The per-benchmark baselines form one parallel batch and the full
// (value × benchmark) grid a second one; points are assembled in value
// order, so the output is identical for any worker count. Cells resolve
// the registered "attack-decay" definition, so a sweep-controller
// request over the same parameter values reuses them from a shared
// cache.
func (o Options) sweep(values []float64, apply func(*core.Params, float64)) []SweepPoint {
	cat := o.catalog()
	bases := o.baselines(cat)

	var grid []runner.Task[stats.Result]
	for _, v := range values {
		p := o.Params
		apply(&p, v)
		rp := control.FromAttackDecay(p)
		for _, b := range cat {
			grid = append(grid, o.resolvedTask(
				b.Name, fmt.Sprintf("%s/ad@%g", b.Name, v),
				"attack-decay", rp, o.controlRun(b)))
		}
	}
	runs := o.mapTasks(grid)

	points := make([]SweepPoint, len(values))
	for vi, v := range values {
		var comps []stats.Comparison
		for bi := range cat {
			comps = append(comps, stats.Compare(runs[vi*len(cat)+bi], bases[bi]))
		}
		points[vi] = SweepPoint{Value: v, Summary: stats.Summarize(comps)}
	}
	return points
}

// SweepTarget reproduces Figure 5: PerfDegThreshold swept as the
// performance degradation target (paper values 0–12%), with the
// parameters otherwise fixed at 1.000_06.0_1.250_X.X.
func (o Options) SweepTarget(values []float64) []SweepPoint {
	if len(values) == 0 {
		values = []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12}
	}
	o.Params.DeviationThreshold = 0.010
	o.Params.ReactionChange = 0.060
	o.Params.Decay = 0.0125
	return o.sweep(values, func(p *core.Params, v float64) { p.PerfDegThreshold = v })
}

// SweepDecay reproduces Figures 6(a)/7(a): Decay swept 0–2% with
// parameters 1.500_04.0_X.XXX_3.0.
func (o Options) SweepDecay(values []float64) []SweepPoint {
	if len(values) == 0 {
		values = []float64{0.0005, 0.00175, 0.005, 0.0075, 0.0125, 0.0175, 0.02}
	}
	o.Params.DeviationThreshold = 0.015
	o.Params.ReactionChange = 0.040
	o.Params.PerfDegThreshold = 0.030
	return o.sweep(values, func(p *core.Params, v float64) { p.Decay = v })
}

// SweepReaction reproduces Figures 6(b)/7(b): ReactionChange swept
// 0.5–15.5% with parameters 1.500_XX.X_0.750_3.0.
func (o Options) SweepReaction(values []float64) []SweepPoint {
	if len(values) == 0 {
		values = []float64{0.005, 0.02, 0.04, 0.06, 0.09, 0.12, 0.155}
	}
	o.Params.DeviationThreshold = 0.015
	o.Params.Decay = 0.0075
	o.Params.PerfDegThreshold = 0.030
	return o.sweep(values, func(p *core.Params, v float64) { p.ReactionChange = v })
}

// SweepDeviation reproduces Figures 6(c)/7(c): DeviationThreshold swept
// 0–2.5% with parameters X.XXX_06.0_0.175_2.5.
func (o Options) SweepDeviation(values []float64) []SweepPoint {
	if len(values) == 0 {
		values = []float64{0.0025, 0.005, 0.0075, 0.0125, 0.0175, 0.025}
	}
	o.Params.ReactionChange = 0.060
	o.Params.Decay = 0.00175
	o.Params.PerfDegThreshold = 0.025
	return o.sweep(values, func(p *core.Params, v float64) { p.DeviationThreshold = v })
}

// SweepController runs a sensitivity sweep over one numeric parameter
// of any registered controller: for each value, the named controller is
// resolved with {param: value} overlaid on fixed (then on its schema
// defaults) and run across the catalog, summarized against the
// per-benchmark baseline MCD runs — the registry-generic form of the
// Figure 5–7 sweeps, available to pi, coord, dynamic and anything
// registered later. A nil values slice samples the schema field's
// documented [Min, Max] range at sweepSamples evenly spaced points.
// Grid cells are cache-aware exactly like the fixed sweeps.
func (o Options) SweepController(name, param string, values []float64, fixed map[string]float64) ([]SweepPoint, error) {
	reg, ok := control.Lookup(name)
	if !ok {
		// Resolve owns the error wording (sorted valid set).
		_, err := control.Resolve(name, nil)
		return nil, err
	}
	field, ok := reg.Schema.Field(param)
	if !ok {
		// A resolve with only the unknown parameter reports the schema's
		// valid field set.
		_, err := control.Resolve(name, control.Params{param: 0})
		return nil, err
	}
	if len(values) == 0 {
		values = sampleRange(field.Min, field.Max, sweepSamples)
	}

	cat := o.catalog()
	bases := o.baselines(cat)

	var grid []runner.Task[stats.Result]
	for _, v := range values {
		p := control.Params{}
		// The harness's off-line iteration bound applies to definitions
		// that declare a search-iteration parameter, exactly as it does
		// to the Table 6 grid cells — quick-mode sweeps must not
		// silently pay full-depth searches. Explicit overrides win.
		if ip := reg.SearchItersParam; ip != "" && o.OfflineIters > 0 && param != ip {
			p[ip] = float64(o.OfflineIters)
		}
		for k, fv := range fixed {
			p[k] = fv
		}
		p[param] = v
		res, err := control.Resolve(name, p)
		if err != nil {
			return nil, err
		}
		for _, b := range cat {
			run := o.controlRun(b)
			label := fmt.Sprintf("%s/%s@%g", b.Name, name, v)
			grid = append(grid, o.controlTask(b.Name, label, name, p, res, run))
		}
	}
	runs := o.mapTasks(grid)

	points := make([]SweepPoint, len(values))
	for vi, v := range values {
		var comps []stats.Comparison
		for bi := range cat {
			comps = append(comps, stats.Compare(runs[vi*len(cat)+bi], bases[bi]))
		}
		points[vi] = SweepPoint{Value: v, Summary: stats.Summarize(comps)}
	}
	return points, nil
}

// controlTask wraps one registry-resolved run as a cache-aware grid
// task: addressed by the resolution's content key (which never pays for
// compound preparation), computed through Resolved.Spec. It is the one
// choke point every cacheable grid cell passes through, so the fabric
// dispatch hook plugged in here covers every table, figure and sweep:
// with Exec configured, the cell is handed to the hook (content
// address plus re-executable description) and the returned canonical
// bytes are decoded in place of a local run.
func (o Options) controlTask(bench, label, ctrl string, p control.Params, res control.Resolved, run control.Run) runner.Task[stats.Result] {
	compute := func() (stats.Result, error) {
		spec, err := res.Spec(run)
		if err != nil {
			return stats.Result{}, err
		}
		return sim.Run(spec), nil
	}
	if o.Exec != nil {
		if key, err := res.Key(run); err == nil {
			cell := o.cell(label, bench, ctrl, key, p)
			return runner.Task[stats.Result]{Name: label, Run: func(ctx context.Context) (stats.Result, error) {
				b, err := o.Exec(ctx, cell)
				if err != nil {
					return stats.Result{}, err
				}
				return resultcache.DecodeResult(b)
			}}
		}
	}
	if o.Cache != nil {
		if key, err := res.Key(run); err == nil {
			return resultcache.TaskKeyed(o.Cache, label, key, compute)
		}
	}
	return runner.Task[stats.Result]{Name: label, Run: func(context.Context) (stats.Result, error) { return compute() }}
}

// sweepSamples is how many points a controller sweep takes from the
// schema range when no explicit values are given — the same count the
// paper's sensitivity figures plot.
const sweepSamples = 7

// sampleRange returns n evenly spaced values across [lo, hi].
func sampleRange(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return []float64{lo}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// FormatSweep renders a sweep as the two series the paper plots: EDP
// improvement (Figure 6) and power/performance ratio (Figure 7), plus
// the measured degradation (Figure 5a's y-axis). The swept values are
// printed as percentages — the paper's parameters are all fractions.
func FormatSweep(title, xlabel string, points []SweepPoint) string {
	return formatSweep(title, xlabel, points, func(v float64) string {
		return fmt.Sprintf("%11.3f%%", v*100)
	})
}

// FormatControllerSweep renders a registry-generic sweep: swept values
// are printed raw, because a controller schema parameter can be
// anything from a fraction to a MHz budget to a queue occupancy.
func FormatControllerSweep(title, xlabel string, points []SweepPoint) string {
	return formatSweep(title, xlabel, points, func(v float64) string {
		return fmt.Sprintf("%12.6g", v)
	})
}

func formatSweep(title, xlabel string, points []SweepPoint, value func(float64) string) string {
	s := title + "\n"
	s += fmt.Sprintf("%-12s %10s %12s %12s %12s\n", xlabel, "PerfDeg", "EnergySav", "EDPImprov", "Power/Perf")
	for _, p := range points {
		s += fmt.Sprintf("%s %9.1f%% %11.1f%% %11.1f%% %12.2f\n",
			value(p.Value),
			p.Summary.PerfDegradation*100,
			p.Summary.EnergySavings*100,
			p.Summary.EDPImprovement*100,
			p.Summary.PowerPerfRatio)
	}
	return s
}
