package control

import (
	"fmt"

	"mcd/internal/clock"
	"mcd/internal/pipeline"
	"mcd/internal/resultcache"
)

// PI is a per-domain proportional–integral feedback controller on
// decoupling-queue occupancy, in the spirit of control-theoretic DVS
// (Xia et al., "Control-theoretic dynamic voltage scaling for embedded
// controllers"; PAPERS.md). Each controlled domain closes its own loop:
// the plant input is the domain frequency, the measured output is the
// mean issue-queue occupancy, and the reference is a fixed occupancy
// setpoint — a queue holding more than the setpoint means the domain is
// too slow for the incoming rate, less means cycles (and therefore
// voltage) are being wasted.
//
// The integral term is conditionally integrated (classic anti-windup):
// while the commanded frequency is saturated at a bound and the error
// would push it further out, the accumulator holds, so the loop
// recovers from long saturated phases without the overshoot an unwound
// integrator would cause. The accumulator is additionally clamped to
// ±windup.
//
// Compared to Attack/Decay, PI reacts proportionally to how far the
// queue is from where it should be rather than to the sign of its
// change, trading the paper's IPC guard for a steady-state setpoint.
type PI struct {
	set, kp, ki, windup   float64
	feMHz, minMHz, maxMHz float64

	domains [clock.NumControllable]piDomain
}

type piDomain struct {
	freqMHz  float64
	integral float64
}

var _ pipeline.Controller = (*PI)(nil)

// piSchema declares the registry parameters of the PI controller.
func piSchema() Schema {
	return Schema{
		{Name: "setpoint", Default: 4, Min: 0.5, Max: 16,
			Doc: "target mean queue occupancy (entries)"},
		{Name: "kp", Default: 0.05, Min: 0, Max: 0.5,
			Doc: "proportional gain (relative frequency change per entry of error)"},
		{Name: "ki", Default: 0.01, Min: 0, Max: 0.2,
			Doc: "integral gain (relative frequency change per accumulated entry)"},
		{Name: "windup", Default: 10, Min: 1, Max: 100,
			Doc: "anti-windup clamp on the integral accumulator (entries)"},
		{Name: "fe_mhz", Default: 1000, Min: 250, Max: 1000,
			Doc: "pinned front-end frequency"},
		{Name: "min_mhz", Default: 250, Min: 250, Max: 1000,
			Doc: "lower frequency bound"},
		{Name: "max_mhz", Default: 1000, Min: 250, Max: 1000,
			Doc: "upper frequency bound"},
	}
}

// NewPI builds the controller from resolved registry parameters; every
// domain starts at the maximum frequency, like Attack/Decay.
func NewPI(p Params) *PI {
	c := &PI{
		set: p["setpoint"], kp: p["kp"], ki: p["ki"], windup: p["windup"],
		feMHz: p["fe_mhz"], minMHz: p["min_mhz"], maxMHz: p["max_mhz"],
	}
	for d := range c.domains {
		c.domains[d].freqMHz = c.maxMHz
	}
	return c
}

// Name implements pipeline.Controller.
func (c *PI) Name() string { return "pi" }

// CacheKey implements resultcache.Keyer: the canonical encoding of the
// construction parameters, so PI runs are content-addressable.
func (c *PI) CacheKey() string {
	h := resultcache.Float
	return fmt.Sprintf("pi|set=%s|kp=%s|ki=%s|windup=%s|fe=%s|min=%s|max=%s",
		h(c.set), h(c.kp), h(c.ki), h(c.windup), h(c.feMHz), h(c.minMHz), h(c.maxMHz))
}

// DecisionNote implements pipeline.DecisionNoter for the decision-audit
// trail: the per-domain integral accumulators behind the latest Observe
// (the hidden state a queue-occupancy snapshot alone cannot explain).
func (c *PI) DecisionNote() string {
	return fmt.Sprintf("integral int=%.2f fp=%.2f ls=%.2f",
		c.domains[clock.Integer].integral,
		c.domains[clock.FloatingPoint].integral,
		c.domains[clock.LoadStore].integral)
}

// Observe implements pipeline.Controller: one PI update per controlled
// domain per interval.
func (c *PI) Observe(iv pipeline.IntervalView) [clock.NumControllable]float64 {
	var targets [clock.NumControllable]float64
	if iv.Estimated {
		// Sampled fidelity: replayed occupancy would integrate a frozen
		// error term. Hold state and frequencies until real data.
		return targets
	}
	targets[clock.FrontEnd] = c.feMHz

	for _, d := range []clock.Domain{clock.Integer, clock.FloatingPoint, clock.LoadStore} {
		st := &c.domains[d]
		e := iv.QueueAvg[d] - c.set

		u := c.kp*e + c.ki*st.integral
		raw := st.freqMHz * (1 + u)
		next := raw
		if next < c.minMHz {
			next = c.minMHz
		}
		if next > c.maxMHz {
			next = c.maxMHz
		}

		// Conditional integration: hold the accumulator while the raw
		// command is saturated and the error points further outward.
		saturated := (raw > c.maxMHz && e > 0) || (raw < c.minMHz && e < 0)
		if !saturated {
			st.integral += e
			if st.integral > c.windup {
				st.integral = c.windup
			}
			if st.integral < -c.windup {
				st.integral = -c.windup
			}
		}

		st.freqMHz = next
		targets[d] = next
	}
	return targets
}

func init() {
	Register(Definition{
		Name:   "pi",
		Doc:    "per-domain PI feedback on queue occupancy with anti-windup (control-theoretic DVS)",
		Schema: piSchema(),
		New: func(p Params) (pipeline.Controller, error) {
			return NewPI(p), nil
		},
	})
}
