// Package mcd is a library-quality reproduction of "Dynamic Frequency and
// Voltage Control for a Multiple Clock Domain Microarchitecture"
// (Semeraro et al., MICRO 2002): a cycle-level simulator of a
// four-clock-domain out-of-order processor with per-domain dynamic
// voltage/frequency scaling, a Wattch-style energy model, the paper's
// Attack/Decay on-line control algorithm, and the off-line and global
// scaling comparators used in its evaluation.
//
// # Quick start
//
//	bench, _ := mcd.LookupBenchmark("epic.decode")
//	res := mcd.Run(mcd.Spec{
//		Config:     mcd.DefaultConfig(),
//		Profile:    bench.Profile,
//		Window:     500_000,
//		Warmup:     250_000,
//		Controller: mcd.NewAttackDecay(mcd.DefaultParams()),
//	})
//	fmt.Printf("CPI %.3f  EPI %.1f pJ\n", res.CPI(), res.EPI())
//
// The experiment harness that regenerates every table and figure of the
// paper lives in cmd/mcdbench, cmd/mcdtrace and cmd/mcdsweep; DESIGN.md
// maps each experiment to the modules that implement it.
package mcd

import (
	"context"
	"fmt"

	"mcd/internal/clock"
	"mcd/internal/control"
	"mcd/internal/core"
	"mcd/internal/pipeline"
	"mcd/internal/resultcache"
	"mcd/internal/runner"
	"mcd/internal/sim"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// Domain identifies one of the independently clocked processor regions.
type Domain = clock.Domain

// The four controllable clock domains plus external memory.
const (
	FrontEnd      = clock.FrontEnd
	Integer       = clock.Integer
	FloatingPoint = clock.FloatingPoint
	LoadStore     = clock.LoadStore
	Memory        = clock.Memory

	// NumControllable counts the domains a controller may retarget.
	NumControllable = clock.NumControllable
)

// Config holds the architectural (Table 4) and MCD-specific (Table 1)
// parameters of the simulated processor.
type Config = pipeline.Config

// DefaultConfig returns the paper's processor configuration.
func DefaultConfig() Config { return pipeline.DefaultConfig() }

// Controller adjusts domain frequencies once per sampling interval.
// Implement it to plug a custom control algorithm into the simulator; see
// examples/customcontroller.
type Controller = pipeline.Controller

// IntervalView is the per-interval information a Controller observes: the
// per-domain queue-utilization counters and the global IPC counter —
// exactly the hardware the paper provisions (Section 3.2).
type IntervalView = pipeline.IntervalView

// Result carries the measurements of one simulation run.
type Result = stats.Result

// Interval is one recorded control interval (used by the Figure 2/3
// traces).
type Interval = stats.Interval

// Comparison and Summary are the paper's evaluation metrics.
type (
	Comparison = stats.Comparison
	Summary    = stats.Summary
)

// Compare measures a run against a baseline run of the same workload.
func Compare(r, base Result) Comparison { return stats.Compare(r, base) }

// Summarize averages comparisons across a benchmark suite.
func Summarize(cs []Comparison) Summary { return stats.Summarize(cs) }

// Spec describes one simulation run.
type Spec = sim.Spec

// Run executes a simulation: a session opened, drained and closed, so
// one-shot and stepped execution are byte-identical by construction.
func Run(s Spec) Result { return sim.Run(s) }

// Session is a resumable simulation: the run loop inverted into
// caller-driven stepping, so a long run can be observed (Observe),
// inspected (Snapshot), stopped early (StopWhen) and finalized at any
// interval boundary (Close) while it executes.
type Session = sim.Session

// Snapshot is the incrementally finalized view of an in-progress run:
// measured instructions, time, energy, current regulator targets and
// the last interval's IPC, with CPI/EPI/PowerW derived the same way
// Result derives them.
type Snapshot = stats.Progress

// Open starts a session over the spec. The simulation is initialized
// but no cycle executes until Session.Step; mcd.Run is exactly
// Open + drain + Close.
func Open(s Spec) (*Session, error) { return sim.Open(s) }

// Converged returns a Session.StopWhen predicate that fires once metric
// has moved by at most eps (relatively) across k consecutive measured
// intervals — e.g. Converged(Snapshot.EPI, 0.001, 20) stops a run whose
// energy per instruction has settled.
func Converged(metric func(Snapshot) float64, eps float64, k int) func(Snapshot) bool {
	return sim.Converged(metric, eps, k)
}

// RunRequest names one run of a batch. Exactly one of Spec and Do must be
// set: Spec describes a plain simulation run; Do wraps a compound
// experiment (for example a BuildOffline followed by the run it
// schedules, or a GlobalMatch search) as a closure.
type RunRequest struct {
	Name string
	Spec *Spec
	Do   func(ctx context.Context) (Result, error)
}

// PanicError reports a batch run that panicked: the pool recovers the
// panic so one bad run cannot kill its worker, and preserves the run's
// name, the panic value and the original stack. Detect it with
// errors.As.
type PanicError = runner.PanicError

// BatchResult is one RunBatch outcome, in the position its request was
// submitted.
type BatchResult struct {
	Name   string
	Result Result
	// Err is the run's error; a run that panicked reports a *PanicError,
	// and a run cancelled before it started reports the context error.
	Err error
}

// ResultCache is the content-addressed deterministic result store:
// because every run is a pure function of its Spec, a spec's SHA-256
// content address (SpecKey) names a result byte-identical to a
// recompute. The store is two-tier (byte-bounded in-memory LRU over an
// optional on-disk directory with atomic writes) and single-flights
// concurrent identical computations. A nil *ResultCache is valid
// everywhere and means "no caching". cmd/mcdserve serves the same store
// over HTTP.
type ResultCache = resultcache.Cache

// CacheOptions configures NewResultCache.
type CacheOptions = resultcache.Options

// CacheStats are the store's observability counters.
type CacheStats = resultcache.Stats

// NewResultCache builds a result store, creating the disk directory
// when CacheOptions.Dir is set.
func NewResultCache(o CacheOptions) (*ResultCache, error) { return resultcache.New(o) }

// SpecKey returns the content address of a run: the SHA-256 of a
// canonical, versioned encoding of every field of the spec. Specs whose
// Controller cannot describe itself canonically (any controller other
// than nil, NewAttackDecay's, or an off-line schedule) are uncacheable
// and return an error; custom controllers opt in by implementing
// CacheKey() string (see internal/resultcache.Keyer and DESIGN.md,
// "Serving layer").
func SpecKey(s Spec) (string, error) { return resultcache.SpecKey(s) }

// BatchOptions configures RunBatch.
type BatchOptions struct {
	// Workers bounds concurrently executing runs; zero or negative means
	// GOMAXPROCS.
	Workers int
	// Progress, if non-nil, is called (serialized) as each run finishes.
	Progress func(done, total int, name string)
	// Cache, if non-nil, is consulted before each Spec-based run: a
	// request whose SpecKey is already stored returns the cached result
	// (byte-identical to a recompute) without simulating, and concurrent
	// identical requests collapse onto one simulation. Do-based requests
	// and uncacheable specs run normally.
	Cache *ResultCache
}

// RunBatch fans independent runs out across a bounded worker pool and
// returns their results in submission order, so output derived from the
// batch is byte-identical to executing the requests serially. Runs must
// not share mutable state (each request needs its own Controller
// instance); see DESIGN.md, "Runner determinism". A panicking run is
// reported in its BatchResult — it does not kill the pool. When ctx is
// cancelled, unstarted runs report ctx.Err() and RunBatch returns it.
func RunBatch(ctx context.Context, reqs []RunRequest, opts BatchOptions) ([]BatchResult, error) {
	tasks := make([]runner.Task[Result], len(reqs))
	for i, r := range reqs {
		switch {
		case r.Spec != nil && r.Do == nil:
			tasks[i] = resultcache.Task(opts.Cache, r.Name, *r.Spec)
		case r.Do != nil && r.Spec == nil:
			tasks[i] = runner.Task[Result]{Name: r.Name, Run: r.Do}
		default:
			return nil, fmt.Errorf("mcd: request %d (%q) must set exactly one of Spec and Do", i, r.Name)
		}
	}
	outs, err := runner.Map(ctx, tasks, runner.Options{Workers: opts.Workers, OnDone: opts.Progress})
	res := make([]BatchResult, len(outs))
	for i, o := range outs {
		res[i] = BatchResult{Name: o.Name, Result: o.Value, Err: o.Err}
	}
	return res, err
}

// Synchronous converts a configuration to the conventional fully
// synchronous processor (single clock, no MCD overheads).
func Synchronous(cfg Config) Config { return sim.Synchronous(cfg) }

// RunSynchronousAt runs the fully synchronous processor at a global
// frequency — conventional global voltage/frequency scaling.
func RunSynchronousAt(cfg Config, prof Profile, window, warmup uint64, freqMHz float64, name string) Result {
	return sim.RunSynchronousAt(cfg, prof, window, warmup, freqMHz, name)
}

// Controller registry types: every control algorithm is a named,
// parameterized factory in a process-wide registry (internal/control).
// The registered set is what cmd/mcdsim's -config flag, cmd/mcdsweep's
// -controller flag, the wire "controller" field and GET /v1/controllers
// all accept — registering a controller makes it runnable everywhere at
// once (see examples/customcontroller).
type (
	// ControllerDef is one registry entry: name, doc, parameter schema
	// and factory.
	ControllerDef = control.Definition
	// ControllerParams maps parameter names to numeric values.
	ControllerParams = control.Params
	// ControllerField describes one numeric parameter of a schema.
	ControllerField = control.Field
	// ControllerSchema is an ordered parameter list.
	ControllerSchema = control.Schema
	// ControllerRun is the controller-independent description of a run a
	// registered definition turns into a Spec.
	ControllerRun = control.Run
	// ControllerInfo is one entry of the registry's self-description.
	ControllerInfo = control.Info
)

// RegisterController adds a controller definition to the registry; it
// panics on duplicate or malformed definitions (call it at init time).
func RegisterController(d ControllerDef) { control.Register(d) }

// RegisterControllerAlias registers name as an alias of an existing
// definition with the given parameters pinned.
func RegisterControllerAlias(name, target string, pinned ControllerParams) {
	control.Alias(name, target, pinned)
}

// Controllers returns the registry's self-description, sorted by name.
func Controllers() []ControllerInfo { return control.Describe() }

// ControllerNames returns every registered controller name, sorted.
func ControllerNames() []string { return control.Names() }

// ControllerSpec resolves a registered controller by name (parameters
// overlaid on its schema defaults) and builds the Spec that runs it,
// performing any compound preparation the definition needs (for the
// off-line "dynamic" controllers, the schedule search).
func ControllerSpec(name string, p ControllerParams, run ControllerRun) (Spec, error) {
	res, err := control.Resolve(name, p)
	if err != nil {
		return Spec{}, err
	}
	return res.Spec(run)
}

// ControllerKey resolves a registered controller like ControllerSpec
// and returns the run's content address in the result store, without
// paying for compound preparation.
func ControllerKey(name string, p ControllerParams, run ControllerRun) (string, error) {
	res, err := control.Resolve(name, p)
	if err != nil {
		return "", err
	}
	return res.Key(run)
}

// Params are the Attack/Decay configuration parameters (Table 2).
type Params = core.Params

// DefaultParams returns the paper's headline configuration
// (1.750_06.0_0.175_2.5).
func DefaultParams() Params { return core.DefaultParams() }

// NewAttackDecay returns the paper's on-line controller (Listing 1).
func NewAttackDecay(p Params) Controller { return core.NewAttackDecay(p) }

// OfflineOptions tunes the off-line schedule search.
type OfflineOptions = core.OfflineOptions

// BuildOffline constructs the off-line Dynamic-X% comparator: an
// iterative, global-knowledge slack scheduler targeting a performance
// degradation cap. It returns the schedule controller and the baseline
// MCD run it profiled.
func BuildOffline(cfg Config, prof Profile, window uint64, opts OfflineOptions) (*core.OfflineController, Result) {
	return core.BuildOffline(cfg, prof, window, opts)
}

// GlobalMatch finds the single global frequency at which the fully
// synchronous processor matches a target slowdown (the Global(·) rows of
// Table 6).
func GlobalMatch(cfg Config, prof Profile, window, warmup uint64, baseTime, targetDeg float64, name string) (float64, Result) {
	return core.GlobalMatch(cfg, prof, window, warmup, baseTime, targetDeg, name)
}

// Workload modeling types: each benchmark of Table 5 is a deterministic
// statistical trace generator (see DESIGN.md for the substitution).
type (
	Benchmark = workload.Benchmark
	Profile   = workload.Profile
	Phase     = workload.Phase
	Mix       = workload.Mix
	Class     = workload.Class
	Generator = workload.Generator
	Instr     = workload.Instr
)

// Catalog returns the 30 benchmarks of Table 5.
func Catalog() []Benchmark { return workload.Catalog() }

// LookupBenchmark finds a benchmark by name ("epic.decode" selects the
// decode-only profile used by Figures 2 and 3).
func LookupBenchmark(name string) (Benchmark, bool) { return workload.Lookup(name) }
