package wire

import (
	"context"
	"fmt"

	"mcd/internal/bench"
)

// Fabric protocol encodings: the JSON bodies of the coordinator/worker
// HTTP exchange (internal/fabric). They live here with the other wire
// types so the protocol is versioned alongside the request and result
// encodings it carries.

// FabricExecute is the body of POST /v1/fabric/execute: one run the
// coordinator wants computed. Key is the content address the
// coordinator derived for the request; the worker re-derives it and
// refuses a mismatch (registry drift between coordinator and worker
// would otherwise poison the shared store under the wrong address).
// The response body on success is the canonical result encoding —
// exactly what the worker's own POST /v1/runs would serve.
type FabricExecute struct {
	Key string     `json:"key"`
	Run RunRequest `json:"run"`
}

// FabricHello is the body of POST /v1/fabric/register: one worker's
// registration, re-sent on every heartbeat. ID names the worker across
// re-registrations; URL is the base address the coordinator dispatches
// to; Slots is how many executes the worker accepts concurrently.
// Busy and SimMIPS are the worker's self-reported load, surfaced as
// per-worker gauges on the coordinator's /metrics.
type FabricHello struct {
	ID      string  `json:"id"`
	URL     string  `json:"url"`
	Slots   int     `json:"slots"`
	Busy    int     `json:"busy,omitempty"`
	SimMIPS float64 `json:"sim_mips,omitempty"`
}

// FabricWelcome is the coordinator's registration acknowledgement; it
// tells the worker the heartbeat cadence the coordinator's dead-worker
// detector assumes.
type FabricWelcome struct {
	OK              bool  `json:"ok"`
	HeartbeatMillis int64 `json:"heartbeat_ms"`
}

// CellRequest converts one harness grid cell into its re-executable
// run request — the bridge between the harness's wire-free dispatch
// hook (bench cannot import wire) and the fabric's RunRequest-based
// execute protocol. The request resolves to the same content address
// the harness computed for the cell, so a fabric-computed cell lands
// in the shared store under the key every other path probes (pinned by
// TestCellRequestSharesAddress).
func CellRequest(c bench.Cell) RunRequest {
	warmup, interval, slew := c.Warmup, c.Interval, c.Slew
	return RunRequest{
		Benchmark:    c.Benchmark,
		Controller:   c.Controller,
		Params:       c.Params,
		Window:       c.Window,
		Warmup:       &warmup,
		Interval:     &interval,
		SlewNsPerMHz: &slew,
		Fidelity:     c.Fidelity,
		SampleEvery:  c.SampleEvery,
	}
}

// ExecAdapter adapts a fabric-style dispatch function (key + request →
// canonical body) into the harness's Exec hook, verifying on the way
// through that the cell's content address survives the conversion — a
// coordinator must never dispatch a cell under one key and store the
// result under another.
func ExecAdapter(dispatch func(ctx context.Context, key string, req RunRequest) ([]byte, error)) func(ctx context.Context, c bench.Cell) ([]byte, error) {
	return func(ctx context.Context, c bench.Cell) ([]byte, error) {
		req := CellRequest(c)
		key, err := req.Key()
		if err != nil {
			return nil, fmt.Errorf("wire: cell %s does not round-trip to a request: %w", c.Label, err)
		}
		if key != c.Key {
			return nil, fmt.Errorf("wire: cell %s key mismatch: harness %s, request %s", c.Label, c.Key, key)
		}
		return dispatch(ctx, key, req)
	}
}
