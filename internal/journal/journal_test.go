package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcd/internal/wire"
)

func testPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.ndjson")
}

func submitN(id, kind string) Submit {
	return Submit{ID: id, Kind: kind, Run: &wire.RunRequest{Benchmark: "adpcm", Config: "attack-decay"}}
}

func TestReplayRequeuesOnlyLiveJobs(t *testing.T) {
	path := testPath(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// j1 completes, j2 fails, j3 is running at crash, j4 still queued.
	for _, s := range []Submit{submitN("j000001", KindRun), submitN("j000002", KindRun), submitN("j000003", KindStream), submitN("j000004", KindRun)} {
		if err := j.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	j.State("j000001", "running")
	j.State("j000001", "done")
	j.State("j000002", "running")
	j.State("j000002", "failed")
	j.State("j000003", "running")
	j.Close() // crash: no more records

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pending := j2.Pending()
	if len(pending) != 2 || pending[0].ID != "j000003" || pending[1].ID != "j000004" {
		t.Fatalf("pending = %+v, want j000003 (running) and j000004 (queued)", pending)
	}
	if pending[0].Kind != KindStream || pending[0].Run == nil || pending[0].Run.Benchmark != "adpcm" {
		t.Fatalf("replayed submit lost its request: %+v", pending[0])
	}
}

func TestOpenCompactsTerminalHistory(t *testing.T) {
	path := testPath(t)
	j, _ := Open(path)
	j.Submit(submitN("j000001", KindRun))
	j.State("j000001", "done")
	j.Submit(submitN("j000002", KindRun))
	j.Close()

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if strings.Contains(s, "j000001") {
		t.Errorf("compaction kept terminal job: %s", s)
	}
	if !strings.Contains(s, "j000002") || strings.Count(s, "\n") != 1 {
		t.Errorf("compacted log should be exactly the live submit record: %q", s)
	}
}

func TestTornTrailingLineTolerated(t *testing.T) {
	path := testPath(t)
	j, _ := Open(path)
	j.Submit(submitN("j000001", KindRun))
	j.Submit(submitN("j000002", KindRun))
	j.Close()
	// Simulate a crash mid-append: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"state","id":"j0000`)
	f.Close()

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := len(j2.Pending()); got != 2 {
		t.Fatalf("pending = %d jobs, want both despite the torn line", got)
	}
}

func TestCompactAndShouldCompact(t *testing.T) {
	path := testPath(t)
	j, _ := Open(path)
	defer j.Close()
	live := submitN("j000009", KindBatch)
	live.Runs = []wire.RunRequest{{Benchmark: "adpcm"}}
	live.Run = nil
	j.Submit(live)
	if j.ShouldCompact() {
		t.Fatal("fresh journal wants compaction")
	}
	for i := 0; i < CompactEvery; i++ {
		j.State("jx", "done")
	}
	if !j.ShouldCompact() {
		t.Fatal("terminal flood did not trigger compaction")
	}
	if err := j.Compact([]Submit{live}); err != nil {
		t.Fatal(err)
	}
	if j.ShouldCompact() {
		t.Error("compaction did not reset the trigger")
	}
	b, _ := os.ReadFile(path)
	if strings.Count(string(b), "\n") != 1 || !strings.Contains(string(b), "j000009") {
		t.Errorf("compacted log = %q", b)
	}
	// The journal keeps accepting appends after compaction.
	if err := j.State("j000009", "running"); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentRoundTrip(t *testing.T) {
	path := testPath(t)
	j, _ := Open(path)
	exp := Submit{ID: "j000001", Kind: KindExperiment, Client: "alice",
		Experiment: &wire.ExperimentRequest{Name: "table6", Quick: true, Benchmarks: []string{"adpcm"}}}
	j.Submit(exp)
	j.Close()

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	p := j2.Pending()
	if len(p) != 1 || p[0].Experiment == nil || p[0].Experiment.Name != "table6" || p[0].Client != "alice" {
		t.Fatalf("experiment submit did not round-trip: %+v", p)
	}
}

func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	if err := j.Submit(Submit{ID: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := j.State("x", "done"); err != nil {
		t.Fatal(err)
	}
	if j.ShouldCompact() || j.Pending() != nil || j.Compact(nil) != nil || j.Close() != nil {
		t.Fatal("nil journal misbehaved")
	}
}

func TestClosedJournalRefusesAppends(t *testing.T) {
	j, _ := Open(testPath(t))
	j.Close()
	if err := j.Submit(submitN("j000001", KindRun)); err == nil {
		t.Fatal("append after Close succeeded")
	}
}

// TestResultRoundTrip pins the journaled-result contract: a completed
// job with persisted bytes replays as a CompletedJob with the exact
// body (trailing newline included — the canonical encoding ends in
// one), while done jobs without bytes and live jobs do not. The
// records survive exactly one restart: Open's immediate compaction
// drops them, so the window is the replay that consumed them.
func TestResultRoundTrip(t *testing.T) {
	path := testPath(t)
	j, _ := Open(path)
	body := []byte("{\"benchmark\":\"adpcm\"}\n")
	// j1: done with bytes; j2: done without; j3: live.
	for _, s := range []Submit{submitN("j000001", KindRun), submitN("j000002", KindRun), submitN("j000003", KindRun)} {
		if err := j.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Result("j000001", body); err != nil {
		t.Fatal(err)
	}
	if err := j.State("j000001", "done"); err != nil {
		t.Fatal(err)
	}
	if err := j.State("j000002", "done"); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	done := j2.Completed()
	if len(done) != 1 || done[0].Submit.ID != "j000001" {
		t.Fatalf("Completed() = %d jobs (want exactly j000001)", len(done))
	}
	if string(done[0].Body) != string(body) {
		t.Fatalf("replayed body %q, want %q (byte-exact, trailing newline included)", done[0].Body, body)
	}
	if live := j2.Pending(); len(live) != 1 || live[0].ID != "j000003" {
		t.Fatalf("Pending() = %v, want only j000003", live)
	}
	j2.Close()

	// One restart window: the compaction that ran during the second
	// Open dropped the result record.
	j3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := j3.Completed(); len(got) != 0 {
		t.Fatalf("result records survived a second restart: %d", len(got))
	}
}

// TestResultRejectsOversizedBody pins the journal's size guard.
func TestResultRejectsOversizedBody(t *testing.T) {
	j, _ := Open(testPath(t))
	defer j.Close()
	if err := j.Submit(submitN("j000001", KindRun)); err != nil {
		t.Fatal(err)
	}
	if err := j.Result("j000001", make([]byte, MaxResultBytes+1)); err == nil {
		t.Fatal("oversized result accepted")
	}
}
