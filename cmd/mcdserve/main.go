// Command mcdserve is the long-running experiment service: an HTTP
// front end over the job manager (internal/service) and the
// content-addressed deterministic result store (internal/resultcache).
// Because every simulation is a pure function of its spec, identical
// requests are served from the store byte-identically to a recompute —
// the second POST of the same run costs a hash lookup, not a
// simulation.
//
// Usage:
//
//	mcdserve -addr :8080 -cache /var/cache/mcd
//
// then:
//
//	curl localhost:8080/v1/controllers                # the controller registry
//	curl -d '{"benchmark":"mcf","config":"attack-decay","window":40000,"warmup":20000}' localhost:8080/v1/runs
//	curl -d '{"benchmark":"mcf","controller":"pi","params":{"kp":0.08},"window":40000}' localhost:8080/v1/runs
//	curl -N -d '{"stream":true,"benchmark":"mcf","window":40000}' localhost:8080/v1/runs   # live NDJSON interval frames
//	curl -d '{"name":"table6","quick":true}' localhost:8080/v1/experiments
//	curl -d '{"name":"sweep-controller","controller":"coord","param":"budget_mhz","quick":true}' localhost:8080/v1/experiments
//	curl localhost:8080/v1/jobs/j000001/events        # NDJSON progress
//	curl localhost:8080/v1/jobs/j000001/result
//	curl localhost:8080/v1/jobs/j000001/trace         # Chrome trace-event JSON (needs -trace)
//	curl localhost:8080/v1/cache/stats
//	curl localhost:8080/metrics                       # Prometheus text format
//
// With -journal DIR every submission is persisted before it is
// acknowledged, and a restarted server replays whatever was queued or
// running when the previous process died — byte-identical results by
// the determinism contract (completed cells come straight from the
// result cache). -client-quota N bounds the queued jobs one client (the
// X-Client header, or the remote address) may hold at once.
//
// Observability:
//
//   - -trace arms the flight recorder: per-job lifecycle spans and the
//     per-interval controller decision audit, exported as Chrome
//     trace-event JSON at /v1/jobs/{id}/trace and /debug/trace (open in
//     ui.perfetto.dev). Off by default; the untraced hot path records
//     nothing and takes no timestamps.
//   - -log-format selects text (default) or json structured logs on
//     stderr; job logs carry job, client and spec_key attributes.
//   - -pprof ADDR serves net/http/pprof on a second listener, kept off
//     the public API address (see internal/prof for the offline
//     profiling harness the endpoints complement).
//   - mcdtop (cmd/mcdtop) is the matching fleet console: it polls
//     /metrics and tails /events into a terminal dashboard.
//
// Distributed fabric (one binary, two roles):
//
//	mcdserve -addr :8080 -cache /var/cache/mcd -coordinator
//	mcdserve -addr :8081 -cache /var/cache/w1 -worker -join http://127.0.0.1:8080
//	mcdserve -addr :8082 -cache /var/cache/w2 -worker -join http://127.0.0.1:8080
//
// A -coordinator keeps the whole API surface but dispatches every
// cache-missing, content-addressed spec to its registered workers
// (work-stealing queues, hedged retries, dead-worker requeue); the
// shared result store means a spec computed anywhere is a hit
// everywhere, and determinism makes the distributed bytes identical to
// a single-process run. A -worker serves POST /v1/fabric/execute and
// heartbeats to -join; -advertise overrides the URL it registers
// (default: 127.0.0.1 at the -addr port). When the fleet is saturated
// the coordinator sheds new submissions with 429 reason "fleet".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"mcd/internal/fabric"
	"mcd/internal/journal"
	"mcd/internal/metrics"
	"mcd/internal/resultcache"
	"mcd/internal/service"
	"mcd/internal/trace"
)

// traceRingDepth bounds the process-wide /debug/trace ring: enough for
// the recent history of a busy fleet, fixed so the recorder can never
// grow with uptime.
const traceRingDepth = 8192

type options struct {
	addr      string
	cacheDir  string
	cacheMem  int64
	workers   int
	runners   int
	queue     int
	journalD  string
	quota     int
	traceOn   bool
	logFormat string
	pprofAddr string

	coordinator bool
	worker      bool
	join        string
	advertise   string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.cacheDir, "cache", "", "result-store directory (empty: memory tier only)")
	flag.Int64Var(&o.cacheMem, "cache-mem", 0, "in-memory result-store bound in bytes (0: default 64 MiB, <0: disk only)")
	flag.IntVar(&o.workers, "workers", runtime.NumCPU(), "parallel simulations per job")
	flag.IntVar(&o.runners, "runners", 2, "jobs executing concurrently")
	flag.IntVar(&o.queue, "queue", 64, "queued-job bound; beyond it submissions get 429")
	flag.StringVar(&o.journalD, "journal", "", "job-journal directory; submitted jobs survive crashes and restarts (empty: no persistence)")
	flag.IntVar(&o.quota, "client-quota", 0, "queued jobs one client may hold at once (0: unlimited)")
	flag.BoolVar(&o.traceOn, "trace", false, "arm the flight recorder: lifecycle spans and controller decision audit at /v1/jobs/{id}/trace and /debug/trace")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log encoding on stderr: text or json")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this extra address (empty: off)")
	flag.BoolVar(&o.coordinator, "coordinator", false, "coordinate a worker fleet: dispatch content-addressed specs to joined -worker processes")
	flag.BoolVar(&o.worker, "worker", false, "serve fabric dispatches and heartbeat to the -join coordinator")
	flag.StringVar(&o.join, "join", "", "coordinator base URL a -worker registers with (e.g. http://127.0.0.1:8080)")
	flag.StringVar(&o.advertise, "advertise", "", "base URL the coordinator should dispatch to (default: http://127.0.0.1 at the -addr port)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "mcdserve: %v\n", err)
		os.Exit(1)
	}
}

// defaultAdvertise derives the URL a worker registers from its listen
// address: loopback when the address binds all interfaces (the
// one-host deployment recipe), the bound host otherwise.
func defaultAdvertise(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://127.0.0.1:8080"
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// newLogger builds the process logger for -log-format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text or json)", format)
	}
}

// servePprof exposes the runtime profiling endpoints on their own
// listener so they never ride the public API address. Returns the
// bound address (for the startup log) or an error if the listen fails
// — a misconfigured -pprof should fail loudly, not silently profile
// nothing.
func servePprof(addr string, logger *slog.Logger) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("pprof listen: %w", err)
	}
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			logger.Warn("pprof server stopped", "err", err)
		}
	}()
	return ln.Addr().String(), nil
}

func run(o options) error {
	logger, err := newLogger(o.logFormat)
	if err != nil {
		return err
	}
	cache, err := resultcache.New(resultcache.Options{Dir: o.cacheDir, MaxMemBytes: o.cacheMem})
	if err != nil {
		return err
	}
	var jnl *journal.Journal
	if o.journalD != "" {
		jnl, err = journal.Open(filepath.Join(o.journalD, "jobs.ndjson"))
		if err != nil {
			return err
		}
	}
	var ring *trace.Ring
	if o.traceOn {
		ring = trace.NewRing(traceRingDepth)
	}
	if o.coordinator && o.worker {
		return errors.New("-coordinator and -worker are mutually exclusive (one process, one role)")
	}
	if o.worker && o.join == "" {
		return errors.New("-worker requires -join (the coordinator's base URL)")
	}
	advertise := o.advertise
	if advertise == "" {
		advertise = defaultAdvertise(o.addr)
	}

	// One registry serves /metrics for both the job manager and the
	// fabric role, so mcd_fabric_* and mcd_jobs_* scrape together.
	reg := metrics.New()
	var coord *fabric.Coordinator
	svcOpts := service.Options{
		Runners:     o.runners,
		QueueDepth:  o.queue,
		Workers:     o.workers,
		Cache:       cache,
		Journal:     jnl,
		ClientQuota: o.quota,
		Metrics:     reg,
		Trace:       ring,
		Logger:      logger,
	}
	if o.coordinator {
		coord = fabric.NewCoordinator(fabric.Options{
			Cache:   cache,
			Metrics: reg,
			Trace:   ring,
			Logger:  logger,
		})
		svcOpts.Dispatch = coord.Execute
		svcOpts.Gate = func() error {
			if coord.Saturated() {
				return service.ErrFleet
			}
			return nil
		}
	}
	// No deferred Close: the shutdown path below closes the manager
	// with a bounded wait, and every other exit ends the process, which
	// reaps the workers anyway.
	mgr := service.New(svcOpts)

	var wrk *fabric.Worker
	if o.worker {
		wrk = fabric.NewWorker(fabric.WorkerOptions{
			ID:          advertise,
			Advertise:   advertise,
			Coordinator: o.join,
			Slots:       o.workers,
			Cache:       cache,
			Metrics:     reg,
			Logger:      logger,
		})
	}

	if o.pprofAddr != "" {
		bound, err := servePprof(o.pprofAddr, logger)
		if err != nil {
			return err
		}
		logger.Info("pprof listening", "addr", bound)
	}

	handler := http.Handler(service.NewHandler(mgr))
	if coord != nil || wrk != nil {
		mux := http.NewServeMux()
		if coord != nil {
			mux.Handle("POST /v1/fabric/register", coord.Handler())
		}
		if wrk != nil {
			mux.Handle("POST /v1/fabric/execute", wrk.Handler())
		}
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{Addr: o.addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if wrk != nil {
		wrk.Start()
	}
	role := "standalone"
	if o.coordinator {
		role = "coordinator"
	} else if o.worker {
		role = "worker"
	}
	logger.Info("listening",
		"addr", o.addr, "cache_dir", o.cacheDir, "role", role,
		"workers", o.workers, "runners", o.runners, "trace", o.traceOn)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	// Close the manager first: failing every job lands each watcher on
	// a terminal snapshot, so open NDJSON streams and synchronous run
	// waits end immediately — otherwise Shutdown (which does not cancel
	// request contexts) would block on them until its deadline. The
	// wait is bounded: cancellation only takes effect between
	// simulations, so a job mid-run could otherwise pin shutdown for
	// the length of its longest simulation; past the deadline the
	// worker goroutines are abandoned to die with the process.
	closed := make(chan struct{})
	go func() { mgr.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		logger.Warn("a running simulation outlived the close deadline; abandoning it")
	}
	// The coordinator drains after the manager: with job contexts
	// already cancelled, in-flight dispatches resolve promptly and
	// nothing new is admitted. The worker just stops heartbeating; its
	// in-flight executes finish under the HTTP server's own drain.
	if coord != nil {
		coord.Close()
	}
	if wrk != nil {
		wrk.Close()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
