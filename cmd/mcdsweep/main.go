// Command mcdsweep runs sensitivity sweeps. Without -controller it
// regenerates the paper's figures: Figure 5 (performance-degradation
// target), Figures 6/7 (Decay, ReactionChange, DeviationThreshold
// sensitivity), printing one row per swept value with the
// suite-averaged metrics. With -controller it sweeps any numeric
// parameter of any registered controller (the set `mcdsim -config`
// accepts and GET /v1/controllers advertises).
//
// Usage:
//
//	mcdsweep -param target                    # Figure 5
//	mcdsweep -param decay                     # Figures 6a / 7a
//	mcdsweep -param reaction                  # Figures 6b / 7b
//	mcdsweep -param deviation                 # Figures 6c / 7c
//	mcdsweep -controller pi -param kp         # sweep kp over its documented range
//	mcdsweep -controller pi -param kp -values 0.02,0.05,0.1 -set setpoint=3
//	mcdsweep -controller coord -param budget_mhz
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"mcd/internal/bench"
	"mcd/internal/wire"
)

func main() {
	var (
		controller = flag.String("controller", "", "registered controller to sweep (empty: the paper's Attack/Decay figures)")
		param      = flag.String("param", "target", "target | decay | reaction | deviation, or any schema parameter with -controller")
		values     = flag.String("values", "", "comma-separated swept values (default: the figure's published set; with -controller, the parameter's documented range)")
		set        = flag.String("set", "", "fixed parameter overrides, name=value[,name=value...] (with -controller)")
		quick      = flag.Bool("quick", true, "reduced scale (10-benchmark subset)")
		benchF     = flag.String("bench", "", "comma-separated benchmark filter")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		workers    = flag.Int("workers", runtime.NumCPU(), "parallel simulation workers (results are identical for any value)")
		cacheDir   = flag.String("cache", "", "result-store directory: completed sweep cells are reused across invocations")
		fidelity   = flag.String("fidelity", "", "simulation tier: exact (default) | sampled (interval sampling with checkpointed warmup reuse)")
		sampleN    = flag.Int("sample-every", 0, "sampled tier's detailed-interval cadence (0: default 10)")
	)
	flag.Parse()

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	if *benchF != "" {
		opts.Benchmarks = bench.SplitNames(*benchF)
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	opts.Workers = *workers
	if err := opts.AttachCache(*cacheDir); err != nil {
		fmt.Fprintf(os.Stderr, "mcdsweep: %v\n", err)
		os.Exit(1)
	}

	vals, err := parseValues(*values)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdsweep: %v\n", err)
		os.Exit(2)
	}

	// One rendering path with the service: wire owns the experiment
	// execution, so CLI output and mcdserve experiment bodies stay
	// byte-for-byte in agreement.
	req := wire.ExperimentRequest{Name: "sweep-" + *param, Values: vals,
		Fidelity: *fidelity, SampleEvery: *sampleN}
	if *controller != "" {
		fixed, err := wire.ParseParams(*set)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcdsweep: %v\n", err)
			os.Exit(2)
		}
		req = wire.ExperimentRequest{
			Name:        wire.ExpSweepController,
			Controller:  *controller,
			Param:       *param,
			Values:      vals,
			Params:      fixed,
			Fidelity:    *fidelity,
			SampleEvery: *sampleN,
		}
	} else {
		if *set != "" {
			fmt.Fprintln(os.Stderr, "mcdsweep: -set needs -controller (the paper sweeps fix their own parameters)")
			os.Exit(2)
		}
		// Name the flag and its valid values, rather than letting the
		// synthesized experiment name fail validation confusingly.
		if !knownPaperParam(*param) {
			fmt.Fprintf(os.Stderr,
				"mcdsweep: unknown parameter %q (want target, decay, reaction or deviation; use -controller to sweep any registered controller's parameter)\n",
				*param)
			os.Exit(2)
		}
	}
	res, err := wire.RunExperimentRequest(opts, req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdsweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Output)
}

// knownPaperParam reports whether "sweep-"+param names one of the
// paper's fixed sweeps — derived from wire's experiment list, so the
// sets cannot drift.
func knownPaperParam(param string) bool {
	name := "sweep-" + param
	if name == wire.ExpSweepController {
		return false
	}
	for _, e := range wire.Experiments() {
		if e == name {
			return true
		}
	}
	return false
}

func parseValues(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad swept value %q: %v", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}
