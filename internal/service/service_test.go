package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcd"
	"mcd/internal/resultcache"
	"mcd/internal/service"
	"mcd/internal/wire"
)

// small keeps service tests fast: a tiny but non-degenerate window.
var small = wire.RunRequest{
	Benchmark: "adpcm",
	Config:    "attack-decay",
	Window:    8_000,
	Warmup:    wire.U64(4_000),
	Interval:  wire.U64(250),
}

func newServer(t *testing.T, opts service.Options) (*service.Manager, *httptest.Server) {
	t.Helper()
	if opts.Cache == nil {
		c, err := resultcache.New(resultcache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		opts.Cache = c
	}
	m := service.New(opts)
	srv := httptest.NewServer(service.NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return m, srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunEndToEnd compares the service's answer against a direct
// mcd.Run of the same spec: the serving layer must be a transparent
// memoization of the library, byte for byte.
func TestRunEndToEnd(t *testing.T) {
	_, srv := newServer(t, service.Options{})

	resp := postJSON(t, srv.URL+"/v1/runs", small)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}
	body := readBody(t, resp)

	// The same computation through the public library API.
	b, ok := mcd.LookupBenchmark(small.Benchmark)
	if !ok {
		t.Fatal("benchmark missing")
	}
	cfg := mcd.DefaultConfig()
	cfg.SlewNsPerMHz = 4.91 // the wire default
	direct := mcd.Run(mcd.Spec{
		Config:         cfg,
		Profile:        b.Profile,
		Window:         small.Window,
		Warmup:         *small.Warmup,
		IntervalLength: *small.Interval,
		Controller:     mcd.NewAttackDecay(mcd.DefaultParams()),
		Name:           small.Config,
	})
	want, err := resultcache.EncodeResult(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("service body differs from direct mcd.Run:\n got %s\nwant %s", body, want)
	}
}

func TestRunRepeatIsByteIdenticalCacheHit(t *testing.T) {
	m, srv := newServer(t, service.Options{})

	r1 := postJSON(t, srv.URL+"/v1/runs", small)
	b1 := readBody(t, r1)
	r2 := postJSON(t, srv.URL+"/v1/runs", small)
	b2 := readBody(t, r2)

	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("repeated identical request returned different bytes")
	}
	s := m.Cache().Stats()
	if s.Misses != 1 || s.Hits() == 0 {
		t.Fatalf("cache stats = %+v, want exactly one simulation", s)
	}
}

func TestRunRejectsUnknownConfig(t *testing.T) {
	_, srv := newServer(t, service.Options{})
	bad := small
	bad.Config = "bogus"
	resp := postJSON(t, srv.URL+"/v1/runs", bad)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(body), "attack-decay") {
		t.Fatalf("error should list valid configs: %s", body)
	}
}

func TestRunRejectsUnknownFidelity(t *testing.T) {
	_, srv := newServer(t, service.Options{})
	bad := small
	bad.Fidelity = "turbo"
	resp := postJSON(t, srv.URL+"/v1/runs", bad)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(body), "exact") || !strings.Contains(string(body), "sampled") {
		t.Fatalf("error should list the valid fidelity set: %s", body)
	}
}

func TestBatchJob(t *testing.T) {
	_, srv := newServer(t, service.Options{Workers: 2})
	reqs := []wire.RunRequest{small, {Benchmark: "adpcm", Config: "mcd", Window: 8_000, Warmup: wire.U64(4_000), Interval: wire.U64(250)}}
	resp := postJSON(t, srv.URL+"/v1/runs", map[string]any{"runs": reqs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var snap service.Snapshot
	if err := json.Unmarshal(readBody(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	body := waitResult(t, srv.URL, snap.ID)
	var results []json.RawMessage
	if err := json.Unmarshal(body, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	// Each element is itself a canonical result; order is submission
	// order, so element 1 is the fixed-max MCD run.
	var r1 struct{ Config string }
	json.Unmarshal(results[1], &r1)
	if r1.Config != "mcd" {
		t.Fatalf("result order broken: %s", results[1])
	}
}

// waitResult polls the job until done and returns its result body.
func waitResult(t *testing.T, base, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var snap service.Snapshot
		if err := json.Unmarshal(readBody(t, resp), &snap); err != nil {
			t.Fatal(err)
		}
		if snap.State == service.Failed {
			t.Fatalf("job failed: %s", snap.Error)
		}
		if snap.State == service.Done {
			resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("result status %d", resp.StatusCode)
			}
			return readBody(t, resp)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, snap.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExperimentJob runs a 1-benchmark Table 6 through the service and
// checks the output matches the harness run directly with the same
// options — and that the NDJSON event stream terminates with done.
func TestExperimentJob(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment grid in -short mode")
	}
	exp := wire.ExperimentRequest{
		Name: "table6", Quick: true,
		Window: 10_000, Warmup: 5_000,
		Benchmarks: []string{"adpcm"},
	}
	_, srv := newServer(t, service.Options{})
	resp := postJSON(t, srv.URL+"/v1/experiments", exp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var snap service.Snapshot
	json.Unmarshal(readBody(t, resp), &snap)

	// The event stream must deliver progress lines ending in a terminal
	// snapshot.
	events, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()
	var last service.Snapshot
	lines := 0
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
	}
	if lines == 0 || last.State != service.Done {
		t.Fatalf("stream ended after %d lines in state %s (%s)", lines, last.State, last.Error)
	}

	body := waitResult(t, srv.URL, snap.ID)
	var res wire.ExperimentResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}

	opts := exp.Options()
	opts.Workers = 1
	direct, err := wire.RunExperiment(opts, "table6")
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != direct.Output {
		t.Fatalf("service table differs from direct harness run:\n%s\n---\n%s", res.Output, direct.Output)
	}
	if len(res.Comparisons) != 1 || res.Comparisons[0].Benchmark != "adpcm" {
		t.Fatalf("comparisons = %+v", res.Comparisons)
	}
}

// TestControllersEndpoint checks the registry self-description: every
// name request validation accepts is advertised, with parameter schemas
// on the parameterized entries.
func TestControllersEndpoint(t *testing.T) {
	_, srv := newServer(t, service.Options{})
	resp, err := http.Get(srv.URL + "/v1/controllers")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Controllers []struct {
			Name     string `json:"name"`
			AliasFor string `json:"alias_for"`
			Params   []struct {
				Name    string  `json:"name"`
				Default float64 `json:"default"`
			} `json:"params"`
		} `json:"controllers"`
	}
	if err := json.Unmarshal(readBody(t, resp), &body); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, c := range body.Controllers {
		byName[c.Name] = i
	}
	for _, want := range wire.Controllers() {
		if _, ok := byName[want]; !ok {
			t.Errorf("accepted controller %q not advertised", want)
		}
	}
	if i, ok := byName["pi"]; !ok || len(body.Controllers[i].Params) == 0 {
		t.Error("pi advertised without a parameter schema")
	}
	if i, ok := byName["dynamic-1"]; !ok || body.Controllers[i].AliasFor != "dynamic" {
		t.Error("dynamic-1 not advertised as an alias of dynamic")
	}
}

// TestNewControllersRunByName: pi and coord are runnable end-to-end
// through a plain POST /v1/runs body, and the repeat request is a
// byte-identical cache hit — the acceptance path for registry-added
// controllers.
func TestNewControllersRunByName(t *testing.T) {
	_, srv := newServer(t, service.Options{})
	for _, req := range []wire.RunRequest{
		{Benchmark: "adpcm", Controller: "pi", Window: 8_000, Warmup: wire.U64(4_000), Interval: wire.U64(250)},
		{Benchmark: "adpcm", Controller: "coord", Params: map[string]float64{"step_mhz": 50},
			Window: 8_000, Warmup: wire.U64(4_000), Interval: wire.U64(250)},
	} {
		r1 := postJSON(t, srv.URL+"/v1/runs", req)
		if r1.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", req.Controller, r1.StatusCode, readBody(t, r1))
		}
		if got := r1.Header.Get("X-Cache"); got != "miss" {
			t.Fatalf("%s: first X-Cache = %q, want miss", req.Controller, got)
		}
		b1 := readBody(t, r1)
		var res struct{ Config string }
		if err := json.Unmarshal(b1, &res); err != nil {
			t.Fatal(err)
		}
		if res.Config != req.Controller {
			t.Errorf("%s: result labeled %q", req.Controller, res.Config)
		}

		r2 := postJSON(t, srv.URL+"/v1/runs", req)
		b2 := readBody(t, r2)
		if got := r2.Header.Get("X-Cache"); got != "hit" {
			t.Fatalf("%s: repeat X-Cache = %q, want hit", req.Controller, got)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s: cache hit not byte-identical", req.Controller)
		}
	}
}

func TestJobNotFound(t *testing.T) {
	_, srv := newServer(t, service.Options{})
	resp, err := http.Get(srv.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestHealthAndCacheStats(t *testing.T) {
	_, srv := newServer(t, service.Options{})
	for _, path := range []string{"/v1/healthz", "/v1/cache/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK || !json.Valid(body) {
			t.Fatalf("%s: status %d body %s", path, resp.StatusCode, body)
		}
	}
}
