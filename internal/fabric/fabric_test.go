package fabric_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mcd/internal/bench"
	"mcd/internal/fabric"
	"mcd/internal/metrics"
	"mcd/internal/resultcache"
	"mcd/internal/wire"
)

// small keeps fabric tests fast: a tiny but non-degenerate window.
var small = wire.RunRequest{
	Benchmark: "adpcm",
	Config:    "attack-decay",
	Window:    8_000,
	Warmup:    wire.U64(4_000),
	Interval:  wire.U64(250),
}

// localBytes computes the canonical single-process answer for req.
func localBytes(t *testing.T, req wire.RunRequest) []byte {
	t.Helper()
	body, _, err := req.Normalize().RunStreamHooked(context.Background(), nil, wire.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// startWorker serves a real fabric worker on an httptest listener and
// registers it with the coordinator (one hello; tests that need live
// heartbeats re-register themselves).
func startWorker(t *testing.T, c *fabric.Coordinator, id string, slots int) *httptest.Server {
	t.Helper()
	w := fabric.NewWorker(fabric.WorkerOptions{ID: id, Advertise: "filled-below", Slots: slots})
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	c.Register(wire.FabricHello{ID: id, URL: srv.URL, Slots: slots})
	return srv
}

// render scrapes a registry into one string for counter assertions.
func render(t *testing.T, reg *metrics.Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := reg.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestExecuteDispatchesByteIdentical pins the fabric's core contract:
// a spec executed through a worker returns exactly the bytes a local
// run produces, and lands in the coordinator's shared store (the
// second Execute is a hit that never touches the fleet).
func TestExecuteDispatchesByteIdentical(t *testing.T) {
	cache, err := resultcache.New(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	c := fabric.NewCoordinator(fabric.Options{Cache: cache, Metrics: reg})
	defer c.Close()
	startWorker(t, c, "w1", 2)

	req := small.Normalize()
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	body, hit, err := c.Execute(context.Background(), key, req)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first Execute reported a cache hit")
	}
	if want := localBytes(t, small); !bytes.Equal(body, want) {
		t.Fatalf("dispatched bytes differ from local run:\n got %s\nwant %s", body, want)
	}
	body2, hit2, err := c.Execute(context.Background(), key, req)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 || !bytes.Equal(body, body2) {
		t.Fatalf("second Execute: hit=%v, identical=%v; want hit, identical", hit2, bytes.Equal(body, body2))
	}
	scrape := render(t, reg)
	if !strings.Contains(scrape, `mcd_fabric_dispatches_total{outcome="ok"} 1`) {
		t.Fatalf("expected exactly one ok dispatch; metrics:\n%s", scrape)
	}
	if stats := cache.Stats(); stats.RemoteLoads != 1 {
		t.Fatalf("RemoteLoads = %d, want 1", stats.RemoteLoads)
	}
}

// TestNoWorkersComputesLocally pins the degenerate fleet: a
// coordinator with zero workers is exactly a single-process server.
func TestNoWorkersComputesLocally(t *testing.T) {
	cache, err := resultcache.New(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := fabric.NewCoordinator(fabric.Options{Cache: cache})
	defer c.Close()
	req := small.Normalize()
	key, _ := req.Key()
	body, _, err := c.Execute(context.Background(), key, req)
	if err != nil {
		t.Fatal(err)
	}
	if want := localBytes(t, small); !bytes.Equal(body, want) {
		t.Fatal("local-fallback bytes differ from direct run")
	}
}

// TestFabricSweepByteIdentity is the tentpole pin: a controller grid
// run through a 3-worker fabric (every cacheable cell dispatched over
// HTTP via the ExecAdapter, exactly as a coordinator-run experiment
// does) renders byte-identical tables to the same grid computed in
// process — distribution is pure scheduling.
func TestFabricSweepByteIdentity(t *testing.T) {
	grid := func() bench.Options {
		o := bench.DefaultOptions()
		o.Window = 6_000
		o.Warmup = 3_000
		o.IntervalLength = 500
		o.OfflineIters = 2
		o.Workers = 4
		o.Benchmarks = []string{"adpcm", "mcf", "gzip"}
		return o
	}
	local := grid()
	want := bench.Table6(local.RunAll())

	cache, err := resultcache.New(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	c := fabric.NewCoordinator(fabric.Options{Cache: cache, Metrics: reg})
	defer c.Close()
	for _, id := range []string{"w1", "w2", "w3"} {
		startWorker(t, c, id, 2)
	}

	fleet := grid()
	fleet.Exec = wire.ExecAdapter(func(ctx context.Context, key string, req wire.RunRequest) ([]byte, error) {
		body, _, err := c.Execute(ctx, key, req)
		return body, err
	})
	got := bench.Table6(fleet.RunAll())
	if got != want {
		t.Fatalf("fabric table differs from single-process table:\n got:\n%s\nwant:\n%s", got, want)
	}
	scrape := render(t, reg)
	if strings.Contains(scrape, `mcd_fabric_dispatches_total{outcome="ok"} 0`) {
		t.Fatalf("no dispatches happened — the grid never reached the fleet:\n%s", scrape)
	}
}

// TestWorkerDeathRequeue pins fault recovery: a worker that dies with
// a dispatch in flight (connection severed, as a kill -9 would) gets
// its spec requeued to a worker that joined later, and the caller
// still receives byte-identical results.
func TestWorkerDeathRequeue(t *testing.T) {
	cache, err := resultcache.New(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	c := fabric.NewCoordinator(fabric.Options{Cache: cache, Metrics: reg})
	defer c.Close()

	// The doomed worker: aborts its first connection mid-request, the
	// client-visible signature of a killed process.
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(20 * time.Millisecond)
		panic(http.ErrAbortHandler)
	}))
	defer dying.Close()
	c.Register(wire.FabricHello{ID: "doomed", URL: dying.URL, Slots: 1})

	req := small.Normalize()
	key, _ := req.Key()
	done := make(chan struct{})
	var body []byte
	var execErr error
	go func() {
		defer close(done)
		body, _, execErr = c.Execute(context.Background(), key, req)
	}()

	// A healthy worker joins while the doomed dispatch is in flight.
	time.Sleep(5 * time.Millisecond)
	startWorker(t, c, "healthy", 1)

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Execute did not recover from the dead worker")
	}
	if execErr != nil {
		t.Fatal(execErr)
	}
	if want := localBytes(t, small); !bytes.Equal(body, want) {
		t.Fatal("requeued result differs from local bytes")
	}
	scrape := render(t, reg)
	if !strings.Contains(scrape, `mcd_fabric_requeues_total{reason="error"} 1`) {
		t.Fatalf("expected one error requeue; metrics:\n%s", scrape)
	}
}

// TestHedgedRaceSingleStoreWrite pins the hedge: with one straggler
// and one fast worker racing the same spec, both computing to the end,
// exactly one result reaches the store and the caller's bytes are the
// canonical ones.
func TestHedgedRaceSingleStoreWrite(t *testing.T) {
	dir := t.TempDir()
	cache, err := resultcache.New(resultcache.Options{Dir: dir, MaxMemBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	c := fabric.NewCoordinator(fabric.Options{
		Cache:      cache,
		Metrics:    reg,
		HedgeAfter: 10 * time.Millisecond,
	})
	defer c.Close()

	// The straggler computes the full result on an uncancellable
	// context — it always finishes, losing the race but proving the
	// race's loser cannot double-write.
	var slowDone atomic.Bool
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(150 * time.Millisecond)
		body := localBytes(t, small)
		slowDone.Store(true)
		w.Write(body)
	}))
	defer slow.Close()
	c.Register(wire.FabricHello{ID: "slow", URL: slow.URL, Slots: 1})

	req := small.Normalize()
	key, _ := req.Key()
	done := make(chan struct{})
	var body []byte
	var execErr error
	go func() {
		defer close(done)
		body, _, execErr = c.Execute(context.Background(), key, req)
	}()
	// The fast worker joins after the dispatch lands on the straggler;
	// the hedge deadline re-dispatches there.
	time.Sleep(20 * time.Millisecond)
	startWorker(t, c, "fast", 1)

	<-done
	if execErr != nil {
		t.Fatal(execErr)
	}
	if want := localBytes(t, small); !bytes.Equal(body, want) {
		t.Fatal("hedged result differs from local bytes")
	}
	// Let the straggler finish its doomed attempt, then check exactly
	// one result landed on disk.
	for i := 0; i < 100 && !slowDone.Load(); i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if !slowDone.Load() {
		t.Fatal("straggler never finished")
	}
	files := 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			files++
		}
	}
	if files != 1 {
		t.Fatalf("store holds %d files after the hedged race, want exactly 1", files)
	}
	if misses := cache.Stats().Misses; misses != 1 {
		t.Fatalf("cache misses = %d, want 1 (one single-flighted compute)", misses)
	}
	scrape := render(t, reg)
	if !strings.Contains(scrape, "mcd_fabric_hedges_total 1") {
		t.Fatalf("expected one hedge; metrics:\n%s", scrape)
	}
}

// TestSaturated pins the fleet-wide backpressure signal: a fleet is
// saturated when queued+in-flight reaches QueueFactor × slots, and a
// worker-less coordinator never is (its backpressure is the queue).
func TestSaturated(t *testing.T) {
	c := fabric.NewCoordinator(fabric.Options{QueueFactor: 1, HedgeAfter: time.Hour})
	defer c.Close()
	if c.Saturated() {
		t.Fatal("empty fleet reports saturated")
	}

	release := make(chan struct{})
	blocked := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.Write(localBytes(t, small))
	}))
	defer blocked.Close()
	defer close(release)
	c.Register(wire.FabricHello{ID: "b", URL: blocked.URL, Slots: 1})

	req := small.Normalize()
	key, _ := req.Key()
	go c.Execute(context.Background(), key, req)
	deadline := time.Now().Add(5 * time.Second)
	for !c.Saturated() {
		if time.Now().After(deadline) {
			t.Fatal("fleet never saturated with its one slot occupied")
		}
		time.Sleep(time.Millisecond)
	}
}
