// Command mcdbench regenerates the paper's tables and the Figure 4 series.
//
// Usage:
//
//	mcdbench -exp table6           # full Table 6 over all 30 benchmarks
//	mcdbench -exp fig4 -quick      # Figure 4 on the 10-benchmark subset
//	mcdbench -exp headline
//	mcdbench -exp table1|table2|table3|table4|table5   # static tables
//	mcdbench -exp table6 -cache /var/cache/mcd   # reuse completed cells
//	mcdbench -exp table6 -json     # machine-readable (wire.ExperimentResult)
//	mcdbench -exp table6 -cpuprofile cpu.out     # pprof capture of the run
//	mcdbench -benchjson                          # hot-path perf report (BENCH_5.json schema)
//	mcdbench -benchjson -benchbaseline BENCH_5.json   # CI perf-regression gate
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"mcd/internal/bench"
	"mcd/internal/prof"
	"mcd/internal/wire"
)

func main() {
	var (
		exp       = flag.String("exp", "headline", "experiment: table1..table6, fig4, headline, all")
		quick     = flag.Bool("quick", false, "reduced scale (subset of benchmarks, shorter windows)")
		window    = flag.Uint64("window", 0, "override measured instructions per run")
		warmup    = flag.Uint64("warmup", 0, "override warmup instructions per run")
		benchF    = flag.String("bench", "", "comma-separated benchmark filter")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
		workers   = flag.Int("workers", runtime.NumCPU(), "parallel simulation workers (results are identical for any value)")
		cacheDir  = flag.String("cache", "", "result-store directory: completed cells are reused across invocations")
		jsonOut   = flag.Bool("json", false, "emit the machine-readable experiment encoding (as served by mcdserve)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file (written on clean exit)")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on clean exit")
		benchJSON = flag.Bool("benchjson", false, "run the hot-path perf benchmarks and print the JSON report (BENCH_5.json schema)")
		baseline  = flag.String("benchbaseline", "", "with -benchjson: compare against this committed report and exit 1 on regression")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		}
	}()

	if *benchJSON {
		code := runBenchJSON(*baseline)
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		}
		os.Exit(code)
	}

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	if *window != 0 {
		opts.Window = *window
	}
	if *warmup != 0 {
		opts.Warmup = *warmup
	}
	if *benchF != "" {
		opts.Benchmarks = bench.SplitNames(*benchF)
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	opts.Workers = *workers
	if err := opts.AttachCache(*cacheDir); err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		os.Exit(1)
	}

	emit := func(res wire.ExperimentResult) {
		if !*jsonOut {
			fmt.Print(res.Output)
			return
		}
		b, err := wire.EncodeExperiment(res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(b)
	}

	static := map[string]func() string{
		"table1": bench.Table1, "table2": bench.Table2, "table3": bench.Table3,
		"table4": bench.Table4, "table5": bench.Table5,
	}
	if f, ok := static[*exp]; ok {
		emit(wire.ExperimentResult{Experiment: *exp, Output: f()})
		return
	}

	switch *exp {
	case "table6", "fig4", "headline", "all":
		emit(wire.FromComparisons(*exp, opts.RunAll()))
	default:
		fmt.Fprintf(os.Stderr, "mcdbench: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}

// runBenchJSON measures the hot-path benchmarks, prints the report, and
// gates it against the committed baseline when one is given: the alloc
// counts are exact; wall time only fails on a blowout (CI machines are
// noisy — see bench.PerfReport.CheckAgainst for the tolerances).
func runBenchJSON(baselinePath string) int {
	report := bench.MeasurePerf()
	out, err := report.Encode()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		return 1
	}
	os.Stdout.Write(out)
	if baselinePath == "" {
		return 0
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		return 1
	}
	base, err := bench.DecodePerfReport(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		return 1
	}
	if fails := report.CheckAgainst(base); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "mcdbench: perf regression: %s\n", f)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "mcdbench: perf gate passed against %s\n", baselinePath)
	return 0
}
