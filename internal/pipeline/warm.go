package pipeline

import (
	"mcd/internal/branch"
	"mcd/internal/cache"
	"mcd/internal/clock"
	"mcd/internal/dvfs"
	"mcd/internal/power"
	"mcd/internal/queue"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// WarmState is a complete snapshot of a mid-run core, taken at a
// StepIntervals boundary during warmup so a sweep can warm each benchmark
// once and restore the state into every cell's core. A restored core is
// byte-identical to one that executed the prefix itself: every piece of
// mutable run state is captured, including the workload generator's rng
// position and the jitter rng positions (both counted sources, see
// xrand), so the resumed cycle stream is the same stream.
//
// Snapshots are only taken in sampled fidelity, where warmup runs
// uncontrolled (see RunOptions.SampleEvery) — the warmed state is then
// independent of the run's controller and safe to share across cells.
type WarmState struct {
	gen    workload.GenState
	regs   [clock.NumControllable]dvfs.Regulator
	clks   [clock.NumControllable]clock.State
	jcalls [clock.NumControllable]uint64

	pred *branch.Predictor
	hier *cache.Hierarchy
	iiq  *queue.IssueQueue
	fiq  *queue.IssueQueue
	lsq  *queue.LSQ
	rob  *queue.ROB
	ring *queue.CompletionRing

	meter power.Meter

	last         [clock.NumControllable]float64
	curFreq      [clock.NumControllable]float64
	periods      [clock.NumControllable]float64
	occupSum     [clock.NumControllable]float64
	ivTicks      [clock.NumControllable]float64
	freqIntegral [clock.NumControllable]float64

	intRegsFree int
	fpRegsFree  int

	pending    workload.Instr
	havePend   bool
	genDone    bool
	fetchStall float64
	branchSeq  int64
	fetchBlock uint64

	retired    uint64
	lastRetire float64
	now        float64
	emitted    int

	marked     bool
	markTime   float64
	markEnergy [clock.NumDomains]float64

	ivStart  float64
	ivIndex  int
	nextIvAt uint64

	skipPending   int
	detail        detailModel
	ivStartEnergy [clock.NumControllable]float64
	ivStartEv     [3]uint64
	ivStartClkPJ  [clock.NumControllable]float64
	errCPI        errAcc
	errEPI        errAcc
	detailedIv    int
	sampledIv     int
	ctrlPrev      [clock.NumControllable]float64
	ctrlQuiet     int
	stretchPenSum float64
	stretchPenN   int

	intervals []stats.Interval
}

// CaptureWarm snapshots the core's complete run state. It returns nil
// when the workload generator does not support checkpointing, or when
// the run has already halted (a halted prefix has nothing to resume).
func (c *Core) CaptureWarm() *WarmState {
	ck, ok := c.gen.(workload.Checkpointer)
	if !ok || c.halted {
		return nil
	}
	w := &WarmState{
		gen:   ck.Checkpoint(),
		pred:  c.pred.Clone(),
		hier:  c.hier.Clone(),
		iiq:   c.iiq.Clone(),
		fiq:   c.fiq.Clone(),
		lsq:   c.lsq.Clone(),
		rob:   c.rob.Clone(),
		ring:  c.ring.Clone(),
		meter: *c.meter,

		last:         c.last,
		curFreq:      c.curFreq,
		periods:      c.periods,
		occupSum:     c.occupSum,
		ivTicks:      c.ivTicks,
		freqIntegral: c.freqIntegral,

		intRegsFree: c.intRegsFree,
		fpRegsFree:  c.fpRegsFree,

		pending:    c.pending,
		havePend:   c.havePend,
		genDone:    c.genDone,
		fetchStall: c.fetchStall,
		branchSeq:  c.branchSeq,
		fetchBlock: c.fetchBlock,

		retired:    c.retired,
		lastRetire: c.lastRetire,
		now:        c.now,
		emitted:    c.emitted,

		marked:     c.marked,
		markTime:   c.markTime,
		markEnergy: c.markEnergy,

		ivStart:  c.ivStart,
		ivIndex:  c.ivIndex,
		nextIvAt: c.nextIvAt,

		skipPending:   c.skipPending,
		detail:        c.detail,
		ivStartEnergy: c.ivStartEnergy,
		ivStartEv:     c.ivStartEv,
		ivStartClkPJ:  c.ivStartClkPJ,
		errCPI:        c.errCPI,
		errEPI:        c.errEPI,
		detailedIv:    c.detailedIv,
		sampledIv:     c.sampledIv,
		ctrlPrev:      c.ctrlPrev,
		ctrlQuiet:     c.ctrlQuiet,
		stretchPenSum: c.stretchPenSum,
		stretchPenN:   c.stretchPenN,
	}
	for d := 0; d < clock.NumControllable; d++ {
		w.regs[d] = *c.regs[d]
		w.clks[d] = c.clks[d].State()
		if c.jsrc[d] != nil {
			w.jcalls[d] = c.jsrc[d].Calls()
		}
	}
	if len(c.intervals) > 0 {
		w.intervals = append([]stats.Interval(nil), c.intervals...)
	}
	return w
}

// RestoreWarm restores a snapshot into a core that was just Start-ed with
// the same config and the same warmup-relevant options (workload profile,
// warmup, window, interval length, initial frequencies, sample cadence)
// as the run the snapshot was captured from. After the restore the core
// is byte-identical to one that executed the warmup prefix itself; the
// warm-snapshot pin test asserts this across the controller registry.
func (c *Core) RestoreWarm(w *WarmState) {
	c.gen.(workload.Checkpointer).Restore(w.gen)
	jitter := c.cfg.JitterPS
	if c.cfg.SingleClock {
		jitter = 0
	}
	for d := 0; d < clock.NumControllable; d++ {
		*c.regs[d] = w.regs[d]
		c.clks[d].SetState(w.clks[d])
		if jitter > 0 && c.jsrc[d] != nil {
			c.jsrc[d].Restore(c.cfg.Seed+int64(d)*7919, w.jcalls[d])
		}
	}
	c.pred.CopyFrom(w.pred)
	c.hier.CopyFrom(w.hier)
	c.iiq.CopyFrom(w.iiq)
	c.fiq.CopyFrom(w.fiq)
	c.lsq.CopyFrom(w.lsq)
	c.rob.CopyFrom(w.rob)
	c.ring.CopyFrom(w.ring)
	*c.meter = w.meter

	c.last = w.last
	c.curFreq = w.curFreq
	c.periods = w.periods
	c.occupSum = w.occupSum
	c.ivTicks = w.ivTicks
	c.freqIntegral = w.freqIntegral
	c.wake.Periods = c.periods
	c.sched.Refresh()

	c.intRegsFree = w.intRegsFree
	c.fpRegsFree = w.fpRegsFree

	c.pending = w.pending
	c.havePend = w.havePend
	c.genDone = w.genDone
	c.fetchStall = w.fetchStall
	c.branchSeq = w.branchSeq
	c.fetchBlock = w.fetchBlock

	c.retired = w.retired
	c.lastRetire = w.lastRetire
	c.now = w.now
	c.emitted = w.emitted

	c.marked = w.marked
	c.markTime = w.markTime
	c.markEnergy = w.markEnergy

	c.ivStart = w.ivStart
	c.ivIndex = w.ivIndex
	c.nextIvAt = w.nextIvAt

	c.skipPending = w.skipPending
	c.detail = w.detail
	c.ivStartEnergy = w.ivStartEnergy
	c.ivStartEv = w.ivStartEv
	c.ivStartClkPJ = w.ivStartClkPJ
	c.errCPI = w.errCPI
	c.errEPI = w.errEPI
	c.detailedIv = w.detailedIv
	c.sampledIv = w.sampledIv
	c.ctrlPrev = w.ctrlPrev
	c.ctrlQuiet = w.ctrlQuiet
	c.stretchPenSum = w.stretchPenSum
	c.stretchPenN = w.stretchPenN

	if w.intervals != nil {
		c.intervals = append(c.intervals[:0], w.intervals...)
	}
}
