// Quickstart: run the Attack/Decay algorithm on one benchmark and compare
// it against the baseline MCD processor (all domains at 1 GHz).
package main

import (
	"fmt"

	"mcd"
)

func main() {
	bench, ok := mcd.LookupBenchmark("gzip")
	if !ok {
		panic("gzip missing from catalog")
	}

	cfg := mcd.DefaultConfig()
	cfg.SlewNsPerMHz = 4.91 // compressed time scale for the scaled window
	spec := mcd.Spec{
		Config:         cfg,
		Profile:        bench.Profile,
		Window:         300_000,
		Warmup:         150_000,
		IntervalLength: 1000,
		Name:           "mcd-baseline",
	}

	base := mcd.Run(spec)

	spec.Controller = mcd.NewAttackDecay(mcd.DefaultParams())
	spec.Name = "attack-decay"
	ad := mcd.Run(spec)

	c := mcd.Compare(ad, base)
	fmt.Printf("benchmark            %s (%s)\n", bench.Name, bench.Suite)
	fmt.Printf("baseline             CPI %.3f, EPI %.1f pJ\n", base.CPI(), base.EPI())
	fmt.Printf("attack/decay         CPI %.3f, EPI %.1f pJ\n", ad.CPI(), ad.EPI())
	fmt.Printf("perf degradation     %+.1f%%\n", c.PerfDegradation*100)
	fmt.Printf("energy savings       %+.1f%%\n", c.EnergySavings*100)
	fmt.Printf("EDP improvement      %+.1f%%\n", c.EDPImprovement*100)
	fmt.Printf("avg domain freq MHz  int=%.0f fp=%.0f ls=%.0f\n",
		ad.AvgFreqMHz[mcd.Integer], ad.AvgFreqMHz[mcd.FloatingPoint], ad.AvgFreqMHz[mcd.LoadStore])
}
