// Package wire defines the machine-readable request and result
// encodings shared by the command-line tools (-json flags) and the
// mcdserve HTTP service, so a result printed by a CLI is byte-for-byte
// the body the service would serve for the same request. Result bytes
// themselves use the canonical encoding owned by internal/resultcache;
// controller names and parameters are owned by the registry in
// internal/control — this package only carries them.
package wire

import (
	"fmt"
	"strconv"
	"strings"

	"mcd/internal/control"
	"mcd/internal/pipeline"
	"mcd/internal/resultcache"
	"mcd/internal/sim"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// Legacy configuration names. These remain registered (as definitions
// or aliases) in internal/control, so requests written against the old
// closed enum keep working byte-for-byte; the full valid set is
// Controllers(), not these five.
const (
	ConfigSync        = "sync"
	ConfigMCD         = "mcd"
	ConfigAttackDecay = "attack-decay"
	ConfigDynamic1    = "dynamic-1"
	ConfigDynamic5    = "dynamic-5"
)

// Controllers returns every valid controller name, sorted — derived
// from the registry, so the CLIs, this package's validation errors and
// the service can never drift apart.
func Controllers() []string { return control.Names() }

// Configs is the legacy name for Controllers, kept so existing callers
// keep compiling; the set now comes from the registry.
func Configs() []string { return Controllers() }

// RunRequest describes one simulation run: the JSON body of
// POST /v1/runs and the programmatic form of cmd/mcdsim's flags.
// Zero-valued fields take the mcdsim defaults.
type RunRequest struct {
	Benchmark string `json:"benchmark"` // catalog name (default epic.decode)
	// Controller selects a registered control algorithm by name (see
	// GET /v1/controllers); Config is the legacy spelling of the same
	// field. Setting both to different names is an error. Default
	// attack-decay.
	Controller string `json:"controller,omitempty"`
	Config     string `json:"config,omitempty"`
	// Params overrides the controller's schema defaults by name;
	// unknown names are rejected with the schema's valid set.
	Params map[string]float64 `json:"params,omitempty"`
	Window uint64             `json:"window,omitempty"` // measured instructions (default 400000; 0 would measure nothing)
	// Warmup, Interval and SlewNsPerMHz are pointers because their
	// explicit zeros are meaningful configurations distinct from
	// "unset": warmup 0 measures from a cold start, interval 0 selects
	// the pipeline's paper-scale 10,000-instruction default, slew 0 is
	// an ideal instant regulator. nil takes the documented default.
	Warmup       *uint64  `json:"warmup,omitempty"`          // default 200000
	Interval     *uint64  `json:"interval,omitempty"`        // default 1000
	SlewNsPerMHz *float64 `json:"slew_ns_per_mhz,omitempty"` // default 4.91
	// Fidelity selects the simulation tier: "" or "exact" for the default
	// cycle-exact engine, "sampled" for interval sampling with
	// checkpointed warmup reuse (see GET /v1/controllers for the exact
	// semantics; sampled results carry error-bound fields). Unknown names
	// are rejected with the valid set.
	Fidelity string `json:"fidelity,omitempty"`
	// SampleEvery is the sampled tier's detailed-interval cadence; zero
	// takes the default (10). Ignored at exact fidelity.
	SampleEvery int `json:"sample_every,omitempty"`
}

// DefaultSlewNsPerMHz is the compressed-scale regulator slew a request
// gets when SlewNsPerMHz is nil (DESIGN.md, "time-scale compression").
const DefaultSlewNsPerMHz = 4.91

// U64 is a literal-pointer helper for the optional request fields.
func U64(v uint64) *uint64 { return &v }

// Normalize fills defaulted fields in, returning the canonical request.
func (r RunRequest) Normalize() RunRequest {
	if r.Benchmark == "" {
		r.Benchmark = "epic.decode"
	}
	if r.Controller == "" && r.Config == "" {
		r.Config = ConfigAttackDecay
	}
	if r.Window == 0 {
		r.Window = 400_000
	}
	if r.Warmup == nil {
		r.Warmup = U64(200_000)
	}
	if r.Interval == nil {
		r.Interval = U64(1000)
	}
	if r.SlewNsPerMHz == nil {
		slew := DefaultSlewNsPerMHz
		r.SlewNsPerMHz = &slew
	}
	return r
}

// ControllerName returns the effective controller name of the
// (normalized) request, whichever field it was spelled in.
func (r RunRequest) ControllerName() string {
	r = r.Normalize()
	if r.Controller != "" {
		return r.Controller
	}
	return r.Config
}

// Validate checks the benchmark, controller and parameter names; its
// error messages list the valid sets (sorted), making it the one source
// of truth for CLI usage errors and HTTP 400 bodies.
func (r RunRequest) Validate() error {
	_, _, err := r.controlRun()
	return err
}

// controlRun is the request's single validation and resolution point:
// it checks the benchmark, reconciles the two controller spellings,
// resolves the registry once, and builds the controller-independent
// run description. Validate, Spec, Key and RunCachedBytes all derive
// from it, so validation semantics live in exactly one place and the
// hot serving path resolves the registry once per request.
func (r RunRequest) controlRun() (control.Run, control.Resolved, error) {
	r = r.Normalize()
	b, ok := workload.Lookup(r.Benchmark)
	if !ok {
		return control.Run{}, control.Resolved{}, fmt.Errorf("unknown benchmark %q (see mcdbench -exp table5 for the catalog)", r.Benchmark)
	}
	if r.Controller != "" && r.Config != "" && r.Controller != r.Config {
		return control.Run{}, control.Resolved{}, fmt.Errorf("controller %q and config %q disagree (set one; they are the same field)", r.Controller, r.Config)
	}
	res, err := control.Resolve(r.ControllerName(), control.Params(r.Params))
	if err != nil {
		return control.Run{}, control.Resolved{}, err
	}
	fid, err := sim.ParseFidelity(r.Fidelity)
	if err != nil {
		return control.Run{}, control.Resolved{}, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.SlewNsPerMHz = *r.SlewNsPerMHz
	return control.Run{
		Config:         cfg,
		Profile:        b.Profile,
		Window:         r.Window,
		Warmup:         *r.Warmup,
		IntervalLength: *r.Interval,
		Name:           r.ControllerName(),
		Fidelity:       fid,
		SampleEvery:    r.SampleEvery,
	}, res, nil
}

// Spec builds the full simulation spec the request describes,
// performing any compound preparation the controller definition needs
// (an off-line schedule search). Use Key for content addressing — it
// never pays for preparation.
func (r RunRequest) Spec() (sim.Spec, error) {
	run, res, err := r.controlRun()
	if err != nil {
		return sim.Spec{}, err
	}
	return res.Spec(run)
}

// Key returns the request's content address in the result store.
func (r RunRequest) Key() (string, error) {
	run, res, err := r.controlRun()
	if err != nil {
		return "", err
	}
	return res.Key(run)
}

// Run executes the request. It is a pure function of the request —
// exactly what cmd/mcdsim computes for the same flags — which is what
// makes the result cacheable under the request's Key.
func (r RunRequest) Run() (stats.Result, error) {
	spec, err := r.Spec()
	if err != nil {
		return stats.Result{}, err
	}
	return sim.Run(spec), nil
}

// RunCachedBytes executes the request through the result store and
// returns only the canonical body — the hot serving path, which never
// pays a decode: hit reports whether the bytes came from the cache (or
// an in-flight identical computation) rather than a fresh simulation.
// A nil cache always computes.
func (r RunRequest) RunCachedBytes(c *resultcache.Cache) (body []byte, hit bool, err error) {
	run, res, err := r.controlRun()
	if err != nil {
		return nil, false, err
	}
	compute := func() ([]byte, error) {
		spec, err := res.Spec(run)
		if err != nil {
			return nil, err
		}
		return resultcache.EncodeResult(sim.Run(spec))
	}
	if c == nil {
		body, err = compute()
		return body, false, err
	}
	key, err := res.Key(run)
	if err != nil {
		return nil, false, err
	}
	return c.DoBytes(key, compute)
}

// ParseParams parses the CLI spelling of controller parameters —
// "name=value" pairs separated by commas, e.g. "kp=0.08,setpoint=3" —
// into the map the JSON "params" field carries. An empty string is a
// nil map.
func ParseParams(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("bad parameter %q (want name=value)", pair)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value for parameter %q: %v", name, err)
		}
		out[name] = v
	}
	return out, nil
}
