package metrics

import (
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterAndGaugeRender(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "a counter")
	g := r.Gauge("test_depth", "a gauge")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters never decrease
	g.Set(4)
	g.Add(-1.5)

	out := render(t, r)
	for _, want := range []string{
		"# HELP test_total a counter",
		"# TYPE test_total counter",
		"test_total 3",
		"# TYPE test_depth gauge",
		"test_depth 2.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

func TestVecSeriesSortedAndEscaped(t *testing.T) {
	r := New()
	v := r.CounterVec("jobs_total", "by kind", "kind")
	v.With("stream").Add(2)
	v.With("batch").Inc()
	v.With(`we"ird\n`).Inc()

	out := render(t, r)
	iBatch := strings.Index(out, `jobs_total{kind="batch"} 1`)
	iStream := strings.Index(out, `jobs_total{kind="stream"} 2`)
	if iBatch < 0 || iStream < 0 || iBatch > iStream {
		t.Fatalf("series missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, `jobs_total{kind="we\"ird\\n"} 1`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}
	// One TYPE line per family, not per series.
	if n := strings.Count(out, "# TYPE jobs_total"); n != 1 {
		t.Errorf("TYPE emitted %d times", n)
	}
}

func TestFuncFamiliesSampledAtScrape(t *testing.T) {
	r := New()
	val := 1.0
	r.GaugeFunc("live", "sampled", func() float64 { return val })
	r.GaugeVecFunc("states", "by state", "state", func() map[string]float64 {
		return map[string]float64{"queued": 2, "running": val}
	})
	if !strings.Contains(render(t, r), "live 1") {
		t.Fatal("first scrape missing value")
	}
	val = 7
	out := render(t, r)
	if !strings.Contains(out, "live 7") || !strings.Contains(out, `states{state="running"} 7`) {
		t.Errorf("second scrape did not resample:\n%s", out)
	}
	if !strings.Contains(out, `states{state="queued"} 2`) {
		t.Errorf("vec func series missing:\n%s", out)
	}
}

func TestFamiliesRenderInNameOrder(t *testing.T) {
	r := New()
	r.Counter("zzz_total", "")
	r.Counter("aaa_total", "")
	out := render(t, r)
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := New()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup", "")
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "") // must not panic, and the instrument still works
	c.Inc()
	if c.Value() != 1 {
		t.Error("counter from nil registry broken")
	}
	r.GaugeFunc("y", "", func() float64 { return 1 })
	if err := r.Render(&strings.Builder{}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("c", "")
	v := r.CounterVec("v", "", "l")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				v.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || v.With("a").Value() != 8000 {
		t.Errorf("lost updates: c=%v v=%v", c.Value(), v.With("a").Value())
	}
}

func TestHistogramRender(t *testing.T) {
	r := New()
	v := r.HistogramVec("dur_seconds", "phase durations", "phase", []float64{0.1, 1, 10})
	v.With("queue") // pre-touched: scrapes as a zero-shaped family
	run := v.With("run")
	run.Observe(0.05)
	run.Observe(0.5)
	run.Observe(5)
	run.Observe(50)

	out := render(t, r)
	for _, want := range []string{
		"# HELP dur_seconds phase durations",
		"# TYPE dur_seconds histogram",
		`dur_seconds_bucket{phase="queue",le="0.1"} 0`,
		`dur_seconds_bucket{phase="queue",le="+Inf"} 0`,
		`dur_seconds_sum{phase="queue"} 0`,
		`dur_seconds_count{phase="queue"} 0`,
		`dur_seconds_bucket{phase="run",le="0.1"} 1`,
		`dur_seconds_bucket{phase="run",le="1"} 2`,
		`dur_seconds_bucket{phase="run",le="10"} 3`,
		`dur_seconds_bucket{phase="run",le="+Inf"} 4`,
		`dur_seconds_sum{phase="run"} 55.55`,
		`dur_seconds_count{phase="run"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryLandsInLeBucket(t *testing.T) {
	r := New()
	v := r.HistogramVec("h", "", "phase", []float64{1})
	v.With("x").Observe(1) // le="1" is inclusive
	out := render(t, r)
	if !strings.Contains(out, `h_bucket{phase="x",le="1"} 1`) {
		t.Fatalf("observation at the bound must count in its le bucket:\n%s", out)
	}
}

func TestHistogramNilRegistry(t *testing.T) {
	var r *Registry
	v := r.HistogramVec("h", "", "phase", []float64{1})
	v.With("x").Observe(2) // must not panic
}
