// Package service is the job layer of the serving subsystem: a bounded
// queue of simulation jobs — single runs, batches over mcd.RunBatch,
// and whole table/figure/sweep experiments — executed by a fixed pool
// of job runners, with states, per-task progress, context cancellation
// and result-store integration. cmd/mcdserve exposes it over HTTP via
// NewHandler; the bounded queue means a flood of requests degrades to
// queuing (then ErrQueueFull) rather than unbounded memory growth.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcd"
	"mcd/internal/journal"
	"mcd/internal/metrics"
	"mcd/internal/resultcache"
	"mcd/internal/sim"
	"mcd/internal/stats"
	"mcd/internal/trace"
	"mcd/internal/wire"
)

// State is a job's lifecycle position.
type State string

// Job states. A cancelled job reports Failed with a context error.
const (
	Queued  State = "queued"
	Running State = "running"
	Done    State = "done"
	Failed  State = "failed"
)

// ErrQueueFull reports that the job queue is at its configured depth;
// the client should retry later (the HTTP layer maps it to 429).
var ErrQueueFull = errors.New("service: job queue full")

// ErrQuota reports that one client's share of the queue is exhausted
// while the queue itself still has room: the greedy client gets its own
// 429s (with a Retry-After) instead of starving everyone else. The HTTP
// layer distinguishes it from ErrQueueFull in the error body so clients
// can back off correctly.
var ErrQuota = errors.New("service: per-client quota exhausted")

// ErrFleet reports that the distributed run fabric behind this manager
// is saturated: every worker's queue is full past the backpressure
// threshold, so admitting more work would only grow latency. The HTTP
// layer maps it to 429 with reason "fleet".
var ErrFleet = errors.New("service: worker fleet saturated")

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("service: no such job")

// DispatchFunc executes one cache-missing, content-addressed run
// somewhere else — the fabric coordinator's Execute, in production —
// and returns the canonical result bytes and whether they were a cache
// hit. The service calls it for every spec key it would otherwise
// simulate locally; byte-identity of dispatched results is the
// fabric's contract.
type DispatchFunc func(ctx context.Context, key string, req wire.RunRequest) ([]byte, bool, error)

// maxBatchRuns bounds one batch job's size: a larger grid belongs in an
// experiment (which streams cells through the pool) or several batches.
const maxBatchRuns = 1024

// Options configures a Manager.
type Options struct {
	// Runners is the number of jobs executing concurrently (default 1:
	// one experiment at a time, each internally parallel).
	Runners int
	// QueueDepth bounds jobs waiting to run (default 64).
	QueueDepth int
	// Workers bounds the simulations running concurrently inside one
	// job; zero or negative means GOMAXPROCS.
	Workers int
	// RetainJobs bounds the job table: beyond it the oldest *terminal*
	// jobs (and their result bodies) are dropped, so a long-lived server
	// under a flood of requests holds bounded memory. Queued and running
	// jobs are never dropped. Default 512.
	RetainJobs int
	// Cache, if non-nil, backs every run with the content-addressed
	// result store.
	Cache *resultcache.Cache
	// Journal, if non-nil, persists every submission and state
	// transition; jobs the journal reports as still live (queued or
	// running when the previous process died) are re-queued under their
	// original IDs before the manager accepts new work. Rerunning them is
	// safe by the determinism contract — identical requests produce
	// byte-identical results, and completed cells hit the result cache.
	Journal *journal.Journal
	// ClientQuota bounds how many queued jobs one client (the X-Client
	// header or remote address) may hold at once; 0 or negative disables
	// the quota. Jobs submitted with an empty client ID (direct library
	// use) are exempt.
	ClientQuota int
	// Metrics receives the manager's instruments; nil creates a private
	// registry (reachable via Manager.Metrics, served at GET /metrics).
	Metrics *metrics.Registry
	// Trace, if non-nil, enables the flight recorder: job lifecycle
	// spans and per-interval controller decision records land in this
	// process-wide ring (GET /debug/trace) and in a bounded per-job
	// trace (GET /v1/jobs/{id}/trace, Chrome trace-event JSON). Nil —
	// the default — disables tracing entirely: no records, no
	// timestamps, no allocations on any path.
	Trace *trace.Ring
	// Logger receives structured job lifecycle logs (submissions,
	// starts, terminal states, journal degradation) with job-ID, client
	// and spec-key attributes; nil discards them.
	Logger *slog.Logger
	// Dispatch, if non-nil, routes every addressable run (a spec whose
	// content key derives) to the distributed fabric instead of the
	// local simulator: single runs, batch cells and experiment grid
	// cells all flow through it. Stream jobs and opaque-controller runs
	// always execute locally. Nil — the default — keeps the manager a
	// single-process server.
	Dispatch DispatchFunc
	// Gate, if non-nil, is consulted before every submission; a non-nil
	// error rejects it (mapped to 429). The coordinator wires fleet
	// saturation here so fleet-wide backpressure reaches clients as
	// ErrFleet before a job ever occupies a queue slot.
	Gate func() error
}

// Manager owns the job table, the bounded queue and the runner pool.
// The queue is a slice guarded by mu/cond rather than a channel, so
// cancelling a queued job can remove it immediately — a departed
// client's job frees its slot instead of occupying the queue until a
// runner drains it.
type Manager struct {
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	met *managerMetrics
	log *slog.Logger

	mu      sync.Mutex
	cond    *sync.Cond // signalled on pending growth and on close
	pending []*Job
	closed  bool
	jobs    map[string]*Job
	// terminal lists finished jobs still in the table, completion order
	// — the pruner's eviction queue, so pruning is O(evicted) instead
	// of a full-table scan per submission.
	terminal []string
	seq      int
	// jnl is the persistent job journal (nil: no persistence). It lives
	// behind mu so Kill can detach it atomically — a simulated crash
	// must stop journaling before the cancellation fallout writes
	// terminal states the real crash would never have written.
	jnl *journal.Journal
	// latEWMA tracks recent job latency (seconds, exponentially
	// weighted) — the basis of Retry-After on 429 responses.
	latEWMA float64
}

// New starts a manager and its runner pool. A journal in the options is
// replayed first: jobs that were queued or running when the previous
// process died are re-queued under their original IDs before the
// runners start, so a crashed server resumes exactly where it stopped.
func New(opts Options) *Manager {
	if opts.Runners <= 0 {
		opts.Runners = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.RetainJobs <= 0 {
		opts.RetainJobs = 512
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:   opts,
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*Job),
		jnl:    opts.Journal,
	}
	m.cond = sync.NewCond(&m.mu)
	m.met = newManagerMetrics(m, opts.Metrics)
	m.log = opts.Logger
	if m.log == nil {
		m.log = slog.New(slog.DiscardHandler)
	}
	replayed := 0
	for _, sub := range opts.Journal.Pending() {
		if m.restore(sub) {
			replayed++
		}
	}
	m.met.replayed.Set(float64(replayed))
	if replayed > 0 {
		m.log.Info("journal replay re-queued interrupted jobs", "jobs", replayed)
	}
	results := 0
	for _, cj := range opts.Journal.Completed() {
		if m.restoreDone(cj) {
			results++
		}
	}
	m.met.replayedResults.Set(float64(results))
	if results > 0 {
		m.log.Info("journal replay restored completed results", "jobs", results)
	}
	for i := 0; i < opts.Runners; i++ {
		m.wg.Add(1)
		go m.runLoop(i)
	}
	return m
}

// Metrics returns the manager's instrument registry (GET /metrics).
func (m *Manager) Metrics() *metrics.Registry { return m.met.reg }

// Cache returns the manager's result store (may be nil).
func (m *Manager) Cache() *resultcache.Cache { return m.opts.Cache }

// Close cancels every job, waits for the runners to drain, and fails
// whatever never got to run — so watchers (NDJSON streams, synchronous
// waiters) always observe a terminal state and shutdown never hangs on
// a queued job.
func (m *Manager) Close() {
	m.cancel()
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	for _, j := range m.jobs {
		j.cancel()
	}
	m.mu.Unlock()
	m.wg.Wait()
	m.mu.Lock()
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()
	for _, j := range pending {
		j.fail(m.ctx.Err())
	}
}

// Kill stops the manager as a crash would: the journal is detached and
// its handle closed *before* anything is cancelled, so the shutdown
// fallout writes no terminal states and the on-disk log is left exactly
// as a SIGKILL mid-run would leave it — queued and running jobs still
// live, ready for the next Manager over the same path to replay. The
// in-process resources are still released (runners drained, contexts
// cancelled), so tests can Kill without leaking goroutines.
func (m *Manager) Kill() {
	m.mu.Lock()
	jnl := m.jnl
	m.jnl = nil
	m.mu.Unlock()
	jnl.Close()
	m.Close()
}

func (m *Manager) runLoop(runner int) {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending = m.pending[1:]
		m.mu.Unlock()
		m.execute(runner, j)
	}
}

// execute runs one job, translating panics (including the harness's
// re-panicked task failures and context cancellations) into a Failed
// state so a bad run can never kill the server.
func (m *Manager) execute(runner int, j *Job) {
	// Every exit leaves the job terminal: release its context (a
	// cancelCtx stays registered on the manager's root context until
	// cancelled — a leak over a long-lived server otherwise) and let
	// the pruner see it.
	defer func() {
		j.cancel()
		m.noteTerminal(j.id)
	}()
	if err := j.ctx.Err(); err != nil {
		m.failJob(j, err)
		return
	}
	var created, started time.Time
	j.update(func(j *Job) {
		j.state = Running
		j.started = time.Now()
		created, started = j.created, j.started
	})
	m.met.jobDuration.With("queue").Observe(started.Sub(created).Seconds())
	if m.tracing() {
		m.addTrace(j, spanRec("queue", j.Key(), "", created, started))
	}
	m.log.Debug("job started", "job", j.id, "kind", j.kind, "runner", runner,
		"queue_wait", started.Sub(created))
	m.journalState(j, Running)
	label := strconv.Itoa(runner)
	m.met.runnerBusy.With(label).Set(1)
	instrBefore := sim.SimulatedInstructions()
	start := time.Now()
	var (
		body []byte
		err  error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("job panicked: %v", r)
			}
		}()
		body, err = j.run(j.ctx, j)
	}()
	dur := time.Since(start)
	m.met.runnerBusy.With(label).Set(0)
	if secs := dur.Seconds(); secs > 0 {
		// Approximate attribution: the instruction counter is
		// process-wide, so with overlapping runners this over-counts —
		// exact whenever runners don't overlap (see DESIGN.md,
		// "Operations").
		m.met.runnerMIPS.With(label).Set(float64(sim.SimulatedInstructions()-instrBefore) / secs / 1e6)
	}
	m.noteLatency(dur)
	m.met.jobDuration.With("run").Observe(dur.Seconds())
	if m.tracing() {
		m.addTrace(j, spanRec("execute", j.Key(), "", start, start.Add(dur)))
	}
	if err == nil {
		err = j.ctx.Err() // a cancelled job that limped to a result still failed
	}
	if err != nil {
		m.failJob(j, err)
		return
	}
	var finished time.Time
	var hit bool
	j.update(func(j *Job) {
		j.state = Done
		j.result = body
		j.finished = time.Now()
		finished, hit = j.finished, j.hit
	})
	if m.tracing() {
		m.addTrace(j, instantRec("done", finished))
	}
	m.log.Info("job done", "job", j.id, "kind", j.kind, "dur", dur,
		"cache_hit", hit, "spec_key", j.Key())
	m.journalResult(j, body)
	m.journalState(j, Done)
	m.met.completed.With(string(Done)).Inc()
}

// failJob marks a job Failed, journals the transition and counts it.
func (m *Manager) failJob(j *Job, err error) {
	j.fail(err)
	if m.tracing() {
		rec := instantRec("failed", time.Now())
		rec.Note = err.Error()
		m.addTrace(j, rec)
	}
	m.log.Warn("job failed", "job", j.id, "kind", j.kind, "client", j.client, "error", err)
	m.journalState(j, Failed)
	m.met.completed.With(string(Failed)).Inc()
}

// journalState persists one state transition for a journaled job. While
// the manager is shutting down nothing is written: a job failed by
// shutdown cancellation is not failed in the journal's eyes — the next
// process replays and resumes it, which is exactly the crash-safety
// contract (and makes graceful restarts resume too).
func (m *Manager) journalState(j *Job, s State) {
	if j.sub == nil || m.ctx.Err() != nil {
		return
	}
	m.mu.Lock()
	jnl := m.jnl
	m.mu.Unlock()
	if jnl == nil {
		return
	}
	if err := jnl.State(j.id, string(s)); err != nil {
		m.log.Error("journal state append failed; persistence degraded",
			"job", j.id, "state", string(s), "error", err)
		m.met.journalErrors.Inc()
	}
}

// noteLatency folds one executed job's duration into the latency EWMA.
func (m *Manager) noteLatency(d time.Duration) {
	m.mu.Lock()
	if m.latEWMA == 0 {
		m.latEWMA = d.Seconds()
	} else {
		m.latEWMA = 0.7*m.latEWMA + 0.3*d.Seconds()
	}
	m.mu.Unlock()
}

// RetryAfter estimates how long a rejected client should wait before
// retrying: the current queue drained at the recent per-job latency
// across the runner pool, floored at one second (whole seconds, as the
// Retry-After header wants).
func (m *Manager) RetryAfter() time.Duration {
	m.mu.Lock()
	depth := len(m.pending)
	lat := m.latEWMA
	m.mu.Unlock()
	if lat == 0 {
		lat = 1
	}
	secs := lat * float64(depth+1) / float64(m.opts.Runners)
	if secs < 1 {
		secs = 1
	}
	return time.Duration(math.Ceil(secs)) * time.Second
}

// submit registers and enqueues an anonymous, unjournaled job; kind and
// total label it, run produces the result body.
func (m *Manager) submit(kind string, total int, run func(ctx context.Context, j *Job) ([]byte, error)) (*Job, error) {
	return m.enqueue("", nil, kind, total, run)
}

// enqueue registers and enqueues a job. A non-empty client is charged
// against the per-client quota; a non-nil sub is persisted to the
// journal (its ID is filled in here) so the job survives a crash.
func (m *Manager) enqueue(client string, sub *journal.Submit, kind string, total int, run func(ctx context.Context, j *Job) ([]byte, error)) (*Job, error) {
	// The admission gate runs before any state is taken: fleet-wide
	// backpressure (the fabric's saturation signal) rejects here, so a
	// saturated fleet sheds load at the front door instead of queueing
	// work it cannot start.
	if m.opts.Gate != nil {
		if err := m.opts.Gate(); err != nil {
			m.met.rejected.With("fleet").Inc()
			return nil, err
		}
	}
	jctx, jcancel := context.WithCancel(m.ctx)
	m.mu.Lock()
	if m.closed || len(m.pending) >= m.opts.QueueDepth {
		closed := m.closed
		m.mu.Unlock()
		jcancel()
		if closed {
			return nil, errors.New("service: manager closed")
		}
		m.met.rejected.With("queue").Inc()
		return nil, ErrQueueFull
	}
	if client != "" && m.opts.ClientQuota > 0 {
		queued := 0
		for _, q := range m.pending {
			if q.client == client {
				queued++
			}
		}
		if queued >= m.opts.ClientQuota {
			m.mu.Unlock()
			jcancel()
			m.met.rejected.With("quota").Inc()
			return nil, fmt.Errorf("%w: client %q already holds %d queued jobs", ErrQuota, client, queued)
		}
	}
	m.seq++
	j := &Job{
		id:      fmt.Sprintf("j%06d", m.seq),
		kind:    kind,
		client:  client,
		sub:     sub,
		state:   Queued,
		total:   total,
		created: time.Now(),
		ctx:     jctx,
		cancel:  jcancel,
		watch:   make(chan struct{}),
		run:     run,
	}
	if m.tracing() {
		j.trc = trace.NewRing(maxJobTraceRecords)
	}
	if sub != nil {
		sub.ID = j.id
		sub.Client = client
	}
	m.jobs[j.id] = j
	m.pending = append(m.pending, j)
	m.pruneLocked()
	m.cond.Signal()
	jnl := m.jnl
	m.mu.Unlock()
	if m.tracing() {
		m.addTrace(j, instantRec("submit", j.created))
	}
	m.log.Info("job submitted", "job", j.id, "kind", kind, "client", client)
	m.met.submitted.With(kindLabel(kind)).Inc()
	// The fsync happens outside the queue lock: a slow disk delays this
	// submitter's acknowledgement, never the runner pool. A failed
	// append degrades persistence (counted, job still runs) rather than
	// failing the submission.
	if sub != nil && jnl != nil {
		if err := jnl.Submit(*sub); err != nil {
			m.log.Error("journal append failed; persistence degraded", "job", j.id, "error", err)
			m.met.journalErrors.Inc()
		}
	}
	return j, nil
}

// kindLabel collapses "experiment:<name>" into one metric label value
// per job family, keeping the submitted-counter cardinality bounded.
func kindLabel(kind string) string {
	if k, _, ok := strings.Cut(kind, ":"); ok {
		return k
	}
	return kind
}

// jobFor reconstructs a journaled submission into its executable form:
// the display kind, the progress total, and the run closure. It is the
// single translation both live submissions and journal replay use, so a
// replayed job is — by construction — the same computation its original
// submission described.
func (m *Manager) jobFor(sub *journal.Submit) (kind string, total int, run func(ctx context.Context, j *Job) ([]byte, error), err error) {
	switch sub.Kind {
	case journal.KindRun:
		if sub.Run == nil {
			return "", 0, nil, errors.New("service: run submission without a request")
		}
		if err := sub.Run.Validate(); err != nil {
			return "", 0, nil, err
		}
		return "run", 1, m.runRun(*sub.Run), nil
	case journal.KindStream:
		if sub.Run == nil {
			return "", 0, nil, errors.New("service: stream submission without a request")
		}
		if err := sub.Run.Validate(); err != nil {
			return "", 0, nil, err
		}
		return "stream", 1, m.runStream(*sub.Run), nil
	case journal.KindBatch:
		if len(sub.Runs) == 0 {
			return "", 0, nil, errors.New("service: empty batch")
		}
		if len(sub.Runs) > maxBatchRuns {
			return "", 0, nil, fmt.Errorf("service: batch of %d runs exceeds the %d-run bound", len(sub.Runs), maxBatchRuns)
		}
		for i, r := range sub.Runs {
			if err := r.Validate(); err != nil {
				return "", 0, nil, fmt.Errorf("run %d: %w", i, err)
			}
		}
		return "batch", len(sub.Runs), m.runBatch(sub.Runs), nil
	case journal.KindExperiment:
		if sub.Experiment == nil {
			return "", 0, nil, errors.New("service: experiment submission without a request")
		}
		if err := sub.Experiment.Validate(); err != nil {
			return "", 0, nil, err
		}
		return "experiment:" + sub.Experiment.Name, 0, m.runExperiment(*sub.Experiment), nil
	}
	return "", 0, nil, fmt.Errorf("service: unknown journaled job kind %q", sub.Kind)
}

// restore re-queues one journaled job under its original ID, reporting
// whether it was re-queued. A submission that no longer validates (the
// registry changed across the restart) lands in the table as Failed —
// visible to its watchers, dropped at the next compaction — instead of
// blocking startup.
func (m *Manager) restore(sub journal.Submit) bool {
	seq := 0
	if n, err := strconv.Atoi(strings.TrimPrefix(sub.ID, "j")); err == nil {
		seq = n
	}
	kind, total, run, ferr := m.jobFor(&sub)
	jctx, jcancel := context.WithCancel(m.ctx)
	j := &Job{
		id:      sub.ID,
		kind:    kind,
		client:  sub.Client,
		sub:     &sub,
		state:   Queued,
		total:   total,
		created: time.Now(),
		ctx:     jctx,
		cancel:  jcancel,
		watch:   make(chan struct{}),
		run:     run,
	}
	if m.tracing() {
		j.trc = trace.NewRing(maxJobTraceRecords)
	}
	if ferr != nil {
		j.kind = sub.Kind
	}
	m.mu.Lock()
	if _, dup := m.jobs[j.id]; dup || j.id == "" {
		m.mu.Unlock()
		jcancel()
		return false
	}
	if seq > m.seq {
		m.seq = seq
	}
	m.jobs[j.id] = j
	if ferr == nil {
		m.pending = append(m.pending, j)
		m.cond.Signal()
	}
	m.mu.Unlock()
	if ferr != nil {
		jcancel()
		m.failJob(j, fmt.Errorf("journal replay: %w", ferr))
		m.noteTerminal(j.id)
		return false
	}
	return true
}

// restoreDone restores one journaled completed job as a Done table
// entry under its original ID, with the exact result bytes the
// previous process produced — so a restart does not lose results no
// cache tier could reproduce. The entry is unjournaled (sub nil): it
// is already terminal on disk and ages out of the table normally.
func (m *Manager) restoreDone(cj journal.CompletedJob) bool {
	sub := cj.Submit
	if sub.ID == "" || len(cj.Body) == 0 {
		return false
	}
	seq := 0
	if n, err := strconv.Atoi(strings.TrimPrefix(sub.ID, "j")); err == nil {
		seq = n
	}
	task := ""
	if sub.Run != nil {
		task = sub.Run.Normalize().Benchmark + "/" + sub.Run.ControllerName()
	}
	now := time.Now()
	jctx, jcancel := context.WithCancel(m.ctx)
	j := &Job{
		id: sub.ID, kind: sub.Kind, client: sub.Client,
		state: Done, done: 1, total: 1, task: task,
		result:  cj.Body,
		created: now, started: now, finished: now,
		ctx: jctx, cancel: jcancel, watch: make(chan struct{}),
	}
	m.mu.Lock()
	if _, dup := m.jobs[j.id]; dup || j.id == "" {
		m.mu.Unlock()
		jcancel()
		return false
	}
	if seq > m.seq {
		m.seq = seq
	}
	m.jobs[j.id] = j
	m.mu.Unlock()
	jcancel() // already terminal; release the context immediately
	m.noteTerminal(j.id)
	return true
}

// journalResult persists the completed result bytes of a job whose
// output nothing else can reproduce: runs with no result store behind
// the manager, or runs whose controller has no content address (so the
// store could never hold them). Addressable runs skip it — the result
// cache's disk tier already owns those bytes.
func (m *Manager) journalResult(j *Job, body []byte) {
	if j.sub == nil || j.sub.Run == nil || m.ctx.Err() != nil {
		return
	}
	if len(body) > journal.MaxResultBytes {
		return
	}
	if m.opts.Cache != nil {
		if _, err := j.sub.Run.Key(); err == nil {
			return // content-addressed and stored: the cache replays it
		}
	}
	m.mu.Lock()
	jnl := m.jnl
	m.mu.Unlock()
	if jnl == nil {
		return
	}
	if err := jnl.Result(j.id, body); err != nil {
		m.log.Error("journal result append failed; persistence degraded",
			"job", j.id, "error", err)
		m.met.journalErrors.Inc()
	}
}

// submitAs validates and enqueues one journaled submission on behalf of
// client — the shared entry behind every Submit*As method.
func (m *Manager) submitAs(client string, sub *journal.Submit) (*Job, error) {
	kind, total, run, err := m.jobFor(sub)
	if err != nil {
		return nil, err
	}
	return m.enqueue(client, sub, kind, total, run)
}

// runRun is the run closure of a single-run job. It executes through
// the stepped session (RunStream with no observer): byte-identical to
// RunCachedBytes by the session contract, but the job's context is
// consulted every control interval, so cancellation — DELETE, a
// departed synchronous client, shutdown — aborts the simulation at the
// next interval boundary instead of after the full window.
func (m *Manager) runRun(r wire.RunRequest) func(ctx context.Context, j *Job) ([]byte, error) {
	return func(ctx context.Context, j *Job) ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		body, hit, dispatched, err := m.runOrDispatch(ctx, r, func() ([]byte, bool, error) {
			return r.RunStreamHooked(ctx, m.opts.Cache, m.runHooks(j, r, nil))
		})
		if err != nil {
			return nil, err
		}
		j.update(func(j *Job) {
			j.done = 1
			j.task = r.Normalize().Benchmark + "/" + r.ControllerName()
			j.hit = hit
			j.dispatched = dispatched
		})
		return body, nil
	}
}

// runOrDispatch routes one run: through the fabric dispatch hook when
// one is configured and the spec has a content address, locally
// otherwise (no hook, or an opaque controller the fabric cannot
// re-derive a key for).
func (m *Manager) runOrDispatch(ctx context.Context, r wire.RunRequest, local func() ([]byte, bool, error)) (body []byte, hit, dispatched bool, err error) {
	if m.opts.Dispatch != nil {
		if key, kerr := r.Key(); kerr == nil {
			body, hit, err = m.opts.Dispatch(ctx, key, r)
			return body, hit, true, err
		}
	}
	body, hit, err = local()
	return body, hit, false, err
}

// SubmitRun enqueues one simulation run (see runRun for its execution
// contract).
func (m *Manager) SubmitRun(r wire.RunRequest) (*Job, error) {
	return m.SubmitRunAs("", r)
}

// SubmitRunAs is SubmitRun with a client identity: the submission is
// charged against the per-client quota and journaled for crash replay.
func (m *Manager) SubmitRunAs(client string, r wire.RunRequest) (*Job, error) {
	return m.submitAs(client, &journal.Submit{Kind: journal.KindRun, Run: &r})
}

// runStream is the run closure of a stream job: the measured control
// intervals are published on the job as they are produced (the backing
// of the service's "stream" run mode), watchers drain them with
// IntervalsSince, interleaved with the usual progress snapshots.
// Cancellation — DELETE, a departed client, shutdown — closes the
// stepped session at the next interval boundary; the partial result is
// discarded and the job reports Failed with the context error. A
// completed streamed run stores bytes identical to a one-shot run of
// the same request, so the follow-up identical request is a cache hit.
func (m *Manager) runStream(r wire.RunRequest) func(ctx context.Context, j *Job) ([]byte, error) {
	return func(ctx context.Context, j *Job) ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		j.update(func(j *Job) {
			j.task = r.Normalize().Benchmark + "/" + r.ControllerName()
		})
		body, hit, err := r.RunStreamHooked(ctx, m.opts.Cache, m.runHooks(j, r, j.pushInterval))
		if err != nil {
			return nil, err
		}
		j.update(func(j *Job) {
			j.done = 1
			j.hit = hit
		})
		return body, nil
	}
}

// SubmitStream enqueues one streamed simulation run (see runStream).
func (m *Manager) SubmitStream(r wire.RunRequest) (*Job, error) {
	return m.SubmitStreamAs("", r)
}

// SubmitStreamAs is SubmitStream with a client identity for quota
// accounting and crash-replayable journaling.
func (m *Manager) SubmitStreamAs(client string, r wire.RunRequest) (*Job, error) {
	return m.submitAs(client, &journal.Submit{Kind: journal.KindStream, Run: &r})
}

// runBatch is the run closure of a batch job: the runs fan out through
// mcd.RunBatch on the manager's worker bound and result store; the
// result body is a JSON array of canonical result encodings in
// submission order.
func (m *Manager) runBatch(reqs []wire.RunRequest) func(ctx context.Context, j *Job) ([]byte, error) {
	return func(ctx context.Context, j *Job) ([]byte, error) {
		// Each run keeps its canonical body (indexes are distinct, so
		// the slice needs no lock); the assembled array reuses those
		// bytes instead of a decode/re-encode round trip per run.
		bodies := make([][]byte, len(reqs))
		batch := make([]mcd.RunRequest, len(reqs))
		var anyDispatched atomic.Bool
		for i, r := range reqs {
			i, r := i, r
			n := r.Normalize()
			batch[i] = mcd.RunRequest{
				Name: fmt.Sprintf("%s/%s", n.Benchmark, r.ControllerName()),
				Do: func(tctx context.Context) (mcd.Result, error) {
					b, _, dispatched, err := m.runOrDispatch(tctx, r, func() ([]byte, bool, error) {
						return r.RunCachedBytes(m.opts.Cache)
					})
					if dispatched {
						anyDispatched.Store(true)
					}
					bodies[i] = b
					return mcd.Result{}, err
				},
			}
		}
		outs, err := mcd.RunBatch(ctx, batch, mcd.BatchOptions{
			Workers: m.opts.Workers,
			Progress: func(done, total int, name string) {
				j.update(func(j *Job) { j.done, j.total, j.task = done, total, name })
			},
		})
		if err != nil {
			return nil, err
		}
		results := make([]json.RawMessage, len(outs))
		for i, o := range outs {
			if o.Err != nil {
				return nil, fmt.Errorf("%s: %w", o.Name, o.Err)
			}
			b := bodies[i]
			results[i] = b[:len(b)-1] // strip canonical trailing newline inside the array
		}
		if anyDispatched.Load() {
			j.update(func(j *Job) { j.dispatched = true })
		}
		body, err := json.Marshal(results)
		if err != nil {
			return nil, err
		}
		return append(body, '\n'), nil
	}
}

// SubmitBatch enqueues a set of runs (see runBatch).
func (m *Manager) SubmitBatch(reqs []wire.RunRequest) (*Job, error) {
	return m.SubmitBatchAs("", reqs)
}

// SubmitBatchAs is SubmitBatch with a client identity for quota
// accounting and crash-replayable journaling.
func (m *Manager) SubmitBatchAs(client string, reqs []wire.RunRequest) (*Job, error) {
	return m.submitAs(client, &journal.Submit{Kind: journal.KindBatch, Runs: reqs})
}

// runExperiment is the run closure of a whole table/figure/sweep; the
// result body is the canonical wire.ExperimentResult encoding.
func (m *Manager) runExperiment(e wire.ExperimentRequest) func(ctx context.Context, j *Job) ([]byte, error) {
	return func(ctx context.Context, j *Job) ([]byte, error) {
		opts := e.Options()
		opts.Workers = m.opts.Workers
		opts.Cache = m.opts.Cache
		opts.Context = ctx
		opts.Progress = func(done, total int, name string) {
			j.update(func(j *Job) { j.done, j.total, j.task = done, total, name })
		}
		if dispatch := m.opts.Dispatch; dispatch != nil {
			// Every addressable grid cell of the experiment flows to the
			// fleet; the adapter proves the cell's content address equals
			// the wire request's before any bytes cross a process.
			opts.Exec = wire.ExecAdapter(func(ctx context.Context, key string, req wire.RunRequest) ([]byte, error) {
				b, _, err := dispatch(ctx, key, req)
				return b, err
			})
			j.update(func(j *Job) { j.dispatched = true })
		}
		res, err := wire.RunExperimentRequest(opts, e)
		if err != nil {
			return nil, err
		}
		return wire.EncodeExperiment(res)
	}
}

// SubmitExperiment enqueues a whole experiment (see runExperiment).
func (m *Manager) SubmitExperiment(e wire.ExperimentRequest) (*Job, error) {
	return m.SubmitExperimentAs("", e)
}

// SubmitExperimentAs is SubmitExperiment with a client identity for
// quota accounting and crash-replayable journaling.
func (m *Manager) SubmitExperimentAs(client string, e wire.ExperimentRequest) (*Job, error) {
	return m.submitAs(client, &journal.Submit{Kind: journal.KindExperiment, Experiment: &e})
}

// maxTerminalIntervalLogs is how many finished jobs keep their interval
// logs. A terminal stream job's log exists only for watchers still
// draining its final frames; beyond the most recent few, the records
// are dead weight (up to ~maxJobIntervals × the record size per job,
// across up to RetainJobs jobs), so older logs are released and a late
// watcher sees an explicit gap frame instead.
const maxTerminalIntervalLogs = 8

// noteTerminal records a finished job for the pruner, releases the
// interval log of the job that just aged past the retained window, and
// — when enough terminal history has accumulated — compacts the journal
// down to the still-live submissions. The live set is gathered under
// the lock; the rewrite (disk I/O) happens outside it.
func (m *Manager) noteTerminal(id string) {
	m.mu.Lock()
	m.terminal = append(m.terminal, id)
	if idx := len(m.terminal) - 1 - maxTerminalIntervalLogs; idx >= 0 {
		if j, ok := m.jobs[m.terminal[idx]]; ok {
			j.dropIntervals()
			// The trace buffer ages out on the same window: past the
			// recent terminal jobs it is dead weight the same way the
			// interval log is (see maxTerminalIntervalLogs).
			j.dropTrace()
		}
	}
	m.pruneLocked()
	jnl := m.jnl
	var live []journal.Submit
	compact := jnl.ShouldCompact()
	if compact {
		live = m.liveSubmitsLocked()
	}
	m.mu.Unlock()
	if compact {
		if err := jnl.Compact(live); err != nil {
			m.log.Error("journal compaction failed; persistence degraded", "error", err)
			m.met.journalErrors.Inc()
		}
	}
}

// liveSubmitsLocked snapshots the journaled submissions of every job
// still queued or running, in submission order — the survivor set a
// journal compaction keeps. Callers hold m.mu.
func (m *Manager) liveSubmitsLocked() []journal.Submit {
	var live []journal.Submit
	for _, j := range m.jobs {
		if j.sub == nil {
			continue
		}
		j.mu.Lock()
		s := j.state
		j.mu.Unlock()
		if s == Queued || s == Running {
			live = append(live, *j.sub)
		}
	}
	sort.Slice(live, func(a, b int) bool {
		x, y := live[a].ID, live[b].ID
		if len(x) != len(y) {
			return len(x) < len(y)
		}
		return x < y
	})
	return live
}

// pruneLocked drops the oldest-finished jobs (and their result bodies)
// once the table exceeds RetainJobs, bounding a long-lived server's
// memory. Queued and running jobs are never dropped. Callers hold m.mu.
func (m *Manager) pruneLocked() {
	for len(m.jobs) > m.opts.RetainJobs && len(m.terminal) > 0 {
		delete(m.jobs, m.terminal[0])
		m.terminal = m.terminal[1:]
	}
}

// Job returns a job by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel cancels a job: a still-queued job is removed from the queue —
// freeing its slot — and fails immediately; a running experiment's
// context aborts it between simulations.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return false
	}
	dequeued := false
	for i, q := range m.pending {
		if q == j {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			dequeued = true
			break
		}
	}
	m.mu.Unlock()
	j.cancel()
	m.met.cancelled.Inc()
	if dequeued {
		// An explicit user cancel is terminal in the journal too: unlike a
		// shutdown cancellation, the job must not resurrect at the next
		// restart.
		m.failJob(j, context.Canceled)
		m.noteTerminal(j.id)
	}
	return true
}

// Jobs snapshots every known job, newest first.
func (m *Manager) Jobs() []Snapshot {
	m.mu.Lock()
	js := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	snaps := make([]Snapshot, len(js))
	for i, j := range js {
		snaps[i] = j.Snapshot()
	}
	// IDs are sequence numbers zero-padded to six digits; comparing by
	// (length, string) keeps submission order even past a million jobs
	// in one process lifetime. Newest first.
	sort.Slice(snaps, func(a, b int) bool {
		x, y := snaps[a].ID, snaps[b].ID
		if len(x) != len(y) {
			return len(x) > len(y)
		}
		return x > y
	})
	return snaps
}

// Job is one unit of queued work. All fields are guarded by mu and read
// through Snapshot.
type Job struct {
	id     string
	kind   string
	client string          // quota identity; empty for direct library use
	sub    *journal.Submit // journaled submission; nil for unjournaled jobs

	ctx    context.Context
	cancel context.CancelFunc
	run    func(ctx context.Context, j *Job) ([]byte, error)

	mu         sync.Mutex
	state      State
	done       int
	total      int
	task       string
	errMsg     string
	result     []byte
	hit        bool
	dispatched bool
	created    time.Time
	started    time.Time
	finished   time.Time
	watch      chan struct{}

	// Interval log of a stream job: ivs[0] is interval number ivBase of
	// the run (the log is bounded; a watcher that lags more than
	// maxJobIntervals skips the overwritten records).
	ivBase int
	ivs    []stats.Interval

	// key is the content-addressed spec key of a run-family job, once
	// computed; trc is the job's bounded flight-recorder trace (nil
	// with tracing disabled or after aging out).
	key string
	trc *trace.Ring
}

// maxJobIntervals bounds one job's retained interval log, so a streamed
// run over an enormous window cannot grow server memory without bound:
// live watchers drain the log far faster than simulation fills it, and
// a lagging watcher observes a gap rather than the server an OOM.
const maxJobIntervals = 8192

// pushInterval appends one measured interval record and wakes watchers.
func (j *Job) pushInterval(iv stats.Interval) {
	j.update(func(j *Job) {
		j.ivs = append(j.ivs, iv)
		if drop := len(j.ivs) - maxJobIntervals; drop > 0 {
			j.ivBase += drop
			j.ivs = j.ivs[:copy(j.ivs, j.ivs[drop:])]
		}
	})
}

// dropIntervals releases the job's interval log; remaining watchers
// observe the dropped records as an explicit gap.
func (j *Job) dropIntervals() {
	j.mu.Lock()
	j.ivBase += len(j.ivs)
	j.ivs = nil
	j.mu.Unlock()
}

// IntervalsSince returns copies of the interval records produced at or
// after absolute interval index n, the next index to resume from, and
// how many records between n and the first returned one were already
// overwritten (a consumer lagging past the log bound — report it, never
// drop it silently). Pair it with Watch/Snapshot exactly like progress
// polling: take the watch channel, read the snapshot, then drain
// intervals.
func (j *Job) IntervalsSince(n int) (ivs []stats.Interval, next, dropped int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n < j.ivBase {
		dropped = j.ivBase - n
		n = j.ivBase
	}
	end := j.ivBase + len(j.ivs)
	if n >= end {
		return nil, end, dropped
	}
	return append([]stats.Interval(nil), j.ivs[n-j.ivBase:]...), end, dropped
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// update applies fn under the job lock and wakes every watcher.
func (j *Job) update(fn func(*Job)) {
	j.mu.Lock()
	fn(j)
	close(j.watch)
	j.watch = make(chan struct{})
	j.mu.Unlock()
}

func (j *Job) fail(err error) {
	j.update(func(j *Job) {
		j.state = Failed
		j.errMsg = err.Error()
		j.finished = time.Now()
	})
}

// Watch returns a channel closed at the next state/progress change;
// callers grab it before Snapshot so no update is missed.
func (j *Job) Watch() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.watch
}

// Result returns the finished job's body.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Done {
		return nil, false
	}
	return j.result, true
}

// Snapshot is the JSON shape of a job's observable state.
type Snapshot struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State State  `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total,omitempty"`
	Task  string `json:"task,omitempty"`
	Error string `json:"error,omitempty"`
	// CacheHit reports that a single-run job was served from the result
	// store.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Dispatched reports that some or all of the job's simulations ran
	// on the distributed fabric rather than in this process.
	Dispatched bool      `json:"dispatched,omitempty"`
	Created    time.Time `json:"created"`
	Started    time.Time `json:"started,omitzero"`
	Finished   time.Time `json:"finished,omitzero"`
}

// Terminal reports whether the job has stopped moving.
func (s Snapshot) Terminal() bool { return s.State == Done || s.State == Failed }

// Snapshot copies the job's observable state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID: j.id, Kind: j.kind, State: j.state,
		Done: j.done, Total: j.total, Task: j.task,
		Error: j.errMsg, CacheHit: j.hit, Dispatched: j.dispatched,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
}

// WaitResult blocks until the job finishes (or ctx is cancelled) and
// returns the result body and final snapshot.
func (j *Job) WaitResult(ctx context.Context) ([]byte, Snapshot, error) {
	for {
		ch := j.Watch()
		snap := j.Snapshot()
		if snap.Terminal() {
			if snap.State == Failed {
				return nil, snap, errors.New(snap.Error)
			}
			body, _ := j.Result()
			return body, snap, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, snap, ctx.Err()
		}
	}
}
