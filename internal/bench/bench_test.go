package bench

import (
	"reflect"
	"strings"
	"testing"

	"mcd/internal/clock"
	"mcd/internal/resultcache"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// tiny returns options small enough for unit tests.
func tiny() Options {
	o := DefaultOptions()
	o.Window = 60_000
	o.Warmup = 30_000
	o.IntervalLength = 500
	o.OfflineIters = 2
	o.Benchmarks = []string{"adpcm"}
	return o
}

// TestSweepControllerShapes: the registry-generic sweep produces one
// point per value for any registered controller, reuses completed cells
// through the cache, and rejects unknown names through the registry's
// errors.
func TestSweepControllerShapes(t *testing.T) {
	o := tiny()
	o.Window, o.Warmup = 20_000, 10_000
	c, err := resultcache.New(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o.Cache = c

	values := []float64{0.02, 0.1}
	pts, err := o.SweepController("pi", "kp", values, map[string]float64{"setpoint": 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(values) {
		t.Fatalf("got %d points, want %d", len(pts), len(values))
	}
	for i, p := range pts {
		if p.Value != values[i] {
			t.Errorf("point %d value %v, want %v", i, p.Value, values[i])
		}
	}
	misses := c.Stats().Misses

	// The same sweep again must recompute nothing and summarize
	// identically.
	again, err := o.SweepController("pi", "kp", values, map[string]float64{"setpoint": 3})
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != misses {
		t.Errorf("repeat sweep simulated %d new cells", s.Misses-misses)
	}
	for i := range pts {
		if again[i] != pts[i] {
			t.Errorf("point %d differs across cached repeat", i)
		}
	}

	// Default values come from the schema's documented range.
	defPts, err := o.SweepController("coord", "budget_mhz", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(defPts) < 2 {
		t.Fatalf("range-sampled sweep produced %d points", len(defPts))
	}

	if _, err := o.SweepController("bogus", "kp", values, nil); err == nil || !strings.Contains(err.Error(), "pi") {
		t.Errorf("unknown controller error %v should list the valid set", err)
	}
	if _, err := o.SweepController("pi", "bogus", values, nil); err == nil || !strings.Contains(err.Error(), "kp") {
		t.Errorf("unknown parameter error %v should list the schema", err)
	}
}

func TestStaticTablesRender(t *testing.T) {
	for name, s := range map[string]string{
		"table1": Table1(), "table2": Table2(), "table3": Table3(),
		"table4": Table4(), "table5": Table5(),
	} {
		if len(s) < 100 {
			t.Errorf("%s suspiciously short:\n%s", name, s)
		}
	}
	if !strings.Contains(Table3(), "476") {
		t.Error("Table 3 must contain the 476 gates/domain figure")
	}
	if got := strings.Count(Table5(), "\n"); got < 30 {
		t.Errorf("Table 5 has %d lines, want >= 30 benchmarks", got)
	}
	if !strings.Contains(Table1(), "49.1 ns/MHz") {
		t.Error("Table 1 must contain the XScale slew rate")
	}
}

func TestRunComparisonProducesAllConfigs(t *testing.T) {
	o := tiny()
	b, _ := workload.Lookup("adpcm")
	c := o.RunComparison(b)
	for name, r := range map[string]uint64{
		"sync": c.Sync.Instructions, "mcd": c.MCDBase.Instructions,
		"ad": c.AD.Instructions, "dyn1": c.Dyn1.Instructions,
		"dyn5": c.Dyn5.Instructions, "gad": c.GlobalAD.Instructions,
	} {
		if r != o.Window {
			t.Errorf("%s retired %d, want %d", name, r, o.Window)
		}
	}
	// The Attack/Decay run must save energy vs the MCD baseline on this
	// FP-free workload.
	if c.AD.EnergyPJ >= c.MCDBase.EnergyPJ {
		t.Error("Attack/Decay saved no energy on adpcm")
	}
	t6 := Table6([]Comparison{c})
	if !strings.Contains(t6, "Attack/Decay") || !strings.Contains(t6, "Global (Dynamic-5%)") {
		t.Errorf("Table 6 missing rows:\n%s", t6)
	}
	f4 := Fig4([]Comparison{c})
	if !strings.Contains(f4, "adpcm") || !strings.Contains(f4, "average") {
		t.Errorf("Figure 4 malformed:\n%s", f4)
	}
	h := Headline([]Comparison{c})
	if !strings.Contains(h, "vs baseline MCD") {
		t.Errorf("headline malformed:\n%s", h)
	}
}

func TestTraceEmitsFigureSeries(t *testing.T) {
	to := TraceOptions{Options: tiny()}
	to.Window = 100_000
	res, err := to.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) < 100 {
		t.Fatalf("only %d intervals recorded", len(res.Intervals))
	}
	csv := FigureCSV(res, clock.FloatingPoint)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != len(res.Intervals)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(res.Intervals)+1)
	}
	if !strings.HasPrefix(lines[0], "instructions,") {
		t.Errorf("CSV header wrong: %s", lines[0])
	}
	if _, err := to.Trace(); err != nil {
		t.Fatal(err)
	}
	bad := TraceOptions{Options: tiny(), Benchmark: "nonesuch"}
	if _, err := bad.Trace(); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestSweepShapes(t *testing.T) {
	o := tiny()
	pts := o.SweepDecay([]float64{0.00175, 0.0125})
	if len(pts) != 2 {
		t.Fatalf("got %d sweep points", len(pts))
	}
	for _, p := range pts {
		if p.Summary.N != 1 {
			t.Errorf("sweep point summarized %d benchmarks, want 1", p.Summary.N)
		}
	}
	if pts[0].Value != 0.00175 || pts[1].Value != 0.0125 {
		t.Error("sweep values out of order")
	}
	out := FormatSweep("fig6a", "decay", pts)
	if !strings.Contains(out, "EDPImprov") {
		t.Errorf("sweep format malformed:\n%s", out)
	}
}

func TestCatalogFilter(t *testing.T) {
	o := DefaultOptions()
	if got := len(o.catalog()); got != 30 {
		t.Errorf("unfiltered catalog = %d, want 30", got)
	}
	o.Benchmarks = []string{"mcf", "swim"}
	if got := len(o.catalog()); got != 2 {
		t.Errorf("filtered catalog = %d, want 2", got)
	}
	if got := len(QuickOptions().catalog()); got != 10 {
		t.Errorf("quick catalog = %d, want 10", got)
	}
}

// FollowTrace's contracts: cold, the observer sees exactly the recorded
// intervals (so -follow rows are byte-identical to post-hoc FigureCSV
// output); warm, the cache hit replays the stored records through the
// observer with the same rows.
func TestFollowTraceMatchesTrace(t *testing.T) {
	o := tiny()
	c, err := resultcache.New(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o.Cache = c

	rows := func(emitted []stats.Interval) string {
		s := FigureCSVHeader()
		prev := 0.0
		for i, iv := range emitted {
			s += FigureCSVRow(i, iv, prev, clock.FloatingPoint)
			prev = iv.QueueUtil[clock.FloatingPoint]
		}
		return s
	}

	var cold []stats.Interval
	res, err := o.FollowTrace("adpcm", func(iv stats.Interval) { cold = append(cold, iv) })
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) == 0 || !reflect.DeepEqual(cold, res.Intervals) {
		t.Fatalf("cold follow emitted %d intervals, result recorded %d", len(cold), len(res.Intervals))
	}
	if rows(cold) != FigureCSV(res, clock.FloatingPoint) {
		t.Error("streamed rows differ from post-hoc FigureCSV")
	}

	var warm []stats.Interval
	res2, err := o.FollowTrace("adpcm", func(iv stats.Interval) { warm = append(warm, iv) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Error("warm FollowTrace result differs from cold")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Error("cache-hit replay emitted different intervals")
	}
	if c.Stats().Hits() == 0 {
		t.Error("second FollowTrace did not hit the cache")
	}

	if _, err := o.FollowTrace("bogus", nil); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
