package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mcd/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// grid returns the 6-benchmark equivalence-test configuration: small
// enough for -race CI (the full grid is simulated nine times across
// these tests), large enough that every controller actually retargets.
func grid() Options {
	o := DefaultOptions()
	o.Window = 6_000
	o.Warmup = 3_000
	o.IntervalLength = 500
	o.OfflineIters = 2
	o.Benchmarks = []string{"adpcm", "epic", "mesa", "em3d", "mcf", "gzip"}
	return o
}

// TestRunAllDeterministicAcrossWorkers is the harness-level determinism
// equivalence test: the 6-benchmark comparison grid must produce
// identical stats.Result values — and therefore byte-identical tables —
// through the serial path (one worker) and through the pool at 4 and 8
// workers. Any divergence means two simulations shared mutable state.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	serialOpts := grid()
	serialOpts.Workers = 1
	serial := serialOpts.RunAll()
	if len(serial) != 6 {
		t.Fatalf("grid ran %d benchmarks, want 6", len(serial))
	}

	// The per-benchmark entry point must agree with the batched one.
	one := serialOpts.RunComparison(serial[2].Bench)
	if !reflect.DeepEqual(one, serial[2]) {
		t.Errorf("RunComparison(%s) diverged from RunAll row", serial[2].Bench.Name)
	}

	for _, workers := range []int{4, 8} {
		o := grid()
		o.Workers = workers
		got := o.RunAll()
		for i := range got {
			if !reflect.DeepEqual(got[i], serial[i]) {
				t.Errorf("workers=%d: benchmark %s diverged from serial run",
					workers, serial[i].Bench.Name)
			}
		}
		for name, f := range map[string]func([]Comparison) string{
			"table6": Table6, "fig4": Fig4, "headline": Headline,
		} {
			if f(got) != f(serial) {
				t.Errorf("workers=%d: %s output not byte-identical to serial output", workers, name)
			}
		}
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	mk := func(workers int) []SweepPoint {
		o := grid()
		o.Benchmarks = []string{"adpcm", "mcf"}
		o.Workers = workers
		return o.SweepDecay([]float64{0.00175, 0.0125})
	}
	serial := mk(1)
	for _, workers := range []int{4, 8} {
		if got := mk(workers); !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: sweep diverged from serial sweep", workers)
		}
	}
}

// TestTable6GoldenStable snapshots a small fixed-Options Table 6 and
// asserts it is stable across repeated runs and across worker counts; the
// snapshot is also pinned in testdata (refresh with -update) so an
// accidental change to the simulator or the formatter shows up as a
// diff, not silently.
func TestTable6GoldenStable(t *testing.T) {
	mk := func(workers int) string {
		o := grid()
		o.Benchmarks = []string{"adpcm", "mcf"}
		o.Workers = workers
		return Table6(o.RunAll())
	}
	first := mk(1)
	for run, workers := range []int{4, 8} {
		if got := mk(workers); got != first {
			t.Fatalf("run %d (workers=%d) changed Table 6:\n--- first\n%s\n--- got\n%s",
				run, workers, first, got)
		}
	}

	golden := filepath.Join("testdata", "table6_small.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(first), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with: go test ./internal/bench -run Golden -update): %v", err)
	}
	if !bytes.Equal(want, []byte(first)) {
		t.Errorf("Table 6 deviates from golden snapshot (refresh with -update if intended):\n--- golden\n%s\n--- got\n%s",
			want, first)
	}
	if !strings.Contains(first, "averages over 2 benchmarks") {
		t.Errorf("unexpected table header:\n%s", first)
	}
}

func TestSplitNames(t *testing.T) {
	for in, want := range map[string][]string{
		"adpcm":          {"adpcm"},
		" adpcm , mcf ":  {"adpcm", "mcf"},
		",adpcm,,mcf,":   {"adpcm", "mcf"},
		"":               nil,
		"  , ,\t":        nil,
		"epic.decode,gs": {"epic.decode", "gs"},
	} {
		if got := SplitNames(in); !reflect.DeepEqual(got, want) {
			t.Errorf("SplitNames(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTraceManyOrderAndErrors(t *testing.T) {
	o := grid()
	o.Benchmarks = nil
	o.Workers = 4
	names := []string{"mcf", "adpcm", "epic"}
	res, err := o.TraceMany(names)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		b, _ := workload.Lookup(names[i])
		if r.Benchmark != b.Profile.Name {
			t.Errorf("result %d is %q, want %q (order must match submission)", i, r.Benchmark, b.Profile.Name)
		}
		if len(r.Intervals) == 0 {
			t.Errorf("%s trace recorded no intervals", names[i])
		}
	}
	if _, err := o.TraceMany([]string{"adpcm", "nonesuch"}); err == nil {
		t.Error("unknown benchmark must fail before any run")
	}
}
