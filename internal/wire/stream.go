package wire

import (
	"bytes"
	"context"
	"encoding/json"

	"mcd/internal/clock"
	"mcd/internal/pipeline"
	"mcd/internal/resultcache"
	"mcd/internal/sim"
	"mcd/internal/stats"
)

// Frame type tags of the streamed-run NDJSON encoding.
const (
	FrameInterval = "interval"
	FrameResult   = "result"
	FrameError    = "error"
	// FrameGap reports intervals a lagging consumer missed: the
	// server's bounded per-job interval log overwrote Dropped records
	// before they could be sent. The stream stays well-formed — the
	// gap is explicit, never silent.
	FrameGap = "gap"
)

// StreamFrame is one NDJSON line of a streamed run: the body of
// POST /v1/runs with "stream":true, the interval lines a stream job's
// /events feed interleaves with its progress snapshots, and what
// mcdsim -live -json prints. A stream is zero or more "interval"
// frames followed by exactly one terminal "result" or "error" frame.
type StreamFrame struct {
	Type string `json:"type"`
	// Interval carries one measured control interval's telemetry
	// (Type "interval").
	Interval *stats.Interval `json:"interval,omitempty"`
	// Result carries the canonical result encoding (Type "result") —
	// byte-identical to the body a non-streamed run of the same request
	// serves.
	Result json.RawMessage `json:"result,omitempty"`
	// Cache reports "hit" or "miss" on the result frame.
	Cache string `json:"cache,omitempty"`
	// Error carries the failure message of a terminal "error" frame.
	Error string `json:"error,omitempty"`
	// Dropped counts the interval records a "gap" frame stands in for.
	Dropped int `json:"dropped,omitempty"`
}

// IntervalFrame wraps one interval record as a stream frame.
func IntervalFrame(iv *stats.Interval) StreamFrame {
	return StreamFrame{Type: FrameInterval, Interval: iv}
}

// ResultFrame wraps a canonical result body (trailing newline and all)
// as the terminal stream frame.
func ResultFrame(body []byte, hit bool) StreamFrame {
	cache := "miss"
	if hit {
		cache = "hit"
	}
	return StreamFrame{Type: FrameResult, Result: json.RawMessage(bytes.TrimSuffix(body, []byte("\n"))), Cache: cache}
}

// ErrorFrame wraps a failure as the terminal stream frame.
func ErrorFrame(msg string) StreamFrame {
	return StreamFrame{Type: FrameError, Error: msg}
}

// GapFrame marks n interval records lost to a lagging consumer.
func GapFrame(n int) StreamFrame {
	return StreamFrame{Type: FrameGap, Dropped: n}
}

// RunHooks bundles the optional observation points of RunStreamHooked.
// Every hook may be nil; the zero value is an unobserved run. Hooks run
// on the simulating goroutine and must be cheap relative to a control
// interval — the tracing layer records a fixed-size value per call.
type RunHooks struct {
	// Emit receives every measured control interval as it is produced
	// (RunStream's observer).
	Emit func(stats.Interval)
	// Cache observes the result-store phases of the request: probe
	// outcome and tier, compute bracket, disk persist bracket.
	Cache *resultcache.Obs
	// Decide is the controller decision audit: at every measured
	// interval boundary it receives the interval record (inputs: the
	// occupancies/IPC the controller saw, and the frequencies the
	// interval ran at), the per-domain frequencies the controller chose
	// for the next interval, and the controller's own note when it
	// implements pipeline.DecisionNoter (coord's budget redistribution).
	Decide func(iv stats.Interval, chosen [clock.NumControllable]float64, note string)
}

// RunStream executes the request through a stepped simulation session,
// calling emit with every measured control interval as it is produced,
// and returns the canonical result body — byte-identical to
// RunCachedBytes for the same request, so a completed streamed run
// stores the same SpecKey → Result bytes as a one-shot run. A cache hit
// (including joining an identical in-flight computation) returns the
// stored bytes without simulating and emits nothing. Cancelling ctx
// closes the session at the next interval boundary and returns
// ctx.Err(); the partial result is discarded, never stored.
func (r RunRequest) RunStream(ctx context.Context, c *resultcache.Cache, emit func(stats.Interval)) (body []byte, hit bool, err error) {
	return r.RunStreamHooked(ctx, c, RunHooks{Emit: emit})
}

// RunStreamHooked is RunStream with the full observation surface (see
// RunHooks); RunStream is exactly RunStreamHooked with only Emit set,
// so the two share one execution contract and one byte-identity story.
func (r RunRequest) RunStreamHooked(ctx context.Context, c *resultcache.Cache, h RunHooks) (body []byte, hit bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	run, res, err := r.controlRun()
	if err != nil {
		return nil, false, err
	}
	compute := func() ([]byte, error) {
		spec, err := res.Spec(run)
		if err != nil {
			return nil, err
		}
		ses, err := sim.Open(spec)
		if err != nil {
			return nil, err
		}
		if h.Emit != nil {
			ses.Observe(h.Emit)
		}
		if h.Decide != nil {
			noter, _ := spec.Controller.(pipeline.DecisionNoter)
			ses.ObserveDecision(func(iv stats.Interval, chosen [clock.NumControllable]float64) {
				note := ""
				if noter != nil {
					note = noter.DecisionNote()
				}
				h.Decide(iv, chosen, note)
			})
		}
		for ses.Step(1) {
			if err := ctx.Err(); err != nil {
				ses.Close()
				return nil, err
			}
		}
		return resultcache.EncodeResult(ses.Close())
	}
	if c == nil {
		body, err = resultcache.ObservedCompute(compute, h.Cache)
		return body, false, err
	}
	key, err := res.Key(run)
	if err != nil {
		return nil, false, err
	}
	return c.DoBytesObserved(key, compute, h.Cache)
}
