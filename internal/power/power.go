// Package power implements a Wattch-style architectural power model: each
// microarchitectural structure has a per-access dynamic energy calibrated
// at the nominal supply voltage, scaled at run time by (V/Vnom)² for the
// instantaneous voltage of the structure's clock domain. Each domain also
// has a per-cycle clock-distribution energy; structures are clock gated
// when unused, so an idle domain cycle consumes only the ungateable
// fraction of its clock energy. MCD configurations pay a 10% clock energy
// overhead for the extra PLLs and clock drivers, per the paper's
// conservative assumption (≈2.9% of total energy).
package power

import "mcd/internal/clock"

// Component enumerates the energy-consuming structures of the modeled
// Alpha-21264-like core.
type Component uint8

// Components, grouped by owning clock domain.
const (
	ICache Component = iota // front end
	BPred                   // front end: all predictor tables
	BTB                     // front end
	Rename                  // front end: rename + dispatch logic
	ROB                     // front end: reorder buffer read/write

	IntIQ  // integer domain: issue-queue insert/select
	IntCAM // integer domain: per-entry wakeup CAM (per cycle per entry)
	IntRF  // integer register file port access
	IntALU // integer ALU op
	IntMul // integer multiply/divide op

	FPIQ  // floating-point domain
	FPCAM // per-entry wakeup CAM
	FPRF
	FPALU // FP add
	FPMul // FP multiply/divide/sqrt

	LSQ     // load/store domain: LSQ insert/search
	LSQCAM  // per-entry per-cycle address CAM
	DCache  // L1 D-cache access
	L2Cache // unified L2 access

	NumComponents
)

var componentNames = [NumComponents]string{
	"icache", "bpred", "btb", "rename", "rob",
	"int-iq", "int-cam", "int-rf", "int-alu", "int-mul",
	"fp-iq", "fp-cam", "fp-rf", "fp-alu", "fp-mul",
	"lsq", "lsq-cam", "dcache", "l2cache",
}

func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return "unknown"
}

// DomainOf maps a component to the clock domain it resides in (Figure 1 of
// the paper: the L2 cache shares the load/store domain).
func DomainOf(c Component) clock.Domain {
	switch {
	case c <= ROB:
		return clock.FrontEnd
	case c <= IntMul:
		return clock.Integer
	case c <= FPMul:
		return clock.FloatingPoint
	default:
		return clock.LoadStore
	}
}

// componentDomain tabulates DomainOf so the per-access hot path is an
// array load (and Meter.Access stays inlinable).
var componentDomain = func() [NumComponents]clock.Domain {
	var t [NumComponents]clock.Domain
	for c := Component(0); c < NumComponents; c++ {
		t[c] = DomainOf(c)
	}
	return t
}()

// Params holds the calibration constants of the model. All energies are in
// picojoules at VNom.
type Params struct {
	// AccessPJ is the dynamic energy of one access to each component.
	AccessPJ [NumComponents]float64
	// ClockPJ is the per-cycle clock-tree energy of each controllable
	// domain at VNom.
	ClockPJ [clock.NumControllable]float64
	// GatedFraction is the fraction of a domain's per-cycle clock energy
	// that is still consumed when the domain does no work that cycle
	// (clock grid and PLL remain active; latch clocks are gated).
	GatedFraction float64
	// VNom is the supply voltage at which the energies are calibrated.
	VNom float64
	// MCDClockFactor multiplies clock energy in MCD configurations
	// (paper: 1.10, a deliberately conservative assumption).
	MCDClockFactor float64
}

// DefaultParams returns calibration constants loosely derived from Wattch's
// published Alpha-21264 breakdown at a 0.1 µm low-power process: clock
// distribution ≈ 30% of chip power, load/store (caches) the largest
// functional share, floating point smallest.
func DefaultParams() Params {
	p := Params{
		GatedFraction:  0.25,
		VNom:           1.20,
		MCDClockFactor: 1.10,
	}
	p.AccessPJ = [NumComponents]float64{
		ICache: 260, BPred: 60, BTB: 80, Rename: 140, ROB: 100,
		IntIQ: 110, IntCAM: 4, IntRF: 70, IntALU: 190, IntMul: 420,
		FPIQ: 110, FPCAM: 4, FPRF: 80, FPALU: 330, FPMul: 520,
		LSQ: 130, LSQCAM: 2, DCache: 310, L2Cache: 1250,
	}
	p.ClockPJ = [clock.NumControllable]float64{
		clock.FrontEnd:      850,
		clock.Integer:       800,
		clock.FloatingPoint: 600,
		clock.LoadStore:     950,
	}
	return p
}

// Meter accumulates energy for one simulation run.
type Meter struct {
	params   Params
	mcd      bool
	domainPJ [clock.NumDomains]float64
	clockPJ  float64
	clockDom [clock.NumControllable]float64
	accesses [NumComponents]uint64
	byComp   [NumComponents]float64
	// lastV/lastVS memoize the (V/Vnom)² factor: the pipeline charges
	// several accesses per tick at the same domain voltage, which only
	// moves while a regulator slews, so the division is paid once per
	// distinct voltage instead of per access.
	lastV, lastVS float64
}

// NewMeter returns a meter. mcd selects whether the MCD clock-energy
// overhead applies.
func NewMeter(params Params, mcd bool) *Meter {
	return &Meter{params: params, mcd: mcd}
}

// Reset returns the meter to its freshly constructed state, as NewMeter
// would build it, reusing the allocation for a reused core.
func (m *Meter) Reset(params Params, mcd bool) {
	*m = Meter{params: params, mcd: mcd}
}

// vScale returns the (V/Vnom)² dynamic-energy scaling factor. The memo
// hit is the hot path; the division lives in the miss slow path so the
// callers stay within the inlining budget.
func (m *Meter) vScale(v float64) float64 {
	if v == m.lastV {
		return m.lastVS
	}
	return m.vScaleMiss(v)
}

func (m *Meter) vScaleMiss(v float64) float64 {
	r := v / m.params.VNom
	m.lastV, m.lastVS = v, r*r
	return m.lastVS
}

// Access charges n accesses of component c at supply voltage v.
func (m *Meter) Access(c Component, v float64, n int) {
	if n == 0 {
		return
	}
	e := m.params.AccessPJ[c] * m.vScale(v) * float64(n)
	m.domainPJ[componentDomain[c]] += e
	m.byComp[c] += e
	m.accesses[c] += uint64(n)
}

// ClockTick charges one clock cycle of domain d at voltage v. active
// indicates whether the domain did any work this cycle; idle cycles pay
// only the ungateable fraction.
func (m *Meter) ClockTick(d clock.Domain, v float64, active bool) {
	e := m.params.ClockPJ[d] * m.vScale(v)
	if !active {
		e *= m.params.GatedFraction
	}
	if m.mcd {
		e *= m.params.MCDClockFactor
	}
	m.domainPJ[d] += e
	m.clockPJ += e
	m.clockDom[d] += e
}

// Inject credits pJ picojoules of pre-scaled energy directly to domain d.
// The sampled fidelity tier uses it to charge analytically estimated
// energy for fast-forwarded control intervals; the energy is already in
// final units, so no voltage scaling or MCD factor applies here.
func (m *Meter) Inject(d clock.Domain, pJ float64) {
	m.domainPJ[d] += pJ
}

// TotalPJ returns total accumulated energy in picojoules.
func (m *Meter) TotalPJ() float64 {
	var t float64
	for _, e := range m.domainPJ {
		t += e
	}
	return t
}

// DomainPJ returns the energy accumulated by one domain.
func (m *Meter) DomainPJ(d clock.Domain) float64 { return m.domainPJ[d] }

// ClockPJ returns the clock-distribution share of the total energy.
func (m *Meter) ClockPJ() float64 { return m.clockPJ }

// DomainClockPJ returns one controllable domain's clock-distribution
// energy — the time-proportional part of DomainPJ(d), which the sampled
// tier's energy extrapolation scales by estimated time rather than by
// instruction count.
func (m *Meter) DomainClockPJ(d clock.Domain) float64 { return m.clockDom[d] }

// ComponentPJ returns the energy accumulated by one component.
func (m *Meter) ComponentPJ(c Component) float64 { return m.byComp[c] }

// Accesses returns the access count of one component.
func (m *Meter) Accesses(c Component) uint64 { return m.accesses[c] }
