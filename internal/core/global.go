package core

import (
	"mcd/internal/dvfs"
	"mcd/internal/pipeline"
	"mcd/internal/sim"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// GlobalMatch finds, by bisection over the 320-point operating scale, the
// single global frequency at which the conventional fully synchronous
// processor suffers the given performance degradation relative to baseTime
// (its own 1 GHz run). This reproduces the Global(·) rows of Table 6: the
// comparison point for each algorithm is global voltage scaling tuned to
// the same slowdown.
//
// It returns the chosen frequency and the run at that frequency. Because
// memory latency is fixed in wall-clock terms, memory-bound workloads
// degrade sublinearly in frequency, which is precisely why global scaling
// saves so little energy per unit of slowdown (ratio ≈ 2).
func GlobalMatch(cfg pipeline.Config, prof workload.Profile, window, warmup uint64, baseTime float64, targetDeg float64, name string) (float64, stats.Result) {
	return GlobalMatchFidelity(cfg, prof, window, warmup, baseTime, targetDeg, name, "", 0, 0)
}

// GlobalMatchFidelity is GlobalMatch with the bisection's probe runs
// executed at the given fidelity tier ("" = exact), so a sampled request
// pays sampled prices for the search. The exact-tier path is GlobalMatch
// verbatim.
func GlobalMatchFidelity(cfg pipeline.Config, prof workload.Profile, window, warmup uint64, baseTime float64, targetDeg float64, name, fidelity string, sampleEvery int, intervalLen uint64) (float64, stats.Result) {
	runAt := func(f float64) stats.Result {
		spec := sim.SynchronousSpec(cfg, prof, window, warmup, f, name)
		spec.Fidelity = fidelity
		spec.SampleEvery = sampleEvery
		if spec.Sampled() {
			// The interval is the sampling unit; exact probes keep the
			// pipeline's default-length intervals unchanged.
			spec.IntervalLength = intervalLen
		}
		return sim.Run(spec)
	}
	scale := dvfs.DefaultScale()
	lo, hi := 0, scale.Points()-1 // index 0 = 250 MHz, max index = 1000 MHz
	freqAt := func(i int) float64 { return scale.MinFreqMHz() + float64(i)*scale.StepMHz() }

	if targetDeg <= 0 {
		res := runAt(freqAt(hi))
		return freqAt(hi), res
	}

	var best stats.Result
	bestFreq := freqAt(hi)
	bestDiff := -1.0
	for lo < hi {
		mid := (lo + hi) / 2
		f := freqAt(mid)
		res := runAt(f)
		deg := res.TimePS/baseTime - 1
		diff := deg - targetDeg
		if bestDiff < 0 || abs(diff) < bestDiff {
			bestDiff = abs(diff)
			best = res
			bestFreq = f
		}
		if deg > targetDeg {
			lo = mid + 1 // too slow: need a higher frequency
		} else {
			hi = mid // within budget: try lower
		}
	}
	if best.Instructions == 0 {
		best = runAt(bestFreq)
	}
	return bestFreq, best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
