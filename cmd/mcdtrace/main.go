// Command mcdtrace emits the per-interval traces behind Figures 2 and 3:
// queue utilization, utilization difference, and domain frequency for one
// domain of one benchmark under Attack/Decay control, as CSV on stdout.
//
// Usage:
//
//	mcdtrace -bench epic.decode -domain fp   # Figure 3
//	mcdtrace -bench epic.decode -domain ls   # Figure 2
package main

import (
	"flag"
	"fmt"
	"os"

	"mcd/internal/bench"
	"mcd/internal/clock"
)

func main() {
	var (
		benchName = flag.String("bench", "epic.decode", "benchmark name")
		domain    = flag.String("domain", "fp", "domain to trace: int | fp | ls")
		window    = flag.Uint64("window", 500_000, "measured instructions")
		warmup    = flag.Uint64("warmup", 100_000, "warmup instructions")
		interval  = flag.Uint64("interval", 1000, "sampling interval (instructions)")
	)
	flag.Parse()

	var d clock.Domain
	switch *domain {
	case "int":
		d = clock.Integer
	case "fp":
		d = clock.FloatingPoint
	case "ls":
		d = clock.LoadStore
	default:
		fmt.Fprintf(os.Stderr, "mcdtrace: unknown domain %q (want int, fp or ls)\n", *domain)
		os.Exit(1)
	}

	opts := bench.DefaultOptions()
	opts.Window = *window
	opts.Warmup = *warmup
	opts.IntervalLength = *interval
	to := bench.TraceOptions{Options: opts, Benchmark: *benchName}
	res, err := to.Trace()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdtrace: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mcdtrace: %s, %d intervals, avg %s freq %.0f MHz\n",
		*benchName, len(res.Intervals), *domain, res.AvgFreqMHz[d])
	fmt.Print(bench.FigureCSV(res, d))
}
