// Package sim provides the run orchestration shared by the control
// algorithms, the experiment harness and the command-line tools: it
// instantiates a workload generator and a pipeline core for one
// configuration and returns the measurements.
package sim

import (
	"mcd/internal/clock"
	"mcd/internal/pipeline"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// Spec describes one simulation run.
type Spec struct {
	Config  pipeline.Config
	Profile workload.Profile
	Window  uint64
	// Warmup instructions run before the measured window (caches and
	// predictors train; no measurements). Zero means no warmup.
	Warmup uint64
	// IntervalLength overrides the controller sampling period (paper:
	// 10,000 instructions). Scaled-down windows use proportionally
	// shorter intervals so a run spans a paper-like number of control
	// intervals; see DESIGN.md ("time-scale compression").
	IntervalLength uint64
	Controller     pipeline.Controller
	// InitialFreqMHz pins starting frequencies (zero entries = max).
	InitialFreqMHz [clock.NumControllable]float64
	// RecordIntervals keeps per-interval records on the Result.
	RecordIntervals bool
	// Name labels the Result's Config field.
	Name string
}

// Run executes the spec: a session opened, drained and closed. The
// session API is the run loop, so one-shot and stepped execution are
// byte-identical by construction.
func Run(s Spec) stats.Result {
	ses := open(s)
	ses.Step(-1)
	return ses.Close()
}

// Synchronous returns the configuration of the conventional fully
// synchronous processor (no MCD overheads, one clock).
func Synchronous(cfg pipeline.Config) pipeline.Config {
	cfg.SingleClock = true
	return cfg
}

// SynchronousSpec returns the exact Spec RunSynchronousAt executes, so
// callers that key or batch runs (the result cache, the bench harness)
// can address the same computation RunSynchronousAt performs.
func SynchronousSpec(cfg pipeline.Config, prof workload.Profile, window, warmup uint64, freqMHz float64, name string) Spec {
	sc := Synchronous(cfg)
	var init [clock.NumControllable]float64
	for d := range init {
		init[d] = freqMHz
	}
	return Spec{
		Config: sc, Profile: prof, Window: window, Warmup: warmup,
		InitialFreqMHz: init, Name: name,
	}
}

// RunSynchronousAt runs the fully synchronous processor with the global
// clock scaled to freqMHz — conventional global voltage/frequency scaling.
func RunSynchronousAt(cfg pipeline.Config, prof workload.Profile, window, warmup uint64, freqMHz float64, name string) stats.Result {
	return Run(SynchronousSpec(cfg, prof, window, warmup, freqMHz, name))
}
