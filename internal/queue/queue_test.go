package queue

import (
	"math"
	"testing"
	"testing/quick"

	"mcd/internal/workload"
)

// anyClass accepts every instruction class; visibleNow is a Wakeup under
// which readiness is controlled purely by each entry's VisibleAt.
var anyClass = ClassMask(0xffff)

func visibleNow(now float64) *Wakeup {
	w := &Wakeup{Periods: [4]float64{1000, 1000, 1000, 1000}}
	w.SetTick(now, 0)
	return w
}

func entry(seq uint64, visibleAt float64) Entry {
	return Entry{Seq: seq, Src1: None, Src2: None, VisibleAt: visibleAt}
}

func TestIssueQueueCapacity(t *testing.T) {
	q := NewIssueQueue(2)
	if !q.Push(Entry{Seq: 1}) || !q.Push(Entry{Seq: 2}) {
		t.Fatal("pushes into empty queue failed")
	}
	if q.Push(Entry{Seq: 3}) {
		t.Error("push into full queue succeeded")
	}
	if q.Len() != 2 || q.Free() != 0 || q.Cap() != 2 {
		t.Errorf("len/free/cap = %d/%d/%d", q.Len(), q.Free(), q.Cap())
	}
}

func TestIssueQueueSelectOldestFirst(t *testing.T) {
	q := NewIssueQueue(8)
	for i := uint64(0); i < 6; i++ {
		vis := 0.0
		if i%2 == 1 {
			vis = math.Inf(1) // odd seqs not yet visible
		}
		q.Push(entry(i, vis))
	}
	// Only even seqs ready; select at most 2: must pick 0 and 2.
	got := q.SelectReady(2, anyClass, visibleNow(0), nil)
	if len(got) != 2 || got[0].Seq != 0 || got[1].Seq != 2 {
		t.Fatalf("selected %+v, want seqs 0,2", got)
	}
	if q.Len() != 4 {
		t.Errorf("len after select = %d, want 4", q.Len())
	}
	// Remaining order preserved: 1,3,4,5.
	rest := q.SelectReady(10, anyClass, visibleNow(math.Inf(1)), nil)
	want := []uint64{1, 3, 4, 5}
	for i, e := range rest {
		if e.Seq != want[i] {
			t.Errorf("rest[%d].Seq = %d, want %d", i, e.Seq, want[i])
		}
	}
}

func TestIssueQueueSelectNoneReady(t *testing.T) {
	q := NewIssueQueue(4)
	q.Push(entry(9, math.Inf(1)))
	out := q.SelectReady(4, anyClass, visibleNow(100), nil)
	if len(out) != 0 || q.Len() != 1 {
		t.Error("nothing should have been selected")
	}
}

func TestIssueQueueSelectClassMask(t *testing.T) {
	q := NewIssueQueue(8)
	classes := []workload.Class{workload.IntALU, workload.IntMul, workload.Branch, workload.IntALU}
	for i, c := range classes {
		e := entry(uint64(i), 0)
		e.Class = c
		q.Push(e)
	}
	mask := MaskOf(workload.IntALU, workload.Branch)
	got := q.SelectReady(8, mask, visibleNow(0), nil)
	if len(got) != 3 {
		t.Fatalf("selected %d entries, want 3 (ALU, Branch, ALU)", len(got))
	}
	for _, e := range got {
		if e.Class == workload.IntMul {
			t.Errorf("mask %b selected excluded class %v", mask, e.Class)
		}
	}
	if q.Len() != 1 || q.entries[0].Class != workload.IntMul {
		t.Errorf("IntMul entry should remain, queue = %+v", q.entries)
	}
}

func TestWakeupSrcReadyMatchesVisibilityRule(t *testing.T) {
	ring := NewCompletionRing(64)
	ring.Dispatch(7, 2)
	ring.Complete(7, 10_000)
	w := &Wakeup{SyncWindowPS: 300, Periods: [4]float64{1000, 800, 1250, 900}, Ring: ring}
	w.SetTick(0, 1)

	// Absent source: always ready.
	if !w.SrcReady(None) {
		t.Error("absent source not ready")
	}
	// Cross-domain (producer 2 → consumer 1): visible at
	// done − period(producer) + window = 10000 − 1250 + 300 = 9050.
	w.SetTick(9049.9, 1)
	if w.SrcReady(7) {
		t.Error("ready before the synchronization window cleared")
	}
	w.SetTick(9050, 1)
	if !w.SrcReady(7) {
		t.Error("not ready at the visibility boundary")
	}
	// Same-domain: half-cycle guard, done − 0.5×period(producer).
	w.SetTick(10_000-0.5*1250, 2)
	if !w.SrcReady(7) {
		t.Error("same-domain bypass point not honoured")
	}
	w.SetTick(10_000-0.5*1250-0.1, 2)
	if w.SrcReady(7) {
		t.Error("ready before the same-domain bypass point")
	}
	// Single clock: the same half-cycle rule regardless of domains.
	w.SingleClock = true
	w.SetTick(10_000-0.5*1250, 1)
	if !w.SrcReady(7) {
		t.Error("single-clock bypass point not honoured")
	}
	// Never-dispatched producers read as ancient history.
	if !w.SrcReady(55) {
		t.Error("unknown producer should be long complete")
	}
}

func TestIssueQueueReset(t *testing.T) {
	q := NewIssueQueue(4)
	q.Push(entry(1, 0))
	q.Reset(4)
	if q.Len() != 0 || q.Cap() != 4 {
		t.Errorf("reset queue len/cap = %d/%d, want 0/4", q.Len(), q.Cap())
	}
	q.Push(entry(2, 0))
	q.Reset(8) // capacity change must take effect
	if q.Len() != 0 || q.Cap() != 8 || q.Free() != 8 {
		t.Errorf("resized queue len/cap/free = %d/%d/%d", q.Len(), q.Cap(), q.Free())
	}
}

func TestCompletionRingLifecycle(t *testing.T) {
	r := NewCompletionRing(512)
	// Unknown seq reads as long complete.
	if d, _ := r.Lookup(42); !math.IsInf(d, -1) {
		t.Errorf("unknown seq doneAt = %v, want -Inf", d)
	}
	r.Dispatch(42, 2)
	if d, dom := r.Lookup(42); !math.IsInf(d, 1) || dom != 2 {
		t.Errorf("in-flight = (%v,%d), want (+Inf,2)", d, dom)
	}
	r.Complete(42, 1234.5)
	if d, _ := r.Lookup(42); d != 1234.5 {
		t.Errorf("completed doneAt = %v, want 1234.5", d)
	}
	// Overwrite by a much newer seq in the same slot.
	r.Dispatch(42+512, 1)
	if d, _ := r.Lookup(42); !math.IsInf(d, -1) {
		t.Errorf("overwritten slot = %v, want -Inf", d)
	}
	r.Complete(42, 99) // stale complete must be ignored
	if d, _ := r.Lookup(42 + 512); !math.IsInf(d, 1) {
		t.Error("stale Complete corrupted newer entry")
	}
	// Reset returns every slot to the empty state.
	r.Reset()
	if d, dom := r.Lookup(42 + 512); !math.IsInf(d, -1) || dom != 0 {
		t.Errorf("post-reset slot = (%v,%d), want (-Inf,0)", d, dom)
	}
}

func TestCompletionRingPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCompletionRing(100)
}

func TestROBInOrderRetire(t *testing.T) {
	r := NewROB(4)
	for i := uint64(0); i < 4; i++ {
		if !r.Push(ROBEntry{Seq: i, DoneAt: math.Inf(1)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(ROBEntry{Seq: 9}) {
		t.Error("push into full ROB succeeded")
	}
	r.Complete(1, 10) // younger completes first: head must still block
	if h := r.Head(); h.Seq != 0 || !math.IsInf(h.DoneAt, 1) {
		t.Errorf("head = %+v, want seq 0 incomplete", h)
	}
	r.Complete(0, 20)
	if h := r.Head(); h.DoneAt != 20 {
		t.Errorf("head doneAt = %v, want 20", h.DoneAt)
	}
	r.Pop()
	if h := r.Head(); h.Seq != 1 || h.DoneAt != 10 {
		t.Errorf("next head = %+v, want seq 1 done at 10", h)
	}
	r.Pop()
	r.Pop()
	r.Pop()
	if r.Head() != nil || r.Len() != 0 {
		t.Error("ROB should be empty")
	}
	r.Pop() // popping empty is a no-op
}

func TestROBCompleteBounds(t *testing.T) {
	r := NewROB(4)
	r.Push(ROBEntry{Seq: 10, DoneAt: math.Inf(1)})
	r.Push(ROBEntry{Seq: 11, DoneAt: math.Inf(1)})
	r.Complete(9, 1)  // older than the window: ignored
	r.Complete(12, 1) // younger than the window: ignored
	for i := 0; i < 2; i++ {
		if !math.IsInf(r.buf[(r.head+i)%len(r.buf)].DoneAt, 1) {
			t.Fatalf("out-of-window Complete mutated entry %d", i)
		}
	}
	r.Complete(11, 77)
	r.Pop()
	if h := r.Head(); h.Seq != 11 || h.DoneAt != 77 {
		t.Errorf("head = %+v, want seq 11 done at 77", h)
	}
}

func TestROBWraparound(t *testing.T) {
	r := NewROB(3)
	for i := uint64(0); i < 10; i++ {
		if !r.Push(ROBEntry{Seq: i, DoneAt: float64(i)}) {
			t.Fatalf("push %d failed", i)
		}
		if r.Head().Seq != i {
			t.Fatalf("head seq = %d, want %d", r.Head().Seq, i)
		}
		// The direct-index Complete must land on the head slot as the
		// window slides through the backing array.
		r.Complete(i, float64(100+i))
		if r.Head().DoneAt != float64(100+i) {
			t.Fatalf("complete missed wrapped slot for seq %d", i)
		}
		r.Pop()
	}
}

func TestLSQDisambiguation(t *testing.T) {
	l := NewLSQ(8, 64)
	inf := math.Inf(1)
	l.Push(LSQEntry{Seq: 0, IsStore: true, Addr: 0x100, DoneAt: inf})
	l.Push(LSQEntry{Seq: 1, IsStore: false, Addr: 0x104, DoneAt: inf}) // same block as store 0
	l.Push(LSQEntry{Seq: 2, IsStore: false, Addr: 0x400, DoneAt: inf})

	// Store 0 not issued: nothing resolved.
	allRes, match, fwd := l.OlderStores(1, 100)
	if allRes || !match || fwd {
		t.Errorf("pre-issue: (%v,%v,%v), want (false,true,false)", allRes, match, fwd)
	}
	allRes, match, _ = l.OlderStores(2, 100)
	if allRes || match {
		t.Errorf("different block: (%v,%v), want (false,false)", allRes, match)
	}

	// Issue + complete the store: load 1 may forward.
	l.Entries()[0].Issued = true
	l.Entries()[0].DoneAt = 50
	allRes, match, fwd = l.OlderStores(1, 100)
	if !allRes || !match || !fwd {
		t.Errorf("post-issue: (%v,%v,%v), want (true,true,true)", allRes, match, fwd)
	}
}

func TestLSQRetireInOrder(t *testing.T) {
	l := NewLSQ(4, 64)
	l.Push(LSQEntry{Seq: 5})
	l.Push(LSQEntry{Seq: 7})
	l.Retire(7) // not head: must be ignored
	if l.Len() != 2 {
		t.Error("out-of-order retire removed an entry")
	}
	l.Retire(5)
	if l.Len() != 1 || l.Entries()[0].Seq != 7 {
		t.Error("head retire failed")
	}
}

func TestLSQCapacity(t *testing.T) {
	l := NewLSQ(1, 64)
	if !l.Push(LSQEntry{Seq: 1}) || l.Push(LSQEntry{Seq: 2}) {
		t.Error("capacity not enforced")
	}
	if l.Free() != 0 || l.Cap() != 1 {
		t.Error("free/cap wrong")
	}
}

func TestLSQReset(t *testing.T) {
	l := NewLSQ(4, 64)
	l.Push(LSQEntry{Seq: 1, Addr: 0x1234})
	l.Reset(4, 32) // same capacity, new disambiguation granularity
	if l.Len() != 0 || l.Cap() != 4 {
		t.Errorf("reset LSQ len/cap = %d/%d, want 0/4", l.Len(), l.Cap())
	}
	l.Push(LSQEntry{Seq: 2, Addr: 0x40})
	if got := l.Entries()[0].Block; got != 0x40>>5 {
		t.Errorf("block = %#x, want %#x (32-byte granularity)", got, 0x40>>5)
	}
}

// Property: SelectReady removes exactly the ready entries (up to max) and
// preserves relative order of the rest. Readiness is encoded through
// VisibleAt, the same field the pipeline's dispatch stamps.
func TestSelectPreservesOrderProperty(t *testing.T) {
	f := func(readyMask uint16, maxSel uint8) bool {
		q := NewIssueQueue(16)
		for i := uint64(0); i < 16; i++ {
			vis := math.Inf(1)
			if readyMask&(1<<i) != 0 {
				vis = 0
			}
			q.Push(entry(i, vis))
		}
		max := int(maxSel % 17)
		got := q.SelectReady(max, anyClass, visibleNow(0), nil)
		if len(got) > max {
			return false
		}
		prev := int64(-1)
		for _, e := range got {
			if int64(e.Seq) <= prev || readyMask&(1<<e.Seq) == 0 {
				return false
			}
			prev = int64(e.Seq)
		}
		rest := q.SelectReady(16, anyClass, visibleNow(math.Inf(1)), nil)
		prev = -1
		for _, e := range rest {
			if int64(e.Seq) <= prev {
				return false
			}
			prev = int64(e.Seq)
		}
		return len(got)+len(rest) == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
