// Public-API tests and benchmarks for mcd.RunBatch: determinism across
// worker counts, compound (Do) requests, request validation, and the
// testing.B speedup benchmark comparing worker counts on a fixed grid
// (on an N-core machine the workers=N case should approach N× the
// workers=1 throughput; the results themselves are identical).
package mcd_test

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mcd"
)

// batchRequests builds a benchmark × {mcd-base, attack-decay} grid as
// RunBatch requests. Controllers are stateful, so every call constructs
// fresh ones.
func batchRequests(benchmarks []string, window uint64) []mcd.RunRequest {
	var reqs []mcd.RunRequest
	for _, name := range benchmarks {
		b, ok := mcd.LookupBenchmark(name)
		if !ok {
			panic("unknown benchmark " + name)
		}
		base := mcd.Spec{
			Config:         mcd.DefaultConfig(),
			Profile:        b.Profile,
			Window:         window,
			Warmup:         window / 2,
			IntervalLength: 500,
			Name:           "mcd-base",
		}
		ad := base
		ad.Controller = mcd.NewAttackDecay(mcd.DefaultParams())
		ad.Name = "attack-decay"
		reqs = append(reqs,
			mcd.RunRequest{Name: name + "/mcd-base", Spec: &base},
			mcd.RunRequest{Name: name + "/attack-decay", Spec: &ad},
		)
	}
	return reqs
}

var sixBenchmarks = []string{"adpcm", "epic", "mesa", "em3d", "mcf", "gzip"}

func TestRunBatchMatchesSerial(t *testing.T) {
	serialReqs := batchRequests(sixBenchmarks, 10_000)
	serial := make([]mcd.Result, len(serialReqs))
	for i, r := range serialReqs {
		serial[i] = mcd.Run(*r.Spec)
	}

	for _, workers := range []int{1, 4, 8} {
		reqs := batchRequests(sixBenchmarks, 10_000)
		got, err := mcd.RunBatch(context.Background(), reqs, mcd.BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, g := range got {
			if g.Err != nil {
				t.Fatalf("workers=%d: %s: %v", workers, g.Name, g.Err)
			}
			if g.Name != reqs[i].Name {
				t.Errorf("workers=%d: result %d named %q, want %q", workers, i, g.Name, reqs[i].Name)
			}
			if !reflect.DeepEqual(g.Result, serial[i]) {
				t.Errorf("workers=%d: %s diverged from serial mcd.Run", workers, g.Name)
			}
		}
	}
}

func TestRunBatchCompoundRequests(t *testing.T) {
	b, _ := mcd.LookupBenchmark("adpcm")
	cfg := mcd.DefaultConfig()
	reqs := []mcd.RunRequest{
		{Name: "adpcm/offline", Do: func(context.Context) (mcd.Result, error) {
			ctrl, _ := mcd.BuildOffline(cfg, b.Profile, 8_000, mcd.OfflineOptions{
				TargetDeg: 0.05, Iterations: 2, Warmup: 4_000, IntervalLength: 500,
			})
			return mcd.Run(mcd.Spec{
				Config: cfg, Profile: b.Profile, Window: 8_000, Warmup: 4_000,
				IntervalLength: 500, Controller: ctrl,
				InitialFreqMHz: ctrl.Initial(), Name: ctrl.Name(),
			}), nil
		}},
		{Name: "adpcm/global", Do: func(context.Context) (mcd.Result, error) {
			base := mcd.RunSynchronousAt(cfg, b.Profile, 8_000, 4_000, cfg.MaxFreqMHz, "sync")
			_, r := mcd.GlobalMatch(cfg, b.Profile, 8_000, 4_000, base.TimePS, 0.05, "global")
			return r, nil
		}},
	}
	res, err := mcd.RunBatch(context.Background(), reqs, mcd.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Name, r.Err)
		}
		if r.Result.Instructions == 0 {
			t.Errorf("%s retired no instructions", r.Name)
		}
	}
}

func TestRunBatchValidatesRequests(t *testing.T) {
	spec := mcd.Spec{}
	do := func(context.Context) (mcd.Result, error) { return mcd.Result{}, nil }
	for _, bad := range []mcd.RunRequest{
		{Name: "neither"},
		{Name: "both", Spec: &spec, Do: do},
	} {
		if _, err := mcd.RunBatch(context.Background(), []mcd.RunRequest{bad}, mcd.BatchOptions{}); err == nil {
			t.Errorf("request %q must be rejected", bad.Name)
		} else if !strings.Contains(err.Error(), bad.Name) {
			t.Errorf("error for %q does not name the request: %v", bad.Name, err)
		}
	}
}

func TestRunBatchProgress(t *testing.T) {
	reqs := batchRequests([]string{"adpcm"}, 4_000)
	var calls int
	_, err := mcd.RunBatch(context.Background(), reqs, mcd.BatchOptions{
		Workers: 2,
		Progress: func(done, total int, name string) {
			calls++
			if total != len(reqs) {
				t.Errorf("Progress total = %d, want %d", total, len(reqs))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(reqs) {
		t.Errorf("Progress called %d times, want %d", calls, len(reqs))
	}
}

// BenchmarkRunBatchWorkers measures the fan-out speedup on a fixed
// 6-benchmark × 2-configuration grid. Compare the workers=1 and
// workers=N ns/op figures: on a 4-core machine the acceptance target is
// ≥ 2.5× (run with `go test -bench RunBatchWorkers -benchtime 3x`).
func BenchmarkRunBatchWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reqs := batchRequests(sixBenchmarks, 40_000)
				res, err := mcd.RunBatch(context.Background(), reqs, mcd.BatchOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range res {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
