// Package xrand wraps math/rand sources with a call counter so their
// position in the stream can be captured and restored. math/rand's
// rngSource has no exported state, but it is a pure function of (seed,
// number of source calls): every Int63/Uint64 advances the feedback
// register exactly once. Counting source calls therefore captures the
// complete generator state in one uint64, and restoring is reseed +
// discard — cheap relative to simulation, allocation-free, and exact.
//
// The wrapper is transparent: rand.Rand draws the same stream through a
// Counting source as through the bare rand.NewSource, so wrapping an
// existing generator changes no simulation output (the byte-identity
// pins cover this).
package xrand

import "math/rand"

// Counting is a rand.Source64 that counts how many times the underlying
// source has been advanced since the last Seed.
type Counting struct {
	src rand.Source64
	n   uint64
}

// NewCounting returns a counting wrapper over rand.NewSource(seed).
func NewCounting(seed int64) *Counting {
	return &Counting{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (c *Counting) Int63() int64 {
	c.n++
	return c.src.Int63()
}

// Uint64 implements rand.Source64.
func (c *Counting) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

// Seed implements rand.Source, resetting the call counter.
func (c *Counting) Seed(seed int64) {
	c.n = 0
	c.src.Seed(seed)
}

// Calls returns how many times the source has advanced since Seed.
func (c *Counting) Calls() uint64 { return c.n }

// Restore reseeds and replays n source advances, leaving the wrapper in
// exactly the state Calls()==n captured. Both Int63 and Uint64 advance
// the underlying register once per call, so replaying with either is
// equivalent; Uint64 is used.
func (c *Counting) Restore(seed int64, n uint64) {
	c.src.Seed(seed)
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.n = n
}
