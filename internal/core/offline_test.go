package core

import (
	"reflect"
	"testing"

	"mcd/internal/clock"
	"mcd/internal/pipeline"
	"mcd/internal/sim"
	"mcd/internal/workload"
)

func TestOfflineControllerSkipsWarmupIntervals(t *testing.T) {
	sched := Schedule{
		{1000, 1000, 1000, 1000},
		{1000, 900, 800, 700},
		{1000, 500, 400, 300},
	}
	o := NewOfflineController("test", sched)
	warm := pipeline.IntervalView{Warmup: true}
	for i := 0; i < 5; i++ {
		if got := o.Observe(warm); got != ([clock.NumControllable]float64{}) {
			t.Fatalf("warmup view %d produced targets %v", i, got)
		}
	}
	// First measured interval must still receive schedule[1]: the warmup
	// views did not advance the schedule.
	if got := o.Observe(pipeline.IntervalView{}); got != sched[1] {
		t.Errorf("first measured Observe = %v, want schedule[1] %v", got, sched[1])
	}
}

func TestOfflineControllerEmptySchedule(t *testing.T) {
	o := NewOfflineController("empty", nil)
	if got := o.Initial(); got != ([clock.NumControllable]float64{}) {
		t.Errorf("Initial on empty schedule = %v", got)
	}
	if got := o.Observe(pipeline.IntervalView{}); got != ([clock.NumControllable]float64{}) {
		t.Errorf("Observe on empty schedule = %v", got)
	}
	if o.Name() != "empty" {
		t.Errorf("name = %q", o.Name())
	}
}

func TestAttackDecayEndstopDisabled(t *testing.T) {
	p := DefaultParams()
	p.EndstopCount = 0 // "infinite" endstop, which the paper found degrades the algorithm
	a := NewAttackDecay(p)
	// Pin at max with rising utilization for many intervals: without
	// endstop forcing the frequency must never leave the maximum.
	for i := 0; i < 40; i++ {
		a.Observe(view(4, float64(10+i), 4, 2))
	}
	if f := a.domains[clock.FloatingPoint].freqMHz; f != 1000 {
		t.Errorf("disabled endstop still forced a probe: %v", f)
	}
}

func TestAttackDecayCustomSmoothing(t *testing.T) {
	p := DefaultParams()
	p.IPCSmoothing = 1.0 // no smoothing: EMA equals the raw IPC
	p.RefIPCDecay = 1e-9 // reference effectively never decays
	a := NewAttackDecay(p)
	a.Observe(view(4, 4, 4, 2.0))
	// IPC halves: guard must block the decay (ref stays near 2.0).
	before := a.domains[clock.Integer].freqMHz
	a.Observe(view(4, 4, 4, 1.0))
	if after := a.domains[clock.Integer].freqMHz; after != before {
		t.Errorf("decrease applied despite 50%% IPC drop: %v -> %v", before, after)
	}
}

func TestAttackDecayNameIncludesParams(t *testing.T) {
	a := NewAttackDecay(DefaultParams())
	if a.Name() != "attack-decay-1.750_06.0_0.175_2.5" {
		t.Errorf("name = %q", a.Name())
	}
}

// TestBuildOfflineCandidatesDeterministic: the candidate set is a pure
// function of OfflineOptions, so widening the worker pool must not change
// the schedule the search commits to — and the multi-candidate search
// must never do worse against the dilation cap than the classic single
// candidate path.
func TestBuildOfflineCandidatesDeterministic(t *testing.T) {
	b, ok := workload.Lookup("adpcm")
	if !ok {
		t.Fatal("adpcm missing from catalog")
	}
	build := func(candidates, workers int) ([clock.NumControllable]float64, float64) {
		ctrl, base := BuildOffline(pipeline.DefaultConfig(), b.Profile, 20_000, OfflineOptions{
			TargetDeg: 0.05, Iterations: 2, Warmup: 10_000, IntervalLength: 500,
			Candidates: candidates, Workers: workers,
		})
		return ctrl.Initial(), base.TimePS
	}

	init1, base1 := build(3, 1)
	for _, workers := range []int{4, 8} {
		initN, baseN := build(3, workers)
		if !reflect.DeepEqual(initN, init1) || baseN != base1 {
			t.Errorf("workers=%d: candidate search diverged: %v vs %v", workers, initN, init1)
		}
	}

	// The default path (Candidates unset → 1) still works and yields a
	// valid schedule start.
	initDefault, _ := build(0, 0)
	for d, f := range initDefault {
		if f < 250 || f > 1000 {
			t.Errorf("default search initial[%d] = %v out of the frequency scale", d, f)
		}
	}
}

// TestAdaptiveStepMeetsCapAtQuickScale pins the cap-overshoot fix: at a
// compressed quick scale the window holds so few intervals that one
// fixed 10% down-step jumps straight past a tight dilation cap — the
// classic search commits the overshoot (here ~8x the 1% target).
// AdaptiveStep bisects the step toward a no-op whenever every candidate
// overshoots, and must land the final schedule within [0.9, 1.1] x
// TargetDeg at the same scale.
func TestAdaptiveStepMeetsCapAtQuickScale(t *testing.T) {
	b, ok := workload.Lookup("adpcm")
	if !ok {
		t.Fatal("adpcm missing from catalog")
	}
	cfg := pipeline.DefaultConfig()
	const (
		window = 20_000
		warmup = 10_000
		il     = 500
		target = 0.01
	)
	degOf := func(adaptive bool) float64 {
		ctrl, base := BuildOffline(cfg, b.Profile, window, OfflineOptions{
			TargetDeg: target, Warmup: warmup, IntervalLength: il,
			AdaptiveStep: adaptive,
		})
		res := sim.Run(sim.Spec{
			Config: cfg, Profile: b.Profile, Window: window, Warmup: warmup,
			IntervalLength: il, Controller: ctrl, InitialFreqMHz: ctrl.Initial(),
			Name: "adaptive-step-test",
		})
		return res.TimePS/base.TimePS - 1
	}

	fixed := degOf(false)
	if fixed <= target*1.1 {
		// The regression scenario itself: if the fixed step no longer
		// overshoots here, this test is pinning nothing.
		t.Fatalf("fixed step met the cap (deg=%.5f <= %.5f) — the quick-scale overshoot scenario is gone", fixed, target*1.1)
	}
	adaptive := degOf(true)
	if adaptive < target*0.9 || adaptive > target*1.1 {
		t.Errorf("adaptive step landed at deg=%.5f, want within [%.5f, %.5f] (fixed step: %.5f)",
			adaptive, target*0.9, target*1.1, fixed)
	}
}

// TestAdaptiveCacheExtraPreservesLegacyAddresses: enabling the knob must
// change the content address (a different search is a different
// outcome), while the default must keep every legacy address intact.
func TestAdaptiveCacheExtraPreservesLegacyAddresses(t *testing.T) {
	legacy := OfflineOptions{TargetDeg: 0.05}.CacheExtra()
	if want := "offline|target=0x1.999999999999ap-05|iters=6|down=0x1.ccccccccccccdp-01|up=0x1.2666666666666p+00|cands=1"; legacy != want {
		t.Errorf("legacy CacheExtra = %q, want %q", legacy, want)
	}
	adaptive := OfflineOptions{TargetDeg: 0.05, AdaptiveStep: true}.CacheExtra()
	if adaptive != legacy+"|adapt=1" {
		t.Errorf("adaptive CacheExtra = %q, want legacy + |adapt=1", adaptive)
	}
}

func TestStepExponentSpread(t *testing.T) {
	if stepExponent(0) != 1 {
		t.Fatalf("candidate 0 must reproduce the configured steps, got exponent %v", stepExponent(0))
	}
	seen := map[float64]bool{}
	for k := 0; k < 6; k++ {
		e := stepExponent(k)
		if e <= 0 {
			t.Errorf("exponent %d = %v, want positive", k, e)
		}
		if seen[e] {
			t.Errorf("exponent %d = %v repeats an earlier candidate", k, e)
		}
		seen[e] = true
	}
}

func TestScheduleClampRange(t *testing.T) {
	// BuildOffline clamps schedules to [250,1000]; validate the clamp
	// arithmetic at the boundaries via a direct mini-schedule sanity run.
	sched := Schedule{{1000, 250, 1000, 250}}
	o := NewOfflineController("clamped", sched)
	init := o.Initial()
	if init[clock.Integer] != 250 || init[clock.LoadStore] != 250 {
		t.Errorf("initial = %v", init)
	}
}
