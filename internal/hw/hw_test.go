package hw

import "testing"

// Table 3 of the paper gives the exact expected gate counts.
func TestTable3RowGateCounts(t *testing.T) {
	want := map[string]int{
		"Queue Utilization Counter (Accumulator)":   176,
		"Comparators (2 required)":                  192,
		"Multiplier (partial-product accumulation)": 80,
		"Interval Counter (14-bit)":                 112,
		"Endstop Counter (4-bit)":                   28,
	}
	for _, c := range Components() {
		if got := c.Gates(); got != want[c.Name] {
			t.Errorf("%s: gates = %d, want %d", c.Name, got, want[c.Name])
		}
		if c.Estimation == "" {
			t.Errorf("%s: missing estimation formula", c.Name)
		}
	}
}

func TestGatesPerDomain(t *testing.T) {
	if got := GatesPerDomain(); got != 476 {
		t.Errorf("per-domain gates = %d, want 476 (paper Section 3.2)", got)
	}
}

func TestTotalGatesUnder2500(t *testing.T) {
	got := TotalGates(4)
	if want := 4*476 + 112; got != want {
		t.Errorf("total = %d, want %d", got, want)
	}
	if got >= 2500 {
		t.Errorf("total = %d, paper promises fewer than 2,500", got)
	}
}
