// Package fabric is the distributed run fabric: a coordinator that
// shards content-addressed run specs across a fleet of mcdserve worker
// processes, and the worker side that executes them. Determinism makes
// distribution pure scheduling — any worker computing a spec key yields
// byte-identical results, so the coordinator is free to dispatch,
// hedge, steal and requeue work without ever affecting output bytes.
//
// The coordinator keeps one queue per registered worker and a fixed
// number of dispatch slots (the worker's advertised concurrency). New
// specs go to the least-loaded worker; an idle slot steals from the
// longest other queue, so one straggler cannot strand a tail of work.
// A spec that outlives the hedge deadline (an adaptive latency
// percentile) is re-dispatched to a second worker — the first result
// wins and the loser's request is cancelled; byte-identity makes the
// race unobservable. Workers that miss enough heartbeats are presumed
// dead: their queued specs move to surviving workers and their
// in-flight dispatches fail over through the ordinary retry path.
// When no workers remain the coordinator computes locally, so a
// coordinator with zero workers is exactly a single-process server.
package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"mcd/internal/metrics"
	"mcd/internal/resultcache"
	"mcd/internal/trace"
	"mcd/internal/wire"
)

// ErrClosed reports a dispatch against a closed coordinator.
var ErrClosed = errors.New("fabric: coordinator closed")

// Options configures a Coordinator.
type Options struct {
	// Cache is the shared memoization tier: every Execute goes through
	// it, so a result computed anywhere in the fleet is a hit
	// everywhere and concurrent requests for one key single-flight
	// into one dispatch. Nil disables memoization (every Execute
	// dispatches).
	Cache *resultcache.Cache
	// Metrics receives the mcd_fabric_* instrument families; nil uses
	// a private registry (the instruments still exist, just unseen).
	Metrics *metrics.Registry
	// Trace, if non-nil, receives dispatch and hedge records in the
	// process-wide flight-recorder ring.
	Trace *trace.Ring
	// Logger receives fleet lifecycle logs; nil discards them.
	Logger *slog.Logger
	// Heartbeat is the cadence workers are told to re-register at
	// (default 1s); a worker missing deadBeats consecutive beats is
	// presumed dead.
	Heartbeat time.Duration
	// HedgeAfter fixes the hedged-retry deadline; zero selects the
	// adaptive policy (2× the p95 of recent dispatch latencies).
	HedgeAfter time.Duration
	// MaxAttempts bounds how many workers one spec may fail on before
	// the error is surfaced (default 3). Hedges do not count.
	MaxAttempts int
	// QueueFactor sets the saturation threshold: the fleet is
	// Saturated once queued+in-flight work reaches QueueFactor × the
	// fleet's total slots (default 4).
	QueueFactor int
	// Client issues the dispatch and registration HTTP requests; nil
	// uses a default client with no overall timeout (dispatches are
	// bounded by hedging and context cancellation, not a wall clock).
	Client *http.Client
}

// deadBeats is how many missed heartbeats mark a worker dead.
const deadBeats = 5

// latWindow is how many recent dispatch latencies the adaptive hedge
// deadline is computed over.
const latWindow = 64

// result is one completed attempt at an item.
type result struct {
	body   []byte
	err    error
	worker string
	remote bool
}

// item is one spec execution in flight through the fleet. It may sit
// in several queues at once (hedging, requeue after a steal race); the
// finished flag makes every copy after the first delivery inert.
type item struct {
	key string
	req wire.RunRequest
	ctx context.Context

	resCh chan result // buffered 1; first deliver wins

	mu       sync.Mutex
	finished bool
	hedged   bool
	fails    int
	last     string   // worker of the most recent attempt
	bad      []string // workers this item already failed on
	cancels  []context.CancelFunc
}

// ban records a failed worker so stealing won't bounce the item back
// to it; requeue's placement also avoids every banned worker.
func (it *item) ban(worker string) []string {
	it.mu.Lock()
	defer it.mu.Unlock()
	it.bad = append(it.bad, worker)
	return append([]string(nil), it.bad...)
}

func (it *item) bannedFrom(worker string) bool {
	it.mu.Lock()
	defer it.mu.Unlock()
	for _, b := range it.bad {
		if b == worker {
			return true
		}
	}
	return false
}

// begin opens one dispatch attempt: a cancellable sub-context of the
// caller's, registered so the winning attempt can cancel the rest.
// Returns ok=false when the item is already finished (a stale queue
// copy — the pump just drops it).
func (it *item) begin(worker string) (context.Context, bool) {
	it.mu.Lock()
	defer it.mu.Unlock()
	if it.finished {
		return nil, false
	}
	actx, cancel := context.WithCancel(it.ctx)
	it.cancels = append(it.cancels, cancel)
	it.last = worker
	return actx, true
}

// deliver hands the item's first result to its waiter and cancels
// every other outstanding attempt; later deliveries report false.
func (it *item) deliver(r result) bool {
	it.mu.Lock()
	if it.finished {
		it.mu.Unlock()
		return false
	}
	it.finished = true
	cancels := it.cancels
	it.cancels = nil
	it.mu.Unlock()
	it.resCh <- r
	for _, c := range cancels {
		c()
	}
	return true
}

// finish marks the item dead (waiter gone or satisfied) and cancels
// outstanding attempts.
func (it *item) finish() {
	it.mu.Lock()
	it.finished = true
	cancels := it.cancels
	it.cancels = nil
	it.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// worker is the coordinator's view of one registered worker.
type worker struct {
	id    string
	url   string
	slots int

	// Guarded by Coordinator.mu.
	queue    []*item
	inflight int
	lastBeat time.Time
	busySelf int
	simMIPS  float64
	gone     bool
}

// coordMetrics bundles the coordinator's counters; the per-worker
// gauges are callback families sampled from the worker table at scrape.
type coordMetrics struct {
	dispatches *metrics.CounterVec // outcome: ok | error | cancelled
	requeues   *metrics.CounterVec // reason: dead | error
	hedges     *metrics.Counter
	steals     *metrics.Counter
	localRuns  *metrics.Counter
}

// Coordinator owns the worker registry, the per-worker queues and the
// dispatch pumps. Construct with NewCoordinator.
type Coordinator struct {
	cache       *resultcache.Cache
	trc         *trace.Ring
	log         *slog.Logger
	client      *http.Client
	hb          time.Duration
	dead        time.Duration
	hedgeAfter  time.Duration
	maxAttempts int
	queueFactor int
	met         *coordMetrics

	mu      sync.Mutex
	cond    *sync.Cond
	workers map[string]*worker
	closed  bool

	wg   sync.WaitGroup // in-flight Execute calls, for the shutdown drain
	stop chan struct{}  // janitor shutdown

	latMu sync.Mutex
	lats  [latWindow]float64
	latN  int
}

// NewCoordinator starts a coordinator (and its dead-worker janitor).
func NewCoordinator(o Options) *Coordinator {
	if o.Heartbeat <= 0 {
		o.Heartbeat = time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.QueueFactor <= 0 {
		o.QueueFactor = 4
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	reg := o.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	c := &Coordinator{
		cache:       o.Cache,
		trc:         o.Trace,
		log:         o.Logger,
		client:      o.Client,
		hb:          o.Heartbeat,
		dead:        deadBeats * o.Heartbeat,
		hedgeAfter:  o.HedgeAfter,
		maxAttempts: o.MaxAttempts,
		queueFactor: o.QueueFactor,
		workers:     map[string]*worker{},
		stop:        make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	c.met = &coordMetrics{
		dispatches: reg.CounterVec("mcd_fabric_dispatches_total", "Dispatch attempts to workers, by outcome: ok, error (requeued), or cancelled (hedge loser or departed caller).", "outcome"),
		requeues:   reg.CounterVec("mcd_fabric_requeues_total", "Specs moved to another worker, by reason: dead (worker missed heartbeats) or error (dispatch failed).", "reason"),
		hedges:     reg.Counter("mcd_fabric_hedges_total", "Specs re-dispatched to a second worker after the hedge deadline; the first byte-identical result wins."),
		steals:     reg.Counter("mcd_fabric_steals_total", "Specs taken from another worker's queue by an idle dispatch slot."),
		localRuns:  reg.Counter("mcd_fabric_local_runs_total", "Specs computed on the coordinator itself because no workers were registered or alive."),
	}
	// Pre-touch the closed label sets so never-fired counters scrape
	// as 0 from the first request on (the metrics contract).
	for _, outcome := range []string{"ok", "error", "cancelled"} {
		c.met.dispatches.With(outcome)
	}
	for _, reason := range []string{"dead", "error"} {
		c.met.requeues.With(reason)
	}
	reg.GaugeFunc("mcd_fabric_workers", "Workers currently registered and heartbeating.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.workers))
	})
	reg.GaugeVecFunc("mcd_fabric_worker_busy", "In-flight dispatches per worker (coordinator's view).", "worker",
		c.workerGauges(func(w *worker) float64 { return float64(w.inflight) }))
	reg.GaugeVecFunc("mcd_fabric_worker_queue", "Queued specs per worker.", "worker",
		c.workerGauges(func(w *worker) float64 { return float64(len(w.queue)) }))
	reg.GaugeVecFunc("mcd_fabric_worker_sim_mips", "Worker self-reported simulated MIPS from its last heartbeat.", "worker",
		c.workerGauges(func(w *worker) float64 { return w.simMIPS }))
	reg.GaugeVecFunc("mcd_fabric_worker_last_heartbeat_seconds", "Seconds since the worker's last heartbeat.", "worker",
		c.workerGauges(func(w *worker) float64 { return time.Since(w.lastBeat).Seconds() }))
	go c.janitor()
	return c
}

// workerGauges builds a scrape callback sampling one per-worker value.
func (c *Coordinator) workerGauges(f func(w *worker) float64) func() map[string]float64 {
	return func() map[string]float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		out := make(map[string]float64, len(c.workers))
		for id, w := range c.workers {
			out[id] = f(w)
		}
		return out
	}
}

// Handler exposes the coordinator's registration endpoint:
//
//	POST /v1/fabric/register   worker hello/heartbeat (wire.FabricHello)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fabric/register", func(w http.ResponseWriter, r *http.Request) {
		var h wire.FabricHello
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&h); err != nil || h.ID == "" || h.URL == "" {
			http.Error(w, `{"error":"bad hello: need id and url"}`, http.StatusBadRequest)
			return
		}
		welcome := c.Register(h)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(welcome)
	})
	return mux
}

// Register records one worker hello/heartbeat, starting its dispatch
// pumps on first contact. Re-registration after the coordinator
// declared the worker dead is a fresh join (new pumps, empty queue).
func (c *Coordinator) Register(h wire.FabricHello) wire.FabricWelcome {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return wire.FabricWelcome{}
	}
	w, ok := c.workers[h.ID]
	if !ok {
		slots := h.Slots
		if slots <= 0 {
			slots = 1
		}
		w = &worker{id: h.ID, url: strings.TrimRight(h.URL, "/"), slots: slots}
		c.workers[h.ID] = w
		for i := 0; i < slots; i++ {
			go c.pump(w)
		}
		c.log.Info("fabric: worker joined", "worker", h.ID, "url", w.url, "slots", slots)
		c.cond.Broadcast()
	}
	w.lastBeat = now
	w.busySelf = h.Busy
	w.simMIPS = h.SimMIPS
	return wire.FabricWelcome{OK: true, HeartbeatMillis: c.hb.Milliseconds()}
}

// Workers returns the number of registered (alive) workers.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Saturated reports whether the whole fleet is saturated: queued plus
// in-flight work at QueueFactor times the fleet's total dispatch
// slots. With no workers it reports false — the coordinator computes
// locally then, and the manager's own queue bound is the backpressure.
func (c *Coordinator) Saturated() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	slots, load := 0, 0
	for _, w := range c.workers {
		slots += w.slots
		load += w.inflight + len(w.queue)
	}
	if slots == 0 {
		return false
	}
	return load >= slots*c.queueFactor
}

// Execute computes the canonical result body for req (content address
// key) somewhere in the fleet, consulting the shared store first. The
// signature matches the service layer's dispatch hook. Concurrent
// calls for one key single-flight through the store into one dispatch.
func (c *Coordinator) Execute(ctx context.Context, key string, req wire.RunRequest) ([]byte, bool, error) {
	remote := false
	body, hit, err := c.cache.DoBytes(key, func() ([]byte, error) {
		b, wasRemote, err := c.executeFleet(ctx, key, req)
		if err == nil && wasRemote {
			remote = true
		}
		return b, err
	})
	if remote {
		c.cache.NoteRemoteLoad()
	}
	return body, hit, err
}

// executeFleet runs one cache-missing spec through the fleet: enqueue
// on the least-loaded worker, hedge at the deadline, return the first
// result. With no workers it computes locally — a coordinator alone is
// exactly a single-process server.
func (c *Coordinator) executeFleet(ctx context.Context, key string, req wire.RunRequest) ([]byte, bool, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrClosed
	}
	w := c.leastLoadedLocked()
	if w == nil {
		c.mu.Unlock()
		c.met.localRuns.Inc()
		b, err := c.localRun(ctx, req)
		return b, false, err
	}
	it := &item{key: key, req: req, ctx: ctx, resCh: make(chan result, 1)}
	w.queue = append(w.queue, it)
	c.wg.Add(1)
	c.cond.Broadcast()
	c.mu.Unlock()
	defer c.wg.Done()
	defer it.finish()

	hedge := time.NewTimer(c.hedgeDelay())
	defer hedge.Stop()
	for {
		select {
		case r := <-it.resCh:
			return r.body, r.remote, r.err
		case <-hedge.C:
			c.hedge(it)
			// Re-arm: a hedge that found no second worker retries at the
			// next deadline; a placed hedge makes later fires no-ops.
			hedge.Reset(c.hedgeDelay())
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// localRun computes one spec on the coordinator itself, cancellable at
// interval boundaries. No cache: the caller's DoBytes owns storage.
func (c *Coordinator) localRun(ctx context.Context, req wire.RunRequest) ([]byte, error) {
	body, _, err := req.RunStreamHooked(ctx, nil, wire.RunHooks{})
	return body, err
}

// leastLoadedLocked picks the alive worker with the lowest load per
// slot, excluding the named workers (hedges avoid the first attempt's
// machine; requeues avoid every machine the item failed on). Callers
// hold c.mu.
func (c *Coordinator) leastLoadedLocked(exclude ...string) *worker {
	var best *worker
	var bestLoad float64
next:
	for _, w := range c.workers {
		if w.gone {
			continue
		}
		for _, e := range exclude {
			if w.id == e {
				continue next
			}
		}
		load := float64(w.inflight+len(w.queue)) / float64(w.slots)
		if best == nil || load < bestLoad {
			best, bestLoad = w, load
		}
	}
	return best
}

// hedge re-dispatches one still-running item to a second worker. At
// most one hedge per item; the first result delivered wins and cancels
// the other attempt.
func (c *Coordinator) hedge(it *item) {
	it.mu.Lock()
	if it.finished || it.hedged {
		it.mu.Unlock()
		return
	}
	it.hedged = true
	last := it.last
	it.mu.Unlock()
	c.mu.Lock()
	w := c.leastLoadedLocked(last)
	if w == nil {
		it.mu.Lock()
		it.hedged = false // nobody to hedge to; a later deadline may retry
		it.mu.Unlock()
		c.mu.Unlock()
		return
	}
	w.queue = append(w.queue, it)
	c.cond.Broadcast()
	c.mu.Unlock()
	c.met.hedges.Inc()
	c.instant("hedge", it.key, w.id)
	c.log.Info("fabric: hedged dispatch", "key", it.key, "worker", w.id, "first", last)
}

// pump is one dispatch slot of one worker: pop from the worker's own
// queue, steal from the longest other queue when idle, POST the spec,
// deliver the result. Pumps exit when their worker is declared dead or
// — after draining the queues — when the coordinator closes.
func (c *Coordinator) pump(w *worker) {
	for {
		c.mu.Lock()
		var it *item
		for {
			if w.gone {
				c.mu.Unlock()
				return
			}
			it = c.takeLocked(w)
			if it != nil {
				break
			}
			if c.closed {
				c.mu.Unlock()
				return
			}
			c.cond.Wait()
		}
		w.inflight++
		c.mu.Unlock()
		c.dispatch(w, it)
		c.mu.Lock()
		w.inflight--
		c.mu.Unlock()
	}
}

// takeLocked pops the next item: own queue first, then a steal from
// the tail of the longest other alive queue. Callers hold c.mu.
func (c *Coordinator) takeLocked(w *worker) *item {
	if len(w.queue) > 0 {
		it := w.queue[0]
		w.queue = w.queue[1:]
		return it
	}
	var victim *worker
	var steal = -1
	for _, o := range c.workers {
		if o == w || o.gone || len(o.queue) == 0 {
			continue
		}
		if victim != nil && len(o.queue) <= len(victim.queue) {
			continue
		}
		// Steal from the tail, skipping items that already failed on
		// this worker — a requeue must not bounce straight back to the
		// machine that broke it.
		for i := len(o.queue) - 1; i >= 0; i-- {
			if !o.queue[i].bannedFrom(w.id) {
				victim, steal = o, i
				break
			}
		}
	}
	if victim == nil {
		return nil
	}
	it := victim.queue[steal]
	victim.queue = append(victim.queue[:steal], victim.queue[steal+1:]...)
	c.met.steals.Inc()
	return it
}

// dispatch POSTs one spec to one worker and routes the outcome: a win
// is delivered (cancelling rival attempts), a cancelled attempt is the
// hedge loser or a departed caller and dies quietly, a failure goes
// back through requeue.
func (c *Coordinator) dispatch(w *worker, it *item) {
	actx, ok := it.begin(w.id)
	if !ok {
		return
	}
	start := time.Now()
	body, retryable, err := c.post(actx, w, it)
	if err == nil {
		if it.deliver(result{body: body, worker: w.id, remote: true}) {
			c.met.dispatches.With("ok").Inc()
			c.noteLatency(time.Since(start))
			c.span("dispatch", it.key, w.id, start)
		} else {
			// Lost the hedge race after completing: counted as
			// cancelled — the bytes are identical anyway.
			c.met.dispatches.With("cancelled").Inc()
		}
		return
	}
	if actx.Err() != nil {
		c.met.dispatches.With("cancelled").Inc()
		return
	}
	c.met.dispatches.With("error").Inc()
	c.log.Warn("fabric: dispatch failed", "worker", w.id, "key", it.key, "error", err)
	if !retryable {
		it.deliver(result{err: err})
		return
	}
	c.requeue(it, w.id, "error")
}

// post issues one execute request. retryable distinguishes transport
// and worker-side (5xx) failures — worth another worker — from
// request-level rejections (4xx: the spec itself is bad everywhere).
func (c *Coordinator) post(ctx context.Context, w *worker, it *item) (body []byte, retryable bool, err error) {
	b, err := json.Marshal(wire.FabricExecute{Key: it.key, Run: it.req})
	if err != nil {
		return nil, false, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/fabric/execute", bytes.NewReader(b))
	if err != nil {
		return nil, false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		return nil, true, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, true, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode >= 500,
			fmt.Errorf("worker %s: status %d: %s", w.id, resp.StatusCode, strings.TrimSpace(string(out)))
	}
	return out, false, nil
}

// requeue moves a failed item to another worker — or, with the fleet
// gone, computes it locally so admitted work still completes. Too many
// distinct failures surface as the item's error.
func (c *Coordinator) requeue(it *item, fromID, reason string) {
	it.mu.Lock()
	it.fails++
	fails := it.fails
	finished := it.finished
	it.mu.Unlock()
	if finished {
		return
	}
	c.met.requeues.With(reason).Inc()
	if fails >= c.maxAttempts {
		it.deliver(result{err: fmt.Errorf("fabric: spec %s failed on %d workers", it.key, fails)})
		return
	}
	banned := it.ban(fromID)
	c.mu.Lock()
	w := c.leastLoadedLocked(banned...)
	if w == nil {
		w = c.leastLoadedLocked()
	}
	if w != nil {
		w.queue = append(w.queue, it)
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	c.met.localRuns.Inc()
	body, err := c.localRun(it.ctx, it.req)
	it.deliver(result{body: body, err: err})
}

// janitor periodically reaps workers that stopped heartbeating.
func (c *Coordinator) janitor() {
	t := time.NewTicker(c.hb)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.reap(now)
		}
	}
}

// reap declares workers dead after deadBeats missed heartbeats: their
// queued specs move to survivors (or compute locally with the fleet
// gone); their in-flight dispatches fail over through the ordinary
// error path when the connection drops.
func (c *Coordinator) reap(now time.Time) {
	c.mu.Lock()
	var orphans []*item
	for id, w := range c.workers {
		if now.Sub(w.lastBeat) <= c.dead {
			continue
		}
		w.gone = true
		orphans = append(orphans, w.queue...)
		w.queue = nil
		delete(c.workers, id)
		c.log.Warn("fabric: worker presumed dead", "worker", id, "requeued", len(orphans))
	}
	var local []*item
	for _, it := range orphans {
		c.met.requeues.With("dead").Inc()
		if w := c.leastLoadedLocked(); w != nil {
			w.queue = append(w.queue, it)
		} else {
			local = append(local, it)
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, it := range local {
		it := it
		go func() {
			c.met.localRuns.Inc()
			body, err := c.localRun(it.ctx, it.req)
			it.deliver(result{body: body, err: err})
		}()
	}
}

// noteLatency folds one successful dispatch duration into the window
// behind the adaptive hedge deadline.
func (c *Coordinator) noteLatency(d time.Duration) {
	c.latMu.Lock()
	c.lats[c.latN%latWindow] = d.Seconds()
	c.latN++
	c.latMu.Unlock()
}

// hedgeDelay is the hedged-retry deadline: a fixed override, or 2× the
// p95 of recent dispatch latencies, clamped to [100ms, 30s]. Before
// enough samples exist it is a generous default — early duplicates are
// harmless (a finished item makes its queue copies inert).
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.hedgeAfter > 0 {
		return c.hedgeAfter
	}
	c.latMu.Lock()
	n := c.latN
	if n > latWindow {
		n = latWindow
	}
	if n < 4 {
		c.latMu.Unlock()
		return 2 * time.Second
	}
	s := append([]float64(nil), c.lats[:n]...)
	c.latMu.Unlock()
	sort.Float64s(s)
	p95 := s[(n*95)/100-1]
	d := time.Duration(2 * p95 * float64(time.Second))
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// span lands one wall-clock span in the flight recorder, if armed.
func (c *Coordinator) span(name, key, tier string, start time.Time) {
	if c.trc == nil {
		return
	}
	c.trc.Add(trace.Record{
		Kind: trace.KindSpan, Name: name, Key: key, Tier: tier,
		StartUS: start.UnixMicro(), DurUS: time.Since(start).Microseconds(),
	})
}

// instant lands one point event in the flight recorder, if armed.
func (c *Coordinator) instant(name, key, note string) {
	if c.trc == nil {
		return
	}
	c.trc.Add(trace.Record{
		Kind: trace.KindInstant, Name: name, Key: key, Note: note,
		StartUS: time.Now().UnixMicro(),
	})
}

// Close stops admitting work, lets the pumps drain every queued
// dispatch, and waits for in-flight Execute calls to return — the
// graceful-shutdown drain. Callers shutting down a whole server close
// the job manager first (cancelling job contexts), which turns the
// drain into a prompt cancellation sweep.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	close(c.stop)
	c.wg.Wait()
}
