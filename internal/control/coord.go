package control

import (
	"fmt"

	"mcd/internal/clock"
	"mcd/internal/pipeline"
	"mcd/internal/resultcache"
)

// Coord is a coordinated cross-domain budget controller in the spirit
// of SysScale's multi-domain DVFS (Haj-Yahya et al.; PAPERS.md):
// instead of each domain adapting independently, one global controller
// maintains a single slack budget — the total frequency (MHz) currently
// removed from the chip — and redistributes it across the controlled
// domains every interval according to where the decoupling queues say
// the work is not.
//
// The budget itself is governed by the global IPC signal, exactly the
// guard hardware Attack/Decay uses: while smoothed IPC stays within
// perfdeg of the reference (best recent) IPC, the budget grows by
// step_mhz per interval, up to budget_mhz; when performance sags below
// the guard, the budget contracts restore× faster than it grew, giving
// frequency back to every domain at once. Within the budget, each
// domain's share is proportional to 1/(1+occupancy): the emptier a
// domain's queue, the more of the chip-wide slack it absorbs — so slack
// migrates between domains as program phases move work around, which no
// per-domain controller can do.
type Coord struct {
	stepMHz, restore, budgetMax, perfDeg float64
	feMHz, minMHz, maxMHz                float64

	budget  float64
	refIPC  float64
	ipcEMA  float64
	haveIPC bool
}

var _ pipeline.Controller = (*Coord)(nil)

// coordRefDecay and coordSmoothing fix the IPC-guard filter constants
// to the same effective values Attack/Decay uses by default.
const (
	coordRefDecay  = 0.01
	coordSmoothing = 0.25
)

// coordSchema declares the registry parameters of the Coord controller.
func coordSchema() Schema {
	return Schema{
		{Name: "step_mhz", Default: 25, Min: 1, Max: 200,
			Doc: "budget growth per interval while the IPC guard holds"},
		{Name: "restore", Default: 4, Min: 1, Max: 20,
			Doc: "budget contraction speed (multiples of step_mhz) when the guard trips"},
		{Name: "budget_mhz", Default: 1500, Min: 0, Max: 2250,
			Doc: "cap on total frequency removed across all controlled domains"},
		{Name: "perfdeg", Default: 0.025, Min: 0, Max: 0.12,
			Doc: "performance degradation target for the IPC guard"},
		{Name: "fe_mhz", Default: 1000, Min: 250, Max: 1000,
			Doc: "pinned front-end frequency"},
		{Name: "min_mhz", Default: 250, Min: 250, Max: 1000,
			Doc: "lower frequency bound"},
		{Name: "max_mhz", Default: 1000, Min: 250, Max: 1000,
			Doc: "upper frequency bound"},
	}
}

// NewCoord builds the controller from resolved registry parameters; the
// budget starts at zero, i.e. every domain at maximum frequency.
func NewCoord(p Params) *Coord {
	return &Coord{
		stepMHz: p["step_mhz"], restore: p["restore"], budgetMax: p["budget_mhz"],
		perfDeg: p["perfdeg"],
		feMHz:   p["fe_mhz"], minMHz: p["min_mhz"], maxMHz: p["max_mhz"],
	}
}

// Name implements pipeline.Controller.
func (c *Coord) Name() string { return "coord" }

// CacheKey implements resultcache.Keyer.
func (c *Coord) CacheKey() string {
	h := resultcache.Float
	return fmt.Sprintf("coord|step=%s|restore=%s|budget=%s|perfdeg=%s|fe=%s|min=%s|max=%s",
		h(c.stepMHz), h(c.restore), h(c.budgetMax), h(c.perfDeg), h(c.feMHz), h(c.minMHz), h(c.maxMHz))
}

// DecisionNote implements pipeline.DecisionNoter for the decision-audit
// trail: the budget redistribution state behind the latest Observe —
// total slack currently removed from the chip, and the IPC guard that
// governs whether it grows or contracts.
func (c *Coord) DecisionNote() string {
	return fmt.Sprintf("budget_mhz=%.1f ref_ipc=%.4f ipc_ema=%.4f", c.budget, c.refIPC, c.ipcEMA)
}

// Observe implements pipeline.Controller: update the global budget from
// the IPC guard, then split it across domains by inverse occupancy.
func (c *Coord) Observe(iv pipeline.IntervalView) [clock.NumControllable]float64 {
	var targets [clock.NumControllable]float64
	if iv.Estimated {
		// Sampled fidelity: a frozen occupancy view would grow the budget
		// every skipped interval. Hold until the next detailed sample.
		return targets
	}
	targets[clock.FrontEnd] = c.feMHz

	if !c.haveIPC {
		c.ipcEMA = iv.IPC
		c.refIPC = iv.IPC
		c.haveIPC = true
	} else {
		c.ipcEMA += coordSmoothing * (iv.IPC - c.ipcEMA)
		c.refIPC *= 1 - coordRefDecay
		if c.ipcEMA > c.refIPC {
			c.refIPC = c.ipcEMA
		}
	}
	ipcOK := true
	if c.ipcEMA > 0 {
		ipcOK = c.refIPC/c.ipcEMA-1 <= c.perfDeg
	}

	if ipcOK {
		c.budget += c.stepMHz
		if c.budget > c.budgetMax {
			c.budget = c.budgetMax
		}
	} else {
		c.budget -= c.restore * c.stepMHz
		if c.budget < 0 {
			c.budget = 0
		}
	}

	controlled := []clock.Domain{clock.Integer, clock.FloatingPoint, clock.LoadStore}
	var wsum float64
	var w [clock.NumControllable]float64
	for _, d := range controlled {
		w[d] = 1 / (1 + iv.QueueAvg[d])
		wsum += w[d]
	}
	span := c.maxMHz - c.minMHz
	for _, d := range controlled {
		cut := c.budget * w[d] / wsum
		if cut > span {
			cut = span
		}
		targets[d] = c.maxMHz - cut
	}
	return targets
}

func init() {
	Register(Definition{
		Name:   "coord",
		Doc:    "coordinated cross-domain slack budget, redistributed by queue occupancy each interval (SysScale-style)",
		Schema: coordSchema(),
		New: func(p Params) (pipeline.Controller, error) {
			return NewCoord(p), nil
		},
	})
}
