package service

import (
	"sync"
	"time"

	"mcd/internal/metrics"
	"mcd/internal/sim"
)

// managerMetrics bundles the manager's instruments. Counters the hot
// paths bump directly live here as fields; everything whose truth
// already lives in a manager table (queue depth, jobs by state, cache
// counters) is a callback family sampled at scrape time, so the metrics
// layer never keeps a second copy of serving state.
type managerMetrics struct {
	reg *metrics.Registry

	submitted       *metrics.CounterVec // accepted submissions, by kind
	rejected        *metrics.CounterVec // 429s, by reason: queue | quota | fleet
	cancelled       *metrics.Counter
	completed       *metrics.CounterVec // terminal jobs, by state: done | failed
	gapFrames       *metrics.Counter    // interval records dropped past the log bound
	journalErrors   *metrics.Counter
	replayed        *metrics.Gauge
	replayedResults *metrics.Gauge
	runnerBusy      *metrics.GaugeVec
	runnerMIPS      *metrics.GaugeVec
	jobDuration     *metrics.HistogramVec // seconds, by phase: queue | run
}

// jobDurationBuckets are the fixed upper bounds of the job-duration
// histogram: sub-10 ms cache hits through multi-minute experiments.
// Fixed — never derived from traffic — so histograms aggregate across
// servers and a scrape's shape never changes.
var jobDurationBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// newManagerMetrics registers the manager's instruments on reg (a
// private registry when reg is nil, so Manager.Metrics always serves
// something).
func newManagerMetrics(m *Manager, reg *metrics.Registry) *managerMetrics {
	if reg == nil {
		reg = metrics.New()
	}
	mm := &managerMetrics{
		reg:             reg,
		submitted:       reg.CounterVec("mcd_jobs_submitted_total", "Jobs accepted into the queue, by kind.", "kind"),
		rejected:        reg.CounterVec("mcd_jobs_rejected_total", "Submissions rejected with 429, by reason: queue (depth exhausted), quota (per-client bound) or fleet (worker fleet saturated).", "reason"),
		cancelled:       reg.Counter("mcd_jobs_cancelled_total", "Cancel requests accepted for known jobs."),
		completed:       reg.CounterVec("mcd_jobs_completed_total", "Jobs that reached a terminal state, by state.", "state"),
		gapFrames:       reg.Counter("mcd_stream_gap_frames_total", "Interval records dropped past the bounded per-job log and reported to lagging stream consumers as explicit gap frames."),
		journalErrors:   reg.Counter("mcd_journal_errors_total", "Journal appends or compactions that failed; persistence degraded but the jobs still ran."),
		replayed:        reg.Gauge("mcd_journal_replayed_jobs", "Jobs re-queued from the journal at the last startup."),
		replayedResults: reg.Gauge("mcd_journal_replayed_results", "Completed jobs restored as Done from journaled result bytes at the last startup."),
		runnerBusy:      reg.GaugeVec("mcd_runner_busy", "Whether the runner is executing a job (1) or idle (0).", "runner"),
		runnerMIPS:      reg.GaugeVec("mcd_runner_sim_mips", "Simulated MIPS of the runner's most recent job; approximate when runners overlap (the instruction counter is process-wide).", "runner"),
		jobDuration:     reg.HistogramVec("mcd_job_duration_seconds", "Job phase durations: queue (submission to start) and run (start to terminal).", "phase", jobDurationBuckets),
	}
	// Pre-touch the closed label sets so every scrape carries the full
	// family shape from the first request on — a counter that has never
	// fired reads 0 instead of being absent.
	for _, kind := range []string{"run", "stream", "batch", "experiment"} {
		mm.submitted.With(kind)
	}
	for _, reason := range []string{"queue", "quota", "fleet"} {
		mm.rejected.With(reason)
	}
	for _, state := range []string{string(Done), string(Failed)} {
		mm.completed.With(state)
	}
	for _, phase := range []string{"queue", "run"} {
		mm.jobDuration.With(phase)
	}
	reg.GaugeFunc("mcd_queue_depth", "Jobs waiting for a runner.", m.queueDepth)
	reg.GaugeVecFunc("mcd_jobs", "Jobs in the table, by state.", "state", m.stateCounts)
	reg.GaugeFunc("mcd_job_latency_seconds", "Exponentially weighted recent job latency.", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.latEWMA
	})

	// Cache families sample the result store's own counters; with no
	// store configured every sample is zero, which keeps dashboards
	// uniform across deployments.
	reg.CounterVecFunc("mcd_cache_hits_total", "Requests served without simulating locally, by tier: mem, disk, dedup (joined an in-flight computation), or remote (bytes computed by a fabric worker).", "tier",
		func() map[string]float64 {
			s := m.opts.Cache.Stats()
			return map[string]float64{"mem": float64(s.MemHits), "disk": float64(s.DiskHits), "dedup": float64(s.Dedups), "remote": float64(s.RemoteLoads)}
		})
	reg.CounterFunc("mcd_cache_misses_total", "Requests that had to simulate.", func() float64 {
		return float64(m.opts.Cache.Stats().Misses)
	})
	reg.CounterFunc("mcd_cache_evictions_total", "Memory-tier evictions.", func() float64 {
		return float64(m.opts.Cache.Stats().Evictions)
	})
	reg.CounterFunc("mcd_cache_write_errors_total", "Failed disk-tier persists (the result was still served).", func() float64 {
		return float64(m.opts.Cache.Stats().WriteErrors)
	})
	reg.GaugeFunc("mcd_cache_entries", "Memory-tier entries resident.", func() float64 {
		return float64(m.opts.Cache.Stats().Entries)
	})
	reg.GaugeFunc("mcd_cache_mem_bytes", "Memory-tier bytes resident.", func() float64 {
		return float64(m.opts.Cache.Stats().MemBytes)
	})

	reg.CounterFunc("mcd_sim_instructions_total", "Simulated instructions executed process-wide.", func() float64 {
		return float64(sim.SimulatedInstructions())
	})
	// Scrape-to-scrape simulation throughput: exact (unlike the
	// per-runner gauges) because the process-wide counter delta over the
	// wall-clock delta needs no attribution.
	var (
		scrapeMu  sync.Mutex
		lastInstr uint64
		lastAt    time.Time
	)
	reg.GaugeFunc("mcd_sim_mips", "Process-wide simulated MIPS between the last two scrapes.", func() float64 {
		scrapeMu.Lock()
		defer scrapeMu.Unlock()
		now := time.Now()
		instr := sim.SimulatedInstructions()
		var mips float64
		if !lastAt.IsZero() {
			if secs := now.Sub(lastAt).Seconds(); secs > 0 {
				mips = float64(instr-lastInstr) / secs / 1e6
			}
		}
		lastInstr, lastAt = instr, now
		return mips
	})
	return mm
}

// queueDepth backs the mcd_queue_depth gauge.
func (m *Manager) queueDepth() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return float64(len(m.pending))
}

// stateCounts backs the mcd_jobs gauge vector: how many jobs in the
// table sit in each state. All four states are always present, so a
// scrape after startup already shows the full shape.
func (m *Manager) stateCounts() map[string]float64 {
	m.mu.Lock()
	js := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	counts := map[string]float64{
		string(Queued): 0, string(Running): 0, string(Done): 0, string(Failed): 0,
	}
	for _, j := range js {
		counts[string(j.Snapshot().State)]++
	}
	return counts
}
