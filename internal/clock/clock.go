// Package clock models the per-domain clocking substrate of a Multiple
// Clock Domain (MCD) processor: independent domain clocks with normally
// distributed jitter, randomized initial phases, cycle-by-cycle edge
// tracking, and the Sjogren–Myers synchronization-window test used to
// decide whether a signal produced in one domain can be latched at a given
// edge of another domain.
//
// All times are in picoseconds; all frequencies in MHz. A 1.0 GHz clock
// therefore has a nominal period of 1000 ps.
package clock

import (
	"math"
	"math/rand"
)

// Domain identifies one of the independently clocked processor regions
// described in the paper (Figure 1). Memory is clocked independently but is
// not controllable; it always runs at the maximum frequency.
type Domain uint8

// The four controllable domains, plus the external memory domain.
const (
	FrontEnd Domain = iota
	Integer
	FloatingPoint
	LoadStore
	Memory

	// NumControllable is the number of domains whose frequency and
	// voltage may be adjusted (all but Memory).
	NumControllable = 4
	// NumDomains includes the external memory domain.
	NumDomains = 5
)

var domainNames = [NumDomains]string{"frontend", "integer", "fp", "loadstore", "memory"}

func (d Domain) String() string {
	if int(d) < len(domainNames) {
		return domainNames[d]
	}
	return "unknown"
}

// Controllable reports whether the domain's frequency/voltage may be
// adjusted by a controller.
func (d Domain) Controllable() bool { return d < NumControllable }

// PeriodPS converts a frequency in MHz to a period in picoseconds.
func PeriodPS(freqMHz float64) float64 { return 1e6 / freqMHz }

// FreqMHz converts a period in picoseconds to a frequency in MHz.
func FreqMHz(periodPS float64) float64 { return 1e6 / periodPS }

// Clock is one domain clock. It tracks the ideal (jitter-free) time of its
// next edge; each pending edge is displaced by a fresh jitter sample drawn
// from a normal distribution with mean zero, exactly as in the paper's
// clocking model (Section 4). Jitter is per-edge displacement from the PLL
// grid, not a cumulative random walk: the relationship between two domain
// clocks of equal frequency stays bounded, and synchronization penalties
// arise from window violations and inter-domain rate differences, as the
// paper describes.
type Clock struct {
	periodPS float64
	basePS   float64 // ideal time of the pending edge
	jitPS    float64 // jitter displacement of the pending edge
	lastPS   float64
	sigmaPS  float64
	rng      *rand.Rand
	cycles   uint64
}

// New returns a clock running at freqMHz whose first edge occurs at
// startPS. Jitter is disabled when sigmaPS is zero or rng is nil.
func New(freqMHz, sigmaPS, startPS float64, rng *rand.Rand) *Clock {
	c := &Clock{}
	c.Reset(freqMHz, sigmaPS, startPS, rng)
	return c
}

// Reset reinitializes the clock in place, exactly as New would construct
// it (the first jitter sample is drawn here, in constructor order), so a
// reused pipeline core is indistinguishable from a fresh one.
func (c *Clock) Reset(freqMHz, sigmaPS, startPS float64, rng *rand.Rand) {
	*c = Clock{
		periodPS: PeriodPS(freqMHz),
		basePS:   startPS,
		lastPS:   math.Inf(-1),
		sigmaPS:  sigmaPS,
		rng:      rng,
	}
	c.jitPS = c.sampleJitter()
}

func (c *Clock) sampleJitter() float64 {
	if c.rng == nil || c.sigmaPS == 0 {
		return 0
	}
	return c.rng.NormFloat64() * c.sigmaPS
}

// NextEdge returns the time of the next (not yet consumed) clock edge.
func (c *Clock) NextEdge() float64 {
	e := c.basePS + c.jitPS
	// Jitter must never reorder edges; with sigma = 110 ps and periods
	// >= 1000 ps a violation is a multi-sigma event, but guard anyway.
	if e <= c.lastPS {
		e = c.lastPS + c.periodPS*0.25
	}
	return e
}

// LastEdge returns the time of the most recently consumed edge, or -Inf
// before any edge has been consumed.
func (c *Clock) LastEdge() float64 { return c.lastPS }

// Advance consumes the pending edge and schedules the following one. It
// returns the time of the consumed edge.
func (c *Clock) Advance() float64 {
	edge := c.NextEdge()
	c.advanceFrom(edge)
	return edge
}

// advanceFrom consumes the pending edge, whose time the caller already
// computed via NextEdge (the scheduler caches it), and schedules the
// following one.
func (c *Clock) advanceFrom(edge float64) {
	c.lastPS = edge
	c.basePS += c.periodPS
	c.jitPS = c.sampleJitter()
	c.cycles++
}

// SetFrequencyMHz changes the clock frequency. The change takes effect for
// the next scheduled period (the already-scheduled pending edge is kept),
// which models a PLL whose output period updates continuously while the
// domain executes through the change.
func (c *Clock) SetFrequencyMHz(f float64) { c.periodPS = PeriodPS(f) }

// FrequencyMHz returns the current clock frequency.
func (c *Clock) FrequencyMHz() float64 { return FreqMHz(c.periodPS) }

// PeriodPS returns the current nominal period in picoseconds.
func (c *Clock) PeriodPS() float64 { return c.periodPS }

// Cycles returns the number of edges consumed so far.
func (c *Clock) Cycles() uint64 { return c.cycles }

// State is a snapshot of a clock's mutable fields — everything except
// the jitter sigma and rng, which are fixed at Reset and restored by the
// owner (the pipeline core keeps the jitter rng positions separately).
type State struct {
	PeriodPS float64
	BasePS   float64
	JitPS    float64
	LastPS   float64
	Cycles   uint64
}

// State captures the clock's mutable fields for a snapshot.
func (c *Clock) State() State {
	return State{PeriodPS: c.periodPS, BasePS: c.basePS, JitPS: c.jitPS, LastPS: c.lastPS, Cycles: c.cycles}
}

// SetState restores a snapshot taken with State. The caller must Refresh
// any scheduler caching this clock's pending edge.
func (c *Clock) SetState(s State) {
	c.periodPS = s.PeriodPS
	c.basePS = s.BasePS
	c.jitPS = s.JitPS
	c.lastPS = s.LastPS
	c.cycles = s.Cycles
}

// FastForwardTo advances the ideal edge grid past time t by whole
// periods without consuming edges one by one: the pending jitter sample
// is kept (no rng draws, so the jitter stream stays deterministic) and
// the skipped periods are credited to the cycle counter. Used by the
// sampled fidelity tier to jump over fast-forwarded control intervals.
// The caller must Refresh any scheduler caching this clock's edges.
func (c *Clock) FastForwardTo(t float64) {
	if c.basePS >= t {
		return
	}
	n := math.Ceil((t - c.basePS) / c.periodPS)
	c.basePS += n * c.periodPS
	c.cycles += uint64(n)
}

// Visible implements the Sjogren–Myers arbitration test: a signal produced
// in a source domain at time producedPS can be latched at a destination
// edge at time edgePS only if the edges are at least windowPS apart.
// Destination edges inside the window must wait for the following edge.
func Visible(producedPS, edgePS, windowPS float64) bool {
	return edgePS >= producedPS+windowPS
}

// Scheduler multiplexes the domain clocks, always surfacing the earliest
// pending edge. With a handful of clocks a linear scan beats a heap; the
// scan runs over a flat cache of each clock's pending-edge time, refreshed
// whenever a clock is advanced or retargeted, so the per-cycle hot path
// touches no clock state at all. Mutations must therefore go through the
// scheduler (Advance, SetFrequencyMHz) — or call Refresh after mutating a
// clock directly.
type Scheduler struct {
	clocks []*Clock
	next   []float64 // cached NextEdge of each clock
}

// NewScheduler builds a scheduler over per-domain clocks indexed by Domain.
// All entries must be non-nil. The external memory domain needs no clock
// here; its fixed latency is modeled directly by the pipeline.
func NewScheduler(clocks []*Clock) *Scheduler {
	if len(clocks) == 0 {
		panic("clock: scheduler needs at least one clock")
	}
	s := &Scheduler{clocks: clocks, next: make([]float64, len(clocks))}
	s.Refresh()
	return s
}

// Refresh recomputes the cached pending-edge times from the clocks — for
// a reused scheduler whose clocks were Reset, or after direct clock
// mutation.
func (s *Scheduler) Refresh() {
	for d := range s.clocks {
		s.next[d] = s.clocks[d].NextEdge()
	}
}

// Clock returns the clock for domain d.
func (s *Scheduler) Clock(d Domain) *Clock { return s.clocks[d] }

// SetFrequencyMHz changes domain d's clock frequency (taking effect for
// the next scheduled period, like Clock.SetFrequencyMHz) and keeps the
// pending-edge cache coherent.
func (s *Scheduler) SetFrequencyMHz(d Domain, f float64) {
	s.clocks[d].SetFrequencyMHz(f)
	s.next[d] = s.clocks[d].NextEdge()
}

// Peek returns the domain whose next edge is earliest and that edge's time.
// Ties break toward the lowest-numbered domain, which gives the front end
// priority at aligned edges (e.g. in fully synchronous configurations).
func (s *Scheduler) Peek() (Domain, float64) {
	best := Domain(0)
	bestT := s.next[0]
	for d := 1; d < len(s.next); d++ {
		if t := s.next[d]; t < bestT {
			best, bestT = Domain(d), t
		}
	}
	return best, bestT
}

// Advance consumes the earliest pending edge and returns its domain and time.
func (s *Scheduler) Advance() (Domain, float64) {
	d, t := s.Peek()
	c := s.clocks[d]
	c.advanceFrom(t)
	s.next[d] = c.NextEdge()
	return d, t
}
