package mcd_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"mcd"
	"mcd/internal/sim"
)

// TestWarmupSnapshotByteIdentity is the checkpointed-warmup contract,
// registry-driven like the session byte-identity test: for every
// registered controller, a sampled run that restores the shared warm
// snapshot produces a Result byte-identical to one that simulates its
// own warmup prefix. The first reused run of each benchmark builds the
// snapshot (single-flight) and later ones restore it from the cache, so
// the loop exercises both the capture and the restore path; byte
// equality of the JSON encodings is the same identity bar the caching
// and session pins use.
func TestWarmupSnapshotByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full registry twice")
	}
	bench, ok := mcd.LookupBenchmark("adpcm")
	if !ok {
		t.Fatal("adpcm missing from catalog")
	}
	cfg := mcd.DefaultConfig()
	cfg.SlewNsPerMHz = 4.91
	run := mcd.ControllerRun{
		Config:         cfg,
		Profile:        bench.Profile,
		Window:         20_000,
		Warmup:         8_000,
		IntervalLength: 500,
		Fidelity:       sim.FidelitySampled,
	}
	params := map[string]mcd.ControllerParams{
		"dynamic":   {"iters": 2},
		"dynamic-1": {"iters": 2},
		"dynamic-5": {"iters": 2},
	}

	// The reuse switch is process-global, so the registry is walked
	// serially: straight warmup first, then the warm-restored replay.
	defer sim.SetWarmReuse(true)
	for _, name := range mcd.ControllerNames() {
		spec, err := mcd.ControllerSpec(name, params[name], run)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sim.SetWarmReuse(false)
		want, err := json.Marshal(mcd.Run(spec))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		sim.SetWarmReuse(true)
		for pass := 0; pass < 2; pass++ { // build-then-restore, then pure restore
			spec2, err := mcd.ControllerSpec(name, params[name], run)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got, err := json.Marshal(mcd.Run(spec2))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s (pass %d): warm-restored run differs from straight run\nstraight: %s\nrestored: %s",
					name, pass, want, got)
			}
		}
	}
}
