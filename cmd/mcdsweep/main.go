// Command mcdsweep regenerates the sensitivity figures: Figure 5
// (performance-degradation target), Figures 6/7 (Decay, ReactionChange,
// DeviationThreshold sensitivity), printing one row per swept value with
// the suite-averaged metrics.
//
// Usage:
//
//	mcdsweep -param target     # Figure 5
//	mcdsweep -param decay      # Figures 6a / 7a
//	mcdsweep -param reaction   # Figures 6b / 7b
//	mcdsweep -param deviation  # Figures 6c / 7c
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"mcd/internal/bench"
)

func main() {
	var (
		param   = flag.String("param", "target", "target | decay | reaction | deviation")
		quick   = flag.Bool("quick", true, "reduced scale (10-benchmark subset)")
		benchF  = flag.String("bench", "", "comma-separated benchmark filter")
		quiet   = flag.Bool("quiet", false, "suppress progress output")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel simulation workers (results are identical for any value)")
	)
	flag.Parse()

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	if *benchF != "" {
		opts.Benchmarks = bench.SplitNames(*benchF)
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	opts.Workers = *workers

	switch *param {
	case "target":
		pts := opts.SweepTarget(nil)
		fmt.Print(bench.FormatSweep("Figure 5: performance degradation target (1.000_06.0_1.250_X.X)", "target", pts))
	case "decay":
		pts := opts.SweepDecay(nil)
		fmt.Print(bench.FormatSweep("Figures 6a/7a: Decay sensitivity (1.500_04.0_X.XXX_3.0)", "decay", pts))
	case "reaction":
		pts := opts.SweepReaction(nil)
		fmt.Print(bench.FormatSweep("Figures 6b/7b: ReactionChange sensitivity (1.500_XX.X_0.750_3.0)", "reaction", pts))
	case "deviation":
		pts := opts.SweepDeviation(nil)
		fmt.Print(bench.FormatSweep("Figures 6c/7c: DeviationThreshold sensitivity (X.XXX_06.0_0.175_2.5)", "deviation", pts))
	default:
		fmt.Fprintf(os.Stderr, "mcdsweep: unknown parameter %q\n", *param)
		os.Exit(1)
	}
}
