// Package metrics is a minimal Prometheus-text-format instrument
// registry for the serving layer: counters, gauges, callback-backed
// variants of both, and single-label vectors, rendered by GET /metrics
// in the exposition format Prometheus scrapes. It exists so mcdserve is
// observable without importing a client library the container does not
// carry; the renderer emits only the stable v0.0.4 text subset
// (# HELP, # TYPE, counter/gauge samples with at most one label, and
// fixed-bucket histograms) that every Prometheus-compatible scraper
// accepts.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric type strings of the exposition format.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64 // float64 bits: counters may grow by fractions
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (a counter
// never goes down — a decreasing series would break every rate()).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by v (negative deltas allowed).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metric is one registered family: a fixed set of live series, or a
// callback sampled at scrape time.
type metric struct {
	name  string
	help  string
	typ   string
	label string // vector label name; empty for unlabelled families

	mu     sync.Mutex
	static *Counter // unlabelled counter (nil otherwise)
	gauge  *Gauge   // unlabelled gauge (nil otherwise)
	series map[string]any
	fn     func() map[string]float64 // callback family ("" key = unlabelled)
}

// Registry holds metric families and renders them. The zero value is
// not usable; construct with New. A nil *Registry is valid everywhere
// and registers/serves nothing, so instrumentation call sites need no
// conditionals.
type Registry struct {
	mu       sync.Mutex
	families []*metric
	byName   map[string]*metric
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

// register panics on duplicate or empty names: instruments are created
// at construction time, where a name collision is a programming error
// that should stop the program, not silently alias two series.
func (r *Registry) register(m *metric) *metric {
	if m.name == "" {
		panic("metrics: register with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic(fmt.Sprintf("metrics: %q registered twice", m.name))
	}
	r.families = append(r.families, m)
	r.byName[m.name] = m
	return m
}

// Counter registers and returns an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	if r != nil {
		r.register(&metric{name: name, help: help, typ: typeCounter, static: c})
	}
	return c
}

// Gauge registers and returns an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	if r != nil {
		r.register(&metric{name: name, help: help, typ: typeGauge, gauge: g})
	}
	return g
}

// GaugeFunc registers a gauge whose value is sampled at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, typ: typeGauge,
		fn: func() map[string]float64 { return map[string]float64{"": fn()} }})
}

// CounterFunc registers a counter whose value is sampled at scrape time
// — for monotone sources owned elsewhere (a process-wide instruction
// count). The source must be non-decreasing; the registry does not
// enforce it.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, typ: typeCounter,
		fn: func() map[string]float64 { return map[string]float64{"": fn()} }})
}

// GaugeVecFunc registers a labelled gauge family sampled at scrape
// time: fn returns label-value → sample (useful for "jobs by state",
// where the truth lives in one table and per-series bookkeeping would
// just be a second copy of it).
func (r *Registry) GaugeVecFunc(name, help, label string, fn func() map[string]float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, typ: typeGauge, label: label, fn: fn})
}

// CounterVecFunc registers a labelled counter family sampled at scrape
// time (each labelled sample must be non-decreasing).
func (r *Registry) CounterVecFunc(name, help, label string, fn func() map[string]float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, typ: typeCounter, label: label, fn: fn})
}

// CounterVec is a single-label counter family; series appear in the
// rendering once first touched by With.
type CounterVec struct {
	m *metric
}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	m := &metric{name: name, help: help, typ: typeCounter, label: label, series: map[string]any{}}
	if r != nil {
		r.register(m)
	}
	return &CounterVec{m: m}
}

// With returns the counter for one label value, creating it on first
// use.
func (v *CounterVec) With(value string) *Counter {
	v.m.mu.Lock()
	defer v.m.mu.Unlock()
	if c, ok := v.m.series[value]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	v.m.series[value] = c
	return c
}

// GaugeVec is a single-label gauge family.
type GaugeVec struct {
	m *metric
}

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	m := &metric{name: name, help: help, typ: typeGauge, label: label, series: map[string]any{}}
	if r != nil {
		r.register(m)
	}
	return &GaugeVec{m: m}
}

// With returns the gauge for one label value, creating it on first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.m.mu.Lock()
	defer v.m.mu.Unlock()
	if g, ok := v.m.series[value]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{}
	v.m.series[value] = g
	return g
}

// Histogram counts observations into fixed cumulative buckets (the
// exposition format's histogram type: _bucket samples with "le" upper
// bounds, a _sum and a _count). Buckets are fixed at construction —
// never derived from the data — so every scrape of every process
// renders the same shape and histograms aggregate across instances.
// Observe is mutex-guarded, not lock-free: histograms here record job
// phases, not hot-loop events.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit

	mu     sync.Mutex
	counts []uint64 // per-bucket (non-cumulative) counts, len(bounds)+1
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// snapshot copies the histogram's state: cumulative bucket counts in
// bound order, then sum and count.
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return cum, h.sum, h.count
}

// HistogramVec is a single-label histogram family; every series shares
// the family's fixed bucket bounds.
type HistogramVec struct {
	m      *metric
	bounds []float64
}

// HistogramVec registers a labelled histogram family with the given
// ascending upper bounds (+Inf is always appended implicitly).
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	m := &metric{name: name, help: help, typ: typeHistogram, label: label, series: map[string]any{}}
	if r != nil {
		r.register(m)
	}
	return &HistogramVec{m: m, bounds: bounds}
}

// With returns the histogram for one label value, creating it on first
// use — touch every label at registration time so an instrument that
// has never observed still scrapes as a zero-shaped family.
func (v *HistogramVec) With(value string) *Histogram {
	v.m.mu.Lock()
	defer v.m.mu.Unlock()
	if h, ok := v.m.series[value]; ok {
		return h.(*Histogram)
	}
	h := &Histogram{bounds: v.bounds, counts: make([]uint64, len(v.bounds)+1)}
	v.m.series[value] = h
	return h
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatValue renders a sample value: shortest round-trip decimal, with
// the exposition spellings for the non-finite values.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Render writes every family in name order, each family's series in
// label order — a deterministic scrape, so diffs between two scrapes
// are always semantic.
func (r *Registry) Render(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*metric(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, m := range fams {
		if m.typ == typeHistogram {
			if err := m.renderHistogram(w); err != nil {
				return err
			}
			continue
		}
		samples := m.sample()
		if len(samples) == 0 {
			continue
		}
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ); err != nil {
			return err
		}
		keys := make([]string, 0, len(samples))
		for k := range samples {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			var err error
			if m.label == "" || k == "" {
				_, err = fmt.Fprintf(w, "%s %s\n", m.name, formatValue(samples[k]))
			} else {
				_, err = fmt.Fprintf(w, "%s{%s=\"%s\"} %s\n", m.name, m.label, escapeLabel(k), formatValue(samples[k]))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// renderHistogram writes one histogram family: per series, cumulative
// _bucket samples in bound order (ending at the implicit +Inf bucket),
// then _sum and _count — the shape Prometheus's histogram_quantile
// expects.
func (m *metric) renderHistogram(w io.Writer) error {
	m.mu.Lock()
	keys := make([]string, 0, len(m.series))
	for k := range m.series {
		keys = append(keys, k)
	}
	m.mu.Unlock()
	if len(keys) == 0 {
		return nil
	}
	sort.Strings(keys)
	if m.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ); err != nil {
		return err
	}
	for _, k := range keys {
		m.mu.Lock()
		h, _ := m.series[k].(*Histogram)
		m.mu.Unlock()
		if h == nil {
			continue
		}
		cum, sum, count := h.snapshot()
		series := fmt.Sprintf("%s=\"%s\",", m.label, escapeLabel(k))
		if m.label == "" {
			series = ""
		}
		for i, b := range h.bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n", m.name, series, formatValue(b), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", m.name, series, cum[len(cum)-1]); err != nil {
			return err
		}
		label := strings.TrimSuffix(series, ",")
		if label != "" {
			label = "{" + label + "}"
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.name, label, formatValue(sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, label, count); err != nil {
			return err
		}
	}
	return nil
}

// sample snapshots one family's current label→value samples.
func (m *metric) sample() map[string]float64 {
	if m.fn != nil {
		return m.fn()
	}
	if m.static != nil {
		return map[string]float64{"": m.static.Value()}
	}
	if m.gauge != nil {
		return map[string]float64{"": m.gauge.Value()}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.series))
	for k, s := range m.series {
		switch v := s.(type) {
		case *Counter:
			out[k] = v.Value()
		case *Gauge:
			out[k] = v.Value()
		}
	}
	return out
}

// ServeHTTP renders the registry — mount it at GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.Render(w)
}
