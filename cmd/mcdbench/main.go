// Command mcdbench regenerates the paper's tables and the Figure 4 series.
//
// Usage:
//
//	mcdbench -exp table6           # full Table 6 over all 30 benchmarks
//	mcdbench -exp fig4 -quick      # Figure 4 on the 10-benchmark subset
//	mcdbench -exp headline
//	mcdbench -exp table1|table2|table3|table4|table5   # static tables
//	mcdbench -exp table6 -cache /var/cache/mcd   # reuse completed cells
//	mcdbench -exp table6 -json     # machine-readable (wire.ExperimentResult)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"mcd/internal/bench"
	"mcd/internal/wire"
)

func main() {
	var (
		exp      = flag.String("exp", "headline", "experiment: table1..table6, fig4, headline, all")
		quick    = flag.Bool("quick", false, "reduced scale (subset of benchmarks, shorter windows)")
		window   = flag.Uint64("window", 0, "override measured instructions per run")
		warmup   = flag.Uint64("warmup", 0, "override warmup instructions per run")
		benchF   = flag.String("bench", "", "comma-separated benchmark filter")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel simulation workers (results are identical for any value)")
		cacheDir = flag.String("cache", "", "result-store directory: completed cells are reused across invocations")
		jsonOut  = flag.Bool("json", false, "emit the machine-readable experiment encoding (as served by mcdserve)")
	)
	flag.Parse()

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	if *window != 0 {
		opts.Window = *window
	}
	if *warmup != 0 {
		opts.Warmup = *warmup
	}
	if *benchF != "" {
		opts.Benchmarks = bench.SplitNames(*benchF)
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	opts.Workers = *workers
	if err := opts.AttachCache(*cacheDir); err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		os.Exit(1)
	}

	emit := func(res wire.ExperimentResult) {
		if !*jsonOut {
			fmt.Print(res.Output)
			return
		}
		b, err := wire.EncodeExperiment(res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(b)
	}

	static := map[string]func() string{
		"table1": bench.Table1, "table2": bench.Table2, "table3": bench.Table3,
		"table4": bench.Table4, "table5": bench.Table5,
	}
	if f, ok := static[*exp]; ok {
		emit(wire.ExperimentResult{Experiment: *exp, Output: f()})
		return
	}

	switch *exp {
	case "table6", "fig4", "headline", "all":
		emit(wire.FromComparisons(*exp, opts.RunAll()))
	default:
		fmt.Fprintf(os.Stderr, "mcdbench: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}
