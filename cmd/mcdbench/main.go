// Command mcdbench regenerates the paper's tables and the Figure 4 series.
//
// Usage:
//
//	mcdbench -exp table6           # full Table 6 over all 30 benchmarks
//	mcdbench -exp fig4 -quick      # Figure 4 on the 10-benchmark subset
//	mcdbench -exp headline
//	mcdbench -exp table1|table2|table3|table4|table5   # static tables
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"mcd/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "headline", "experiment: table1..table6, fig4, headline, all")
		quick   = flag.Bool("quick", false, "reduced scale (subset of benchmarks, shorter windows)")
		window  = flag.Uint64("window", 0, "override measured instructions per run")
		warmup  = flag.Uint64("warmup", 0, "override warmup instructions per run")
		benchF  = flag.String("bench", "", "comma-separated benchmark filter")
		quiet   = flag.Bool("quiet", false, "suppress progress output")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel simulation workers (results are identical for any value)")
	)
	flag.Parse()

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	if *window != 0 {
		opts.Window = *window
	}
	if *warmup != 0 {
		opts.Warmup = *warmup
	}
	if *benchF != "" {
		opts.Benchmarks = bench.SplitNames(*benchF)
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	opts.Workers = *workers

	static := map[string]func() string{
		"table1": bench.Table1, "table2": bench.Table2, "table3": bench.Table3,
		"table4": bench.Table4, "table5": bench.Table5,
	}
	if f, ok := static[*exp]; ok {
		fmt.Print(f())
		return
	}

	switch *exp {
	case "table6", "fig4", "headline", "all":
		cs := opts.RunAll()
		switch *exp {
		case "table6":
			fmt.Print(bench.Table6(cs))
		case "fig4":
			fmt.Print(bench.Fig4(cs))
		case "headline":
			fmt.Print(bench.Headline(cs))
		case "all":
			for _, f := range []string{"table1", "table2", "table3", "table4", "table5"} {
				fmt.Print(static[f]())
				fmt.Println()
			}
			fmt.Print(bench.Table6(cs))
			fmt.Println()
			fmt.Print(bench.Fig4(cs))
			fmt.Println()
			fmt.Print(bench.Headline(cs))
		}
	default:
		fmt.Fprintf(os.Stderr, "mcdbench: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}
