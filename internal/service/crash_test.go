package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mcd/internal/journal"
	"mcd/internal/resultcache"
	"mcd/internal/wire"
)

// TestCrashResumeByteIdentity is the crash-safety contract end to end:
// submit jobs, hard-stop the manager mid-run with no drain (Kill — the
// in-process stand-in for SIGKILL), restart over the same journal and
// cache directories, and every job reaches Done under its original ID
// with a body byte-identical to an uninterrupted run's.
func TestCrashResumeByteIdentity(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "jobs.ndjson")
	cacheDir := filepath.Join(dir, "cache")

	// Job 1 is long enough (~1s) that the kill reliably lands mid-run;
	// jobs 2 and 3 are still queued behind the single runner.
	long := wire.RunRequest{Benchmark: "adpcm", Config: "attack-decay", Window: 2_000_000, Warmup: wire.U64(4_000), Interval: wire.U64(250)}
	quickA := wire.RunRequest{Benchmark: "adpcm", Config: "mcd", Window: 8_000, Warmup: wire.U64(4_000)}
	quickB := wire.RunRequest{Benchmark: "adpcm", Config: "sync", Window: 8_000, Warmup: wire.U64(4_000)}
	reqs := []wire.RunRequest{long, quickA, quickB}

	// The uninterrupted reference, over its own private cache.
	want := make([][]byte, len(reqs))
	ref := New(Options{Runners: 1})
	for i, r := range reqs {
		j, err := ref.SubmitRun(r)
		if err != nil {
			t.Fatal(err)
		}
		body, _, err := j.WaitResult(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want[i] = body
	}
	ref.Close()

	// The interrupted run: journaled, disk-backed cache, killed while
	// job 1 is mid-simulation.
	jnl, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := resultcache.New(resultcache.Options{Dir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	m := New(Options{Runners: 1, Journal: jnl, Cache: cache})
	ids := make([]string, len(reqs))
	jobs := make([]*Job, len(reqs))
	for i, r := range reqs {
		j, err := m.SubmitRunAs("crash-client", r)
		if err != nil {
			t.Fatal(err)
		}
		ids[i], jobs[i] = j.ID(), j
	}
	waitState(t, jobs[0], Running)
	m.Kill() // no drain, no terminal journal records — as SIGKILL would leave it

	// Restart over the same journal and cache directories.
	jnl2, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(jnl2.Pending()); got != len(reqs) {
		t.Fatalf("journal replay found %d live jobs, want %d", got, len(reqs))
	}
	cache2, err := resultcache.New(resultcache.Options{Dir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	m2 := New(Options{Runners: 1, Journal: jnl2, Cache: cache2})
	defer m2.Close()
	for i, id := range ids {
		j, ok := m2.Job(id)
		if !ok {
			t.Fatalf("job %s not re-queued after restart", id)
		}
		body, snap, err := j.WaitResult(context.Background())
		if err != nil {
			t.Fatalf("resumed job %s: %v", id, err)
		}
		if snap.State != Done {
			t.Fatalf("resumed job %s state %s, want done", id, snap.State)
		}
		if !bytes.Equal(body, want[i]) {
			t.Errorf("resumed job %s body diverged from the uninterrupted run (%d vs %d bytes)", id, len(body), len(want[i]))
		}
	}

	// The replay gauge reports the resumed set, and new submissions
	// continue the ID sequence past the replayed ones.
	var scrape strings.Builder
	if err := m2.Metrics().Render(&scrape); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scrape.String(), "mcd_journal_replayed_jobs 3") {
		t.Errorf("scrape missing replay gauge:\n%s", scrape.String())
	}
	j4, err := m2.SubmitRun(quickA)
	if err != nil {
		t.Fatal(err)
	}
	if j4.ID() != "j000004" {
		t.Errorf("post-restart job ID = %s, want j000004 (sequence resumed past replayed IDs)", j4.ID())
	}
}

// TestClientQuota pins the per-client budget: with the runner pinned, a
// client may hold ClientQuota queued jobs; the next submission fails
// with ErrQuota while other clients — and quota-exempt anonymous
// submissions — still get in.
func TestClientQuota(t *testing.T) {
	m := New(Options{Runners: 1, QueueDepth: 16, ClientQuota: 2})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)
	block := func(ctx context.Context, j *Job) ([]byte, error) {
		select {
		case <-release:
			return []byte("done\n"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	running, err := m.enqueue("", nil, "block", 1, block)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, Running)

	var greedyJobs []*Job
	for i := 0; i < 2; i++ {
		j, err := m.enqueue("greedy", nil, "block", 1, block)
		if err != nil {
			t.Fatalf("greedy submission %d within quota: %v", i, err)
		}
		greedyJobs = append(greedyJobs, j)
	}
	if _, err := m.enqueue("greedy", nil, "block", 1, block); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota submission: err = %v, want ErrQuota", err)
	}
	// The queue itself still has room: another client gets in, and
	// anonymous (library) submissions are exempt entirely.
	if _, err := m.enqueue("polite", nil, "block", 1, block); err != nil {
		t.Fatalf("other client blocked by greedy's quota: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.enqueue("", nil, "block", 1, block); err != nil {
			t.Fatalf("anonymous submission %d hit a quota: %v", i, err)
		}
	}
	// Cancelling one of greedy's queued jobs frees its budget.
	if !m.Cancel(greedyJobs[0].ID()) {
		t.Fatal("cancel returned false")
	}
	waitState(t, greedyJobs[0], Failed)
	if _, err := m.enqueue("greedy", nil, "block", 1, block); err != nil {
		t.Fatalf("submission after freeing quota: %v", err)
	}
}

// TestRejectionResponses pins the 429 contract of the HTTP layer: both
// rejection flavors answer 429 with a Retry-After of at least one
// second, and the body names the reason — quota for a greedy client's
// own bound, queue when the shared queue is exhausted.
func TestRejectionResponses(t *testing.T) {
	m := New(Options{Runners: 1, QueueDepth: 2, ClientQuota: 1})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)
	running, err := m.enqueue("", nil, "block", 1, func(ctx context.Context, j *Job) ([]byte, error) {
		select {
		case <-release:
			return []byte("done\n"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, Running)

	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	post := func(client string) *http.Response {
		req, err := http.NewRequest("POST", srv.URL+"/v1/runs",
			strings.NewReader(`{"benchmark":"adpcm","config":"mcd","window":8000,"warmup":4000,"async":true}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	check429 := func(resp *http.Response, reason string) {
		t.Helper()
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || ra < 1 {
			t.Errorf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
		}
		var decoded struct {
			Error  string `json:"error"`
			Reason string `json:"reason"`
			Retry  int    `json:"retry_after_seconds"`
		}
		if err := json.Unmarshal(body, &decoded); err != nil {
			t.Fatalf("429 body not JSON: %s", body)
		}
		if decoded.Reason != reason || decoded.Error == "" || decoded.Retry != ra {
			t.Errorf("429 body = %s, want reason %q matching header %d", body, reason, ra)
		}
	}

	if resp := post("greedy"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first greedy submission: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	check429(post("greedy"), "quota") // greedy's own bound, queue still has room
	if resp := post("other"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other client blocked: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	check429(post("third"), "queue") // the shared queue is now full

	// The scrape reflects the rejections and the core gauges.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	scrape, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"mcd_queue_depth 2",
		`mcd_jobs{state="running"} 1`,
		`mcd_jobs_rejected_total{reason="quota"} 1`,
		`mcd_jobs_rejected_total{reason="queue"} 1`,
		`mcd_jobs_submitted_total{kind="run"} 2`,
		"mcd_sim_instructions_total",
		`mcd_cache_hits_total{tier="mem"}`,
	} {
		if !strings.Contains(string(scrape), want) {
			t.Errorf("scrape missing %q:\n%s", want, scrape)
		}
	}
}

// TestUserCancelDoesNotResurrect: an explicit DELETE-style cancel is
// terminal in the journal — unlike a crash, the job must not come back
// at the next restart.
func TestUserCancelDoesNotResurrect(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "jobs.ndjson")
	jnl, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Options{Runners: 1, QueueDepth: 8, Journal: jnl})
	release := make(chan struct{})
	defer close(release)
	running, err := m.enqueue("", nil, "block", 1, func(ctx context.Context, j *Job) ([]byte, error) {
		select {
		case <-release:
			return []byte("done\n"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, Running)

	victim, err := m.SubmitRunAs("alice", wire.RunRequest{Benchmark: "adpcm", Config: "mcd", Window: 8_000, Warmup: wire.U64(4_000)})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(victim.ID()) {
		t.Fatal("cancel returned false")
	}
	waitState(t, victim, Failed)
	m.Kill()

	jnl2, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	for _, sub := range jnl2.Pending() {
		if sub.ID == victim.ID() {
			t.Fatalf("cancelled job %s resurrected by replay", sub.ID)
		}
	}
}
