package clock

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPeriodFreqRoundTrip(t *testing.T) {
	for _, f := range []float64{250, 500, 617.1875, 1000} {
		if got := FreqMHz(PeriodPS(f)); math.Abs(got-f) > 1e-9 {
			t.Errorf("round trip %v MHz -> %v", f, got)
		}
	}
	if p := PeriodPS(1000); p != 1000 {
		t.Errorf("1 GHz period = %v ps, want 1000", p)
	}
	if p := PeriodPS(250); p != 4000 {
		t.Errorf("250 MHz period = %v ps, want 4000", p)
	}
}

func TestDomainStrings(t *testing.T) {
	want := map[Domain]string{
		FrontEnd: "frontend", Integer: "integer", FloatingPoint: "fp",
		LoadStore: "loadstore", Memory: "memory", Domain(99): "unknown",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("Domain(%d).String() = %q, want %q", d, d.String(), s)
		}
	}
	if Memory.Controllable() {
		t.Error("memory domain must not be controllable")
	}
	for d := Domain(0); d < NumControllable; d++ {
		if !d.Controllable() {
			t.Errorf("%v must be controllable", d)
		}
	}
}

func TestClockNoJitterIsPeriodic(t *testing.T) {
	c := New(1000, 0, 0, nil)
	for i := 0; i < 10; i++ {
		edge := c.Advance()
		if want := float64(i) * 1000; edge != want {
			t.Fatalf("edge %d at %v, want %v", i, edge, want)
		}
	}
	if c.Cycles() != 10 {
		t.Errorf("cycles = %d, want 10", c.Cycles())
	}
}

func TestClockFrequencyChangeTakesEffectNextPeriod(t *testing.T) {
	c := New(1000, 0, 0, nil)
	c.Advance() // edge at 0, next at 1000
	c.SetFrequencyMHz(500)
	if e := c.Advance(); e != 1000 {
		t.Fatalf("pending edge moved to %v, want 1000", e)
	}
	if e := c.Advance(); e != 3000 {
		t.Fatalf("post-change edge at %v, want 3000 (2000 ps period)", e)
	}
}

func TestClockJitterStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := New(1000, 110, 0, rng)
	const n = 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		e := c.Advance()
		d := e - float64(i)*1000 // deviation from the ideal PLL grid
		sum += d
		sumsq += d * d
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean) > 5 {
		t.Errorf("jitter mean = %v ps, want ~0", mean)
	}
	if math.Abs(std-110) > 10 {
		t.Errorf("jitter stddev = %v ps, want ~110", std)
	}
}

func TestClockJitterDoesNotAccumulate(t *testing.T) {
	// Per-edge jitter must not random-walk away from the ideal grid:
	// after many cycles the edge stays within a few sigma of ideal.
	rng := rand.New(rand.NewSource(9))
	c := New(1000, 110, 0, rng)
	var e float64
	for i := 0; i < 100000; i++ {
		e = c.Advance()
	}
	ideal := 99999.0 * 1000
	if math.Abs(e-ideal) > 6*110 {
		t.Errorf("edge drifted %v ps from ideal grid after 100k cycles", e-ideal)
	}
}

func TestClockEdgesMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New(250, 110, 123.5, rng)
	prev := math.Inf(-1)
	for i := 0; i < 5000; i++ {
		e := c.Advance()
		if e <= prev {
			t.Fatalf("edge %d at %v not after %v", i, e, prev)
		}
		prev = e
	}
}

func TestVisibleWindow(t *testing.T) {
	const w = 300
	cases := []struct {
		produced, edge float64
		want           bool
	}{
		{0, 299, false},
		{0, 300, true},
		{0, 1000, true},
		{1000, 1100, false},
		{1000, 1300, true},
	}
	for _, c := range cases {
		if got := Visible(c.produced, c.edge, w); got != c.want {
			t.Errorf("Visible(%v,%v,%v) = %v, want %v", c.produced, c.edge, w, got, c.want)
		}
	}
}

func TestSchedulerOrdersEdges(t *testing.T) {
	clocks := make([]*Clock, NumControllable)
	freqs := []float64{1000, 800, 600, 400}
	for d := 0; d < NumControllable; d++ {
		clocks[d] = New(freqs[d], 0, float64(d)*7, nil)
	}
	s := NewScheduler(clocks)
	prev := math.Inf(-1)
	for i := 0; i < 1000; i++ {
		_, tm := s.Advance()
		if tm < prev {
			t.Fatalf("scheduler went backwards: %v after %v", tm, prev)
		}
		prev = tm
	}
	// Every clock must have made progress proportional to its frequency.
	if clocks[0].Cycles() <= clocks[3].Cycles() {
		t.Errorf("1 GHz clock (%d cycles) should out-tick 400 MHz clock (%d)",
			clocks[0].Cycles(), clocks[3].Cycles())
	}
}

func TestSchedulerTieBreaksTowardFrontEnd(t *testing.T) {
	clocks := make([]*Clock, NumControllable)
	for d := 0; d < NumControllable; d++ {
		clocks[d] = New(1000, 0, 0, nil)
	}
	s := NewScheduler(clocks)
	d, tm := s.Advance()
	if d != FrontEnd || tm != 0 {
		t.Errorf("first edge = (%v, %v), want (frontend, 0)", d, tm)
	}
}

// Property: regardless of frequency and start offset, edges are strictly
// increasing and the average period converges to the nominal one when
// jitter is enabled.
func TestClockPeriodProperty(t *testing.T) {
	f := func(seed int64, fsel, offset uint8) bool {
		freq := 250 + float64(fsel)*2.9296875 // spans 250..997 MHz
		rng := rand.New(rand.NewSource(seed))
		c := New(freq, 110, float64(offset), rng)
		first := c.Advance()
		prev := first
		const n = 2000
		for i := 0; i < n; i++ {
			e := c.Advance()
			if e <= prev {
				return false
			}
			prev = e
		}
		avg := (prev - first) / n
		return math.Abs(avg-PeriodPS(freq)) < PeriodPS(freq)*0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
