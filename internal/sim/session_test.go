package sim

import (
	"reflect"
	"testing"

	"mcd/internal/clock"
	"mcd/internal/pipeline"
	"mcd/internal/stats"
)

func sessionSpec(record bool) Spec {
	cfg := pipeline.DefaultConfig()
	cfg.SlewNsPerMHz = 4.91
	return Spec{
		Config:          cfg,
		Profile:         profile(),
		Window:          40_000,
		Warmup:          10_000,
		IntervalLength:  1_000,
		RecordIntervals: record,
		Name:            "session-test",
	}
}

// halver is a deterministic stateful test controller, so the stepped
// equivalence covers controller-driven frequency changes too.
type halver struct{ n int }

func (h *halver) Name() string { return "halver" }

func (h *halver) Observe(iv pipeline.IntervalView) (t [clock.NumControllable]float64) {
	h.n++
	if h.n%4 == 0 {
		t[clock.FloatingPoint] = 500
	} else {
		t[clock.FloatingPoint] = 1000
	}
	return t
}

// A session drained in any mix of step sizes must produce the Result
// Run produces — the inversion's core contract.
func TestSessionStepEquivalence(t *testing.T) {
	for _, stepN := range []int{1, 3, 7, -1} {
		spec := sessionSpec(true)
		spec.Controller = &halver{}
		want := Run(spec)

		spec2 := sessionSpec(true)
		spec2.Controller = &halver{} // fresh instance: controllers are stateful
		ses, err := Open(spec2)
		if err != nil {
			t.Fatal(err)
		}
		for ses.Step(stepN) {
		}
		got := ses.Close()
		if !reflect.DeepEqual(want, got) {
			t.Errorf("step size %d: stepped result differs from Run", stepN)
		}
	}
}

// Observers see exactly the records RecordIntervals retains, in order.
func TestSessionObserve(t *testing.T) {
	spec := sessionSpec(true)
	ses, err := Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	var seen []stats.Interval
	ses.Observe(func(iv stats.Interval) { seen = append(seen, iv) })
	ses.Step(-1)
	res := ses.Close()
	if len(res.Intervals) == 0 {
		t.Fatal("no intervals recorded")
	}
	if !reflect.DeepEqual(seen, res.Intervals) {
		t.Errorf("observed %d intervals != recorded %d", len(seen), len(res.Intervals))
	}
	if snap := ses.Snapshot(); !snap.Done || snap.Instructions != res.Instructions {
		t.Errorf("snapshot %+v inconsistent with result (%d instructions)", snap, res.Instructions)
	}
}

// StopWhen halts the drain mid-window and Close returns a well-formed
// partial Result covering the measured region so far.
func TestSessionEarlyStop(t *testing.T) {
	spec := sessionSpec(false)
	ses, err := Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	const stopAt = 5
	ses.StopWhen(func(p stats.Progress) bool { return p.Intervals >= stopAt })
	ses.Step(-1)
	if ses.Step(1) {
		t.Error("Step keeps reporting progress after an early stop")
	}
	snap := ses.Snapshot()
	if !snap.Stopped || !snap.Done {
		t.Errorf("snapshot after early stop: %+v", snap)
	}
	res := ses.Close()
	if res.Instructions == 0 || res.Instructions >= spec.Window {
		t.Errorf("partial result measured %d instructions, want in (0, %d)", res.Instructions, spec.Window)
	}
	if res.TimePS <= 0 || res.EnergyPJ <= 0 || res.CPI() <= 0 || res.EPI() <= 0 {
		t.Errorf("partial result not well-formed: time %.0f energy %.0f", res.TimePS, res.EnergyPJ)
	}
	want := uint64(stopAt) * spec.IntervalLength
	// The stop lands at the interval boundary that tripped the
	// predicate (the in-flight front-end cycle may retire a few more).
	if res.Instructions < want || res.Instructions > want+uint64(spec.Config.RetireWidth) {
		t.Errorf("measured %d instructions, want ~%d (stop mid-window, not at the end)", res.Instructions, want)
	}
}

func TestOpenRejectsEmptySpec(t *testing.T) {
	if _, err := Open(Spec{Profile: profile()}); err == nil {
		t.Error("Open accepted a spec with nothing to run")
	}
}

func TestConverged(t *testing.T) {
	vals := []float64{10, 5, 5.001, 5.0005, 5.0004, 5.0004, 5.0004}
	pred := Converged(func(p stats.Progress) float64 { return p.EnergyPJ }, 0.001, 3)
	fired := -1
	for i, v := range vals {
		if pred(stats.Progress{EnergyPJ: v}) {
			fired = i
			break
		}
	}
	if fired != 4 {
		t.Errorf("predicate fired at index %d, want 4 (three consecutive stable deltas)", fired)
	}
}
