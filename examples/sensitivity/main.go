// sensitivity sweeps the Decay parameter on a small benchmark subset —
// a miniature of the paper's Figure 6(a)/7(a) analysis — showing the
// inverted-U shape: too little decay leaves energy on the table, too much
// degrades performance.
package main

import (
	"fmt"

	"mcd"
)

func main() {
	names := []string{"adpcm", "gzip", "power"}
	cfg := mcd.DefaultConfig()
	cfg.SlewNsPerMHz = 4.91

	run := func(prof mcd.Profile, ctrl mcd.Controller, name string) mcd.Result {
		return mcd.Run(mcd.Spec{
			Config: cfg, Profile: prof,
			Window: 200_000, Warmup: 100_000, IntervalLength: 1000,
			Controller: ctrl, Name: name,
		})
	}

	fmt.Println("Decay sensitivity (miniature Figure 6a): suite-average vs MCD baseline")
	fmt.Println("decay     perf-deg  energy-sav  EDP-improv")
	for _, decay := range []float64{0.0005, 0.00175, 0.0075, 0.02} {
		var cs []mcd.Comparison
		for _, n := range names {
			bench, ok := mcd.LookupBenchmark(n)
			if !ok {
				panic("missing benchmark " + n)
			}
			base := run(bench.Profile, nil, "base")
			p := mcd.DefaultParams()
			p.Decay = decay
			res := run(bench.Profile, mcd.NewAttackDecay(p), "ad")
			cs = append(cs, mcd.Compare(res, base))
		}
		s := mcd.Summarize(cs)
		fmt.Printf("%6.3f%%  %7.1f%%  %9.1f%%  %9.1f%%\n",
			decay*100, s.PerfDegradation*100, s.EnergySavings*100, s.EDPImprovement*100)
	}
}
