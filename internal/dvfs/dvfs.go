// Package dvfs implements the dynamic voltage and frequency scaling
// substrate of the MCD processor: the table of discrete operating points
// (320 frequency steps spanning 1.0 GHz down to 250 MHz with a linearly
// corresponding voltage from 1.2 V down to 0.65 V) and the XScale-style
// regulator that slews a domain's frequency toward its target at
// 49.1 ns/MHz while the domain continues to execute.
package dvfs

import "math"

// Default electrical parameters from Table 1 of the paper.
const (
	DefaultPoints       = 320  // discrete frequency points
	DefaultMinFreqMHz   = 250  // lowest domain frequency
	DefaultMaxFreqMHz   = 1000 // highest domain frequency
	DefaultMinVoltage   = 0.65 // volts at the lowest frequency
	DefaultMaxVoltage   = 1.20 // volts at the highest frequency
	DefaultSlewNsPerMHz = 49.1 // XScale frequency change rate
)

// OperatingPoint is a legal (frequency, voltage) pair.
type OperatingPoint struct {
	FreqMHz float64
	Voltage float64
}

// Scale is the table of legal operating points. Frequencies are linearly
// spaced and voltage is a linear function of frequency, matching the
// paper's model of the forthcoming TSMC CL010LP process.
type Scale struct {
	n          int
	fmin, fmax float64
	vmin, vmax float64
}

// NewScale builds a scale with n points spanning [fminMHz, fmaxMHz] and
// voltages spanning [vmin, vmax]. NewScale panics if the ranges are
// inverted or n < 2; the zero configuration is a programming error, not a
// runtime condition.
func NewScale(n int, fminMHz, fmaxMHz, vmin, vmax float64) *Scale {
	if n < 2 || fminMHz <= 0 || fmaxMHz <= fminMHz || vmin <= 0 || vmax < vmin {
		panic("dvfs: invalid scale parameters")
	}
	return &Scale{n: n, fmin: fminMHz, fmax: fmaxMHz, vmin: vmin, vmax: vmax}
}

// DefaultScale returns the paper's 320-point 250–1000 MHz, 0.65–1.2 V scale.
func DefaultScale() *Scale {
	return NewScale(DefaultPoints, DefaultMinFreqMHz, DefaultMaxFreqMHz,
		DefaultMinVoltage, DefaultMaxVoltage)
}

// Points returns the number of discrete frequency points.
func (s *Scale) Points() int { return s.n }

// MinFreqMHz returns the lowest legal frequency.
func (s *Scale) MinFreqMHz() float64 { return s.fmin }

// MaxFreqMHz returns the highest legal frequency.
func (s *Scale) MaxFreqMHz() float64 { return s.fmax }

// StepMHz returns the spacing between adjacent frequency points.
func (s *Scale) StepMHz() float64 { return (s.fmax - s.fmin) / float64(s.n-1) }

// Clamp restricts f to the legal frequency range without quantizing.
// Plain comparisons, not math.Min/Max: frequencies are finite, and Clamp
// sits on the regulator's per-edge voltage path.
func (s *Scale) Clamp(fMHz float64) float64 {
	if fMHz < s.fmin {
		return s.fmin
	}
	if fMHz > s.fmax {
		return s.fmax
	}
	return fMHz
}

// Quantize returns the operating point nearest to fMHz, clamped to range.
func (s *Scale) Quantize(fMHz float64) OperatingPoint {
	f := s.Clamp(fMHz)
	step := s.StepMHz()
	idx := math.Round((f - s.fmin) / step)
	qf := s.fmin + idx*step
	return OperatingPoint{FreqMHz: qf, Voltage: s.VoltageAt(qf)}
}

// VoltageAt returns the supply voltage corresponding to frequency fMHz on
// the linear frequency/voltage mapping. During a slewed transition the
// voltage tracks the instantaneous frequency, which is how the XScale
// executes through a change.
func (s *Scale) VoltageAt(fMHz float64) float64 {
	f := s.Clamp(fMHz)
	frac := (f - s.fmin) / (s.fmax - s.fmin)
	return s.vmin + frac*(s.vmax-s.vmin)
}

// Regulator slews one domain's frequency toward a target operating point.
// The paper adopts the XScale model: the domain keeps executing during the
// transition, frequency moves at a fixed rate (ns per MHz), and voltage
// tracks frequency (dropping after it on the way down, rising with it on
// the way up — both directions are modeled as the voltage of the
// instantaneous frequency).
type Regulator struct {
	scale        *Scale
	currentMHz   float64
	targetMHz    float64
	slewNsPerMHz float64
	transitions  uint64
	// voltage caches VoltageAt(currentMHz): the pipeline reads the supply
	// voltage every domain tick, but it only changes when the frequency
	// slews, so it is recomputed on frequency change instead of per read.
	voltage float64
}

// NewRegulator returns a regulator pinned at startMHz (quantized) using the
// given slew rate. A slew rate of zero makes changes instantaneous.
func NewRegulator(scale *Scale, startMHz, slewNsPerMHz float64) *Regulator {
	r := &Regulator{scale: scale}
	r.Reset(startMHz, slewNsPerMHz)
	return r
}

// Reset re-pins the regulator at startMHz with the given slew rate,
// exactly as NewRegulator would construct it, reusing the operating-point
// table.
func (r *Regulator) Reset(startMHz, slewNsPerMHz float64) {
	f := r.scale.Quantize(startMHz).FreqMHz
	r.currentMHz, r.targetMHz = f, f
	r.slewNsPerMHz = slewNsPerMHz
	r.transitions = 0
	r.voltage = r.scale.VoltageAt(f)
}

// Scale returns the operating-point table this regulator quantizes against.
func (r *Regulator) Scale() *Scale { return r.scale }

// SetTargetMHz starts a transition toward the operating point nearest f.
// Setting the current target again is a no-op (and is not counted as a PLL
// reprogramming).
func (r *Regulator) SetTargetMHz(f float64) {
	q := r.scale.Quantize(f).FreqMHz
	if q == r.targetMHz {
		return
	}
	r.targetMHz = q
	r.transitions++
}

// TargetMHz returns the frequency the regulator is slewing toward.
func (r *Regulator) TargetMHz() float64 { return r.targetMHz }

// CurrentMHz returns the instantaneous frequency.
func (r *Regulator) CurrentMHz() float64 { return r.currentMHz }

// Voltage returns the instantaneous supply voltage.
func (r *Regulator) Voltage() float64 { return r.voltage }

// Transitioning reports whether a frequency change is still in progress.
func (r *Regulator) Transitioning() bool { return r.currentMHz != r.targetMHz }

// Transitions returns how many times a new target has been requested; the
// paper's sensitivity discussion uses this as a proxy for PLL/voltage
// regulator activity.
func (r *Regulator) Transitions() uint64 { return r.transitions }

// Step advances the transition by dtPS picoseconds and returns the new
// instantaneous frequency. With the default rate a full-range swing
// (750 MHz) takes 750 × 49.1 ns ≈ 36.8 µs.
func (r *Regulator) Step(dtPS float64) float64 {
	if r.currentMHz == r.targetMHz {
		return r.currentMHz
	}
	if r.slewNsPerMHz <= 0 {
		r.currentMHz = r.targetMHz
	} else {
		// Plain comparisons instead of math.Min/Max: every operand is a
		// finite frequency, so the NaN/signed-zero handling is dead cost
		// on the per-edge path.
		dMHz := (dtPS / 1000) / r.slewNsPerMHz
		if r.currentMHz < r.targetMHz {
			if f := r.currentMHz + dMHz; f < r.targetMHz {
				r.currentMHz = f
			} else {
				r.currentMHz = r.targetMHz
			}
		} else {
			if f := r.currentMHz - dMHz; f > r.targetMHz {
				r.currentMHz = f
			} else {
				r.currentMHz = r.targetMHz
			}
		}
	}
	r.voltage = r.scale.VoltageAt(r.currentMHz)
	return r.currentMHz
}
