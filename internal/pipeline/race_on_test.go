//go:build race

package pipeline_test

// raceEnabled reports whether the race detector is compiled in; the
// allocation guard skips under -race, whose instrumentation allocates.
const raceEnabled = true
