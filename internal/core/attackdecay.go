// Package core implements the paper's primary contribution — the
// Attack/Decay on-line frequency/voltage controller of Listing 1 — along
// with the comparator algorithms of the evaluation: the off-line
// Dynamic-X% slack scheduler and conventional global voltage scaling.
package core

import (
	"fmt"

	"mcd/internal/clock"
	"mcd/internal/pipeline"
	"mcd/internal/resultcache"
)

// Params are the Attack/Decay configuration parameters of Table 2. All
// percentage parameters are expressed as fractions (1.75% = 0.0175).
type Params struct {
	// DeviationThreshold is the relative queue-utilization change that
	// triggers an attack (paper range 0–2.5%).
	DeviationThreshold float64
	// ReactionChange is the period scale factor applied in attack mode
	// (paper range 0.5–15.5%).
	ReactionChange float64
	// Decay is the period scale factor applied every quiet interval
	// (paper range 0–2%).
	Decay float64
	// PerfDegThreshold is the performance degradation goal: frequency
	// decreases are suppressed while the interval IPC sits more than
	// this fraction below the reference (best recent) IPC (paper range
	// 0–12%; Figure 5a shows measured degradation tracking this value as
	// a target). See DESIGN.md for the interpretation of Listing 1's
	// guard.
	PerfDegThreshold float64
	// RefIPCDecay is the per-interval decay of the reference IPC, which
	// lets the reference adapt when the program enters an inherently
	// slower phase (so a stale reference does not block energy savings
	// forever). Zero uses the default 1%.
	RefIPCDecay float64
	// IPCSmoothing is the EMA coefficient applied to the interval IPC
	// before the guard comparison (the hardware equivalent is a few
	// extra accumulator bits). Zero uses the default 0.25.
	IPCSmoothing float64
	// EndstopCount is the number of consecutive intervals a domain may
	// sit at a frequency extreme before an attack away from the end stop
	// is forced (paper: 10; sensitivity range 1–25; <=0 disables).
	EndstopCount int

	// FrontEndMHz pins the front-end domain (the paper fixes it at the
	// maximum frequency because slowing it degrades performance almost
	// linearly and it has no input queue to observe).
	FrontEndMHz float64
	// MinMHz and MaxMHz bound the commanded frequency (Table 1).
	MinMHz, MaxMHz float64
}

// DefaultParams returns the configuration used for the paper's headline
// results (Section 5): DeviationThreshold 1.75%, ReactionChange 6.0%,
// Decay 0.175%, PerfDegThreshold 2.5%.
func DefaultParams() Params {
	return Params{
		DeviationThreshold: 0.0175,
		ReactionChange:     0.060,
		Decay:              0.00175,
		PerfDegThreshold:   0.025,
		EndstopCount:       10,
		FrontEndMHz:        1000,
		MinMHz:             250,
		MaxMHz:             1000,
	}
}

// Label formats the parameters the way the paper's figure legends do:
// DeviationThreshold_ReactionChange_Decay_PerfDegThreshold in percent.
func (p Params) Label() string {
	return fmt.Sprintf("%.3f_%04.1f_%.3f_%.1f",
		p.DeviationThreshold*100, p.ReactionChange*100, p.Decay*100, p.PerfDegThreshold*100)
}

// adDomain is the per-domain controller state: each controlled domain runs
// an independent instance of the algorithm (decentralized control), with
// the global IPC counter as the only shared signal.
type adDomain struct {
	freqMHz   float64
	prevUtil  float64
	havePrev  bool
	upperEnds int
	lowerEnds int
}

// AttackDecay is the on-line controller. It implements
// pipeline.Controller; one instance controls the integer, floating-point
// and load/store domains and pins the front end.
type AttackDecay struct {
	p       Params
	domains [clock.NumControllable]adDomain
	refIPC  float64
	ipcEMA  float64
	haveIPC bool
}

var _ pipeline.Controller = (*AttackDecay)(nil)

// NewAttackDecay returns a controller with every domain starting at the
// maximum frequency.
func NewAttackDecay(p Params) *AttackDecay {
	a := &AttackDecay{p: p}
	for d := range a.domains {
		a.domains[d].freqMHz = p.MaxMHz
	}
	return a
}

// Name implements pipeline.Controller.
func (a *AttackDecay) Name() string { return "attack-decay-" + a.p.Label() }

// CacheKey implements resultcache.Keyer: the canonical encoding of the
// construction parameters. Two fresh controllers with equal keys behave
// identically, which is all the result store needs under the runner
// purity contract (each run gets its own instance). Floats use the
// store's exact encoding (resultcache.Float) so no two distinct
// configurations collide.
func (a *AttackDecay) CacheKey() string {
	h := resultcache.Float
	p := a.p
	return fmt.Sprintf("attack-decay|dev=%s|react=%s|decay=%s|perf=%s|refdecay=%s|smooth=%s|endstop=%d|fe=%s|min=%s|max=%s",
		h(p.DeviationThreshold), h(p.ReactionChange), h(p.Decay), h(p.PerfDegThreshold),
		h(p.RefIPCDecay), h(p.IPCSmoothing), p.EndstopCount, h(p.FrontEndMHz), h(p.MinMHz), h(p.MaxMHz))
}

// Observe implements Listing 1 of the paper for each controlled domain.
func (a *AttackDecay) Observe(iv pipeline.IntervalView) [clock.NumControllable]float64 {
	// Estimated (fast-forwarded) intervals run the same algorithm: their
	// frozen queue utilization reads as a quiet phase, so the replay
	// decays — which is what the exact tier does in a quiet phase, and the
	// pipeline only schedules skips while the controller has been quiet
	// (see Core.noteTargets). End-stop probes still fire during skips and
	// densify the sampling behind them.
	var targets [clock.NumControllable]float64
	targets[clock.FrontEnd] = a.p.FrontEndMHz

	// The guard of Listing 1 lines 19 & 25: frequency decreases are
	// suppressed while IPC sits more than PerfDegThreshold below the
	// reference IPC, capping the total degradation the algorithm will
	// cause and keeping it from reacting to performance dips that are
	// unrelated to domain frequency.
	refDecay := a.p.RefIPCDecay
	if refDecay == 0 {
		refDecay = 0.01
	}
	alpha := a.p.IPCSmoothing
	if alpha == 0 {
		alpha = 0.25
	}
	if !a.haveIPC {
		a.ipcEMA = iv.IPC
		a.refIPC = iv.IPC
		a.haveIPC = true
	} else {
		a.ipcEMA += alpha * (iv.IPC - a.ipcEMA)
		a.refIPC *= 1 - refDecay
		if a.ipcEMA > a.refIPC {
			a.refIPC = a.ipcEMA
		}
	}
	ipcOK := true
	if a.ipcEMA > 0 {
		ipcOK = a.refIPC/a.ipcEMA-1 <= a.p.PerfDegThreshold
	}

	for _, d := range []clock.Domain{clock.Integer, clock.FloatingPoint, clock.LoadStore} {
		st := &a.domains[d]
		util := iv.QueueUtil[d]

		scale := 1.0 // period scale factor: >1 slows the domain, <1 speeds it
		switch {
		case a.p.EndstopCount > 0 && st.upperEnds == a.p.EndstopCount:
			scale = 1.0 + a.p.ReactionChange // force a probe away from max
		case a.p.EndstopCount > 0 && st.lowerEnds == a.p.EndstopCount:
			scale = 1.0 - a.p.ReactionChange // force a probe away from min
		case st.havePrev && util-st.prevUtil > st.prevUtil*a.p.DeviationThreshold:
			scale = 1.0 - a.p.ReactionChange // attack: significant increase
		case st.havePrev && st.prevUtil-util > st.prevUtil*a.p.DeviationThreshold:
			if ipcOK {
				scale = 1.0 + a.p.ReactionChange // attack: significant decrease
			}
		default:
			if ipcOK {
				scale = 1.0 + a.p.Decay // quiet or unused: decay
			}
		}

		st.freqMHz = 1.0 / ((1.0 / st.freqMHz) * scale)
		if st.freqMHz < a.p.MinMHz {
			st.freqMHz = a.p.MinMHz
		}
		if st.freqMHz > a.p.MaxMHz {
			st.freqMHz = a.p.MaxMHz
		}

		// End-stop bookkeeping (Listing 1 lines 38–47).
		if st.freqMHz <= a.p.MinMHz && st.lowerEnds != a.p.EndstopCount {
			st.lowerEnds++
		} else {
			st.lowerEnds = 0
		}
		if st.freqMHz >= a.p.MaxMHz && st.upperEnds != a.p.EndstopCount {
			st.upperEnds++
		} else {
			st.upperEnds = 0
		}

		st.prevUtil = util
		st.havePrev = true
		targets[d] = st.freqMHz
	}
	return targets
}
