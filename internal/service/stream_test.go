package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"mcd/internal/service"
	"mcd/internal/wire"
)

// streamPayload is the {"stream":true} run body.
func streamPayload(extra map[string]any) map[string]any {
	p := map[string]any{
		"stream":    true,
		"benchmark": small.Benchmark,
		"config":    small.Config,
		"window":    small.Window,
		"warmup":    *small.Warmup,
		"interval":  *small.Interval,
	}
	for k, v := range extra {
		p[k] = v
	}
	return p
}

func decodeFrames(t *testing.T, body []byte) (ivs []wire.StreamFrame, terminal wire.StreamFrame) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	sawTerminal := false
	for sc.Scan() {
		var f wire.StreamFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		if sawTerminal {
			t.Fatalf("frame after the terminal frame: %q", sc.Text())
		}
		switch f.Type {
		case wire.FrameInterval:
			ivs = append(ivs, f)
		case wire.FrameGap:
			t.Fatalf("gap frame (%d dropped) in a run small enough to never lag", f.Dropped)
		case wire.FrameResult, wire.FrameError:
			terminal = f
			sawTerminal = true
		default:
			t.Fatalf("unknown frame type %q", f.Type)
		}
	}
	if !sawTerminal {
		t.Fatal("stream ended without a terminal frame")
	}
	return ivs, terminal
}

// TestStreamRun drives the acceptance contract end to end: a streamed
// POST /v1/runs emits at least one interval frame per control interval
// and a result frame byte-identical to the non-streamed body, and the
// identical follow-up request answers X-Cache: hit.
func TestStreamRun(t *testing.T) {
	_, srv := newServer(t, service.Options{})

	resp := postJSON(t, srv.URL+"/v1/runs", streamPayload(nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream run: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("first stream X-Cache = %q, want miss", xc)
	}
	ivs, terminal := decodeFrames(t, readBody(t, resp))
	if min := int(small.Window / *small.Interval); len(ivs) < min {
		t.Errorf("got %d interval frames, want at least one per control interval (%d)", len(ivs), min)
	}
	if terminal.Type != wire.FrameResult || terminal.Cache != "miss" {
		t.Fatalf("terminal frame: %+v", terminal)
	}

	// The non-streamed follow-up must be a cache hit with exactly the
	// bytes the stream's result frame carried.
	plain := postJSON(t, srv.URL+"/v1/runs", small)
	if xc := plain.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("follow-up X-Cache = %q, want hit", xc)
	}
	body := readBody(t, plain)
	if !bytes.Equal(bytes.TrimSuffix(body, []byte("\n")), terminal.Result) {
		t.Error("follow-up body differs from the stream's result frame")
	}

	// A repeated streamed request is a hit frame with no intervals.
	again := postJSON(t, srv.URL+"/v1/runs", streamPayload(nil))
	if xc := again.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("repeat stream X-Cache = %q, want hit", xc)
	}
	ivs2, terminal2 := decodeFrames(t, readBody(t, again))
	if len(ivs2) != 0 || terminal2.Cache != "hit" {
		t.Errorf("repeat stream: %d interval frames, cache %q", len(ivs2), terminal2.Cache)
	}
	if !bytes.Equal(terminal.Result, terminal2.Result) {
		t.Error("repeat stream result differs")
	}
}

// TestStreamAsyncEvents queues a stream job and reads its /events feed:
// interval frames interleave with progress snapshots until terminal.
func TestStreamAsyncEvents(t *testing.T) {
	m, srv := newServer(t, service.Options{})

	resp := postJSON(t, srv.URL+"/v1/runs", streamPayload(map[string]any{"async": true}))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async stream submit: status %d", resp.StatusCode)
	}
	var snap service.Snapshot
	if err := json.Unmarshal(readBody(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Kind != "stream" {
		t.Errorf("job kind %q, want stream", snap.Kind)
	}

	events, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	intervalLines, snapshotLines := 0, 0
	sc := bufio.NewScanner(events.Body)
	var last service.Snapshot
	for sc.Scan() {
		var f wire.StreamFrame
		if json.Unmarshal(sc.Bytes(), &f) == nil && f.Type == wire.FrameInterval {
			intervalLines++
			continue
		}
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("unparseable event line %q: %v", sc.Text(), err)
		}
		snapshotLines++
	}
	events.Body.Close()
	if intervalLines == 0 || snapshotLines == 0 {
		t.Errorf("events feed: %d interval lines, %d snapshots; want both", intervalLines, snapshotLines)
	}
	if last.State != service.Done {
		t.Errorf("final event state %q", last.State)
	}
	if _, ok := m.Job(snap.ID); !ok {
		t.Fatal("job vanished")
	}
}

// TestStreamRejectsBatch pins the 400 on stream+batch.
func TestStreamRejectsBatch(t *testing.T) {
	_, srv := newServer(t, service.Options{})
	resp := postJSON(t, srv.URL+"/v1/runs", map[string]any{
		"stream": true,
		"runs":   []wire.RunRequest{small},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("stream batch: status %d, want 400", resp.StatusCode)
	}
	readBody(t, resp)
}
