package mcd_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"mcd"
	"mcd/internal/resultcache"
)

func cacheSpec(t *testing.T, name string, ad bool) mcd.Spec {
	t.Helper()
	b, ok := mcd.LookupBenchmark("adpcm")
	if !ok {
		t.Fatal("adpcm missing from catalog")
	}
	s := mcd.Spec{
		Config:         mcd.DefaultConfig(),
		Profile:        b.Profile,
		Window:         8_000,
		Warmup:         4_000,
		IntervalLength: 250,
		Name:           name,
	}
	if ad {
		s.Controller = mcd.NewAttackDecay(mcd.DefaultParams())
	}
	return s
}

func TestSpecKeyPublicAPI(t *testing.T) {
	k1, err := mcd.SpecKey(cacheSpec(t, "mcd-base", false))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := mcd.SpecKey(cacheSpec(t, "attack-decay", true))
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 || k1 == "" {
		t.Fatalf("keys not distinct: %q %q", k1, k2)
	}
}

// TestRunBatchCache: a cached batch returns results deep-equal (and
// byte-identical under the canonical encoding) to an uncached batch,
// identical specs submitted concurrently collapse onto one simulation,
// and a repeated batch is served entirely from the store.
func TestRunBatchCache(t *testing.T) {
	cache, err := mcd.NewResultCache(mcd.CacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Two identical requests plus one distinct one. Each request needs
	// its own controller instance (runner purity), but the two
	// attack-decay specs are content-identical, so the store must
	// single-flight or hit — one simulation, not two.
	reqs := func() []mcd.RunRequest {
		s1, s2, s3 := cacheSpec(t, "attack-decay", true), cacheSpec(t, "attack-decay", true), cacheSpec(t, "mcd-base", false)
		return []mcd.RunRequest{
			{Name: "a", Spec: &s1},
			{Name: "b", Spec: &s2},
			{Name: "c", Spec: &s3},
		}
	}

	plain, err := mcd.RunBatch(context.Background(), reqs(), mcd.BatchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := mcd.RunBatch(context.Background(), reqs(), mcd.BatchOptions{Workers: 3, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	s := cache.Stats()
	if s.Misses != 2 {
		t.Fatalf("first cached batch simulated %d specs, want 2 (one per distinct spec): %+v", s.Misses, s)
	}

	for i := range plain {
		if plain[i].Err != nil || cached[i].Err != nil {
			t.Fatalf("run %d: errs %v %v", i, plain[i].Err, cached[i].Err)
		}
		pb, _ := resultcache.EncodeResult(plain[i].Result)
		cb, _ := resultcache.EncodeResult(cached[i].Result)
		if !bytes.Equal(pb, cb) {
			t.Fatalf("run %d: cached batch not byte-identical to uncached", i)
		}
	}

	again, err := mcd.RunBatch(context.Background(), reqs(), mcd.BatchOptions{Workers: 3, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if s2 := cache.Stats(); s2.Misses != s.Misses {
		t.Fatalf("repeated batch recomputed: %+v -> %+v", s, s2)
	}
	if !reflect.DeepEqual(cached, again) {
		t.Fatal("repeated cached batch differs")
	}
}

// TestRunBatchUncacheableControllerFallsBack: a Do-based request and a
// spec with an opaque controller both run normally with a cache set.
func TestRunBatchUncacheableControllerFallsBack(t *testing.T) {
	cache, err := mcd.NewResultCache(mcd.CacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	outs, err := mcd.RunBatch(context.Background(), []mcd.RunRequest{
		{Name: "do", Do: func(context.Context) (mcd.Result, error) {
			ran = true
			return mcd.Result{Benchmark: "synthetic"}, nil
		}},
	}, mcd.BatchOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !ran || outs[0].Result.Benchmark != "synthetic" {
		t.Fatalf("Do request mishandled: ran=%v out=%+v", ran, outs[0])
	}
	if s := cache.Stats(); s.Misses != 0 {
		t.Fatalf("Do request touched the cache: %+v", s)
	}
}
