// Package trace is the serving layer's flight recorder: a bounded,
// allocation-frugal log of typed span and event records covering the
// job lifecycle (submit → queue wait → cache probe → run → store write)
// and the per-interval controller decision audit the paper's Figures
// 2–3 are built from. Records land in two places — a per-job buffer
// served as Chrome trace-event JSON by GET /v1/jobs/{id}/trace, and a
// rolling process-wide ring dumped by GET /debug/trace — both rendered
// by WriteChrome so they open directly in Perfetto or chrome://tracing.
//
// The overhead contract: tracing is off unless a *Ring is configured,
// and a nil *Ring is valid everywhere (Add and Snapshot are no-ops), so
// instrumented call sites need no conditionals and the disabled path
// records nothing and allocates nothing. When enabled, records are
// produced only at job lifecycle transitions and measured interval
// boundaries — never inside the cycle loop — so the hot-loop
// zero-allocation guard and the perf gate hold unchanged.
package trace

import "sync"

// Kind discriminates the record types.
type Kind uint8

// Record kinds. Spans cover a wall-clock region of a job's lifecycle;
// instants mark a point event; decisions carry one control interval's
// controller audit (inputs, chosen frequencies) positioned in simulated
// time rather than wall time.
const (
	KindSpan Kind = iota
	KindInstant
	KindDecision
)

// NumDomains is the per-domain payload width of decision records — the
// four controllable clock domains, mirrored here so the package stays a
// leaf dependency of everything that produces records.
const NumDomains = 4

// Record is one flight-recorder entry: a fixed-shape value type so a
// bounded buffer of records is one backing array, not a pointer chase.
// Only the fields relevant to the Kind are populated.
type Record struct {
	Kind Kind
	// Name labels the record: a lifecycle phase for spans ("queue",
	// "probe", "run", "store"), an event name for instants ("submit",
	// "done", "failed"), "decision" for decisions.
	Name string
	// StartUS/DurUS position spans and instants in wall-clock time
	// (microseconds since the Unix epoch; DurUS is zero for instants).
	StartUS int64
	DurUS   int64

	// Job/Client/Key/Tier attribute the record: job ID, submitting
	// client, content-addressed spec key, and — on cache spans — the
	// tier that answered (mem, disk, dedup, or miss).
	Job    string
	Client string
	Key    string
	Tier   string

	// Decision payload: the measured interval's index and end position
	// in simulated picoseconds, the controller's occupancy/IPC inputs,
	// the per-domain frequency it chose for the next interval, and an
	// optional controller-specific note (coord reports its budget).
	Interval int
	SimPS    float64
	IPC      float64
	QueueAvg [NumDomains]float64
	FreqMHz  [NumDomains]float64
	Note     string
}

// Ring is a bounded, concurrency-safe record buffer: appends past the
// bound overwrite the oldest records, counted. It backs both the
// process-wide flight recorder and the per-job traces. A nil *Ring is
// valid and records nothing, so "tracing disabled" needs no branches at
// the producing call sites.
type Ring struct {
	mu    sync.Mutex
	buf   []Record // ring storage, len == cap once full
	depth int
	next  uint64 // total records ever added; next%depth is the write slot
}

// NewRing builds a recorder bounded at depth records (minimum 1).
func NewRing(depth int) *Ring {
	if depth < 1 {
		depth = 1
	}
	return &Ring{depth: depth}
}

// Add appends one record, overwriting the oldest past the bound.
func (r *Ring) Add(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < r.depth {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next%uint64(r.depth)] = rec
	}
	r.next++
	r.mu.Unlock()
}

// Snapshot copies the retained records oldest-first and reports how
// many older records the bound has already overwritten.
func (r *Ring) Snapshot() (recs []Record, dropped uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	recs = make([]Record, 0, len(r.buf))
	if len(r.buf) < r.depth {
		recs = append(recs, r.buf...)
	} else {
		at := r.next % uint64(r.depth) // oldest slot
		recs = append(recs, r.buf[at:]...)
		recs = append(recs, r.buf[:at]...)
	}
	return recs, r.next - uint64(len(recs))
}

// Total returns how many records have ever been added.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}
