package bench

import (
	"fmt"
	"strings"
	"time"

	"mcd/internal/sim"
	"mcd/internal/stats"
)

// Fidelity validation: run the Table 6 grid twice — once exact, once
// sampled — on identical options, time both, and compare the results the
// sampled tier is supposed to approximate. The errors reported here are
// model *bias* (sampled vs ground truth); the error-bound fields on each
// sampled Result (CPIErr95/EPIErr95) bound sampling *noise*. CI runs this
// at quick scale with a speedup floor and an error ceiling, so a model
// regression or a lost speedup fails the build.

// FidelityCell is one (benchmark, configuration) comparison between the
// exact and sampled tiers.
type FidelityCell struct {
	Benchmark string  `json:"benchmark"`
	Config    string  `json:"config"`
	CPIErr    float64 `json:"cpi_err"` // |sampled-exact|/exact, relative
	EPIErr    float64 `json:"epi_err"`
}

// FidelityReport is what mcdbench -validate-fidelity prints (and the CI
// step parses via its exit status).
type FidelityReport struct {
	SampleEvery    int            `json:"sample_every"`
	ExactSeconds   float64        `json:"exact_seconds"`
	SampledSeconds float64        `json:"sampled_seconds"`
	Speedup        float64        `json:"speedup"`
	MaxCPIErr      float64        `json:"max_cpi_err"`
	MaxEPIErr      float64        `json:"max_epi_err"`
	MeanCPIErr     float64        `json:"mean_cpi_err"`
	MeanEPIErr     float64        `json:"mean_epi_err"`
	Cells          []FidelityCell `json:"cells"`
	// Table 6 summary rows under each tier, for eyeballing how the
	// headline numbers move.
	ExactTable6   string `json:"exact_table6"`
	SampledTable6 string `json:"sampled_table6"`
}

// relErr is the relative error of got vs want, guarding a zero baseline.
func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	e := got/want - 1
	if e < 0 {
		e = -e
	}
	return e
}

// ValidateFidelity runs the comparison grid at both tiers and reports
// per-cell CPI/EPI errors and the wall-clock speedup. The error set
// covers the directly simulated configurations (sync, baseline MCD,
// Attack/Decay): the compound cells (off-line schedules, Global(·)
// matches) re-run their searches under each tier, so their differences
// conflate search divergence with model bias and are reported only
// through the Table 6 summaries. The options' Cache and Exec must be nil
// — a cache hit would time a map lookup, not a simulation.
func (o Options) ValidateFidelity() FidelityReport {
	if o.Cache != nil || o.Exec != nil {
		panic("bench: ValidateFidelity needs Cache and Exec unset (timing would be meaningless)")
	}
	exact := o
	exact.Fidelity = sim.FidelityExact
	exact.SampleEvery = 0
	sampled := o
	sampled.Fidelity = sim.FidelitySampled

	t0 := time.Now()
	ecs := exact.RunAll()
	t1 := time.Now()
	scs := sampled.RunAll()
	t2 := time.Now()

	rep := FidelityReport{
		SampleEvery:    sampled.sampleEvery(),
		ExactSeconds:   t1.Sub(t0).Seconds(),
		SampledSeconds: t2.Sub(t1).Seconds(),
		ExactTable6:    Table6(ecs),
		SampledTable6:  Table6(scs),
	}
	if rep.SampledSeconds > 0 {
		rep.Speedup = rep.ExactSeconds / rep.SampledSeconds
	}

	pick := []struct {
		name string
		get  func(Comparison) stats.Result
	}{
		{"sync", func(c Comparison) stats.Result { return c.Sync }},
		{"mcd-base", func(c Comparison) stats.Result { return c.MCDBase }},
		{"attack-decay", func(c Comparison) stats.Result { return c.AD }},
	}
	for i := range ecs {
		if i >= len(scs) {
			break
		}
		for _, p := range pick {
			e, s := p.get(ecs[i]), p.get(scs[i])
			cell := FidelityCell{
				Benchmark: ecs[i].Bench.Name,
				Config:    p.name,
				CPIErr:    relErr(s.CPI(), e.CPI()),
				EPIErr:    relErr(s.EPI(), e.EPI()),
			}
			rep.Cells = append(rep.Cells, cell)
			if cell.CPIErr > rep.MaxCPIErr {
				rep.MaxCPIErr = cell.CPIErr
			}
			if cell.EPIErr > rep.MaxEPIErr {
				rep.MaxEPIErr = cell.EPIErr
			}
			rep.MeanCPIErr += cell.CPIErr
			rep.MeanEPIErr += cell.EPIErr
		}
	}
	if n := float64(len(rep.Cells)); n > 0 {
		rep.MeanCPIErr /= n
		rep.MeanEPIErr /= n
	}
	return rep
}

// sampleEvery resolves the options' cadence the way a spec would.
func (o Options) sampleEvery() int {
	if o.SampleEvery <= 0 {
		return sim.DefaultSampleEvery
	}
	return o.SampleEvery
}

// Check compares the report with the validation thresholds, returning
// human-readable failures (empty: the fidelity gate passes). The mean
// bound (maxMeanErr) is the headline accuracy contract — sweep-level
// conclusions average many cells — while the per-cell bound (maxCellErr)
// catches a single cell going badly wrong without demanding every
// benchmark×controller pairing beat the mean.
func (r FidelityReport) Check(maxMeanErr, maxCellErr, minSpeedup float64) []string {
	var fails []string
	if r.MeanCPIErr > maxMeanErr {
		fails = append(fails, fmt.Sprintf(
			"mean CPI error %.2f%% exceeds the %.2f%% bound", r.MeanCPIErr*100, maxMeanErr*100))
	}
	if r.MeanEPIErr > maxMeanErr {
		fails = append(fails, fmt.Sprintf(
			"mean EPI error %.2f%% exceeds the %.2f%% bound", r.MeanEPIErr*100, maxMeanErr*100))
	}
	if r.MaxCPIErr > maxCellErr {
		fails = append(fails, fmt.Sprintf(
			"max CPI error %.2f%% exceeds the %.2f%% per-cell bound", r.MaxCPIErr*100, maxCellErr*100))
	}
	if r.MaxEPIErr > maxCellErr {
		fails = append(fails, fmt.Sprintf(
			"max EPI error %.2f%% exceeds the %.2f%% per-cell bound", r.MaxEPIErr*100, maxCellErr*100))
	}
	if minSpeedup > 0 && r.Speedup < minSpeedup {
		fails = append(fails, fmt.Sprintf(
			"speedup %.1f× is under the %.1f× floor (exact %.2fs, sampled %.2fs)",
			r.Speedup, minSpeedup, r.ExactSeconds, r.SampledSeconds))
	}
	return fails
}

// Format renders the report for the terminal.
func (r FidelityReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fidelity validation: exact vs sampled (every %d intervals detailed)\n", r.SampleEvery)
	fmt.Fprintf(&b, "  wall clock: exact %.2fs, sampled %.2fs — %.1f× speedup\n",
		r.ExactSeconds, r.SampledSeconds, r.Speedup)
	fmt.Fprintf(&b, "  CPI error:  max %.2f%%, mean %.2f%%\n", r.MaxCPIErr*100, r.MeanCPIErr*100)
	fmt.Fprintf(&b, "  EPI error:  max %.2f%%, mean %.2f%%\n", r.MaxEPIErr*100, r.MeanEPIErr*100)
	fmt.Fprintf(&b, "\n%-12s %-14s %10s %10s\n", "benchmark", "config", "CPI err", "EPI err")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-12s %-14s %9.2f%% %9.2f%%\n",
			c.Benchmark, c.Config, c.CPIErr*100, c.EPIErr*100)
	}
	b.WriteString("\n--- Table 6, exact ---\n")
	b.WriteString(r.ExactTable6)
	b.WriteString("\n--- Table 6, sampled ---\n")
	b.WriteString(r.SampledTable6)
	return b.String()
}
