package bench

import (
	"fmt"

	"mcd/internal/clock"
	"mcd/internal/core"
	"mcd/internal/runner"
	"mcd/internal/stats"
)

// SweepPoint is one x-axis value of a sensitivity figure with the
// suite-averaged metrics at that parameter value (vs the baseline MCD
// processor, as in the paper's sensitivity analysis).
type SweepPoint struct {
	Value   float64
	Summary stats.Summary
}

// sweep runs Attack/Decay across the catalog once per parameter value.
// The per-benchmark baselines form one parallel batch and the full
// (value × benchmark) grid a second one; points are assembled in value
// order, so the output is identical for any worker count.
func (o Options) sweep(values []float64, apply func(*core.Params, float64)) []SweepPoint {
	cat := o.catalog()

	baseTasks := make([]runner.Task[stats.Result], len(cat))
	for i, b := range cat {
		baseTasks[i] = o.task(b.Name+"/mcd-base",
			o.spec(b, nil, [clock.NumControllable]float64{}, "mcd-base"))
	}
	bases := o.mapTasks(baseTasks)

	var grid []runner.Task[stats.Result]
	for _, v := range values {
		p := o.Params
		apply(&p, v)
		for _, b := range cat {
			grid = append(grid, o.task(
				fmt.Sprintf("%s/ad@%g", b.Name, v),
				o.spec(b, core.NewAttackDecay(p), [clock.NumControllable]float64{}, "ad-sweep")))
		}
	}
	runs := o.mapTasks(grid)

	points := make([]SweepPoint, len(values))
	for vi, v := range values {
		var comps []stats.Comparison
		for bi := range cat {
			comps = append(comps, stats.Compare(runs[vi*len(cat)+bi], bases[bi]))
		}
		points[vi] = SweepPoint{Value: v, Summary: stats.Summarize(comps)}
	}
	return points
}

// SweepTarget reproduces Figure 5: PerfDegThreshold swept as the
// performance degradation target (paper values 0–12%), with the
// parameters otherwise fixed at 1.000_06.0_1.250_X.X.
func (o Options) SweepTarget(values []float64) []SweepPoint {
	if values == nil {
		values = []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12}
	}
	o.Params.DeviationThreshold = 0.010
	o.Params.ReactionChange = 0.060
	o.Params.Decay = 0.0125
	return o.sweep(values, func(p *core.Params, v float64) { p.PerfDegThreshold = v })
}

// SweepDecay reproduces Figures 6(a)/7(a): Decay swept 0–2% with
// parameters 1.500_04.0_X.XXX_3.0.
func (o Options) SweepDecay(values []float64) []SweepPoint {
	if values == nil {
		values = []float64{0.0005, 0.00175, 0.005, 0.0075, 0.0125, 0.0175, 0.02}
	}
	o.Params.DeviationThreshold = 0.015
	o.Params.ReactionChange = 0.040
	o.Params.PerfDegThreshold = 0.030
	return o.sweep(values, func(p *core.Params, v float64) { p.Decay = v })
}

// SweepReaction reproduces Figures 6(b)/7(b): ReactionChange swept
// 0.5–15.5% with parameters 1.500_XX.X_0.750_3.0.
func (o Options) SweepReaction(values []float64) []SweepPoint {
	if values == nil {
		values = []float64{0.005, 0.02, 0.04, 0.06, 0.09, 0.12, 0.155}
	}
	o.Params.DeviationThreshold = 0.015
	o.Params.Decay = 0.0075
	o.Params.PerfDegThreshold = 0.030
	return o.sweep(values, func(p *core.Params, v float64) { p.ReactionChange = v })
}

// SweepDeviation reproduces Figures 6(c)/7(c): DeviationThreshold swept
// 0–2.5% with parameters X.XXX_06.0_0.175_2.5.
func (o Options) SweepDeviation(values []float64) []SweepPoint {
	if values == nil {
		values = []float64{0.0025, 0.005, 0.0075, 0.0125, 0.0175, 0.025}
	}
	o.Params.ReactionChange = 0.060
	o.Params.Decay = 0.00175
	o.Params.PerfDegThreshold = 0.025
	return o.sweep(values, func(p *core.Params, v float64) { p.DeviationThreshold = v })
}

// FormatSweep renders a sweep as the two series the paper plots: EDP
// improvement (Figure 6) and power/performance ratio (Figure 7), plus the
// measured degradation (Figure 5a's y-axis).
func FormatSweep(title, xlabel string, points []SweepPoint) string {
	s := title + "\n"
	s += fmt.Sprintf("%-12s %10s %12s %12s %12s\n", xlabel, "PerfDeg", "EnergySav", "EDPImprov", "Power/Perf")
	for _, p := range points {
		s += fmt.Sprintf("%11.3f%% %9.1f%% %11.1f%% %11.1f%% %12.2f\n",
			p.Value*100,
			p.Summary.PerfDegradation*100,
			p.Summary.EnergySavings*100,
			p.Summary.EDPImprovement*100,
			p.Summary.PowerPerfRatio)
	}
	return s
}
