// Package hw reproduces Table 3 of the paper: equivalent-gate estimates
// for the hardware needed to implement the Attack/Decay algorithm, using
// the per-bit gate costs of Zimmermann's computer-arithmetic notes. The
// paper assumes 16-bit devices for all datapath components, a 14-bit
// interval counter estimated at n=16, and 4-bit endstop counters.
package hw

// Component is one row of Table 3.
type Component struct {
	Name       string
	Estimation string // the formula as printed in the paper
	Bits       int    // n used in the estimate
	GatesPerN  int    // gate cost per bit
	PerDomain  bool   // required once per controlled domain
	Count      int    // instances per domain (or globally)
}

// Gates returns the equivalent gate count for this component.
func (c Component) Gates() int { return c.GatesPerN * c.Bits * c.Count }

// Components returns the Table 3 rows.
func Components() []Component {
	return []Component{
		{
			Name:       "Queue Utilization Counter (Accumulator)",
			Estimation: "7n (Adder) + 4n (D Flip-Flop) = 11n",
			Bits:       16, GatesPerN: 11, PerDomain: true, Count: 1,
		},
		{
			Name:       "Comparators (2 required)",
			Estimation: "6n x 2 = 12n",
			Bits:       16, GatesPerN: 6, PerDomain: true, Count: 2,
		},
		{
			Name:       "Multiplier (partial-product accumulation)",
			Estimation: "1n (Multiplier) + 4n (D Flip-Flop) = 5n",
			Bits:       16, GatesPerN: 5, PerDomain: true, Count: 1,
		},
		{
			Name:       "Interval Counter (14-bit)",
			Estimation: "3n (Half-adder) + 4n (D Flip-Flop) = 7n",
			Bits:       16, GatesPerN: 7, PerDomain: false, Count: 1,
		},
		{
			Name:       "Endstop Counter (4-bit)",
			Estimation: "3n (Half-adder) + 4n (D Flip-Flop) = 7n",
			Bits:       4, GatesPerN: 7, PerDomain: true, Count: 1,
		},
	}
}

// GatesPerDomain returns the per-domain gate cost (paper: 476, including
// full magnitude comparators).
func GatesPerDomain() int {
	var total int
	for _, c := range Components() {
		if c.PerDomain {
			total += c.Gates()
		}
	}
	return total
}

// TotalGates returns the cost of controlling the given number of domains
// plus the shared interval counter (paper: fewer than 2,500 gates for a
// four-domain MCD processor).
func TotalGates(domains int) int {
	total := 0
	for _, c := range Components() {
		if c.PerDomain {
			total += c.Gates() * domains
		} else {
			total += c.Gates()
		}
	}
	return total
}
