package power

import (
	"math"
	"testing"
	"testing/quick"

	"mcd/internal/clock"
)

func TestDomainOfCoversAllComponents(t *testing.T) {
	want := map[Component]clock.Domain{
		ICache: clock.FrontEnd, BPred: clock.FrontEnd, BTB: clock.FrontEnd,
		Rename: clock.FrontEnd, ROB: clock.FrontEnd,
		IntIQ: clock.Integer, IntCAM: clock.Integer, IntRF: clock.Integer,
		IntALU: clock.Integer, IntMul: clock.Integer,
		FPIQ: clock.FloatingPoint, FPCAM: clock.FloatingPoint,
		FPRF: clock.FloatingPoint, FPALU: clock.FloatingPoint, FPMul: clock.FloatingPoint,
		LSQ: clock.LoadStore, LSQCAM: clock.LoadStore,
		DCache: clock.LoadStore, L2Cache: clock.LoadStore,
	}
	for c := Component(0); c < NumComponents; c++ {
		if got := DomainOf(c); got != want[c] {
			t.Errorf("DomainOf(%v) = %v, want %v", c, got, want[c])
		}
		if c.String() == "unknown" {
			t.Errorf("component %d has no name", c)
		}
	}
}

func TestAccessEnergyVoltageScaling(t *testing.T) {
	p := DefaultParams()
	m := NewMeter(p, false)
	m.Access(IntALU, 1.2, 1)
	full := m.ComponentPJ(IntALU)
	if math.Abs(full-p.AccessPJ[IntALU]) > 1e-9 {
		t.Errorf("access at Vnom = %v pJ, want %v", full, p.AccessPJ[IntALU])
	}
	m2 := NewMeter(p, false)
	m2.Access(IntALU, 0.6, 1)
	if got, want := m2.ComponentPJ(IntALU), full*0.25; math.Abs(got-want) > 1e-9 {
		t.Errorf("access at Vnom/2 = %v pJ, want %v (quadratic scaling)", got, want)
	}
}

func TestClockGating(t *testing.T) {
	p := DefaultParams()
	m := NewMeter(p, false)
	m.ClockTick(clock.FloatingPoint, 1.2, true)
	active := m.ClockPJ()
	m.ClockTick(clock.FloatingPoint, 1.2, false)
	idle := m.ClockPJ() - active
	if want := active * p.GatedFraction; math.Abs(idle-want) > 1e-9 {
		t.Errorf("idle cycle = %v pJ, want %v (gated fraction %v)", idle, want, p.GatedFraction)
	}
}

func TestMCDClockOverhead(t *testing.T) {
	p := DefaultParams()
	sync := NewMeter(p, false)
	mcd := NewMeter(p, true)
	for i := 0; i < 100; i++ {
		sync.ClockTick(clock.Integer, 1.2, true)
		mcd.ClockTick(clock.Integer, 1.2, true)
	}
	ratio := mcd.ClockPJ() / sync.ClockPJ()
	if math.Abs(ratio-p.MCDClockFactor) > 1e-9 {
		t.Errorf("MCD clock overhead ratio = %v, want %v", ratio, p.MCDClockFactor)
	}
	// Access energy must NOT carry the MCD overhead.
	sync.Access(DCache, 1.2, 1)
	mcd.Access(DCache, 1.2, 1)
	if sync.ComponentPJ(DCache) != mcd.ComponentPJ(DCache) {
		t.Error("access energy should be identical between sync and MCD meters")
	}
}

func TestTotalsAreConsistent(t *testing.T) {
	m := NewMeter(DefaultParams(), true)
	m.Access(ICache, 1.2, 3)
	m.Access(FPALU, 1.0, 2)
	m.Access(L2Cache, 0.8, 1)
	m.ClockTick(clock.FrontEnd, 1.2, true)
	m.ClockTick(clock.LoadStore, 0.8, false)
	var sum float64
	for d := clock.Domain(0); d < clock.NumDomains; d++ {
		sum += m.DomainPJ(d)
	}
	if math.Abs(sum-m.TotalPJ()) > 1e-9 {
		t.Errorf("domain sum %v != total %v", sum, m.TotalPJ())
	}
	if m.Accesses(ICache) != 3 || m.Accesses(FPALU) != 2 {
		t.Error("access counts wrong")
	}
	m.Access(ICache, 1.2, 0) // zero accesses: no-op
	if m.Accesses(ICache) != 3 {
		t.Error("zero-access call must not count")
	}
}

// Property: energy is monotonically non-decreasing and scales quadratically
// in voltage for any component.
func TestEnergyQuadraticProperty(t *testing.T) {
	p := DefaultParams()
	f := func(csel uint8, vRaw uint8, n uint8) bool {
		c := Component(csel % uint8(NumComponents))
		v := 0.65 + float64(vRaw)/255*0.55
		m := NewMeter(p, false)
		m.Access(c, v, int(n))
		want := p.AccessPJ[c] * (v / 1.2) * (v / 1.2) * float64(n)
		return math.Abs(m.TotalPJ()-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
