package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mcd/internal/metrics"
	"mcd/internal/resultcache"
	"mcd/internal/sim"
	"mcd/internal/wire"
)

// WorkerOptions configures the worker side of the fabric: an execute
// endpoint plus a heartbeat loop registering with the coordinator.
type WorkerOptions struct {
	// ID names this worker in the coordinator's registry, metrics and
	// logs. Required.
	ID string
	// Advertise is the base URL the coordinator should dispatch to
	// (scheme://host:port of this worker's own listener). Required.
	Advertise string
	// Coordinator is the base URL to register with. Empty disables the
	// heartbeat loop — useful in tests that call Register directly.
	Coordinator string
	// Slots is the concurrency this worker advertises (default 1).
	Slots int
	// Cache is this worker's local result store; dispatched specs
	// probe and fill it like any local run. May be nil.
	Cache *resultcache.Cache
	// Metrics receives the worker-side mcd_fabric_* instruments; nil
	// uses a private registry.
	Metrics *metrics.Registry
	// Logger receives lifecycle logs; nil discards them.
	Logger *slog.Logger
	// Heartbeat is the registration cadence until the coordinator's
	// welcome overrides it (default 1s).
	Heartbeat time.Duration
	// Client issues the heartbeat POSTs; nil uses a 5s-timeout client.
	Client *http.Client
}

// Worker executes fabric dispatches and keeps itself registered with
// the coordinator. Construct with NewWorker, serve Handler, Start the
// heartbeats, Close on shutdown.
type Worker struct {
	o      WorkerOptions
	log    *slog.Logger
	client *http.Client

	busy     atomic.Int64
	executed *metrics.CounterVec // outcome: ok | error

	hbMu sync.Mutex
	hb   time.Duration

	mipsMu    sync.Mutex
	lastInstr uint64
	lastAt    time.Time
	simMIPS   float64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewWorker builds a worker; it does nothing until Handler is served
// and Start is called.
func NewWorker(o WorkerOptions) *Worker {
	if o.Slots <= 0 {
		o.Slots = 1
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 5 * time.Second}
	}
	reg := o.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	w := &Worker{
		o:      o,
		log:    o.Logger,
		client: o.Client,
		hb:     o.Heartbeat,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	w.executed = reg.CounterVec("mcd_fabric_executes_total", "Dispatched specs executed by this worker, by outcome.", "outcome")
	for _, outcome := range []string{"ok", "error"} {
		w.executed.With(outcome)
	}
	reg.GaugeFunc("mcd_fabric_inflight", "Dispatched specs currently executing on this worker.", func() float64 {
		return float64(w.busy.Load())
	})
	w.lastAt = time.Now()
	w.lastInstr = sim.SimulatedInstructions()
	return w
}

// Handler exposes the worker's dispatch endpoint:
//
//	POST /v1/fabric/execute   run one spec (wire.FabricExecute),
//	                          respond with the canonical result bytes
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fabric/execute", w.handleExecute)
	return mux
}

func (w *Worker) handleExecute(rw http.ResponseWriter, r *http.Request) {
	var req wire.FabricExecute
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(rw, `{"error":"bad execute body"}`, http.StatusBadRequest)
		return
	}
	run := req.Run.Normalize()
	if err := run.Validate(); err != nil {
		http.Error(rw, `{"error":"invalid run"}`, http.StatusBadRequest)
		return
	}
	if req.Key != "" {
		// Re-derive the content address: a mismatch means the two
		// processes resolve the spec differently (registry drift) and
		// executing would silently poison the shared store. 4xx so the
		// coordinator reports it instead of retrying fleet-wide.
		key, err := run.Key()
		if err != nil || key != req.Key {
			http.Error(rw, `{"error":"spec key mismatch: coordinator/worker registry drift"}`, http.StatusUnprocessableEntity)
			return
		}
	}
	w.busy.Add(1)
	defer w.busy.Add(-1)
	body, hit, err := run.RunStreamHooked(r.Context(), w.o.Cache, wire.RunHooks{})
	if err != nil {
		if r.Context().Err() != nil {
			return // cancelled by the coordinator (hedge loser); no response matters
		}
		w.executed.With("error").Inc()
		http.Error(rw, `{"error":"simulation failed"}`, http.StatusInternalServerError)
		return
	}
	w.executed.With("ok").Inc()
	rw.Header().Set("Content-Type", "application/json")
	if hit {
		rw.Header().Set("X-Cache", "hit")
	} else {
		rw.Header().Set("X-Cache", "miss")
	}
	rw.Header().Set("X-Worker", w.o.ID)
	rw.Write(body)
}

// Start launches the heartbeat loop (a no-op without a coordinator
// URL). The first hello is sent immediately.
func (w *Worker) Start() {
	if w.o.Coordinator == "" {
		close(w.done)
		return
	}
	go w.loop()
}

func (w *Worker) loop() {
	defer close(w.done)
	w.beat()
	for {
		w.hbMu.Lock()
		hb := w.hb
		w.hbMu.Unlock()
		t := time.NewTimer(hb)
		select {
		case <-w.stop:
			t.Stop()
			return
		case <-t.C:
			w.beat()
		}
	}
}

// beat sends one hello/heartbeat; failures are logged and retried at
// the next tick (the coordinator may simply not be up yet).
func (w *Worker) beat() {
	hello := wire.FabricHello{
		ID:      w.o.ID,
		URL:     w.o.Advertise,
		Slots:   w.o.Slots,
		Busy:    int(w.busy.Load()),
		SimMIPS: w.noteMIPS(),
	}
	b, err := json.Marshal(hello)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.o.Coordinator+"/v1/fabric/register", bytes.NewReader(b))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		w.log.Debug("fabric: heartbeat failed", "error", err)
		return
	}
	defer resp.Body.Close()
	var welcome wire.FabricWelcome
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<12)).Decode(&welcome) == nil &&
		welcome.OK && welcome.HeartbeatMillis > 0 {
		w.hbMu.Lock()
		w.hb = time.Duration(welcome.HeartbeatMillis) * time.Millisecond
		w.hbMu.Unlock()
	}
}

// noteMIPS samples the process-wide simulated-instruction counter and
// returns the rate since the previous heartbeat in millions per
// wall-clock second — the fleet-TUI throughput figure.
func (w *Worker) noteMIPS() float64 {
	now := time.Now()
	instr := sim.SimulatedInstructions()
	w.mipsMu.Lock()
	defer w.mipsMu.Unlock()
	dt := now.Sub(w.lastAt).Seconds()
	if dt > 0 {
		w.simMIPS = float64(instr-w.lastInstr) / dt / 1e6
	}
	w.lastAt = now
	w.lastInstr = instr
	return w.simMIPS
}

// Close stops the heartbeat loop. In-flight executes finish under the
// HTTP server's own shutdown drain.
func (w *Worker) Close() {
	w.stopOnce.Do(func() { close(w.stop) })
	if w.o.Coordinator != "" {
		<-w.done
	}
}
