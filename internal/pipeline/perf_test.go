package pipeline_test

import (
	"testing"

	"mcd/internal/clock"
	"mcd/internal/pipeline"
	"mcd/internal/workload"
)

// perfProfile is the workload the hot-loop measurements run: a mixed
// int/FP/memory phase script so every domain tick path (and the LSQ
// store-scan) is exercised.
func perfProfile() workload.Profile {
	b, ok := workload.Lookup("epic")
	if !ok {
		panic("perf: benchmark epic missing from catalog")
	}
	return b.Profile
}

// stepController is a minimal allocation-free controller that retargets
// two domains every interval, keeping the regulator slew and voltage
// paths hot without the full Attack/Decay bookkeeping.
type stepController struct{ flip bool }

func (s *stepController) Name() string { return "perf-step" }

func (s *stepController) Observe(iv pipeline.IntervalView) (t [clock.NumControllable]float64) {
	s.flip = !s.flip
	if s.flip {
		t[clock.FloatingPoint] = 500
		t[clock.LoadStore] = 750
	} else {
		t[clock.FloatingPoint] = 1000
		t[clock.LoadStore] = 1000
	}
	return t
}

const (
	perfWindow   = 120_000
	perfWarmup   = 60_000
	perfInterval = 500
)

func perfOptions() pipeline.RunOptions {
	return pipeline.RunOptions{
		Window:         perfWindow,
		Warmup:         perfWarmup,
		IntervalLength: perfInterval,
		Controller:     &stepController{},
		ConfigName:     "perf",
	}
}

// BenchmarkHotLoop measures the cycle engine alone: one QuickOptions-scale
// run per iteration, no session/harness layers. simulated-MIPS is retired
// instructions (warmup included — those cycles are simulated too) per
// wall-clock second.
func BenchmarkHotLoop(b *testing.B) {
	prof := perfProfile()
	cfg := pipeline.DefaultConfig()
	cfg.SlewNsPerMHz = 4.91
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := pipeline.New(cfg, prof.NewGenerator(perfWarmup+perfWindow))
		res := c.Run(perfOptions())
		if res.Instructions != perfWindow {
			b.Fatalf("run retired %d measured instructions, want %d", res.Instructions, perfWindow)
		}
	}
	b.StopTimer()
	reportMIPS(b, float64(perfWarmup+perfWindow)*float64(b.N))
}

// BenchmarkHotLoopReuse is BenchmarkHotLoop over one reused core: the
// steady-state cost of a grid cell once construction is amortized away.
func BenchmarkHotLoopReuse(b *testing.B) {
	prof := perfProfile()
	cfg := pipeline.DefaultConfig()
	cfg.SlewNsPerMHz = 4.91
	c := pipeline.New(cfg, prof.NewGenerator(perfWarmup+perfWindow))
	gen := prof.NewGenerator(perfWarmup + perfWindow)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Reset()
		c.Reset(cfg, gen)
		res := c.Run(perfOptions())
		if res.Instructions != perfWindow {
			b.Fatalf("run retired %d measured instructions, want %d", res.Instructions, perfWindow)
		}
	}
	b.StopTimer()
	reportMIPS(b, float64(perfWarmup+perfWindow)*float64(b.N))
}

func reportMIPS(b *testing.B, instructions float64) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(instructions/1e6/s, "sim-MIPS")
	}
}

// TestStepIntervalsZeroAllocs pins the tentpole invariant of PR 5: after
// warmup, the cycle engine's steady state allocates nothing — stepping,
// controller observation and interval recording included. The interval
// buffer is pre-sized from Window/IntervalLength at Start, so recording
// does not grow it.
func TestStepIntervalsZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	prof := perfProfile()
	cfg := pipeline.DefaultConfig()
	cfg.SlewNsPerMHz = 4.91
	opts := perfOptions()
	opts.RecordIntervals = true
	c := pipeline.New(cfg, prof.NewGenerator(perfWarmup+perfWindow))
	c.Start(opts)
	// Drain the warmup region plus a few measured intervals so caches,
	// predictor and the interval buffer are all in steady state.
	warmIv := perfWarmup/perfInterval + 8
	if !c.StepIntervals(int(warmIv)) {
		t.Fatal("run completed during warmup stepping")
	}
	allocs := testing.AllocsPerRun(64, func() {
		if !c.StepIntervals(1) {
			t.Fatal("run completed inside the measured steps")
		}
	})
	if allocs != 0 {
		t.Fatalf("StepIntervals allocated %.1f objects per interval in steady state, want 0", allocs)
	}
}
