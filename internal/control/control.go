// Package control is the pluggable controller registry: every control
// algorithm the system can run — the paper's Attack/Decay, the off-line
// Dynamic-X% comparator, global scaling, the synchronous baseline, and
// any future policy — is a named, parameterized factory registered
// here. A registration is self-describing in three directions at once:
//
//   - toward the simulator: it builds the exact sim.Spec a request
//     describes (including compound preparation such as an off-line
//     schedule search);
//   - toward the result cache: it supplies the canonical parameter
//     encoding that feeds resultcache.SpecKey, so every registered
//     controller's runs are content-addressable under mcd-spec-v2;
//   - toward the wire: its name and parameter schema are what the JSON
//     "controller"/"params" request fields, GET /v1/controllers, and
//     the CLI flag sets are generated from.
//
// Adding a control algorithm is therefore a single Register call (see
// examples/customcontroller); the CLIs, the HTTP service, the sweep
// harness and the cache pick it up with no further edits.
package control

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mcd/internal/pipeline"
	"mcd/internal/resultcache"
	"mcd/internal/sim"
	"mcd/internal/workload"
)

// Params maps parameter names to numeric values. All controller
// parameters are float64 — integer-valued ones (iteration counts,
// end-stop counts) are truncated by the definition that consumes them —
// which is what makes every registered controller uniformly sweepable.
type Params map[string]float64

// Field describes one numeric parameter of a controller's schema.
type Field struct {
	Name    string  `json:"name"`
	Default float64 `json:"default"`
	// Min and Max document the sensible range; sweeps without explicit
	// values sample it. They are advisory, not enforced.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	Doc string  `json:"doc,omitempty"`
}

// Schema is an ordered list of parameter fields; the order is the
// canonical encoding order.
type Schema []Field

// Field finds a schema field by name.
func (s Schema) Field(name string) (Field, bool) {
	for _, f := range s {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// names returns the field names in schema order.
func (s Schema) names() []string {
	out := make([]string, len(s))
	for i, f := range s {
		out[i] = f.Name
	}
	return out
}

// Canonical encodes resolved parameter values in schema order with the
// result store's exact float spelling: equal parameter sets always
// encode to equal strings and distinct ones never collide, so the
// encoding is safe key material.
func (s Schema) Canonical(p Params) string {
	var b strings.Builder
	for _, f := range s {
		fmt.Fprintf(&b, "|%s=%s", f.Name, resultcache.Float(p[f.Name]))
	}
	return b.String()
}

// Run is the controller-independent description of one simulation: what
// a request looks like before a registered definition turns it into a
// full sim.Spec.
type Run struct {
	Config         pipeline.Config
	Profile        workload.Profile
	Window         uint64
	Warmup         uint64
	IntervalLength uint64
	// Name labels the Result (sim.Spec.Name); empty means the name the
	// controller was requested under.
	Name string
	// Fidelity selects the simulation tier ("" or sim.FidelityExact for
	// the exact engine, sim.FidelitySampled for interval sampling);
	// SampleEvery is the sampled tier's detailed-interval cadence (zero
	// uses sim.DefaultSampleEvery). Both thread verbatim into every spec
	// a definition builds, including the compound preparations (off-line
	// schedule search, global matching), so a sampled request is sampled
	// end to end and keyed apart from exact.
	Fidelity    string
	SampleEvery int
}

// spec is the plain sim.Spec for the run, before any controller is
// attached.
func (r Run) spec() sim.Spec {
	return sim.Spec{
		Config:         r.Config,
		Profile:        r.Profile,
		Window:         r.Window,
		Warmup:         r.Warmup,
		IntervalLength: r.IntervalLength,
		Name:           r.Name,
		Fidelity:       r.Fidelity,
		SampleEvery:    r.SampleEvery,
	}
}

// withFidelity stamps the run's fidelity tier onto a spec built some
// other way (the synchronous and global definitions construct theirs via
// sim.SynchronousSpec).
func (r Run) withFidelity(s sim.Spec) sim.Spec {
	s.Fidelity = r.Fidelity
	s.SampleEvery = r.SampleEvery
	return s
}

// syncSpec is the fully synchronous spec at frequency f under the run's
// fidelity tier. At sampled fidelity the request's interval length is
// threaded through as well — it is the sampling unit, and the default
// 10k-instruction interval would leave a quick-scale window with too few
// samples to calibrate on. At exact fidelity the synchronous machine has
// no controller observing intervals and keeps its historical
// default-length intervals (and their byte-identical stream frames).
func (r Run) syncSpec(f float64) sim.Spec {
	s := r.withFidelity(sim.SynchronousSpec(r.Config, r.Profile, r.Window, r.Warmup, f, r.Name))
	if s.Sampled() {
		s.IntervalLength = r.IntervalLength
	}
	return s
}

// Definition is one registered controller factory.
type Definition struct {
	// Name is the registry key: the value of the wire "controller"
	// field and the CLI -config/-controller flags.
	Name string
	// Doc is a one-line description served by GET /v1/controllers.
	Doc string
	// Schema declares the numeric parameters and their defaults.
	Schema Schema

	// Exactly one of New and Build must be set.
	//
	// New constructs a fresh controller instance for the resolved
	// parameters — the common case. A nil controller means a
	// fixed-frequency run (the MCD baseline). The instance's behaviour
	// must be fully determined by the parameters: registry runs are
	// content-addressed by the canonical parameter encoding (see
	// Resolved.Key), so hidden construction-time state would alias
	// distinct computations onto one address. Implementing
	// resultcache.Keyer additionally makes hand-built specs (outside
	// the registry path) cacheable.
	New func(p Params) (pipeline.Controller, error)
	// Build customizes the entire run instead: it receives the base run
	// and resolved parameters and returns the final spec. Expensive
	// preparation (the off-line schedule search) happens here.
	Build func(r Run, p Params) (sim.Spec, error)

	// KeySpec, for Build definitions whose Build is expensive, returns
	// the cheap spec plus extra key material that content-address the
	// run without performing the preparation. When nil, the key is
	// derived from Build (or New) directly.
	KeySpec func(r Run, p Params) (spec sim.Spec, extra string, err error)

	// SearchItersParam, when set, names the schema parameter that
	// carries this definition's search-iteration budget. The experiment
	// harness maps its own iteration bound (bench Options.OfflineIters)
	// onto it so quick-scale sweeps don't pay full-depth searches; it is
	// an explicit opt-in, never inferred from a parameter's name.
	SearchItersParam string
}

// Registered is a registry entry: a definition, possibly reached
// through an alias that pins some of its parameters.
type Registered struct {
	Definition
	// AliasFor is the canonical definition name when this entry is an
	// alias ("dynamic-1" → "dynamic"); empty for canonical entries.
	AliasFor string
	// Pinned are the parameter values the alias fixes; requests may not
	// override them.
	Pinned Params
}

// Info is the self-description of one registry entry, served by
// GET /v1/controllers.
type Info struct {
	Name     string             `json:"name"`
	Doc      string             `json:"doc,omitempty"`
	AliasFor string             `json:"alias_for,omitempty"`
	Pinned   map[string]float64 `json:"pinned,omitempty"`
	Params   []Field            `json:"params,omitempty"`
}

var (
	mu       sync.RWMutex
	registry = map[string]Registered{}
)

// Register adds a definition under its name. It panics on an invalid
// definition or a duplicate name: registration happens at init time,
// where a broken registry should stop the program, not limp.
func Register(d Definition) {
	if d.Name == "" {
		panic("control: Register with empty name")
	}
	if (d.New == nil) == (d.Build == nil) {
		panic(fmt.Sprintf("control: definition %q must set exactly one of New and Build", d.Name))
	}
	seen := map[string]bool{}
	for _, f := range d.Schema {
		if f.Name == "" || seen[f.Name] {
			panic(fmt.Sprintf("control: definition %q has an empty or duplicate schema field %q", d.Name, f.Name))
		}
		seen[f.Name] = true
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[d.Name]; dup {
		panic(fmt.Sprintf("control: controller %q registered twice", d.Name))
	}
	registry[d.Name] = Registered{Definition: d}
}

// Alias registers name as target with the given parameters pinned, so
// legacy or shorthand names keep working while the canonical definition
// lives in one place. Pinned keys must exist in the target's schema.
func Alias(name, target string, pinned Params) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("control: controller %q registered twice", name))
	}
	t, ok := registry[target]
	if !ok || t.AliasFor != "" {
		panic(fmt.Sprintf("control: alias %q targets unknown or alias controller %q", name, target))
	}
	for k := range pinned {
		if _, ok := t.Schema.Field(k); !ok {
			panic(fmt.Sprintf("control: alias %q pins unknown parameter %q of %q", name, k, target))
		}
	}
	registry[name] = Registered{Definition: t.Definition, AliasFor: target, Pinned: pinned}
}

// Lookup finds a registry entry by name.
func Lookup(name string) (Registered, bool) {
	mu.RLock()
	defer mu.RUnlock()
	r, ok := registry[name]
	return r, ok
}

// Names returns every registered name (canonical and alias), sorted —
// the one source of truth for "valid controller" listings everywhere.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe returns the registry's self-description, sorted by name.
func Describe() []Info {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Info, 0, len(registry))
	for n, r := range registry {
		info := Info{Name: n, Doc: r.Doc, AliasFor: r.AliasFor, Params: append([]Field(nil), r.Schema...)}
		if len(r.Pinned) > 0 {
			info.Pinned = map[string]float64{}
			for k, v := range r.Pinned {
				info.Pinned[k] = v
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Resolved pairs a registry entry with a fully resolved parameter set
// (schema defaults, overlaid by alias pins, overlaid by user values).
type Resolved struct {
	reg    Registered
	name   string // the requested name, which labels results and keys
	params Params
}

// Resolve looks a controller up by name and merges user parameters over
// the schema defaults and alias pins. Unknown names and unknown or
// pinned parameters are rejected with errors that list the sorted valid
// set — the one source of truth for CLI usage errors and HTTP 400s.
func Resolve(name string, user Params) (Resolved, error) {
	reg, ok := Lookup(name)
	if !ok {
		return Resolved{}, fmt.Errorf("unknown controller %q (valid: %s)", name, strings.Join(Names(), ", "))
	}
	p := Params{}
	for _, f := range reg.Schema {
		p[f.Name] = f.Default
	}
	for k, v := range reg.Pinned {
		p[k] = v
	}
	keys := make([]string, 0, len(user))
	for k := range user {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic first-error selection
	for _, k := range keys {
		if _, ok := reg.Schema.Field(k); !ok {
			if len(reg.Schema) == 0 {
				return Resolved{}, fmt.Errorf("unknown parameter %q: controller %q takes no parameters", k, name)
			}
			return Resolved{}, fmt.Errorf("unknown parameter %q for controller %q (valid: %s)",
				k, name, strings.Join(reg.Schema.names(), ", "))
		}
		if _, pinned := reg.Pinned[k]; pinned {
			return Resolved{}, fmt.Errorf("parameter %q is pinned by alias %q (use controller %q to set it)",
				k, name, reg.AliasFor)
		}
		p[k] = user[k]
	}
	return Resolved{reg: reg, name: name, params: p}, nil
}

// Name returns the name the controller was resolved under.
func (r Resolved) Name() string { return r.name }

// Params returns a copy of the resolved parameter values.
func (r Resolved) Params() Params {
	out := Params{}
	for k, v := range r.params {
		out[k] = v
	}
	return out
}

// Canonical returns the canonical encoding of the resolution: the
// definition name plus every resolved parameter in schema order, exact
// float spelling. Equal canonical strings mean behaviourally identical
// controllers.
func (r Resolved) Canonical() string {
	return r.reg.Definition.Name + r.reg.Schema.Canonical(r.params)
}

// withName fills the run's result label with the requested name.
func (r Resolved) withName(run Run) Run {
	if run.Name == "" {
		run.Name = r.name
	}
	return run
}

// Spec builds the full simulation spec for the run — instantiating a
// fresh controller, or performing the definition's compound preparation
// (an off-line schedule search). It is a deterministic pure function of
// (run, resolved parameters), which is what makes its result cacheable
// under Key.
func (r Resolved) Spec(run Run) (sim.Spec, error) {
	run = r.withName(run)
	if r.reg.Build != nil {
		return r.reg.Build(run, r.params)
	}
	ctrl, err := r.reg.New(r.params)
	if err != nil {
		return sim.Spec{}, err
	}
	spec := run.spec()
	spec.Controller = ctrl
	return spec, nil
}

// Key returns the run's content address in the result store under the
// current spec-key version, without performing any expensive
// preparation the definition may need at Spec time.
//
// New-based runs are keyed by the controller-less spec plus the
// resolution's canonical parameter encoding — never by the controller
// instance's own CacheKey — so a registered controller's content
// address is complete by construction (the schema is the single source
// of key material) rather than depending on a hand-maintained CacheKey
// format string staying in sync with the schema.
func (r Resolved) Key(run Run) (string, error) {
	run = r.withName(run)
	if r.reg.KeySpec != nil {
		spec, extra, err := r.reg.KeySpec(run, r.params)
		if err != nil {
			return "", err
		}
		return resultcache.SpecKeyExtra(spec, extra)
	}
	if r.reg.Build != nil {
		// Build without KeySpec is declared cheap; the built spec keys
		// itself (its controller, if any, must implement CacheKey).
		spec, err := r.Spec(run)
		if err != nil {
			return "", err
		}
		return resultcache.SpecKey(spec)
	}
	return resultcache.SpecKeyExtra(run.spec(), "control|"+r.Canonical())
}
