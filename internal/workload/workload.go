// Package workload provides the synthetic benchmark substrate that stands
// in for the MediaBench, Olden and SPEC2000 binaries of the paper (Table
// 5). Each benchmark is a deterministic statistical trace generator
// parameterized by instruction mix, dependency-distance distribution,
// branch-site population (which sets the achievable prediction accuracy),
// memory working set and access pattern (which set the cache miss rates),
// and a phase script (which produces the program-phase behaviour the
// paper's Figures 2 and 3 rely on).
//
// The substitution is documented in DESIGN.md: the control algorithm under
// study observes only queue occupancies and IPC, which emerge from the
// same pipeline feedback loop whether instructions come from an executed
// binary or from a trace.
package workload

import (
	"math/rand"

	"mcd/internal/xrand"
)

// Class categorizes an instruction by the resource that executes it.
type Class uint8

// Instruction classes.
const (
	IntALU Class = iota // 1-cycle integer op (integer domain)
	IntMul              // integer multiply/divide
	FPAdd               // floating-point add/sub/cmp
	FPMul               // floating-point multiply
	FPDiv               // floating-point divide/sqrt
	Load                // memory read (load/store domain)
	Store               // memory write
	Branch              // conditional branch (integer domain)
	NumClasses
)

var classNames = [NumClasses]string{
	"int-alu", "int-mul", "fp-add", "fp-mul", "fp-div", "load", "store", "branch",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// FP reports whether the class executes in the floating-point domain.
func (c Class) FP() bool { return c == FPAdd || c == FPMul || c == FPDiv }

// Memory reports whether the class occupies the load/store queue.
func (c Class) Memory() bool { return c == Load || c == Store }

// Instr is one dynamic instruction of a trace.
type Instr struct {
	Seq    uint64 // dynamic instruction number, starting at 0
	Class  Class
	Dep1   uint32 // distance back to the producer of source 1 (0 = none)
	Dep2   uint32 // distance back to the producer of source 2 (0 = none)
	Addr   uint64 // effective address (Load/Store only)
	PC     uint64 // fetch PC; branch-prediction PC for branches
	Taken  bool   // branch outcome
	Target uint64 // branch target
}

// MaxDepDistance bounds how far back a dependency may reach; the pipeline
// keeps a completion ring of this depth.
const MaxDepDistance = 256

// Mix is the instruction-class distribution of a phase. Values are
// relative weights; they need not sum to one.
type Mix struct {
	IntALU, IntMul, FPAdd, FPMul, FPDiv, Load, Store, Branch float64
}

func (m Mix) weights() [NumClasses]float64 {
	return [NumClasses]float64{m.IntALU, m.IntMul, m.FPAdd, m.FPMul, m.FPDiv, m.Load, m.Store, m.Branch}
}

// FPFraction returns the fraction of instructions executing in the FP domain.
func (m Mix) FPFraction() float64 {
	w := m.weights()
	var fp, tot float64
	for c, v := range w {
		tot += v
		if Class(c).FP() {
			fp += v
		}
	}
	if tot == 0 {
		return 0
	}
	return fp / tot
}

// Phase describes one program phase. Zero-valued fields take the defaults
// documented on each field.
type Phase struct {
	// Frac is this phase's share of the benchmark window. Fractions are
	// normalized across phases.
	Frac float64
	// Mix is the instruction-class distribution.
	Mix Mix
	// WorkingSet is the data footprint in bytes (default 64 KiB).
	WorkingSet uint64
	// StrideFrac is the fraction of memory accesses that walk sequential
	// streams (default 0.7). High values give L1-resident behaviour.
	StrideFrac float64
	// ChaseFrac is the fraction of loads that are pointer chases: a
	// random address that depends on the previous load's value (Olden,
	// mcf). Default 0.
	ChaseFrac float64
	// CodeBytes is the instruction footprint (default 16 KiB).
	CodeBytes uint64
	// BranchSites is the number of static branch sites (default 256).
	BranchSites int
	// RandomSiteFrac is the fraction of sites with unpredictable
	// outcomes (default 0.05); it controls achievable accuracy.
	RandomSiteFrac float64
	// BiasPeriod: biased sites fall through every BiasPeriod-th
	// execution, loop-style (default 16).
	BiasPeriod int
	// DepMean is the mean register dependency distance (default 6);
	// smaller means less ILP.
	DepMean float64
	// Dep2Prob is the probability an instruction has a second source
	// dependency (default 0.4).
	Dep2Prob float64
}

func (p Phase) withDefaults() Phase {
	if p.WorkingSet == 0 {
		p.WorkingSet = 64 << 10
	}
	if p.StrideFrac == 0 {
		p.StrideFrac = 0.7
	}
	if p.CodeBytes == 0 {
		p.CodeBytes = 16 << 10
	}
	if p.BranchSites == 0 {
		p.BranchSites = 256
	}
	if p.RandomSiteFrac == 0 {
		p.RandomSiteFrac = 0.05
	}
	if p.BiasPeriod == 0 {
		p.BiasPeriod = 16
	}
	if p.DepMean == 0 {
		p.DepMean = 6
	}
	if p.Dep2Prob == 0 {
		p.Dep2Prob = 0.4
	}
	return p
}

// Profile is a complete benchmark model.
type Profile struct {
	Name   string
	Phases []Phase
	// Loop repeats the phase script until the window is exhausted
	// instead of stretching it to fill the window once.
	Loop bool
	// LoopInstr is the total length of one pass of the phase script when
	// Loop is set (default 200_000).
	LoopInstr uint64
	Seed      int64
}

// Generator produces a deterministic instruction stream.
type Generator interface {
	// Next fills in the next instruction, returning false when the
	// window is exhausted.
	Next(in *Instr) bool
	// Reset restarts the stream from the beginning; the regenerated
	// stream is identical.
	Reset()
	// Name identifies the workload.
	Name() string
	// Window returns the total number of instructions.
	Window() uint64
}

// NewGenerator instantiates the profile for a window of n instructions.
func (p Profile) NewGenerator(n uint64) Generator {
	g := &generator{prof: p, window: n}
	g.Reset()
	return g
}

type phaseState struct {
	Phase
	limit    uint64 // seq at which this phase ends
	cum      [NumClasses]float64
	counters []uint16 // per-branch-site counters
	randomAt int      // sites below this index are random-outcome
}

type generator struct {
	prof    Profile
	window  uint64
	rng     *rand.Rand
	src     *xrand.Counting // rng's source; counted so state is checkpointable
	seq     uint64
	phases  []phaseState
	phIdx   int
	pc      uint64
	lastLd  uint64 // seq of most recent load + 1 (0 = none)
	streams [4]uint64
	dataLo  uint64
}

func (g *generator) Name() string   { return g.prof.Name }
func (g *generator) Window() uint64 { return g.window }

func (g *generator) Reset() {
	seed := g.prof.Seed ^ 0x5eed
	if g.rng == nil {
		// The counting wrapper is stream-transparent; it exists so
		// Checkpoint can capture the rng position (see xrand).
		g.src = xrand.NewCounting(seed)
		g.rng = rand.New(g.src)
	} else {
		// Re-seeding restores the exact state rand.New(NewSource(seed))
		// constructs, without reallocating the source's state table.
		g.rng.Seed(seed)
	}
	g.seq = 0
	g.phIdx = 0
	g.pc = 0x10000
	g.lastLd = 0
	g.dataLo = 0x4000_0000
	for i := range g.streams {
		g.streams[i] = g.dataLo + uint64(i)*8192
	}

	// The phase script is a pure function of the profile and window:
	// build it once, and on later resets only clear the branch-site
	// counters (the script's only mutable state).
	if g.phases != nil {
		for i := range g.phases {
			clear(g.phases[i].counters)
		}
		return
	}

	phases := g.prof.Phases
	if len(phases) == 0 {
		phases = []Phase{{Frac: 1}}
	}
	var fracSum float64
	for _, p := range phases {
		f := p.Frac
		if f <= 0 {
			f = 1
		}
		fracSum += f
	}
	span := g.window
	if g.prof.Loop {
		span = g.prof.LoopInstr
		if span == 0 {
			span = 200_000
		}
	}
	var acc uint64
	for i, p := range phases {
		f := p.Frac
		if f <= 0 {
			f = 1
		}
		n := uint64(float64(span) * f / fracSum)
		if i == len(phases)-1 && !g.prof.Loop {
			n = span - acc
		}
		acc += n
		ps := phaseState{Phase: p.withDefaults(), limit: acc}
		w := ps.Mix.weights()
		var sum float64
		for c := 0; c < int(NumClasses); c++ {
			sum += w[c]
			ps.cum[c] = sum
		}
		if sum == 0 { // degenerate: all int ALU
			ps.cum = [NumClasses]float64{1, 1, 1, 1, 1, 1, 1, 1}
		}
		ps.counters = make([]uint16, ps.BranchSites)
		ps.randomAt = int(float64(ps.BranchSites) * ps.RandomSiteFrac)
		g.phases = append(g.phases, ps)
	}
}

// phase returns the phase for the current seq, advancing through the
// script (cyclically when looping).
func (g *generator) phase() *phaseState {
	span := g.phases[len(g.phases)-1].limit
	pos := g.seq
	if g.prof.Loop && span > 0 {
		pos = g.seq % span
	}
	start := uint64(0)
	if g.phIdx > 0 {
		start = g.phases[g.phIdx-1].limit
	}
	if pos < start {
		g.phIdx = 0 // wrapped around the loop
	}
	for g.phIdx < len(g.phases)-1 && pos >= g.phases[g.phIdx].limit {
		g.phIdx++
	}
	return &g.phases[g.phIdx]
}

func (g *generator) depDistance(mean float64) uint32 {
	// Geometric distribution with the given mean, clamped to the
	// completion-ring depth and to the instructions generated so far.
	p := 1 / mean
	u := g.rng.Float64()
	d := uint32(1)
	for u > p && d < MaxDepDistance {
		u = (u - p) / (1 - p)
		d++
	}
	if uint64(d) > g.seq {
		d = uint32(g.seq)
	}
	return d
}

func (g *generator) address(ps *phaseState, isLoad bool) (addr uint64, chased bool) {
	r := g.rng.Float64()
	if isLoad && r < ps.ChaseFrac {
		return g.dataLo + uint64(g.rng.Int63())%ps.WorkingSet, true
	}
	if r < ps.ChaseFrac+ps.StrideFrac {
		i := g.rng.Intn(len(g.streams))
		a := g.streams[i]
		g.streams[i] += 8
		if g.streams[i] >= g.dataLo+ps.WorkingSet {
			g.streams[i] = g.dataLo + uint64(g.rng.Int63())%ps.WorkingSet
		}
		return a, false
	}
	return g.dataLo + uint64(g.rng.Int63())%ps.WorkingSet, false
}

func (g *generator) Next(in *Instr) bool {
	if g.seq >= g.window {
		return false
	}
	ps := g.phase()

	// Class selection from the phase mix.
	total := ps.cum[NumClasses-1]
	r := g.rng.Float64() * total
	cls := IntALU
	for c := 0; c < int(NumClasses); c++ {
		if r < ps.cum[c] {
			cls = Class(c)
			break
		}
	}

	*in = Instr{Seq: g.seq, Class: cls, PC: g.pc}

	// Register dependencies.
	if g.seq > 0 {
		mean := ps.DepMean
		in.Dep1 = g.depDistance(mean)
		if g.rng.Float64() < ps.Dep2Prob {
			in.Dep2 = g.depDistance(mean)
		}
	}

	switch cls {
	case Load, Store:
		addr, chased := g.address(ps, cls == Load)
		in.Addr = addr
		if chased && g.lastLd > 0 {
			d := g.seq - (g.lastLd - 1)
			if d >= 1 && d <= MaxDepDistance {
				in.Dep1 = uint32(d)
			}
		}
		if cls == Load {
			g.lastLd = g.seq + 1
		}
	case Branch:
		site := g.rng.Intn(ps.BranchSites)
		in.PC = 0x10000 + uint64(site)*16
		in.Target = in.PC + 512
		if site < ps.randomAt {
			in.Taken = g.rng.Intn(2) == 0
		} else {
			ps.counters[site]++
			in.Taken = int(ps.counters[site])%ps.BiasPeriod != 0
		}
	}

	// PC walk: sequential within the code footprint; taken branches jump
	// to a pseudo-random block, exercising the I-cache over CodeBytes.
	if cls == Branch && in.Taken {
		g.pc = 0x10000 + (uint64(g.rng.Int63())%ps.CodeBytes)&^63
	} else {
		g.pc += 4
		if g.pc >= 0x10000+ps.CodeBytes {
			g.pc = 0x10000
		}
	}

	g.seq++
	return true
}

// GenState is a checkpoint of a generator's mutable state: stream
// position, phase cursor, PC walk, stride streams, per-phase branch-site
// counters, and the rng position (as a source call count — the rng is a
// pure function of seed and call count, see xrand). The phase script
// itself is immutable and rebuilt from the profile, so it is not part of
// the checkpoint.
type GenState struct {
	Seq      uint64
	PhIdx    int
	PC       uint64
	LastLd   uint64
	Streams  [4]uint64
	RngCalls uint64
	Counters [][]uint16 // deep copy, one slice per phase
}

// Checkpointer is implemented by generators whose exact position can be
// captured and restored — the mechanism behind checkpointed warmup
// reuse. Restore(Checkpoint()) is an identity: the stream continues
// exactly as it would have without the round trip.
type Checkpointer interface {
	Checkpoint() GenState
	Restore(GenState)
}

// Checkpoint implements Checkpointer with deep-copied counters, so the
// returned state stays valid after the generator advances.
func (g *generator) Checkpoint() GenState {
	s := GenState{
		Seq:      g.seq,
		PhIdx:    g.phIdx,
		PC:       g.pc,
		LastLd:   g.lastLd,
		Streams:  g.streams,
		RngCalls: g.src.Calls(),
		Counters: make([][]uint16, len(g.phases)),
	}
	for i := range g.phases {
		s.Counters[i] = append([]uint16(nil), g.phases[i].counters...)
	}
	return s
}

// Restore implements Checkpointer. The receiver must be a generator of
// the same profile and window the checkpoint was captured from; the
// phase script (a pure function of both) is kept, only mutable state is
// overwritten. The checkpoint is copied from, never aliased, so one
// GenState can seed many generators.
func (g *generator) Restore(s GenState) {
	g.seq = s.Seq
	g.phIdx = s.PhIdx
	g.pc = s.PC
	g.lastLd = s.LastLd
	g.streams = s.Streams
	g.src.Restore(g.prof.Seed^0x5eed, s.RngCalls)
	for i := range g.phases {
		if i < len(s.Counters) {
			copy(g.phases[i].counters, s.Counters[i])
		}
	}
}
