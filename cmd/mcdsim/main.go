// Command mcdsim runs a single benchmark under one controller and
// prints the measurements.
//
// Usage:
//
//	mcdsim -bench mcf -config attack-decay -window 400000 -warmup 200000
//	mcdsim -bench mcf -config pi -params kp=0.08,setpoint=3
//	mcdsim -bench mcf -json          # canonical JSON, as served by mcdserve
//	mcdsim -bench mcf -live          # per-interval telemetry as it is produced
//	mcdsim -bench mcf -live -json    # the mcdserve stream body: NDJSON frames
//
// The -config set is the controller registry (internal/control): the
// paper's five configurations (sync, mcd, attack-decay, dynamic-1,
// dynamic-5) plus every other registered controller (pi, coord,
// dynamic, ...). `mcdserve` advertises the same set with parameter
// schemas at GET /v1/controllers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mcd"
	"mcd/internal/prof"
	"mcd/internal/resultcache"
	"mcd/internal/wire"
)

func main() {
	var (
		benchName = flag.String("bench", "epic.decode", "benchmark name (see mcdbench -exp table5)")
		// The valid set comes from the controller registry via wire, so
		// this listing and the service can never drift.
		config = flag.String("config", "attack-decay",
			"controller: "+strings.Join(wire.Controllers(), " | "))
		params   = flag.String("params", "", "controller parameter overrides, name=value[,name=value...]")
		window   = flag.Uint64("window", 400_000, "measured instructions")
		warmup   = flag.Uint64("warmup", 200_000, "warmup instructions")
		interval = flag.Uint64("interval", 1000, "controller sampling interval (instructions)")
		slew     = flag.Float64("slew", 4.91, "regulator slew in ns/MHz (paper scale: 49.1)")
		fidelity = flag.String("fidelity", "", "simulation tier: exact (default) | sampled (interval sampling with checkpointed warmup reuse)")
		sampleN  = flag.Int("sample-every", 0, "sampled tier's detailed-interval cadence (0: default 10)")
		jsonOut  = flag.Bool("json", false, "emit the canonical machine-readable result encoding")
		live     = flag.Bool("live", false, "print each control interval as it is produced (with -json: NDJSON stream frames)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (written on clean exit)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on clean exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdsim: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "mcdsim: %v\n", err)
		}
	}()

	p, err := wire.ParseParams(*params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdsim: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	// warmup/interval/slew are passed as pointers: the flags always
	// carry explicit values, so -warmup 0 (cold start), -interval 0
	// (pipeline default period) and -slew 0 (ideal regulator) keep
	// their meanings instead of falling back to the wire defaults.
	req := wire.RunRequest{
		Benchmark:    *benchName,
		Config:       *config,
		Params:       p,
		Window:       *window,
		Warmup:       warmup,
		Interval:     interval,
		SlewNsPerMHz: slew,
		Fidelity:     *fidelity,
		SampleEvery:  *sampleN,
	}
	// Reject unknown benchmark/controller/parameter values up front with
	// the valid sets, before any simulation starts.
	if err := req.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "mcdsim: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	var res mcd.Result
	if *live {
		// The run is driven through a stepped session; every measured
		// control interval is printed the moment it is produced. The
		// result bytes are identical to a one-shot run by the session
		// contract.
		enc := json.NewEncoder(os.Stdout)
		emit := func(iv mcd.Interval) {
			if *jsonOut {
				enc.Encode(wire.IntervalFrame(&iv))
				return
			}
			fmt.Printf("interval %4d  ipc %6.3f  freq MHz fe=%.0f int=%.0f fp=%.0f ls=%.0f\n",
				iv.Index, iv.IPC, iv.FreqMHz[mcd.FrontEnd], iv.FreqMHz[mcd.Integer],
				iv.FreqMHz[mcd.FloatingPoint], iv.FreqMHz[mcd.LoadStore])
		}
		body, _, err := req.RunStream(context.Background(), nil, emit)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcdsim: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			enc.Encode(wire.ResultFrame(body, false))
			return
		}
		if res, err = resultcache.DecodeResult(body); err != nil {
			fmt.Fprintf(os.Stderr, "mcdsim: %v\n", err)
			os.Exit(1)
		}
	} else {
		var err error
		res, err = req.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcdsim: %v\n", err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		b, err := resultcache.EncodeResult(res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcdsim: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(b)
		return
	}

	bench, _ := mcd.LookupBenchmark(*benchName)
	fmt.Printf("benchmark    %s (%s)\n", bench.Name, bench.Suite)
	fmt.Printf("config       %s\n", *config)
	fmt.Printf("instructions %d\n", res.Instructions)
	fmt.Printf("time         %.3f µs\n", res.TimePS/1e6)
	fmt.Printf("CPI (1 GHz)  %.4f\n", res.CPI())
	fmt.Printf("energy       %.3f µJ (EPI %.1f pJ)\n", res.EnergyPJ/1e6, res.EPI())
	fmt.Printf("power        %.3f W\n", res.PowerW())
	fmt.Printf("branch acc   %.2f%%   L1D miss %.2f%%   L2 miss %.2f%%\n",
		res.BranchAccuracy*100, res.L1DMissRate*100, res.L2MissRate*100)
	fmt.Printf("avg freq MHz fe=%.0f int=%.0f fp=%.0f ls=%.0f (transitions %d)\n",
		res.AvgFreqMHz[mcd.FrontEnd], res.AvgFreqMHz[mcd.Integer],
		res.AvgFreqMHz[mcd.FloatingPoint], res.AvgFreqMHz[mcd.LoadStore], res.Transitions)
}
