// Package resultcache is the content-addressed deterministic result
// store behind the serving layer (cmd/mcdserve) and the experiment
// harness's cell reuse: every simulation run is a pure function of its
// sim.Spec (DESIGN.md, "Runner determinism"), so a canonical, versioned
// encoding of the spec hashed with SHA-256 addresses a result that is
// byte-identical to a recompute. The store is two-tier — an in-memory
// LRU bounded by byte size over an optional on-disk directory with
// atomic writes — and de-duplicates concurrent identical requests with
// a single-flight table, so a flood of identical submissions costs one
// simulation.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"mcd/internal/clock"
	"mcd/internal/sim"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// specKeyVersion prefixes every canonical spec encoding. Bump it
// whenever the encoding below changes meaning — in particular whenever
// sim.Spec, pipeline.Config, workload.Profile, workload.Phase or
// workload.Mix gain, lose or reinterpret a field — so stale disk
// entries from older binaries can never satisfy a new request. A guard
// test (TestKeyCoversEveryField) counts the fields of each struct and
// fails when one is added without updating the encoder and this
// version. See DESIGN.md, "Serving layer".
//
// v2: the controller registry (internal/control) made controller
// selection and parameters part of the addressed request surface —
// controller key material is now the registry's canonical parameter
// encoding (schema order, resolved defaults) rather than ad-hoc
// per-call construction, so v1 entries written by pre-registry binaries
// must never satisfy registry-era requests.
//
// v3: sim.Spec gained the fidelity tier (Fidelity, SampleEvery). The
// encoding writes a fidelity line unconditionally — normalized so ""
// and "exact" (with any SampleEvery) encode identically, and sampled's
// defaulted cadence encodes as its resolved value — which guarantees
// sampled results can never collide with exact ones, and v2 exact
// entries (which lack the line entirely) can never satisfy v3 requests.
const specKeyVersion = "mcd-spec-v3"

// ErrUncacheable reports a spec whose controller cannot be canonically
// encoded: caching it would require proving two opaque controller
// instances behave identically. Controllers opt in by implementing
// Keyer (AttackDecay and OfflineController do).
var ErrUncacheable = errors.New("resultcache: controller does not implement CacheKey")

// Keyer is implemented by controllers that can describe their complete
// construction parameters as a canonical string. The key must determine
// the controller's behaviour from a fresh instance: two controllers
// with equal keys must produce identical frequency schedules when shown
// identical interval sequences. Stateful controllers satisfy this
// automatically under the runner purity contract (each run constructs
// its own instance).
type Keyer interface {
	CacheKey() string
}

// Float formats a float64 exactly (hexadecimal mantissa/exponent), for
// building canonical key material: every distinct value has one
// spelling and no precision is lost.
func Float(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// SpecKey returns the content address of a run: the SHA-256 of the
// canonical, versioned encoding of every field of the spec. It fails
// with ErrUncacheable when the controller does not implement Keyer.
func SpecKey(s sim.Spec) (string, error) {
	return SpecKeyExtra(s, "")
}

// SpecKeyExtra keys a compound experiment: a deterministic computation
// that is a pure function of a spec plus extra parameters the spec
// cannot express (an off-line schedule search's target, a GlobalMatch
// baseline). The extra string must canonically encode everything beyond
// the spec that determines the result.
func SpecKeyExtra(s sim.Spec, extra string) (string, error) {
	var b strings.Builder
	b.WriteString(specKeyVersion)
	b.WriteByte('\n')

	// pipeline.Config — every field, in declaration order.
	c := s.Config
	fmt.Fprintf(&b, "config|decode=%d|retire=%d|ialu=%d|imul=%d|falu=%d|fmul=%d|mem=%d",
		c.DecodeWidth, c.RetireWidth, c.IntALUs, c.IntMuls, c.FPALUs, c.FPMuls, c.MemPorts)
	fmt.Fprintf(&b, "|iiq=%d|fiq=%d|lsq=%d|rob=%d|iren=%d|fren=%d",
		c.IntIQSize, c.FPIQSize, c.LSQSize, c.ROBSize, c.IntRenameRegs, c.FPRenameRegs)
	fmt.Fprintf(&b, "|ialulat=%d|imullat=%d|falulat=%d|fmullat=%d|fdivlat=%d|l1lat=%d|l2lat=%d|misp=%d|memlat=%s",
		c.IntALULat, c.IntMulLat, c.FPALULat, c.FPMulLat, c.FPDivLat, c.L1Lat, c.L2Lat,
		c.MispredictPenalty, Float(c.MemLatPS))
	fmt.Fprintf(&b, "|maxf=%s|jitter=%s|sync=%s|slew=%s|single=%t|blk=%d|seed=%d\n",
		Float(c.MaxFreqMHz), Float(c.JitterPS), Float(c.SyncWindowPS), Float(c.SlewNsPerMHz),
		c.SingleClock, c.CacheBlockBytes, c.Seed)

	encodeProfile(&b, s.Profile)

	fmt.Fprintf(&b, "run|window=%d|warmup=%d|interval=%d|record=%t|name=%q|init=",
		s.Window, s.Warmup, s.IntervalLength, s.RecordIntervals, s.Name)
	for d := 0; d < clock.NumControllable; d++ {
		if d > 0 {
			b.WriteByte(',')
		}
		b.WriteString(Float(s.InitialFreqMHz[d]))
	}
	b.WriteByte('\n')

	// Fidelity, normalized: exact ignores SampleEvery (encoded as 0) and
	// sampled resolves its default cadence, so every spec spelling of the
	// same computation encodes identically and distinct computations
	// (exact vs any sampled cadence) never share a key.
	mode := s.Fidelity
	if mode == "" {
		mode = sim.FidelityExact
	}
	fmt.Fprintf(&b, "fidelity|mode=%q|sample=%d\n", mode, s.EffectiveSampleEvery())

	switch ctrl := s.Controller.(type) {
	case nil:
		b.WriteString("ctrl|none\n")
	case Keyer:
		fmt.Fprintf(&b, "ctrl|%q\n", ctrl.CacheKey())
	default:
		return "", fmt.Errorf("%w (%T)", ErrUncacheable, s.Controller)
	}

	if extra != "" {
		fmt.Fprintf(&b, "extra|%q\n", extra)
	}

	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:]), nil
}

func encodeProfile(b *strings.Builder, p workload.Profile) {
	fmt.Fprintf(b, "profile|name=%q|loop=%t|loopinstr=%d|seed=%d|phases=%d\n",
		p.Name, p.Loop, p.LoopInstr, p.Seed, len(p.Phases))
	for _, ph := range p.Phases {
		m := ph.Mix
		fmt.Fprintf(b, "phase|frac=%s|ws=%d|stride=%s|chase=%s|code=%d|sites=%d|rand=%s|bias=%d|dep=%s|dep2=%s",
			Float(ph.Frac), ph.WorkingSet, Float(ph.StrideFrac), Float(ph.ChaseFrac),
			ph.CodeBytes, ph.BranchSites, Float(ph.RandomSiteFrac), ph.BiasPeriod,
			Float(ph.DepMean), Float(ph.Dep2Prob))
		fmt.Fprintf(b, "|mix=%s,%s,%s,%s,%s,%s,%s,%s\n",
			Float(m.IntALU), Float(m.IntMul), Float(m.FPAdd), Float(m.FPMul),
			Float(m.FPDiv), Float(m.Load), Float(m.Store), Float(m.Branch))
	}
}

// EncodeResult renders a Result in the store's canonical byte encoding:
// compact JSON with a trailing newline. encoding/json is deterministic
// for a fixed struct (fields in declaration order, shortest
// round-tripping float spelling), so equal results always encode to
// equal bytes and the encoding round-trips exactly — the property the
// byte-identity guarantee rests on.
func EncodeResult(r stats.Result) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("resultcache: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeResult parses the canonical encoding.
func DecodeResult(b []byte) (stats.Result, error) {
	var r stats.Result
	if err := json.Unmarshal(b, &r); err != nil {
		return stats.Result{}, fmt.Errorf("resultcache: decode: %w", err)
	}
	return r, nil
}
