package pipeline

import (
	"math"
	"testing"

	"mcd/internal/clock"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

func intProfile(seed int64) workload.Profile {
	return workload.Profile{
		Name: "int-test", Seed: seed,
		Phases: []workload.Phase{{
			Mix:        workload.Mix{IntALU: 0.55, IntMul: 0.03, Load: 0.2, Store: 0.08, Branch: 0.14},
			WorkingSet: 32 << 10, StrideFrac: 0.9,
		}},
	}
}

func fpProfile(seed int64) workload.Profile {
	return workload.Profile{
		Name: "fp-test", Seed: seed,
		Phases: []workload.Phase{{
			Mix: workload.Mix{IntALU: 0.3, FPAdd: 0.22, FPMul: 0.13, FPDiv: 0.02,
				Load: 0.2, Store: 0.08, Branch: 0.05},
			WorkingSet: 64 << 10, StrideFrac: 0.9,
		}},
	}
}

func run(t *testing.T, prof workload.Profile, cfg Config, opts RunOptions) stats.Result {
	t.Helper()
	if opts.Window == 0 {
		opts.Window = 60_000
	}
	gen := prof.NewGenerator(opts.Window)
	return New(cfg, gen).Run(opts)
}

func TestBaselineRunSanity(t *testing.T) {
	res := run(t, intProfile(1), DefaultConfig(), RunOptions{ConfigName: "mcd-max"})
	if res.Instructions != 60_000 {
		t.Fatalf("retired %d, want 60000", res.Instructions)
	}
	if cpi := res.CPI(); cpi < 0.3 || cpi > 3.0 {
		t.Errorf("CPI = %v, want a plausible superscalar value", cpi)
	}
	if res.EnergyPJ <= 0 || res.TimePS <= 0 {
		t.Error("no energy or time accumulated")
	}
	if res.BranchAccuracy < 0.8 {
		t.Errorf("branch accuracy = %v, want > 0.8 for a predictable workload", res.BranchAccuracy)
	}
	if res.AvgFreqMHz[clock.Integer] < 990 {
		t.Errorf("integer domain avg freq = %v, want ~1000 (no controller)", res.AvgFreqMHz[clock.Integer])
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := run(t, intProfile(7), DefaultConfig(), RunOptions{Window: 30_000})
	b := run(t, intProfile(7), DefaultConfig(), RunOptions{Window: 30_000})
	if a.TimePS != b.TimePS || a.EnergyPJ != b.EnergyPJ {
		t.Errorf("runs differ: (%v,%v) vs (%v,%v)", a.TimePS, a.EnergyPJ, b.TimePS, b.EnergyPJ)
	}
}

func TestMCDInherentDegradationSmall(t *testing.T) {
	// The paper puts the inherent MCD degradation (all domains at max)
	// below ~2-4% versus the fully synchronous core.
	cfg := DefaultConfig()
	mcd := run(t, intProfile(3), cfg, RunOptions{Window: 80_000, ConfigName: "mcd"})
	cfg.SingleClock = true
	syn := run(t, intProfile(3), cfg, RunOptions{Window: 80_000, ConfigName: "sync"})
	deg := mcd.TimePS/syn.TimePS - 1
	if deg < -0.01 {
		t.Errorf("MCD faster than synchronous by %v; sync penalties missing?", -deg)
	}
	if deg > 0.06 {
		t.Errorf("inherent MCD degradation = %v, want < 6%%", deg)
	}
	// The MCD clock-energy overhead must show up (paper: ~2.9% total).
	if mcd.EnergyPJ <= syn.EnergyPJ {
		t.Error("MCD run should consume more energy than synchronous at max frequencies")
	}
}

func TestFPDomainSlowingHarmlessOnIntegerCode(t *testing.T) {
	cfg := DefaultConfig()
	base := run(t, intProfile(5), cfg, RunOptions{Window: 60_000})
	slow := run(t, intProfile(5), cfg, RunOptions{
		Window:         60_000,
		InitialFreqMHz: [clock.NumControllable]float64{0, 0, 250, 0},
	})
	deg := slow.TimePS/base.TimePS - 1
	if math.Abs(deg) > 0.02 {
		t.Errorf("FP domain at 250 MHz degraded integer code by %v", deg)
	}
	if slow.EnergyPJ >= base.EnergyPJ {
		t.Error("slowing the idle FP domain should save energy")
	}
}

func TestIntDomainSlowingHurtsComputeBoundCode(t *testing.T) {
	cfg := DefaultConfig()
	base := run(t, intProfile(9), cfg, RunOptions{Window: 60_000})
	slow := run(t, intProfile(9), cfg, RunOptions{
		Window:         60_000,
		InitialFreqMHz: [clock.NumControllable]float64{0, 250, 0, 0},
	})
	deg := slow.TimePS/base.TimePS - 1
	if deg < 0.5 {
		t.Errorf("integer domain at 250 MHz degraded compute-bound code by only %v", deg)
	}
}

func TestFPWorkloadUsesFPDomain(t *testing.T) {
	res := run(t, fpProfile(11), DefaultConfig(), RunOptions{Window: 60_000})
	if res.DomainEnergyPJ[clock.FloatingPoint] <= 0 {
		t.Fatal("FP workload consumed no FP-domain energy")
	}
	intRes := run(t, intProfile(11), DefaultConfig(), RunOptions{Window: 60_000})
	fpShareFP := res.DomainEnergyPJ[clock.FloatingPoint] / res.EnergyPJ
	fpShareInt := intRes.DomainEnergyPJ[clock.FloatingPoint] / intRes.EnergyPJ
	if fpShareFP < 2*fpShareInt {
		t.Errorf("FP-domain energy share: fp code %v vs int code %v; want clear separation", fpShareFP, fpShareInt)
	}
}

func TestIntervalRecordsEmitted(t *testing.T) {
	res := run(t, intProfile(13), DefaultConfig(), RunOptions{
		Window: 60_000, RecordIntervals: true,
	})
	if len(res.Intervals) != 6 {
		t.Fatalf("got %d interval records for 60k instructions, want 6", len(res.Intervals))
	}
	for i, iv := range res.Intervals {
		if iv.Index != i || iv.Instructions != 10_000 {
			t.Errorf("interval %d malformed: %+v", i, iv)
		}
		if iv.IPC <= 0 {
			t.Errorf("interval %d has non-positive IPC", i)
		}
		if iv.QueueUtil[clock.Integer] <= 0 {
			t.Errorf("interval %d: integer queue utilization is zero", i)
		}
		if iv.QueueUtil[clock.FloatingPoint] != 0 {
			t.Errorf("interval %d: FP queue utilization %v on integer-only code", i, iv.QueueUtil[clock.FloatingPoint])
		}
	}
}

// controllerFunc adapts a function to the Controller interface.
type controllerFunc struct {
	name string
	fn   func(IntervalView) [clock.NumControllable]float64
}

func (c controllerFunc) Name() string { return c.name }
func (c controllerFunc) Observe(iv IntervalView) [clock.NumControllable]float64 {
	return c.fn(iv)
}

func TestControllerRetargetsFrequency(t *testing.T) {
	// A controller that pins the FP domain to 250 MHz from the first
	// interval: the run must end with the FP regulator near 250.
	ctrl := controllerFunc{name: "pin-fp", fn: func(iv IntervalView) [clock.NumControllable]float64 {
		return [clock.NumControllable]float64{0, 0, 250, 0}
	}}
	res := run(t, intProfile(17), DefaultConfig(), RunOptions{
		Window: 120_000, Controller: ctrl, RecordIntervals: true,
	})
	last := res.Intervals[len(res.Intervals)-1]
	if last.FreqMHz[clock.FloatingPoint] != 250 {
		t.Errorf("FP target after control = %v, want 250", last.FreqMHz[clock.FloatingPoint])
	}
	if res.AvgFreqMHz[clock.FloatingPoint] > 900 {
		t.Errorf("FP avg frequency = %v; regulator seems not to slew", res.AvgFreqMHz[clock.FloatingPoint])
	}
	if res.Transitions == 0 {
		t.Error("no PLL transitions recorded")
	}
}

func TestSlowedDomainQueueBacksUp(t *testing.T) {
	// Running the FP domain at 250 MHz under FP-heavy code must raise
	// FP queue utilization versus the max-frequency run.
	cfg := DefaultConfig()
	base := run(t, fpProfile(19), cfg, RunOptions{Window: 60_000, RecordIntervals: true})
	slow := run(t, fpProfile(19), cfg, RunOptions{
		Window: 60_000, RecordIntervals: true,
		InitialFreqMHz: [clock.NumControllable]float64{0, 0, 250, 0},
	})
	var ubase, uslow float64
	for _, iv := range base.Intervals {
		ubase += iv.QueueAvg[clock.FloatingPoint]
	}
	for _, iv := range slow.Intervals {
		uslow += iv.QueueAvg[clock.FloatingPoint]
	}
	ubase /= float64(len(base.Intervals))
	uslow /= float64(len(slow.Intervals))
	if uslow <= ubase {
		t.Errorf("FP queue occupancy did not rise when FP domain slowed: base %v, slow %v", ubase, uslow)
	}
}

func TestMemoryBoundCodeToleratesIntSlowdown(t *testing.T) {
	memProf := workload.Profile{
		Name: "mem-test", Seed: 23,
		Phases: []workload.Phase{{
			Mix:        workload.Mix{IntALU: 0.35, Load: 0.35, Store: 0.08, Branch: 0.22},
			WorkingSet: 16 << 20, StrideFrac: 0.1, ChaseFrac: 0.6, DepMean: 3,
			RandomSiteFrac: 0.2,
		}},
	}
	cfg := DefaultConfig()
	base := run(t, memProf, cfg, RunOptions{Window: 40_000})
	slow := run(t, memProf, cfg, RunOptions{
		Window:         40_000,
		InitialFreqMHz: [clock.NumControllable]float64{0, 600, 0, 0},
	})
	deg := slow.TimePS/base.TimePS - 1
	if deg > 0.25 {
		t.Errorf("memory-bound code degraded %v at 600 MHz integer domain; expected slack", deg)
	}
	if base.L2MissRate < 0.1 {
		t.Errorf("memory-bound profile L2 miss rate = %v; working set too small?", base.L2MissRate)
	}
}

func TestShortWorkloadEndsCleanly(t *testing.T) {
	res := run(t, intProfile(29), DefaultConfig(), RunOptions{Window: 500})
	if res.Instructions != 500 {
		t.Errorf("retired %d, want 500", res.Instructions)
	}
}
