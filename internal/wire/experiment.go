package wire

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"mcd/internal/bench"
	"mcd/internal/control"
	"mcd/internal/sim"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// Experiment names accepted by ExperimentRequest.Name.
const (
	ExpTable6         = "table6"
	ExpFig4           = "fig4"
	ExpHeadline       = "headline"
	ExpAll            = "all"
	ExpSweepTarget    = "sweep-target"
	ExpSweepDecay     = "sweep-decay"
	ExpSweepReaction  = "sweep-reaction"
	ExpSweepDeviation = "sweep-deviation"
	// ExpSweepController is the registry-generic sensitivity sweep: any
	// registered controller, any numeric schema parameter (see
	// ExperimentRequest.Controller/Param/Values).
	ExpSweepController = "sweep-controller"
)

// Experiments returns the valid experiment names, sorted.
func Experiments() []string {
	e := []string{ExpTable6, ExpFig4, ExpHeadline, ExpAll,
		ExpSweepTarget, ExpSweepDecay, ExpSweepReaction, ExpSweepDeviation,
		ExpSweepController}
	sort.Strings(e)
	return e
}

// ExperimentRequest names a whole table, figure or sweep: the JSON body
// of POST /v1/experiments and the programmatic form of cmd/mcdbench and
// cmd/mcdsweep invocations.
type ExperimentRequest struct {
	Name string `json:"name"`
	// Quick selects the reduced scale (bench.QuickOptions).
	Quick bool `json:"quick,omitempty"`
	// Window/Warmup override the scale's instruction counts.
	Window uint64 `json:"window,omitempty"`
	Warmup uint64 `json:"warmup,omitempty"`
	// Benchmarks filters the catalog by name; empty means the scale's
	// default set.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Fidelity selects the simulation tier for every cell of the
	// experiment ("" or "exact": the cycle-exact engine; "sampled":
	// interval sampling with checkpointed warmup reuse). SampleEvery is
	// the sampled tier's detailed-interval cadence (0: the default, 10).
	Fidelity    string `json:"fidelity,omitempty"`
	SampleEvery int    `json:"sample_every,omitempty"`

	// Values overrides the swept x-axis values of any sweep-*
	// experiment; empty keeps the figure's published set, or — for
	// sweep-controller — samples the parameter's documented range.
	Values []float64 `json:"values,omitempty"`
	// Controller and Param select the registered controller and the
	// schema parameter a sweep-controller experiment sweeps, and Params
	// fixes its remaining parameters. Ignored by the other experiments.
	Controller string             `json:"controller,omitempty"`
	Param      string             `json:"param,omitempty"`
	Params     map[string]float64 `json:"params,omitempty"`
}

// Validate checks the experiment name and the benchmark filter — an
// unknown benchmark would otherwise be silently filtered out of the
// grid and the experiment would "succeed" over an empty catalog.
func (e ExperimentRequest) Validate() error {
	known := false
	for _, n := range Experiments() {
		if n == e.Name {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q (valid: %s)", e.Name, strings.Join(Experiments(), ", "))
	}
	for _, b := range e.Benchmarks {
		if _, ok := workload.Lookup(b); !ok {
			return fmt.Errorf("unknown benchmark %q (see mcdbench -exp table5 for the catalog)", b)
		}
	}
	if _, err := sim.ParseFidelity(e.Fidelity); err != nil {
		return err
	}
	if e.Name == ExpSweepController {
		if e.Controller == "" || e.Param == "" {
			return fmt.Errorf("experiment %q needs controller and param", ExpSweepController)
		}
		// Resolving with the swept parameter included validates the
		// controller name, the fixed overrides and the swept name against
		// the registry (rejecting alias-pinned parameters) with the same
		// error wording a run request would get.
		probe := control.Params{e.Param: 0}
		for k, v := range e.Params {
			probe[k] = v
		}
		if _, err := control.Resolve(e.Controller, probe); err != nil {
			return err
		}
	}
	return nil
}

// Options maps the request onto harness options the same way the
// mcdbench flags do. Cache, Workers, Progress and Context are the
// caller's to set on the returned value.
func (e ExperimentRequest) Options() bench.Options {
	opts := bench.DefaultOptions()
	if e.Quick {
		opts = bench.QuickOptions()
	}
	if e.Window != 0 {
		opts.Window = e.Window
	}
	if e.Warmup != 0 {
		opts.Warmup = e.Warmup
	}
	if len(e.Benchmarks) != 0 {
		opts.Benchmarks = e.Benchmarks
	}
	if fid, err := sim.ParseFidelity(e.Fidelity); err == nil {
		opts.Fidelity = fid
	}
	opts.SampleEvery = e.SampleEvery
	return opts
}

// Comparison is the machine-readable form of one Table 6 / Figure 4
// row: every configuration's Result for one benchmark.
type Comparison struct {
	Benchmark string       `json:"benchmark"`
	Suite     string       `json:"suite"`
	Sync      stats.Result `json:"sync"`
	MCDBase   stats.Result `json:"mcd_base"`
	AD        stats.Result `json:"attack_decay"`
	Dyn1      stats.Result `json:"dynamic_1"`
	Dyn5      stats.Result `json:"dynamic_5"`
	GlobalAD  stats.Result `json:"global_attack_decay"`
	GlobalD1  stats.Result `json:"global_dynamic_1"`
	GlobalD5  stats.Result `json:"global_dynamic_5"`
}

// ExperimentResult is what the service serves for a finished experiment
// job and what mcdbench/mcdsweep -json print: the human-readable table
// text plus the structured series behind it.
type ExperimentResult struct {
	Experiment  string             `json:"experiment"`
	Output      string             `json:"output"`
	Comparisons []Comparison       `json:"comparisons,omitempty"`
	Sweep       []bench.SweepPoint `json:"sweep,omitempty"`
}

// EncodeExperiment renders the canonical bytes of an experiment result
// (compact JSON, trailing newline — the same convention as result
// encodings).
func EncodeExperiment(r ExperimentResult) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("wire: encode experiment: %w", err)
	}
	return append(b, '\n'), nil
}

// FromComparisons assembles the result of a grid experiment that has
// already run, so one RunAll can feed several renderings (mcdbench
// -exp all). ExpAll's output includes the static tables 1–5 followed by
// the measured artifacts — exactly what the text CLI prints, so text
// and JSON modes carry the same content.
func FromComparisons(name string, cs []bench.Comparison) ExperimentResult {
	out := ""
	switch name {
	case ExpTable6:
		out = bench.Table6(cs)
	case ExpFig4:
		out = bench.Fig4(cs)
	case ExpHeadline:
		out = bench.Headline(cs)
	case ExpAll:
		for _, static := range []func() string{
			bench.Table1, bench.Table2, bench.Table3, bench.Table4, bench.Table5,
		} {
			out += static() + "\n"
		}
		out += bench.Table6(cs) + "\n" + bench.Fig4(cs) + "\n" + bench.Headline(cs)
	}
	res := ExperimentResult{Experiment: name, Output: out, Comparisons: make([]Comparison, len(cs))}
	for i, c := range cs {
		res.Comparisons[i] = Comparison{
			Benchmark: c.Bench.Name, Suite: c.Bench.Suite,
			Sync: c.Sync, MCDBase: c.MCDBase, AD: c.AD, Dyn1: c.Dyn1, Dyn5: c.Dyn5,
			GlobalAD: c.GlobalAD, GlobalD1: c.GlobalD1, GlobalD5: c.GlobalD5,
		}
	}
	return res
}

// sweepSpec maps each sweep experiment to its runner and the exact
// title/xlabel cmd/mcdsweep prints, so CLI and service output agree.
// Each runner takes the request's explicit values (nil: the figure's
// published set).
var sweepSpec = map[string]struct {
	title, xlabel string
	run           func(bench.Options, []float64) []bench.SweepPoint
}{
	ExpSweepTarget: {
		"Figure 5: performance degradation target (1.000_06.0_1.250_X.X)", "target",
		func(o bench.Options, v []float64) []bench.SweepPoint { return o.SweepTarget(v) },
	},
	ExpSweepDecay: {
		"Figures 6a/7a: Decay sensitivity (1.500_04.0_X.XXX_3.0)", "decay",
		func(o bench.Options, v []float64) []bench.SweepPoint { return o.SweepDecay(v) },
	},
	ExpSweepReaction: {
		"Figures 6b/7b: ReactionChange sensitivity (1.500_XX.X_0.750_3.0)", "reaction",
		func(o bench.Options, v []float64) []bench.SweepPoint { return o.SweepReaction(v) },
	},
	ExpSweepDeviation: {
		"Figures 6c/7c: DeviationThreshold sensitivity (X.XXX_06.0_0.175_2.5)", "deviation",
		func(o bench.Options, v []float64) []bench.SweepPoint { return o.SweepDeviation(v) },
	},
}

// RunExperiment executes a named experiment on the given harness
// options. Grid experiments (table6/fig4/headline/all) run the Table 6
// comparison matrix; sweep-* run the corresponding sensitivity sweep.
// Experiments that carry request fields beyond the name
// (sweep-controller) go through RunExperimentRequest.
func RunExperiment(opts bench.Options, name string) (ExperimentResult, error) {
	return RunExperimentRequest(opts, ExperimentRequest{Name: name})
}

// RunExperimentRequest executes an experiment request on the given
// harness options — the one execution path shared by the CLIs and the
// service, so both render byte-identical bodies.
func RunExperimentRequest(opts bench.Options, e ExperimentRequest) (ExperimentResult, error) {
	if err := e.Validate(); err != nil {
		return ExperimentResult{}, err
	}
	if e.Name == ExpSweepController {
		pts, err := opts.SweepController(e.Controller, e.Param, e.Values, e.Params)
		if err != nil {
			return ExperimentResult{}, err
		}
		title := fmt.Sprintf("Sensitivity: controller %s, parameter %s", e.Controller, e.Param)
		return ExperimentResult{
			Experiment: e.Name,
			Output:     bench.FormatControllerSweep(title, e.Param, pts),
			Sweep:      pts,
		}, nil
	}
	if s, ok := sweepSpec[e.Name]; ok {
		pts := s.run(opts, e.Values)
		return ExperimentResult{
			Experiment: e.Name,
			Output:     bench.FormatSweep(s.title, s.xlabel, pts),
			Sweep:      pts,
		}, nil
	}
	return FromComparisons(e.Name, opts.RunAll()), nil
}
