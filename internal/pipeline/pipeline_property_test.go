package pipeline

import (
	"testing"
	"testing/quick"

	"mcd/internal/clock"
	"mcd/internal/workload"
)

// Property: for any mix and any legal fixed domain frequencies, a run (a)
// retires exactly the requested window, (b) reports strictly positive time
// and energy, (c) never exceeds the maximum total power envelope implied
// by running every structure at Vmax every cycle.
func TestRunInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation property test")
	}
	f := func(seed int64, fsel [4]uint8, mixSel uint8) bool {
		prof := workload.Profile{
			Name: "prop", Seed: seed,
			Phases: []workload.Phase{{
				Mix: workload.Mix{
					IntALU: 0.4,
					FPAdd:  float64(mixSel%3) * 0.1,
					Load:   0.25,
					Store:  0.1,
					Branch: 0.15,
				},
				WorkingSet: 128 << 10,
			}},
		}
		cfg := DefaultConfig()
		cfg.Seed = seed
		var init [clock.NumControllable]float64
		for d := 1; d < clock.NumControllable; d++ { // front end stays at max
			init[d] = 250 + float64(fsel[d])/255*750
		}
		gen := prof.NewGenerator(20_000)
		res := New(cfg, gen).Run(RunOptions{Window: 20_000, InitialFreqMHz: init})
		if res.Instructions != 20_000 {
			return false
		}
		if res.TimePS <= 0 || res.EnergyPJ <= 0 {
			return false
		}
		// Average power sanity: the chip cannot draw more than a loose
		// upper bound (every unit active at Vnom every ns).
		return res.PowerW() < 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: lowering any single domain's frequency never reduces execution
// time (performance is monotone in domain frequency for a fixed workload).
func TestFrequencyMonotonicityProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation property test")
	}
	prof := workload.Profile{
		Name: "mono", Seed: 99,
		Phases: []workload.Phase{{
			Mix:        workload.Mix{IntALU: 0.35, FPAdd: 0.15, Load: 0.25, Store: 0.1, Branch: 0.15},
			WorkingSet: 256 << 10,
		}},
	}
	cfg := DefaultConfig()
	base := New(cfg, prof.NewGenerator(30_000)).Run(RunOptions{Window: 30_000})
	for _, d := range []clock.Domain{clock.Integer, clock.FloatingPoint, clock.LoadStore} {
		var init [clock.NumControllable]float64
		init[d] = 500
		slow := New(cfg, prof.NewGenerator(30_000)).Run(RunOptions{Window: 30_000, InitialFreqMHz: init})
		// Allow jitter-level noise (0.5%) but no systematic speedup.
		if slow.TimePS < base.TimePS*0.995 {
			t.Errorf("slowing %v sped execution up: %v -> %v ps", d, base.TimePS, slow.TimePS)
		}
	}
}

// Property: the energy accounting is internally consistent — domain
// energies sum to the total, and every domain with activity reports
// positive energy.
func TestEnergyAccountingProperty(t *testing.T) {
	prof := workload.Profile{
		Name: "energy", Seed: 5,
		Phases: []workload.Phase{{
			Mix: workload.Mix{IntALU: 0.4, FPMul: 0.1, Load: 0.25, Store: 0.1, Branch: 0.15},
		}},
	}
	res := New(DefaultConfig(), prof.NewGenerator(25_000)).Run(RunOptions{Window: 25_000})
	var sum float64
	for d := clock.Domain(0); d < clock.NumDomains; d++ {
		sum += res.DomainEnergyPJ[d]
	}
	if diff := sum - res.EnergyPJ; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("domain energies sum to %v, total %v", sum, res.EnergyPJ)
	}
	for _, d := range []clock.Domain{clock.FrontEnd, clock.Integer, clock.FloatingPoint, clock.LoadStore} {
		if res.DomainEnergyPJ[d] <= 0 {
			t.Errorf("domain %v reports no energy", d)
		}
	}
	if res.DomainEnergyPJ[clock.Memory] != 0 {
		t.Errorf("external memory domain should carry no modeled energy, got %v", res.DomainEnergyPJ[clock.Memory])
	}
}

// Warmup must not change the measured instruction count and must reduce
// the apparent cold-start CPI.
func TestWarmupSemantics(t *testing.T) {
	b, _ := workload.Lookup("gcc")
	cfg := DefaultConfig()
	cold := New(cfg, b.Profile.NewGenerator(40_000)).Run(RunOptions{Window: 40_000})
	gen := b.Profile.NewGenerator(240_000)
	warm := New(cfg, gen).Run(RunOptions{Window: 40_000, Warmup: 200_000})
	if warm.Instructions != 40_000 {
		t.Fatalf("measured %d instructions, want 40000", warm.Instructions)
	}
	if warm.CPI() >= cold.CPI() {
		t.Errorf("warmed CPI %v not better than cold CPI %v", warm.CPI(), cold.CPI())
	}
}
