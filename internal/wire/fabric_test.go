package wire_test

import (
	"context"
	"sync"
	"testing"

	"mcd/internal/bench"
	"mcd/internal/wire"
)

// TestCellRequestSharesAddress is the fabric's addressing pin: every
// cell the harness dispatches converts (CellRequest) into a RunRequest
// whose content address equals the key the harness computed itself, so
// a worker-computed cell lands in the shared store under the exact key
// every other execution path probes. The grid runs once with the Exec
// hook dispatching to a local executor and once without; the rendered
// table must not notice.
func TestCellRequestSharesAddress(t *testing.T) {
	grid := func() bench.Options {
		o := bench.DefaultOptions()
		o.Window = 6_000
		o.Warmup = 3_000
		o.IntervalLength = 500
		o.OfflineIters = 2
		o.Workers = 4
		o.Benchmarks = []string{"adpcm", "mcf"}
		return o
	}
	local := grid()
	want := bench.Table6(local.RunAll())

	var mu sync.Mutex
	cells := 0
	hooked := grid()
	hooked.Exec = wire.ExecAdapter(func(ctx context.Context, key string, req wire.RunRequest) ([]byte, error) {
		mu.Lock()
		cells++
		mu.Unlock()
		body, _, err := req.RunStreamHooked(ctx, nil, wire.RunHooks{})
		return body, err
	})
	got := bench.Table6(hooked.RunAll())

	if got != want {
		t.Fatalf("dispatched grid renders differently:\n got:\n%s\nwant:\n%s", got, want)
	}
	if cells == 0 {
		t.Fatal("Exec hook never fired — the grid bypassed dispatch")
	}
}
