package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigGeometry(t *testing.T) {
	cfg := Config{SizeBytes: 64 << 10, BlockBytes: 64, Assoc: 2}
	if cfg.Lines() != 1024 {
		t.Errorf("lines = %d, want 1024", cfg.Lines())
	}
	if cfg.Sets() != 512 {
		t.Errorf("sets = %d, want 512", cfg.Sets())
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, BlockBytes: 64, Assoc: 1},
		{SizeBytes: 3000, BlockBytes: 64, Assoc: 1},
		{SizeBytes: 1 << 10, BlockBytes: 48, Assoc: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 10, BlockBytes: 64, Assoc: 2})
	if c.Access(0x100) {
		t.Error("cold access must miss")
	}
	if !c.Access(0x100) {
		t.Error("second access must hit")
	}
	// Same block, different offset: hit.
	if !c.Access(0x100 + 63) {
		t.Error("same-block access must hit")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 3 accesses / 1 miss", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way cache with 2 sets; three blocks in set 0.
	c := New(Config{SizeBytes: 256, BlockBytes: 64, Assoc: 2})
	sets := uint64(c.Config().Sets())
	a, b, d := uint64(0), 64*sets, 2*64*sets
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is MRU
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Error("a should survive (MRU)")
	}
	if c.Probe(b) {
		t.Error("b should have been evicted (LRU)")
	}
	if !c.Probe(d) {
		t.Error("d should be resident")
	}
}

func TestProbeDoesNotAllocate(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 10, BlockBytes: 64, Assoc: 2})
	if c.Probe(0x40) {
		t.Error("probe hit on empty cache")
	}
	if c.Stats().Accesses != 0 {
		t.Error("probe must not count as access")
	}
	if c.Access(0x40) {
		t.Error("probe must not have allocated")
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 20, BlockBytes: 64, Assoc: 1})
	sets := uint64(c.Config().Sets())
	a := uint64(0x40)
	b := a + 64*sets // same set, different tag
	c.Access(a)
	c.Access(b)
	if c.Access(a) {
		t.Error("direct-mapped conflict should have evicted a")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := DefaultHierarchy()
	lvl, l2 := h.Data(0x1000)
	if lvl != Mem || !l2 {
		t.Errorf("cold access = (%v,%v), want (memory,true)", lvl, l2)
	}
	lvl, l2 = h.Data(0x1000)
	if lvl != L1 || l2 {
		t.Errorf("warm access = (%v,%v), want (L1,false)", lvl, l2)
	}
	// Evict from L1 but not L2: walk addresses mapping to the same L1 set.
	sets := uint64(h.L1D.Config().Sets())
	for i := uint64(1); i <= 2; i++ {
		h.Data(0x1000 + i*64*sets)
	}
	lvl, l2 = h.Data(0x1000)
	if lvl != L2 || !l2 {
		t.Errorf("L1-evicted access = (%v,%v), want (L2,true)", lvl, l2)
	}
	if L1.String() != "L1" || L2.String() != "L2" || Mem.String() != "memory" {
		t.Error("level names wrong")
	}
}

func TestInstAndDataAreIndependent(t *testing.T) {
	h := DefaultHierarchy()
	h.Inst(0x2000)
	if lvl, _ := h.Data(0x2000); lvl == L1 {
		t.Error("data access must not hit in L1I")
	}
	// But both share L2.
	if lvl, _ := h.Inst(0x2000); lvl != L1 {
		t.Errorf("re-fetch = %v, want L1", lvl)
	}
}

func TestWorkingSetMissRates(t *testing.T) {
	// A working set fitting in L1 should have ~0 steady-state misses; one
	// fitting only in L2 should miss in L1 but hit in L2.
	h := DefaultHierarchy()
	rng := rand.New(rand.NewSource(5))
	small := uint64(32 << 10)
	for i := 0; i < 50000; i++ {
		h.Data(uint64(rng.Int63()) % small)
	}
	if mr := h.L1D.Stats().MissRate(); mr > 0.05 {
		t.Errorf("L1-resident working set miss rate = %v, want < 0.05", mr)
	}
}

// Property: accesses never decrease and misses <= accesses.
func TestStatsInvariantProperty(t *testing.T) {
	c := New(Config{SizeBytes: 4 << 10, BlockBytes: 64, Assoc: 2})
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			c.Access(uint64(a))
			s := c.Stats()
			if s.Misses > s.Accesses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
