package workload

import "testing"

// Distinct benchmarks must produce distinct dynamic behaviour: compare
// class histograms pairwise for a few representatives.
func TestBenchmarksAreDistinguishable(t *testing.T) {
	names := []string{"adpcm", "mcf", "swim", "ghostscript"}
	hist := map[string][NumClasses]float64{}
	for _, n := range names {
		b, ok := Lookup(n)
		if !ok {
			t.Fatalf("%s missing", n)
		}
		g := b.Profile.NewGenerator(20_000)
		var in Instr
		var h [NumClasses]float64
		for g.Next(&in) {
			h[in.Class] += 1.0 / 20000
		}
		hist[n] = h
	}
	for i, a := range names {
		for _, b := range names[i+1:] {
			var dist float64
			ha, hb := hist[a], hist[b]
			for c := 0; c < int(NumClasses); c++ {
				d := ha[c] - hb[c]
				dist += d * d
			}
			if dist < 1e-4 {
				t.Errorf("%s and %s have nearly identical mixes (dist %v)", a, b, dist)
			}
		}
	}
}

// The memory-bound profiles must present much larger effective working
// sets than the cache-resident media kernels.
func TestWorkingSetSpread(t *testing.T) {
	small, _ := Lookup("g721")
	large, _ := Lookup("mcf")
	touch := func(b Benchmark) map[uint64]bool {
		g := b.Profile.NewGenerator(30_000)
		blocks := map[uint64]bool{}
		var in Instr
		for g.Next(&in) {
			if in.Class.Memory() {
				blocks[in.Addr>>6] = true
			}
		}
		return blocks
	}
	s, l := len(touch(small)), len(touch(large))
	if l < 4*s {
		t.Errorf("mcf touched %d blocks vs g721 %d; memory-bound profile not distinct", l, s)
	}
}

// EpicDecodeProfile must be reproducible across invocations (the Figure
// 2/3 experiments depend on it).
func TestEpicDecodeProfileStable(t *testing.T) {
	g1 := EpicDecodeProfile().NewGenerator(5_000)
	g2 := EpicDecodeProfile().NewGenerator(5_000)
	var a, b Instr
	for g1.Next(&a) {
		if !g2.Next(&b) || a != b {
			t.Fatalf("divergence at seq %d: %+v vs %+v", a.Seq, a, b)
		}
	}
}

func TestMixFPFraction(t *testing.T) {
	m := Mix{IntALU: 0.5, FPAdd: 0.25, FPMul: 0.25}
	if f := m.FPFraction(); f != 0.5 {
		t.Errorf("FPFraction = %v, want 0.5", f)
	}
	var zero Mix
	if f := zero.FPFraction(); f != 0 {
		t.Errorf("zero mix FPFraction = %v", f)
	}
}
