package bench

import (
	"fmt"
	"strings"

	"mcd/internal/clock"
	"mcd/internal/core"
	"mcd/internal/dvfs"
	"mcd/internal/hw"
	"mcd/internal/pipeline"
	"mcd/internal/resultcache"
	"mcd/internal/runner"
	"mcd/internal/sim"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// Table1 prints the MCD processor configuration parameters.
func Table1() string {
	cfg := pipeline.DefaultConfig()
	s := "Table 1: MCD processor configuration parameters\n"
	s += fmt.Sprintf("  %-28s %.2f V - %.2f V\n", "Domain Voltage", dvfs.DefaultMinVoltage, dvfs.DefaultMaxVoltage)
	s += fmt.Sprintf("  %-28s %d MHz - %d MHz (%d points)\n", "Domain Frequency",
		dvfs.DefaultMinFreqMHz, dvfs.DefaultMaxFreqMHz, dvfs.DefaultPoints)
	s += fmt.Sprintf("  %-28s %.1f ns/MHz\n", "Frequency Change Rate", dvfs.DefaultSlewNsPerMHz)
	s += fmt.Sprintf("  %-28s %.0f ps, normally distributed about zero\n", "Domain Clock Jitter", cfg.JitterPS)
	s += fmt.Sprintf("  %-28s %.0f%% of 1.0 GHz clock (%.0f ps)\n", "Synchronization Window",
		cfg.SyncWindowPS/clock.PeriodPS(cfg.MaxFreqMHz)*100, cfg.SyncWindowPS)
	return s
}

// Table2 prints the Attack/Decay configuration parameter ranges.
func Table2() string {
	s := "Table 2: Attack/Decay configuration parameters\n"
	rows := [][2]string{
		{"DeviationThreshold", "0 - 2.5%"},
		{"ReactionChange", "0.5 - 15.5%"},
		{"Decay", "0 - 2%"},
		{"PerfDegThreshold", "0 - 12%"},
		{"EndstopCount", "1 - 25 intervals"},
	}
	for _, r := range rows {
		s += fmt.Sprintf("  %-22s %s\n", r[0], r[1])
	}
	p := core.DefaultParams()
	s += fmt.Sprintf("  headline configuration: %s (EndstopCount %d)\n", p.Label(), p.EndstopCount)
	return s
}

// Table3 prints the gate-count estimates.
func Table3() string {
	s := "Table 3: hardware resources to implement the Attack/Decay algorithm\n"
	s += fmt.Sprintf("  %-44s %-42s %6s\n", "Component", "Estimation", "Gates")
	for _, c := range hw.Components() {
		s += fmt.Sprintf("  %-44s %-42s %6d\n", c.Name, c.Estimation, c.Gates())
	}
	s += fmt.Sprintf("  per controlled domain: %d gates; four-domain total (with interval counter): %d gates (< 2,500)\n",
		hw.GatesPerDomain(), hw.TotalGates(4))
	return s
}

// Table4 prints the architectural parameters of the simulated processor.
func Table4() string {
	cfg := pipeline.DefaultConfig()
	bp := "1024 entries, history 10 / 1024 L2 / 1024 bimodal / 4096 chooser"
	s := "Table 4: architectural parameters (Alpha 21264-like)\n"
	rows := [][2]string{
		{"Branch predictor", bp},
		{"BTB", "4096 sets, 2-way"},
		{"Branch mispredict penalty", fmt.Sprint(cfg.MispredictPenalty)},
		{"Decode width", fmt.Sprint(cfg.DecodeWidth)},
		{"Issue width", fmt.Sprint(cfg.IntALUs + cfg.FPALUs)},
		{"Retire width", fmt.Sprint(cfg.RetireWidth)},
		{"L1 data cache", "64KB, 2-way set associative"},
		{"L1 instruction cache", "64KB, 2-way set associative"},
		{"L2 unified cache", "1MB, direct mapped"},
		{"L1 / L2 latency", fmt.Sprintf("%d / %d cycles", cfg.L1Lat, cfg.L2Lat)},
		{"Integer ALUs", fmt.Sprintf("%d + %d mult/div", cfg.IntALUs, cfg.IntMuls)},
		{"Floating-point ALUs", fmt.Sprintf("%d + %d mult/div/sqrt", cfg.FPALUs, cfg.FPMuls)},
		{"Integer issue queue", fmt.Sprintf("%d entries", cfg.IntIQSize)},
		{"FP issue queue", fmt.Sprintf("%d entries", cfg.FPIQSize)},
		{"Load/store queue", fmt.Sprint(cfg.LSQSize)},
		{"Physical register file", fmt.Sprintf("%d integer, %d floating-point (rename)", cfg.IntRenameRegs+32, cfg.FPRenameRegs+32)},
		{"Reorder buffer", fmt.Sprint(cfg.ROBSize)},
	}
	for _, r := range rows {
		s += fmt.Sprintf("  %-28s %s\n", r[0], r[1])
	}
	return s
}

// Table5 prints the benchmark catalog.
func Table5() string {
	s := "Table 5: benchmark applications (synthetic models; see DESIGN.md)\n"
	s += fmt.Sprintf("  %-12s %-12s %s\n", "Benchmark", "Suite", "Datasets / simulation window")
	for _, b := range workload.Catalog() {
		s += fmt.Sprintf("  %-12s %-12s %s\n", b.Name, b.Suite, b.Datasets)
	}
	return s
}

// TraceOptions configures the Figure 2/3 interval traces.
type TraceOptions struct {
	Options
	Benchmark string // default "epic.decode"
}

// Trace runs Attack/Decay over the named benchmark recording every
// interval (Figures 2 and 3 use epic decode).
func (o TraceOptions) Trace() (stats.Result, error) {
	name := o.Benchmark
	if name == "" {
		name = "epic.decode"
	}
	res, err := o.Options.TraceMany([]string{name})
	if err != nil {
		return stats.Result{}, err
	}
	return res[0], nil
}

// traceSpec is the one construction point of a Figure 2/3 trace run, so
// TraceMany and FollowTrace address the same computation.
func (o Options) traceSpec(b workload.Benchmark) sim.Spec {
	return sim.Spec{
		Config:          o.config(),
		Profile:         b.Profile,
		Window:          o.Window,
		Warmup:          o.Warmup,
		IntervalLength:  o.IntervalLength,
		Controller:      core.NewAttackDecay(o.Params),
		RecordIntervals: true,
		Name:            "attack-decay-trace",
	}
}

// TraceMany records the Figure 2/3 interval trace of several benchmarks,
// fanned out across the options' worker pool; results come back in
// argument order. Unknown names fail up front, before any simulation
// starts.
func (o Options) TraceMany(names []string) ([]stats.Result, error) {
	tasks := make([]runner.Task[stats.Result], len(names))
	for i, name := range names {
		b, ok := workload.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown benchmark %q", name)
		}
		tasks[i] = o.task(name+"/trace", o.traceSpec(b))
	}
	return o.mapTasks(tasks), nil
}

// FollowTrace records one benchmark's Figure 2/3 trace through a
// stepped session, calling emit with each measured interval as it is
// produced — the mcdtrace -follow mode. It is cache-aware like
// TraceMany (the same content address): a stored trace replays its
// recorded intervals through emit instead of simulating, so the rows a
// follower prints are identical either way.
func (o Options) FollowTrace(name string, emit func(stats.Interval)) (stats.Result, error) {
	b, ok := workload.Lookup(name)
	if !ok {
		return stats.Result{}, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	spec := o.traceSpec(b)
	compute := func() (stats.Result, error) {
		ses, err := sim.Open(spec)
		if err != nil {
			return stats.Result{}, err
		}
		if emit != nil {
			ses.Observe(emit)
		}
		ses.Step(-1)
		return ses.Close(), nil
	}
	if o.Cache != nil {
		if key, err := resultcache.SpecKey(spec); err == nil {
			res, hit, err := o.Cache.DoResult(key, compute)
			if err != nil {
				return stats.Result{}, err
			}
			if hit && emit != nil {
				for _, iv := range res.Intervals {
					emit(iv)
				}
			}
			return res, nil
		}
	}
	return compute()
}

// FigureCSVHeader is the column header line FigureCSV emits.
func FigureCSVHeader() string { return "instructions,queue_util,util_diff_pct,freq_ghz,ipc\n" }

// FigureCSVRow renders row i of a Figure 2/3 trace; prev is the
// previous row's queue utilization (ignored for the first row). It is
// the incremental form FigureCSV (and mcdtrace -follow) is built from,
// so streamed and post-hoc traces are byte-identical row for row.
func FigureCSVRow(i int, iv stats.Interval, prev float64, d clock.Domain) string {
	diff := 0.0
	if i > 0 && prev != 0 {
		diff = (iv.QueueUtil[d] - prev) / prev * 100
	}
	return fmt.Sprintf("%d,%.4f,%.2f,%.4f,%.4f\n",
		(uint64(i)+1)*iv.Instructions, iv.QueueUtil[d], diff, iv.FreqMHz[d]/1000, iv.IPC)
}

// FigureCSV renders the interval trace of one domain as CSV with the
// series of Figures 2 and 3: instruction count, queue utilization (the
// paper's per-instruction accumulation), utilization difference in
// percent (Figure 2a), and the domain frequency in GHz (Figures 2b/3b).
func FigureCSV(res stats.Result, d clock.Domain) string {
	var b strings.Builder
	b.WriteString(FigureCSVHeader())
	prev := 0.0
	for i, iv := range res.Intervals {
		b.WriteString(FigureCSVRow(i, iv, prev, d))
		prev = iv.QueueUtil[d]
	}
	return b.String()
}
