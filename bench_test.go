// Benchmark harness: one testing.B per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment at a reduced scale
// (QuickOptions: 10 benchmarks, 120k-instruction windows) and reports the
// headline metrics via b.ReportMetric, printing the full rows once in
// verbose mode. cmd/mcdbench and cmd/mcdsweep run the full-scale versions
// that EXPERIMENTS.md records.
package mcd_test

import (
	"sync"
	"testing"

	"mcd/internal/bench"
	"mcd/internal/clock"
	"mcd/internal/hw"
	"mcd/internal/sim"
)

// reportSimMIPS attaches simulated-instruction throughput to a benchmark
// that ran real simulations: the delta of the process-wide retired
// counter over the measured region divided by wall time. Cache hits and
// memoized matrices simulate nothing, so a zero delta reports nothing
// rather than a misleading number.
func reportSimMIPS(b *testing.B, before uint64) {
	delta := sim.SimulatedInstructions() - before
	if s := b.Elapsed().Seconds(); delta > 0 && s > 0 {
		b.ReportMetric(float64(delta)/1e6/s, "sim-MIPS")
	}
}

// comparisons are expensive; share one matrix across the Table 6, Figure 4
// and headline benchmarks.
var (
	compOnce sync.Once
	compRows []bench.Comparison
)

func comparisons() []bench.Comparison {
	compOnce.Do(func() {
		compRows = bench.QuickOptions().RunAll()
	})
	return compRows
}

func BenchmarkTable1Config(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = bench.Table1()
	}
	if len(s) == 0 {
		b.Fatal("empty table")
	}
}

func BenchmarkTable2Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.Table2()
	}
}

func BenchmarkTable3Gates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.Table3()
	}
	b.ReportMetric(float64(hw.GatesPerDomain()), "gates/domain")
	b.ReportMetric(float64(hw.TotalGates(4)), "gates-total")
}

func BenchmarkTable4Arch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.Table4()
	}
}

func BenchmarkTable5Benchmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.Table5()
	}
}

func BenchmarkTable6Comparison(b *testing.B) {
	cs := comparisons()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.Table6(cs)
	}
	b.StopTimer()
	ad := summaryOf(cs, "ad")
	b.ReportMetric(ad.PerfDegradation*100, "AD-perfdeg-%")
	b.ReportMetric(ad.EnergySavings*100, "AD-energysav-%")
	b.ReportMetric(ad.EDPImprovement*100, "AD-edp-%")
	if testing.Verbose() {
		b.Log("\n" + out)
	}
}

func summaryOf(cs []bench.Comparison, which string) (s struct {
	PerfDegradation, EnergySavings, EDPImprovement float64
}) {
	n := float64(len(cs))
	for _, c := range cs {
		var r = c.AD
		if which == "dyn1" {
			r = c.Dyn1
		}
		s.PerfDegradation += (r.TimePS/c.MCDBase.TimePS - 1) / n
		s.EnergySavings += (1 - r.EnergyPJ/c.MCDBase.EnergyPJ) / n
		s.EDPImprovement += (1 - r.EDP()/c.MCDBase.EDP()) / n
	}
	return s
}

func BenchmarkFig4PerApplication(b *testing.B) {
	cs := comparisons()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.Fig4(cs)
	}
	b.StopTimer()
	if testing.Verbose() {
		b.Log("\n" + out)
	}
}

func BenchmarkHeadline(b *testing.B) {
	cs := comparisons()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.Headline(cs)
	}
	b.StopTimer()
	if testing.Verbose() {
		b.Log("\n" + out)
	}
}

func BenchmarkFig2LoadStoreTrace(b *testing.B) {
	to := bench.TraceOptions{Options: bench.QuickOptions()}
	to.Window = 150_000
	to.Warmup = 20_000
	before := sim.SimulatedInstructions()
	var csv string
	for i := 0; i < b.N; i++ {
		res, err := to.Trace()
		if err != nil {
			b.Fatal(err)
		}
		csv = bench.FigureCSV(res, clock.LoadStore)
	}
	if len(csv) == 0 {
		b.Fatal("empty trace")
	}
	reportSimMIPS(b, before)
}

func BenchmarkFig3FloatingPointTrace(b *testing.B) {
	to := bench.TraceOptions{Options: bench.QuickOptions()}
	to.Window = 150_000
	to.Warmup = 20_000
	before := sim.SimulatedInstructions()
	var res struct{ avgFP float64 }
	for i := 0; i < b.N; i++ {
		r, err := to.Trace()
		if err != nil {
			b.Fatal(err)
		}
		res.avgFP = r.AvgFreqMHz[clock.FloatingPoint]
	}
	b.ReportMetric(res.avgFP, "FP-avg-MHz")
	reportSimMIPS(b, before)
}

func sweepBench(b *testing.B, run func(bench.Options) []bench.SweepPoint, metric string) {
	b.Helper()
	o := bench.QuickOptions()
	o.Benchmarks = []string{"adpcm", "gzip", "power", "mcf"}
	before := sim.SimulatedInstructions()
	var pts []bench.SweepPoint
	for i := 0; i < b.N; i++ {
		pts = run(o)
	}
	if len(pts) == 0 {
		b.Fatal("no sweep points")
	}
	best := pts[0].Summary.EDPImprovement
	for _, p := range pts {
		if p.Summary.EDPImprovement > best {
			best = p.Summary.EDPImprovement
		}
	}
	b.ReportMetric(best*100, metric)
	reportSimMIPS(b, before)
}

func BenchmarkFig5TargetSweep(b *testing.B) {
	sweepBench(b, func(o bench.Options) []bench.SweepPoint {
		return o.SweepTarget([]float64{0.02, 0.06, 0.10})
	}, "best-EDP-%")
}

func BenchmarkFig6aDecaySweep(b *testing.B) {
	sweepBench(b, func(o bench.Options) []bench.SweepPoint {
		return o.SweepDecay([]float64{0.0005, 0.0075, 0.02})
	}, "best-EDP-%")
}

func BenchmarkFig6bReactionSweep(b *testing.B) {
	sweepBench(b, func(o bench.Options) []bench.SweepPoint {
		return o.SweepReaction([]float64{0.01, 0.06, 0.155})
	}, "best-EDP-%")
}

func BenchmarkFig6cDeviationSweep(b *testing.B) {
	sweepBench(b, func(o bench.Options) []bench.SweepPoint {
		return o.SweepDeviation([]float64{0.005, 0.0175, 0.025})
	}, "best-EDP-%")
}
