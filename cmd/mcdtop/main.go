// Command mcdtop is a terminal console for an mcdserve fleet node: one
// screen that answers "what is the server doing right now". It polls
// /metrics and /v1/jobs on an interval and tails the newest running
// job's /events feed, rendering:
//
//   - the queue and job-table shape (queued / running / done / failed),
//     process-wide simulated MIPS, and recent job latency
//   - cache traffic by tier (mem / disk / dedup hits vs misses) and the
//     stream gap-record counter
//   - per-runner busy state and attributed simulation throughput
//   - on a fabric coordinator: the worker fleet (per-worker busy,
//     queue depth, simulated MIPS, heartbeat age) plus dispatch,
//     hedge, steal and requeue counters
//   - the in-flight job table with age, progress, phase, and whether
//     the job ran locally or was dispatched to the fabric
//   - a live interval line (index, simulated time, IPC, per-domain MHz)
//     when the tailed job is a streamed run
//
// It is plain ANSI — no terminal library, no dependencies — so it runs
// anywhere the server does:
//
//	mcdtop -addr http://localhost:8080
//	mcdtop -addr http://localhost:8080 -snapshot   # print one frame and exit (no escapes)
//
// -snapshot is the headless mode: CI and scripts use it as a one-shot
// fleet health probe (it exits non-zero when the server is unreachable).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"mcd/internal/service"
	"mcd/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "mcdserve base URL")
		interval = flag.Duration("interval", time.Second, "poll period")
		rows     = flag.Int("rows", 15, "job-table rows shown")
		snapshot = flag.Bool("snapshot", false, "print one frame without escape codes and exit")
	)
	flag.Parse()
	base := strings.TrimRight(*addr, "/")
	if err := run(base, *interval, *rows, *snapshot); err != nil {
		fmt.Fprintf(os.Stderr, "mcdtop: %v\n", err)
		os.Exit(1)
	}
}

func run(base string, interval time.Duration, rows int, snapshot bool) error {
	client := &http.Client{Timeout: 10 * time.Second}
	if snapshot {
		frame, err := buildFrame(client, base, rows)
		if err != nil {
			return err
		}
		frame.render(os.Stdout, false, "", interval)
		return nil
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	tail := &tailer{client: client, base: base}
	defer tail.stop()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		frame, err := buildFrame(client, base, rows)
		if err != nil {
			// A poll that fails (server restarting, network blip) renders
			// as an error banner, not an exit — top keeps watching.
			fmt.Printf("\x1b[H\x1b[2Jmcdtop: %v (retrying)\n", err)
		} else {
			tail.watch(ctx, frame.newestRunning())
			frame.render(os.Stdout, true, tail.line(), interval)
		}
		select {
		case <-ctx.Done():
			fmt.Print("\x1b[0m\n")
			return nil
		case <-tick.C:
		}
	}
}

// frame is everything one refresh knows.
type frame struct {
	at   time.Time
	base string
	met  metricsSnap
	jobs []service.Snapshot
	rows int
}

func buildFrame(client *http.Client, base string, rows int) (*frame, error) {
	met, err := scrapeMetrics(client, base)
	if err != nil {
		return nil, err
	}
	jobs, err := fetchJobs(client, base)
	if err != nil {
		return nil, err
	}
	return &frame{at: time.Now(), base: base, met: met, jobs: jobs, rows: rows}, nil
}

// metricsSnap is one /metrics scrape: raw series line name (labels and
// all) to value.
type metricsSnap map[string]float64

func scrapeMetrics(client *http.Client, base string) (metricsSnap, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	m := metricsSnap{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		m[line[:i]] = v
	}
	return m, sc.Err()
}

// series collects a single-label family: label value → metric value.
func (m metricsSnap) series(name string) map[string]float64 {
	out := map[string]float64{}
	for k, v := range m {
		rest, ok := strings.CutPrefix(k, name+"{")
		if !ok {
			continue
		}
		if i := strings.IndexByte(rest, '"'); i >= 0 {
			if j := strings.IndexByte(rest[i+1:], '"'); j >= 0 {
				out[rest[i+1:i+1+j]] = v
			}
		}
	}
	return out
}

func fetchJobs(client *http.Client, base string) ([]service.Snapshot, error) {
	resp, err := client.Get(base + "/v1/jobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/jobs: status %d", resp.StatusCode)
	}
	var body struct {
		Jobs []service.Snapshot `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Jobs, nil
}

// newestRunning picks the job the live tail should follow.
func (f *frame) newestRunning() string {
	id := ""
	var started time.Time
	for _, j := range f.jobs {
		if j.State == service.Running && (id == "" || j.Started.After(started)) {
			id, started = j.ID, j.Started
		}
	}
	return id
}

// tailer follows one job's /events feed on a background goroutine and
// keeps only the newest interval frame — the console wants the current
// operating point, not history.
type tailer struct {
	client *http.Client
	base   string

	mu     sync.Mutex
	jobID  string
	latest string
	cancel context.CancelFunc
}

// watch retargets the tail when the newest running job changes; an
// empty id stops it.
func (t *tailer) watch(ctx context.Context, id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id == t.jobID {
		return
	}
	if t.cancel != nil {
		t.cancel()
		t.cancel = nil
	}
	t.jobID, t.latest = id, ""
	if id == "" {
		return
	}
	tctx, cancel := context.WithCancel(ctx)
	t.cancel = cancel
	go t.follow(tctx, id)
}

func (t *tailer) stop() { t.watch(context.Background(), "") }

func (t *tailer) follow(ctx context.Context, id string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return
	}
	// The events feed is long-lived; the poll client's timeout would
	// kill it mid-stream.
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var fr wire.StreamFrame
		if json.Unmarshal(sc.Bytes(), &fr) != nil || fr.Type != wire.FrameInterval || fr.Interval == nil {
			continue
		}
		iv := fr.Interval
		line := fmt.Sprintf("%s  #%d  t=%.1fns  ipc %.3f  mhz fe%.0f int%.0f fp%.0f ls%.0f",
			id, iv.Index, iv.EndPS/1e3, iv.IPC,
			iv.FreqMHz[0], iv.FreqMHz[1], iv.FreqMHz[2], iv.FreqMHz[3])
		t.mu.Lock()
		if t.jobID == id {
			t.latest = line
		}
		t.mu.Unlock()
	}
}

func (t *tailer) line() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.latest
}

// render draws one frame. With ansi it clears and homes the screen and
// bolds headings; without (snapshot mode) it prints plain text once.
func (f *frame) render(w io.Writer, ansi bool, live string, poll time.Duration) {
	bold, dim, reset := "", "", ""
	if ansi {
		fmt.Fprint(w, "\x1b[H\x1b[2J")
		bold, dim, reset = "\x1b[1m", "\x1b[2m", "\x1b[0m"
	}
	fmt.Fprintf(w, "%smcdtop%s  %s  %s%s  poll %s%s\n\n",
		bold, reset, f.base, dim, f.at.Format("15:04:05"), poll, reset)

	states := f.met.series("mcd_jobs")
	fmt.Fprintf(w, "jobs    queued %.0f  running %.0f  done %.0f  failed %.0f   queue depth %.0f   latency %.2fs\n",
		states["queued"], states["running"], states["done"], states["failed"],
		f.met["mcd_queue_depth"], f.met["mcd_job_latency_seconds"])
	fmt.Fprintf(w, "sim     %.1f MIPS   %.0f instructions total\n",
		f.met["mcd_sim_mips"], f.met["mcd_sim_instructions_total"])

	hits := f.met.series("mcd_cache_hits_total")
	misses := f.met["mcd_cache_misses_total"]
	total := hits["mem"] + hits["disk"] + hits["dedup"] + misses
	rate := 0.0
	if total > 0 {
		rate = 100 * (total - misses) / total
	}
	fmt.Fprintf(w, "cache   mem %.0f  disk %.0f  dedup %.0f  remote %.0f  miss %.0f  (%.1f%% hit)   entries %.0f  %s   gap records %.0f\n",
		hits["mem"], hits["disk"], hits["dedup"], hits["remote"], misses, rate,
		f.met["mcd_cache_entries"], fmtBytes(f.met["mcd_cache_mem_bytes"]),
		f.met["mcd_stream_gap_frames_total"])

	f.renderFabric(w)

	busy := f.met.series("mcd_runner_busy")
	mips := f.met.series("mcd_runner_sim_mips")
	ids := make([]string, 0, len(busy))
	for id := range busy {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprint(w, "runners ")
	if len(ids) == 0 {
		fmt.Fprint(w, "(none seen yet)")
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Fprint(w, "   ")
		}
		if busy[id] > 0 {
			fmt.Fprintf(w, "r%s busy %.1f MIPS", id, mips[id])
		} else {
			fmt.Fprintf(w, "r%s idle", id)
		}
	}
	fmt.Fprint(w, "\n\n")

	fmt.Fprintf(w, "%s%-8s %-11s %-8s %-9s %-8s %-7s %s%s\n", bold,
		"JOB", "KIND", "STATE", "PROG", "AGE", "EXEC", "TASK", reset)
	for _, j := range f.sortedJobs() {
		prog := fmt.Sprintf("%d", j.Done)
		if j.Total > 0 {
			prog = fmt.Sprintf("%d/%d", j.Done, j.Total)
		}
		where := "local"
		if j.Dispatched {
			where = "fabric"
		}
		task := j.Task
		if j.State == service.Failed && j.Error != "" {
			task = "! " + j.Error
		}
		if len(task) > 40 {
			task = task[:37] + "..."
		}
		fmt.Fprintf(w, "%-8s %-11s %-8s %-9s %-8s %-7s %s\n",
			j.ID, j.Kind, j.State, prog, fmtAge(j, f.at), where, task)
	}
	if n := len(f.jobs) - f.rows; n > 0 {
		fmt.Fprintf(w, "%s... %d older job(s) not shown%s\n", dim, n, reset)
	}
	if live != "" {
		fmt.Fprintf(w, "\n%slive%s    %s\n", bold, reset, live)
	}
}

// renderFabric draws the distributed-fabric panel: one line of fleet
// counters and one line per registered worker, from the mcd_fabric_*
// families a coordinator exports. A node with no fabric (standalone
// server, plain worker) renders nothing — the panel is invisible
// rather than empty.
func (f *frame) renderFabric(w io.Writer) {
	busy := f.met.series("mcd_fabric_worker_busy")
	if _, coordinating := f.met["mcd_fabric_workers"]; !coordinating {
		return
	}
	disp := f.met.series("mcd_fabric_dispatches_total")
	req := f.met.series("mcd_fabric_requeues_total")
	fmt.Fprintf(w, "fabric  workers %.0f   dispatch ok %.0f err %.0f cancel %.0f   hedges %.0f  steals %.0f  requeue dead %.0f err %.0f  local %.0f\n",
		f.met["mcd_fabric_workers"],
		disp["ok"], disp["error"], disp["cancelled"],
		f.met["mcd_fabric_hedges_total"], f.met["mcd_fabric_steals_total"],
		req["dead"], req["error"], f.met["mcd_fabric_local_runs_total"])
	queue := f.met.series("mcd_fabric_worker_queue")
	mips := f.met.series("mcd_fabric_worker_sim_mips")
	beat := f.met.series("mcd_fabric_worker_last_heartbeat_seconds")
	ids := make([]string, 0, len(busy))
	for id := range busy {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(w, "  %-28s busy %.0f  queue %.0f  %.1f MIPS  beat %.1fs ago\n",
			id, busy[id], queue[id], mips[id], beat[id])
	}
}

// sortedJobs orders the table for operators: running (longest first),
// then the queue in arrival order, then terminal jobs newest first;
// capped to the row budget.
func (f *frame) sortedJobs() []service.Snapshot {
	js := make([]service.Snapshot, len(f.jobs))
	copy(js, f.jobs)
	rank := func(s service.State) int {
		switch s {
		case service.Running:
			return 0
		case service.Queued:
			return 1
		default:
			return 2
		}
	}
	sort.SliceStable(js, func(a, b int) bool {
		ra, rb := rank(js[a].State), rank(js[b].State)
		if ra != rb {
			return ra < rb
		}
		switch ra {
		case 0:
			return js[a].Started.Before(js[b].Started)
		case 1:
			return js[a].Created.Before(js[b].Created)
		default:
			return js[a].Finished.After(js[b].Finished)
		}
	})
	if len(js) > f.rows {
		js = js[:f.rows]
	}
	return js
}

// fmtAge renders how long the job has been in its current phase:
// waiting since submission, running since start, or (terminal) its
// total execution time.
func fmtAge(j service.Snapshot, now time.Time) string {
	var d time.Duration
	switch j.State {
	case service.Queued:
		d = now.Sub(j.Created)
	case service.Running:
		d = now.Sub(j.Started)
	default:
		if !j.Finished.IsZero() && !j.Started.IsZero() {
			d = j.Finished.Sub(j.Started)
		}
	}
	if d < 0 {
		d = 0
	}
	switch {
	case d < 10*time.Second:
		return d.Round(time.Millisecond).String()
	case d < time.Minute:
		return d.Round(time.Second).String()
	default:
		return d.Round(time.Minute).String()
	}
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}
