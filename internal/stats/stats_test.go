package stats

import (
	"math"
	"testing"
)

func res(instr uint64, timePS, energyPJ float64) Result {
	return Result{Instructions: instr, TimePS: timePS, EnergyPJ: energyPJ}
}

func TestDerivedMetrics(t *testing.T) {
	r := res(1000, 2_000_000, 5_000_000) // 2 µs, 5 µJ
	if cpi := r.CPI(); math.Abs(cpi-2.0) > 1e-12 {
		t.Errorf("CPI = %v, want 2.0", cpi)
	}
	if epi := r.EPI(); math.Abs(epi-5000) > 1e-9 {
		t.Errorf("EPI = %v, want 5000 pJ", epi)
	}
	if p := r.PowerW(); math.Abs(p-2.5) > 1e-12 {
		t.Errorf("power = %v W, want 2.5", p)
	}
	var zero Result
	if zero.CPI() != 0 || zero.EPI() != 0 || zero.PowerW() != 0 {
		t.Error("zero result must not divide by zero")
	}
}

func TestCompare(t *testing.T) {
	base := res(1000, 1_000_000, 4_000_000)
	r := res(1000, 1_032_000, 3_240_000) // +3.2% time, -19% energy
	c := Compare(r, base)
	if math.Abs(c.PerfDegradation-0.032) > 1e-9 {
		t.Errorf("perf degradation = %v, want 0.032", c.PerfDegradation)
	}
	if math.Abs(c.EnergySavings-0.19) > 1e-9 {
		t.Errorf("energy savings = %v, want 0.19", c.EnergySavings)
	}
	wantEDP := 1 - (3_240_000.0*1_032_000)/(4_000_000.0*1_000_000)
	if math.Abs(c.EDPImprovement-wantEDP) > 1e-9 {
		t.Errorf("EDP improvement = %v, want %v", c.EDPImprovement, wantEDP)
	}
	wantPower := 1 - (3_240_000.0/1_032_000)/(4_000_000.0/1_000_000)
	if math.Abs(c.PowerSavings-wantPower) > 1e-9 {
		t.Errorf("power savings = %v, want %v", c.PowerSavings, wantPower)
	}
}

func TestSummarize(t *testing.T) {
	cs := []Comparison{
		{PerfDegradation: 0.02, EnergySavings: 0.10, EDPImprovement: 0.08, PowerSavings: 0.082},
		{PerfDegradation: 0.04, EnergySavings: 0.30, EDPImprovement: 0.27, PowerSavings: 0.27},
	}
	s := Summarize(cs)
	if s.N != 2 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.PerfDegradation-0.03) > 1e-12 {
		t.Errorf("mean perf deg = %v", s.PerfDegradation)
	}
	if math.Abs(s.EnergySavings-0.20) > 1e-12 {
		t.Errorf("mean savings = %v", s.EnergySavings)
	}
	wantRatio := ((0.082 + 0.27) / 2) / 0.03
	if math.Abs(s.PowerPerfRatio-wantRatio) > 1e-9 {
		t.Errorf("ratio = %v, want %v", s.PowerPerfRatio, wantRatio)
	}
	wantPerBench := (0.082/0.02 + 0.27/0.04) / 2
	if math.Abs(s.MeanPerBenchRatio-wantPerBench) > 1e-9 {
		t.Errorf("per-bench ratio = %v, want %v", s.MeanPerBenchRatio, wantPerBench)
	}
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty summary must be zero")
	}
}
