package resultcache

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mcd/internal/runner"
	"mcd/internal/sim"
	"mcd/internal/stats"
)

// Options configures a Cache.
type Options struct {
	// MaxMemBytes bounds the in-memory tier by the total size of stored
	// encodings. Zero means the 64 MiB default; negative disables the
	// memory tier entirely (disk-only).
	MaxMemBytes int64
	// Dir, if non-empty, enables the on-disk tier: one file per key,
	// written atomically (temp file + rename), so a crashed writer can
	// never leave a torn entry and concurrent processes sharing the
	// directory see only complete encodings.
	Dir string
}

// DefaultMaxMemBytes is the memory-tier bound when Options.MaxMemBytes
// is zero.
const DefaultMaxMemBytes = 64 << 20

// Stats are the cache's observability counters.
type Stats struct {
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	Misses   uint64 `json:"misses"`
	// Dedups counts requests that joined an identical in-flight
	// computation instead of starting their own (single-flight).
	Dedups uint64 `json:"dedups"`
	// RemoteLoads counts misses whose bytes were supplied by the remote
	// fabric tier — a worker computed them — rather than a local
	// simulation. A subset of Misses: the probe missed both local
	// tiers, but no local compute was paid.
	RemoteLoads uint64 `json:"remote_loads"`
	Evictions   uint64 `json:"evictions"`
	// WriteErrors counts failed disk-tier persists. A persist failure
	// degrades the disk tier (the computed result is still served and
	// kept in memory) rather than failing the request.
	WriteErrors uint64 `json:"write_errors"`
	Entries     int    `json:"entries"`
	MemBytes    int64  `json:"mem_bytes"`
}

// Hits returns the total number of requests served without computing.
func (s Stats) Hits() uint64 { return s.MemHits + s.DiskHits + s.Dedups }

// NoteRemoteLoad records that one miss was satisfied by the remote
// fabric tier instead of a local compute. The fabric coordinator calls
// it from inside its DoBytes compute closure, so the remote tier shows
// up in the same probe accounting as mem/disk/dedup.
func (c *Cache) NoteRemoteLoad() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stats.RemoteLoads++
	c.mu.Unlock()
}

type entry struct {
	key   string
	bytes []byte
}

type call struct {
	done chan struct{}
	b    []byte
	err  error
}

// Cache is the two-tier content-addressed result store. The zero value
// is not usable; construct with New. A nil *Cache is valid everywhere
// and behaves as "no caching" (every Do computes), so call sites need
// no conditionals.
type Cache struct {
	maxMem int64 // ≤0 means the memory tier is disabled
	dir    string

	mu     sync.Mutex
	lru    *list.List // of *entry, front = most recent
	items  map[string]*list.Element
	mem    int64
	flight map[string]*call
	stats  Stats
}

// New builds a cache, creating the disk directory if needed.
func New(o Options) (*Cache, error) {
	max := o.MaxMemBytes
	if max == 0 {
		max = DefaultMaxMemBytes
	}
	if o.Dir != "" {
		if err := os.MkdirAll(o.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: %w", err)
		}
	}
	return &Cache{
		maxMem: max,
		dir:    o.Dir,
		lru:    list.New(),
		items:  make(map[string]*list.Element),
		flight: make(map[string]*call),
	}, nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.MemBytes = c.mem
	return s
}

// GetBytes returns the stored encoding for key, consulting memory then
// disk; a disk hit is promoted into the memory tier. Disk reads happen
// outside the cache lock, so a slow disk never serializes memory-tier
// traffic. It does not count a miss (Do does), so probes are free of
// stats noise.
func (c *Cache) GetBytes(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	if b, ok := c.memGetLocked(key); ok {
		c.mu.Unlock()
		return b, true
	}
	c.mu.Unlock()
	if b, ok := c.readDisk(key); ok {
		c.mu.Lock()
		c.stats.DiskHits++
		c.storeMemLocked(key, b)
		c.mu.Unlock()
		return b, true
	}
	return nil, false
}

func (c *Cache) memGetLocked(key string) ([]byte, bool) {
	if el, ok := c.items[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.MemHits++
		return el.Value.(*entry).bytes, true
	}
	return nil, false
}

func (c *Cache) readDisk(key string) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	// Atomic writes rule out torn entries, but not bit rot, fs-level
	// truncation or operator edits. A non-JSON entry is treated as a
	// miss and removed, so corruption costs a recompute — never a
	// served-garbage hit or a crashed harness.
	if !json.Valid(b) {
		os.Remove(c.path(key))
		return nil, false
	}
	return b, true
}

// PutBytes stores an encoding under key in both tiers.
func (c *Cache) PutBytes(key string, b []byte) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	c.storeMemLocked(key, b)
	c.mu.Unlock()
	return c.writeDisk(key, b)
}

func (c *Cache) storeMemLocked(key string, b []byte) {
	// A blob larger than the whole tier would evict everything and
	// still sit over the bound; leave it to the disk tier instead.
	if c.maxMem <= 0 || int64(len(b)) > c.maxMem {
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.mem += int64(len(b)) - int64(len(e.bytes))
		e.bytes = b
		c.lru.MoveToFront(el)
	} else {
		c.items[key] = c.lru.PushFront(&entry{key: key, bytes: b})
		c.mem += int64(len(b))
	}
	for c.mem > c.maxMem && c.lru.Len() > 1 {
		el := c.lru.Back()
		e := el.Value.(*entry)
		c.lru.Remove(el)
		delete(c.items, e.key)
		c.mem -= int64(len(e.bytes))
		c.stats.Evictions++
	}
}

func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".json") }

// writeDisk persists atomically: a unique temp file in the same
// directory is renamed over the final name, so readers never observe a
// partial write.
func (c *Cache) writeDisk(key string, b []byte) error {
	if c.dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	return nil
}

// Obs observes the phases of one DoBytes call, for tracing. Every hook
// is optional. Probe fires once the probe's outcome is known, with the
// tier that answered: "mem", "disk", "dedup" (joined an in-flight
// computation), or "miss"; Compute brackets the leader's computation on
// a miss; Store brackets the disk-tier persist (err non-nil on a failed
// write — the result was still served). A nil *Obs is the untraced
// path: DoBytesObserved then takes no timestamps at all, so observation
// costs nothing unless requested.
type Obs struct {
	Probe   func(tier string, start, end time.Time)
	Compute func(start, end time.Time)
	Store   func(start, end time.Time, err error)
}

// probe reports one probe outcome, nil-safe.
func (o *Obs) probe(tier string, start time.Time) {
	if o != nil && o.Probe != nil {
		o.Probe(tier, start, time.Now())
	}
}

// DoBytes returns the encoding stored under key, computing and storing
// it on a miss. Concurrent calls with the same key are single-flighted:
// one leader probes the disk tier and computes if needed, the rest
// block and share its outcome (reported as a hit, counted as a dedup).
// Disk I/O happens outside the cache lock, so slow storage never
// serializes memory-tier traffic; a failed disk persist degrades the
// disk tier (counted in Stats.WriteErrors) instead of failing the
// computed request. A failed compute is not stored. On a nil cache it
// simply computes.
func (c *Cache) DoBytes(key string, compute func() ([]byte, error)) ([]byte, bool, error) {
	return c.DoBytesObserved(key, compute, nil)
}

// DoBytesObserved is DoBytes with per-phase observation hooks (see
// Obs); DoBytes is exactly DoBytesObserved with a nil *Obs.
func (c *Cache) DoBytesObserved(key string, compute func() ([]byte, error), obs *Obs) ([]byte, bool, error) {
	var probeStart time.Time
	if obs != nil {
		probeStart = time.Now()
	}
	if c == nil {
		obs.probe("miss", probeStart)
		b, err := ObservedCompute(compute, obs)
		return b, false, err
	}
	c.mu.Lock()
	if b, ok := c.memGetLocked(key); ok {
		c.mu.Unlock()
		obs.probe("mem", probeStart)
		return b, true, nil
	}
	if cl, ok := c.flight[key]; ok {
		c.stats.Dedups++
		c.mu.Unlock()
		<-cl.done
		// A leader cancelled by its own caller (a streamed run whose
		// client disconnected) must not fail unrelated followers: its
		// context error is specific to that caller, not to the
		// computation, so retry — either leading a fresh flight or
		// joining the next one. A follower whose own compute is also
		// cancelled still fails with its own context error. (Each retry
		// reports its own probe span: the retry is a real re-probe.)
		if cl.err != nil && (errors.Is(cl.err, context.Canceled) || errors.Is(cl.err, context.DeadlineExceeded)) {
			return c.DoBytesObserved(key, compute, obs)
		}
		obs.probe("dedup", probeStart)
		return cl.b, cl.err == nil, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.flight[key] = cl
	c.mu.Unlock()

	// A panicking compute (a supported failure mode — the runner
	// recovers panics above us) must not strand the flight entry, or
	// every future request for this key would block on done forever.
	// Followers get an error; the panic continues unwinding.
	defer func() {
		if r := recover(); r != nil {
			c.mu.Lock()
			delete(c.flight, key)
			c.mu.Unlock()
			cl.err = fmt.Errorf("resultcache: in-flight computation for %s panicked: %v", key, r)
			close(cl.done)
			panic(r)
		}
	}()

	diskHit := false
	if b, ok := c.readDisk(key); ok {
		cl.b, diskHit = b, true
		obs.probe("disk", probeStart)
	} else {
		obs.probe("miss", probeStart)
		cl.b, cl.err = ObservedCompute(compute, obs)
	}

	c.mu.Lock()
	if diskHit {
		c.stats.DiskHits++
	} else {
		c.stats.Misses++
	}
	if cl.err == nil {
		c.storeMemLocked(key, cl.b)
	}
	delete(c.flight, key)
	c.mu.Unlock()
	close(cl.done)

	if cl.err == nil && !diskHit {
		var storeStart time.Time
		if obs != nil {
			storeStart = time.Now()
		}
		werr := c.writeDisk(key, cl.b)
		if obs != nil && obs.Store != nil {
			obs.Store(storeStart, time.Now(), werr)
		}
		if werr != nil {
			c.mu.Lock()
			c.stats.WriteErrors++
			c.mu.Unlock()
		}
	}
	return cl.b, diskHit, cl.err
}

// ObservedCompute brackets compute with the Obs.Compute hook (nil-safe
// on both obs and the hook) — the uncached path's share of the
// observation surface.
func ObservedCompute(compute func() ([]byte, error), obs *Obs) ([]byte, error) {
	if obs == nil || obs.Compute == nil {
		return compute()
	}
	start := time.Now()
	b, err := compute()
	obs.Compute(start, time.Now())
	return b, err
}

// DoResult is DoBytes over a simulation: on a miss it runs, stores the
// canonical encoding, and returns the computed Result unchanged (so a
// cold cache is transparent to golden outputs); on a hit it decodes the
// stored bytes — byte-identical to a recompute because runs are pure
// and the encoding round-trips exactly, a property the package tests
// enforce.
func (c *Cache) DoResult(key string, run func() (stats.Result, error)) (stats.Result, bool, error) {
	if c == nil {
		r, err := run()
		return r, false, err
	}
	var computed *stats.Result
	b, hit, err := c.DoBytes(key, func() ([]byte, error) {
		r, err := run()
		if err != nil {
			return nil, err
		}
		computed = &r
		return EncodeResult(r)
	})
	if err != nil {
		return stats.Result{}, hit, err
	}
	if computed != nil {
		return *computed, hit, nil
	}
	r, err := DecodeResult(b)
	return r, hit, err
}

// Task adapts one cacheable spec to a runner task: a drop-in for
// runner.SpecTask that consults the cache first. Specs whose key cannot
// be computed (opaque controller) and nil caches fall back to a plain
// uncached run.
func Task(c *Cache, name string, spec sim.Spec) runner.Task[stats.Result] {
	if c == nil {
		return runner.SpecTask(name, spec)
	}
	key, err := SpecKey(spec)
	if err != nil {
		return runner.SpecTask(name, spec)
	}
	return TaskKeyed(c, name, key, func() (stats.Result, error) { return sim.Run(spec), nil })
}

// TaskKeyed wraps an arbitrary deterministic computation under an
// explicit key (built with SpecKeyExtra for compound experiments).
func TaskKeyed(c *Cache, name, key string, run func() (stats.Result, error)) runner.Task[stats.Result] {
	return runner.Task[stats.Result]{Name: name, Run: func(context.Context) (stats.Result, error) {
		r, _, err := c.DoResult(key, run)
		return r, err
	}}
}
