// Package sim provides the run orchestration shared by the control
// algorithms, the experiment harness and the command-line tools: it
// instantiates a workload generator and a pipeline core for one
// configuration and returns the measurements.
package sim

import (
	"fmt"

	"mcd/internal/clock"
	"mcd/internal/pipeline"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// Fidelity tiers. Exact is the default cycle-by-cycle engine; sampled
// simulates every Nth control interval in detail and fast-forwards the
// rest with functional warming and an analytical time/energy model (see
// pipeline's sampled tier and DESIGN.md "Fidelity tiers"). Exact results
// are byte-identical with or without this field existing; sampled results
// carry error bounds and live under distinct result-cache keys.
const (
	FidelityExact   = "exact"
	FidelitySampled = "sampled"

	// DefaultSampleEvery is the detailed-interval cadence used when a
	// sampled spec leaves SampleEvery at zero.
	DefaultSampleEvery = 10
)

// ParseFidelity normalizes a fidelity name ("" means exact) or reports
// the valid set, mirroring the controller registry's error style.
func ParseFidelity(s string) (string, error) {
	switch s {
	case "", FidelityExact:
		return FidelityExact, nil
	case FidelitySampled:
		return FidelitySampled, nil
	}
	return "", fmt.Errorf("unknown fidelity %q (valid: %s, %s)", s, FidelityExact, FidelitySampled)
}

// Spec describes one simulation run.
type Spec struct {
	Config  pipeline.Config
	Profile workload.Profile
	Window  uint64
	// Warmup instructions run before the measured window (caches and
	// predictors train; no measurements). Zero means no warmup.
	Warmup uint64
	// IntervalLength overrides the controller sampling period (paper:
	// 10,000 instructions). Scaled-down windows use proportionally
	// shorter intervals so a run spans a paper-like number of control
	// intervals; see DESIGN.md ("time-scale compression").
	IntervalLength uint64
	Controller     pipeline.Controller
	// InitialFreqMHz pins starting frequencies (zero entries = max).
	InitialFreqMHz [clock.NumControllable]float64
	// RecordIntervals keeps per-interval records on the Result.
	RecordIntervals bool
	// Name labels the Result's Config field.
	Name string
	// Fidelity selects the simulation tier: "" or FidelityExact for the
	// exact engine, FidelitySampled for interval sampling with
	// checkpointed warmup reuse.
	Fidelity string
	// SampleEvery is the sampled tier's detailed-interval cadence (every
	// Nth interval in detail); zero uses DefaultSampleEvery. Ignored at
	// exact fidelity.
	SampleEvery int
}

// Sampled reports whether the spec runs at sampled fidelity.
func (s Spec) Sampled() bool { return s.Fidelity == FidelitySampled }

// EffectiveSampleEvery returns the pipeline-level sampling cadence the
// spec resolves to: 0 at exact fidelity, the defaulted cadence otherwise.
func (s Spec) EffectiveSampleEvery() int {
	if !s.Sampled() {
		return 0
	}
	if s.SampleEvery <= 0 {
		return DefaultSampleEvery
	}
	return s.SampleEvery
}

// Run executes the spec: a session opened, drained and closed. The
// session API is the run loop, so one-shot and stepped execution are
// byte-identical by construction.
func Run(s Spec) stats.Result {
	ses := open(s)
	ses.Step(-1)
	return ses.Close()
}

// Synchronous returns the configuration of the conventional fully
// synchronous processor (no MCD overheads, one clock).
func Synchronous(cfg pipeline.Config) pipeline.Config {
	cfg.SingleClock = true
	return cfg
}

// SynchronousSpec returns the exact Spec RunSynchronousAt executes, so
// callers that key or batch runs (the result cache, the bench harness)
// can address the same computation RunSynchronousAt performs.
func SynchronousSpec(cfg pipeline.Config, prof workload.Profile, window, warmup uint64, freqMHz float64, name string) Spec {
	sc := Synchronous(cfg)
	var init [clock.NumControllable]float64
	for d := range init {
		init[d] = freqMHz
	}
	return Spec{
		Config: sc, Profile: prof, Window: window, Warmup: warmup,
		InitialFreqMHz: init, Name: name,
	}
}

// RunSynchronousAt runs the fully synchronous processor with the global
// clock scaled to freqMHz — conventional global voltage/frequency scaling.
func RunSynchronousAt(cfg pipeline.Config, prof workload.Profile, window, warmup uint64, freqMHz float64, name string) stats.Result {
	return Run(SynchronousSpec(cfg, prof, window, warmup, freqMHz, name))
}
