package bench

import (
	"testing"

	"mcd/internal/resultcache"
)

func cachedOpts(t *testing.T) (Options, *resultcache.Cache) {
	t.Helper()
	cache, err := resultcache.New(resultcache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.Window, opts.Warmup = 8_000, 4_000
	opts.Benchmarks = []string{"adpcm"}
	opts.Workers = 2
	return opts, cache
}

// TestGridReusesCachedCells: with a result store configured, a repeated
// Table 6 grid recomputes nothing, and cache state never leaks into the
// output — uncached, cold-cache and warm-cache runs are identical.
func TestGridReusesCachedCells(t *testing.T) {
	if testing.Short() {
		t.Skip("grid in -short mode")
	}
	opts, cache := cachedOpts(t)

	plain := Table6(opts.RunAll())

	opts.Cache = cache
	cold := Table6(opts.RunAll())
	missesAfterCold := cache.Stats().Misses
	warm := Table6(opts.RunAll())
	s := cache.Stats()

	if plain != cold || cold != warm {
		t.Fatalf("cache state leaked into Table 6 output:\n%s\n---\n%s\n---\n%s", plain, cold, warm)
	}
	if missesAfterCold == 0 {
		t.Fatal("cold run did not populate the store")
	}
	if s.Misses != missesAfterCold {
		t.Fatalf("warm grid recomputed %d cells", s.Misses-missesAfterCold)
	}
	if s.Hits() < missesAfterCold {
		t.Fatalf("warm grid should hit every cell: %+v", s)
	}
}

// TestSweepReusesCachedCells: repeated sensitivity sweeps skip
// completed cells (the acceptance criterion for the serving-layer PR),
// with byte-identical formatted output.
func TestSweepReusesCachedCells(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	opts, cache := cachedOpts(t)
	opts.Cache = cache
	values := []float64{0.005, 0.0125}

	cold := FormatSweep("t", "decay", opts.SweepDecay(values))
	missesAfterCold := cache.Stats().Misses
	warm := FormatSweep("t", "decay", opts.SweepDecay(values))
	s := cache.Stats()

	if cold != warm {
		t.Fatalf("repeated sweep output differs:\n%s\n---\n%s", cold, warm)
	}
	if s.Misses != missesAfterCold {
		t.Fatalf("warm sweep recomputed %d cells", s.Misses-missesAfterCold)
	}
	// A second sweep sharing cells with the first (overlapping value)
	// only computes the new value's cells.
	before := cache.Stats().Misses
	FormatSweep("t", "decay", opts.SweepDecay([]float64{0.0125, 0.02}))
	added := cache.Stats().Misses - before
	nBench := uint64(len(opts.catalog()))
	if added != nBench {
		t.Fatalf("overlapping sweep computed %d new cells, want %d (one value × %d benchmarks)", added, nBench, nBench)
	}
}
