package service_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"mcd/internal/service"
	"mcd/internal/trace"
	"mcd/internal/wire"
)

// chromeDoc mirrors the Chrome trace-event JSON envelope the trace
// endpoints serve — parsed back in tests exactly the way Perfetto
// would read it.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func getChrome(t *testing.T, url string) chromeDoc {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	var doc chromeDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace body is not valid JSON: %v\n%s", err, body)
	}
	return doc
}

// TestJobTraceChromeExport runs a dynamic-controller job on a traced
// server and checks the exported flight recording: one span per
// lifecycle phase, a per-interval controller decision audit with
// per-domain arguments, and a valid process-wide /debug/trace ring.
func TestJobTraceChromeExport(t *testing.T) {
	_, srv := newServer(t, service.Options{Trace: trace.NewRing(1024)})

	resp := postJSON(t, srv.URL+"/v1/runs", map[string]any{
		"benchmark": "adpcm", "config": "dynamic",
		"window": 8_000, "warmup": 4_000, "interval": 250,
		"async": true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var snap service.Snapshot
	if err := json.Unmarshal(readBody(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	waitResult(t, srv.URL, snap.ID)

	doc := getChrome(t, srv.URL+"/v1/jobs/"+snap.ID+"/trace")
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q, want ms", doc.DisplayTimeUnit)
	}

	spans := map[string]int{}
	decisions := 0
	instants := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans[ev.Name]++
			if ev.Dur < 1 {
				t.Errorf("span %q has dur %v < 1µs (invisible in Perfetto)", ev.Name, ev.Dur)
			}
		case "i":
			if ev.Name == "decision" {
				decisions++
				for _, arg := range []string{"frontend_mhz", "integer_mhz", "fp_mhz", "loadstore_mhz", "integer_queue"} {
					if _, ok := ev.Args[arg]; !ok {
						t.Fatalf("decision event missing arg %q: %+v", arg, ev.Args)
					}
				}
			} else {
				instants[ev.Name]++
			}
		}
	}
	// Every lifecycle phase must appear exactly once for a single
	// cache-miss run: queue wait, store probe, the run itself, and the
	// disk persist.
	for _, phase := range []string{"queue", "probe", "run", "store"} {
		if spans[phase] != 1 {
			t.Errorf("lifecycle span %q appears %d times, want 1 (spans: %v)", phase, spans[phase], spans)
		}
	}
	if instants["submit"] != 1 || instants["done"] != 1 {
		t.Errorf("want one submit and one done instant, got %v", instants)
	}
	// 8000 ps window at 250 ps intervals → 32 measured boundaries, and
	// the audit records every one of them.
	if decisions < 16 {
		t.Errorf("decision audit has %d events, want the full per-interval record (≥16)", decisions)
	}
	// The probe span reports the tier it resolved at; a first-ever run
	// is a miss.
	probeTier := ""
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "probe" {
			probeTier, _ = ev.Args["cache_tier"].(string)
		}
	}
	if probeTier != "miss" {
		t.Errorf("probe span cache_tier = %q, want miss", probeTier)
	}

	// The process-wide ring holds the same lifecycle; its export parses
	// and carries at least the job's records.
	ring := getChrome(t, srv.URL+"/debug/trace")
	if len(ring.TraceEvents) < len(doc.TraceEvents) {
		t.Errorf("/debug/trace has %d events, job trace %d — ring should hold at least the one job",
			len(ring.TraceEvents), len(doc.TraceEvents))
	}
}

// TestTraceDisabledIs404 checks that an untraced server rejects both
// trace endpoints with an error naming the -trace flag — and that an
// unknown job stays a plain not-found.
func TestTraceDisabledIs404(t *testing.T) {
	_, srv := newServer(t, service.Options{})

	resp := postJSON(t, srv.URL+"/v1/runs", map[string]any{
		"benchmark": "adpcm", "config": "attack-decay",
		"window": 8_000, "warmup": 4_000, "interval": 250,
		"async": true,
	})
	var snap service.Snapshot
	if err := json.Unmarshal(readBody(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	waitResult(t, srv.URL, snap.ID)

	for _, path := range []string{"/v1/jobs/" + snap.ID + "/trace", "/debug/trace"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s on untraced server: status %d, want 404", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "-trace") {
			t.Errorf("GET %s error should name the -trace flag: %s", path, body)
		}
	}

	resp2, err := http.Get(srv.URL + "/v1/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp2)
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: status %d, want 404", resp2.StatusCode)
	}
}

// scrapeCounter fetches /metrics and returns the value of a
// single-valued counter line.
func scrapeCounter(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("bad metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in scrape", name)
	return 0
}

// TestEventsGapAccounting overruns the bounded per-job interval log
// with a fine-grained stream job, then reads the /events replay as a
// slow consumer would see it: an explicit gap frame whose dropped count
// equals both the log overrun and the mcd_stream_gap_frames_total
// scrape delta — the metric counts records, not frames.
func TestEventsGapAccounting(t *testing.T) {
	_, srv := newServer(t, service.Options{})

	before := scrapeCounter(t, srv.URL, "mcd_stream_gap_frames_total")

	// 20000 ps at 1 ps intervals → 20000 interval records against an
	// 8192-record log: 11808 dropped before any consumer connects.
	resp := postJSON(t, srv.URL+"/v1/runs", map[string]any{
		"benchmark": "adpcm", "config": "attack-decay",
		"window": 20_000, "warmup": 0, "interval": 1,
		"async": true, "stream": true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var snap service.Snapshot
	if err := json.Unmarshal(readBody(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	waitResult(t, srv.URL, snap.ID)

	events, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()

	gapDropped, gapFrames, intervals := 0, 0, 0
	sc := bufio.NewScanner(events.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var frame wire.StreamFrame
		if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch frame.Type {
		case wire.FrameGap:
			gapFrames++
			gapDropped += frame.Dropped
		case wire.FrameInterval:
			intervals++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if gapFrames != 1 {
		t.Errorf("got %d gap frames, want exactly 1 (the whole overrun reported once)", gapFrames)
	}
	const produced, retained = 20_000, 8192
	if gapDropped != produced-retained {
		t.Errorf("gap frames report %d dropped records, want %d", gapDropped, produced-retained)
	}
	if intervals != retained {
		t.Errorf("replay delivered %d interval frames, want the retained %d", intervals, retained)
	}

	after := scrapeCounter(t, srv.URL, "mcd_stream_gap_frames_total")
	if delta := int(after - before); delta != gapDropped {
		t.Errorf("mcd_stream_gap_frames_total delta %d != dropped records reported in-stream %d", delta, gapDropped)
	}
}
