// Command mcdbench regenerates the paper's tables and the Figure 4 series.
//
// Usage:
//
//	mcdbench -exp table6           # full Table 6 over all 30 benchmarks
//	mcdbench -exp fig4 -quick      # Figure 4 on the 10-benchmark subset
//	mcdbench -exp headline
//	mcdbench -exp table1|table2|table3|table4|table5   # static tables
//	mcdbench -exp table6 -cache /var/cache/mcd   # reuse completed cells
//	mcdbench -exp table6 -json     # machine-readable (wire.ExperimentResult)
//	mcdbench -exp table6 -cpuprofile cpu.out     # pprof capture of the run
//	mcdbench -benchjson                          # hot-path perf report (BENCH_5.json schema)
//	mcdbench -benchjson -benchbaseline BENCH_5.json   # CI perf-regression gate
//	mcdbench -exp table6 -quick -server http://localhost:8080   # run on a server (or fabric coordinator)
//
// With -server the experiment is submitted to a running mcdserve
// instance instead of computed in-process: the job is polled to
// completion and its result body printed — byte-identical to the local
// run by the determinism contract, whether the server computes locally
// or shards the grid across a worker fleet.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"mcd/internal/bench"
	"mcd/internal/prof"
	"mcd/internal/service"
	"mcd/internal/sim"
	"mcd/internal/wire"
)

func main() {
	var (
		exp       = flag.String("exp", "headline", "experiment: table1..table6, fig4, headline, all")
		quick     = flag.Bool("quick", false, "reduced scale (subset of benchmarks, shorter windows)")
		window    = flag.Uint64("window", 0, "override measured instructions per run")
		warmup    = flag.Uint64("warmup", 0, "override warmup instructions per run")
		benchF    = flag.String("bench", "", "comma-separated benchmark filter")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
		workers   = flag.Int("workers", runtime.NumCPU(), "parallel simulation workers (results are identical for any value)")
		cacheDir  = flag.String("cache", "", "result-store directory: completed cells are reused across invocations")
		jsonOut   = flag.Bool("json", false, "emit the machine-readable experiment encoding (as served by mcdserve)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file (written on clean exit)")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on clean exit")
		benchJSON = flag.Bool("benchjson", false, "run the hot-path perf benchmarks and print the JSON report (BENCH_5.json schema)")
		baseline  = flag.String("benchbaseline", "", "with -benchjson: compare against this committed report and exit 1 on regression")
		server    = flag.String("server", "", "submit the experiment to this mcdserve base URL instead of computing in-process")
		fidelity  = flag.String("fidelity", "", "simulation tier: exact (default) | sampled (interval sampling with checkpointed warmup reuse)")
		sampleN   = flag.Int("sample-every", 0, "sampled tier's detailed-interval cadence (0: default 10)")
		validate  = flag.Bool("validate-fidelity", false, "run the comparison grid exact AND sampled, report sampled-vs-exact error and speedup, exit 1 over the bounds")
		maxErr    = flag.Float64("max-err", 0.02, "with -validate-fidelity: maximum mean relative CPI/EPI error across the grid")
		maxCell   = flag.Float64("max-cell-err", 0.06, "with -validate-fidelity: maximum single-cell relative CPI/EPI error")
		minSpeed  = flag.Float64("min-speedup", 5, "with -validate-fidelity: minimum sampled-over-exact wall-clock speedup (0: don't gate)")
	)
	flag.Parse()

	fid, err := sim.ParseFidelity(*fidelity)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		os.Exit(2)
	}

	if *server != "" {
		req := wire.ExperimentRequest{
			Name: *exp, Quick: *quick,
			Window: *window, Warmup: *warmup,
			Fidelity: fid, SampleEvery: *sampleN,
		}
		if *benchF != "" {
			req.Benchmarks = bench.SplitNames(*benchF)
		}
		os.Exit(runOnServer(strings.TrimRight(*server, "/"), req, *jsonOut, *quiet))
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		}
	}()

	if *benchJSON {
		code := runBenchJSON(*baseline)
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		}
		os.Exit(code)
	}

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	if *window != 0 {
		opts.Window = *window
	}
	if *warmup != 0 {
		opts.Warmup = *warmup
	}
	if *benchF != "" {
		opts.Benchmarks = bench.SplitNames(*benchF)
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	opts.Workers = *workers
	opts.Fidelity = fid
	opts.SampleEvery = *sampleN

	if *validate {
		// The validation harness times both tiers itself; a cache would
		// turn the exact leg into store lookups, so -cache is rejected.
		if *cacheDir != "" {
			fmt.Fprintln(os.Stderr, "mcdbench: -validate-fidelity and -cache are incompatible (timing needs real runs)")
			os.Exit(2)
		}
		report := opts.ValidateFidelity()
		fmt.Print(report.Format())
		if fails := report.Check(*maxErr, *maxCell, *minSpeed); len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "mcdbench: fidelity validation failed: %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mcdbench: fidelity validation passed (max err %.2f%%, speedup %.1f×)\n",
			max(report.MaxCPIErr, report.MaxEPIErr)*100, report.Speedup)
		return
	}

	if err := opts.AttachCache(*cacheDir); err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		os.Exit(1)
	}

	emit := func(res wire.ExperimentResult) {
		if !*jsonOut {
			fmt.Print(res.Output)
			return
		}
		b, err := wire.EncodeExperiment(res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(b)
	}

	static := map[string]func() string{
		"table1": bench.Table1, "table2": bench.Table2, "table3": bench.Table3,
		"table4": bench.Table4, "table5": bench.Table5,
	}
	if f, ok := static[*exp]; ok {
		emit(wire.ExperimentResult{Experiment: *exp, Output: f()})
		return
	}

	switch *exp {
	case "table6", "fig4", "headline", "all":
		emit(wire.FromComparisons(*exp, opts.RunAll()))
	default:
		fmt.Fprintf(os.Stderr, "mcdbench: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}

// runOnServer submits one experiment to a running mcdserve, polls the
// job to a terminal state, and prints the result body: the raw
// canonical encoding with jsonOut, the human-readable report text
// otherwise. Exit codes mirror the in-process path.
func runOnServer(base string, req wire.ExperimentRequest, jsonOut, quiet bool) int {
	client := &http.Client{Timeout: 30 * time.Second}
	body, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		return 1
	}
	resp, err := client.Post(base+"/v1/experiments", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		return 1
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		fmt.Fprintf(os.Stderr, "mcdbench: submit: status %d: %s\n", resp.StatusCode, strings.TrimSpace(string(raw)))
		return 1
	}
	var snap service.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil || snap.ID == "" {
		fmt.Fprintf(os.Stderr, "mcdbench: submit: unexpected response %q\n", strings.TrimSpace(string(raw)))
		return 1
	}
	for !snap.Terminal() {
		time.Sleep(250 * time.Millisecond)
		r, err := client.Get(base + "/v1/jobs/" + snap.ID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcdbench: poll: %v\n", err)
			return 1
		}
		err = json.NewDecoder(r.Body).Decode(&snap)
		r.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcdbench: poll: %v\n", err)
			return 1
		}
		if !quiet && snap.Total > 0 {
			fmt.Fprintf(os.Stderr, "\r%s %d/%d %s        ", snap.ID, snap.Done, snap.Total, snap.Task)
		}
	}
	if !quiet {
		fmt.Fprintln(os.Stderr)
	}
	if snap.State == service.Failed {
		fmt.Fprintf(os.Stderr, "mcdbench: job %s failed: %s\n", snap.ID, snap.Error)
		return 1
	}
	r, err := client.Get(base + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: result: %v\n", err)
		return 1
	}
	defer r.Body.Close()
	out, err := io.ReadAll(r.Body)
	if err != nil || r.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "mcdbench: result: status %d: %v\n", r.StatusCode, err)
		return 1
	}
	if jsonOut {
		os.Stdout.Write(out)
		return 0
	}
	var res wire.ExperimentResult
	if err := json.Unmarshal(out, &res); err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: result: %v\n", err)
		return 1
	}
	fmt.Print(res.Output)
	return 0
}

// runBenchJSON measures the hot-path benchmarks, prints the report, and
// gates it against the committed baseline when one is given: the alloc
// counts are exact; wall time only fails on a blowout (CI machines are
// noisy — see bench.PerfReport.CheckAgainst for the tolerances).
func runBenchJSON(baselinePath string) int {
	report := bench.MeasurePerf()
	out, err := report.Encode()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		return 1
	}
	os.Stdout.Write(out)
	if baselinePath == "" {
		return 0
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		return 1
	}
	base, err := bench.DecodePerfReport(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcdbench: %v\n", err)
		return 1
	}
	if fails := report.CheckAgainst(base); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "mcdbench: perf regression: %s\n", f)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "mcdbench: perf gate passed against %s\n", baselinePath)
	return 0
}
