package workload

// Benchmark is one row of Table 5: a named workload with its suite, the
// dataset/window documentation from the paper, and the synthetic profile
// standing in for the binary.
type Benchmark struct {
	Name     string
	Suite    string
	Datasets string // dataset and simulation-window note from Table 5
	// PaperWindowM is the paper's simulated instruction count in millions
	// (summed across datasets), used to document the window scaling.
	PaperWindowM float64
	Profile      Profile
}

// Suites.
const (
	SuiteMediaBench = "MediaBench"
	SuiteOlden      = "Olden"
	SuiteSpecInt    = "Spec2000Int"
	SuiteSpecFP     = "Spec2000FP"
)

// intMix builds a no-FP mix with the given ALU/mul/load/store/branch split.
func intMix(alu, mul, ld, st, br float64) Mix {
	return Mix{IntALU: alu, IntMul: mul, Load: ld, Store: st, Branch: br}
}

// EpicDecodeProfile is the `epic decode` model used by Figures 2 and 3: the
// floating-point unit is idle except during two distinct bursts, and the
// load/store stream shifts working set between phases.
func EpicDecodeProfile() Profile {
	intPhase := Phase{
		Mix:        intMix(0.50, 0.03, 0.22, 0.10, 0.15),
		WorkingSet: 256 << 10, StrideFrac: 0.85, DepMean: 5,
	}
	fpPhase := Phase{
		Mix: Mix{IntALU: 0.30, IntMul: 0.02, FPAdd: 0.22, FPMul: 0.13, FPDiv: 0.02,
			Load: 0.18, Store: 0.08, Branch: 0.05},
		WorkingSet: 512 << 10, StrideFrac: 0.90, DepMean: 5,
	}
	p1, p2, p3, p4, p5 := intPhase, fpPhase, intPhase, fpPhase, intPhase
	p1.Frac, p2.Frac, p3.Frac, p4.Frac, p5.Frac = 0.18, 0.22, 0.22, 0.20, 0.18
	// The middle integer phase hammers the load/store queue harder, which
	// produces the utilization-difference activity of Figure 2.
	p3.Mix = intMix(0.42, 0.02, 0.30, 0.12, 0.14)
	p3.WorkingSet = 2 << 20
	p3.StrideFrac = 0.55
	return Profile{Name: "epic.decode", Phases: []Phase{p1, p2, p3, p4, p5}, Seed: 0xe71c}
}

// Catalog returns the 30 benchmarks of Table 5 in the paper's order.
func Catalog() []Benchmark {
	media := []Benchmark{
		{
			Name: "adpcm", Suite: SuiteMediaBench,
			Datasets: "ref: encode (6.6M), decode (5.5M)", PaperWindowM: 12.1,
			Profile: Profile{Name: "adpcm", Seed: 0xad, Phases: []Phase{{
				Mix: intMix(0.55, 0.02, 0.18, 0.10, 0.15), WorkingSet: 16 << 10,
				StrideFrac: 0.9, CodeBytes: 4 << 10, BranchSites: 64,
				RandomSiteFrac: 0.02, DepMean: 4,
			}}},
		},
		{
			Name: "epic", Suite: SuiteMediaBench,
			Datasets: "ref: encode (53M), decode (6.7M)", PaperWindowM: 59.7,
			Profile: EpicDecodeProfile(),
		},
		{
			Name: "jpeg", Suite: SuiteMediaBench,
			Datasets: "ref: compress (15.5M), decompress (4.6M)", PaperWindowM: 20.1,
			Profile: Profile{Name: "jpeg", Seed: 0x10e6, Phases: []Phase{{
				Mix: intMix(0.48, 0.08, 0.20, 0.12, 0.12), WorkingSet: 128 << 10,
				StrideFrac: 0.85, BranchSites: 128, DepMean: 6,
			}}},
		},
		{
			Name: "g721", Suite: SuiteMediaBench,
			Datasets: "ref: encode (0-200M), decode (0-200M)", PaperWindowM: 400,
			Profile: Profile{Name: "g721", Seed: 0x721, Phases: []Phase{{
				Mix: intMix(0.58, 0.04, 0.15, 0.08, 0.15), WorkingSet: 8 << 10,
				StrideFrac: 0.9, CodeBytes: 8 << 10, DepMean: 4,
			}}},
		},
		{
			Name: "gsm", Suite: SuiteMediaBench,
			Datasets: "ref: encode (0-200M), decode (0-74M)", PaperWindowM: 274,
			Profile: Profile{Name: "gsm", Seed: 0x95a, Phases: []Phase{{
				Mix: intMix(0.56, 0.06, 0.15, 0.08, 0.15), WorkingSet: 16 << 10,
				StrideFrac: 0.9, DepMean: 5,
			}}},
		},
		{
			Name: "ghostscript", Suite: SuiteMediaBench,
			Datasets: "ref: 0-200M", PaperWindowM: 200,
			Profile: Profile{Name: "ghostscript", Seed: 0x905, Phases: []Phase{{
				Mix: Mix{IntALU: 0.45, IntMul: 0.02, FPAdd: 0.03, FPMul: 0.02,
					Load: 0.25, Store: 0.10, Branch: 0.13},
				WorkingSet: 1 << 20, StrideFrac: 0.6, CodeBytes: 128 << 10,
				BranchSites: 1024, RandomSiteFrac: 0.08, DepMean: 6,
			}}},
		},
		{
			Name: "mesa", Suite: SuiteMediaBench,
			Datasets: "ref: mipmap (44.7M), osdemo (7.6M), osdemo (75.8M)", PaperWindowM: 128.1,
			Profile: Profile{Name: "mesa", Seed: 0x3e5a, Phases: []Phase{
				{Frac: 0.6, Mix: Mix{IntALU: 0.35, IntMul: 0.02, FPAdd: 0.18, FPMul: 0.12,
					FPDiv: 0.02, Load: 0.18, Store: 0.08, Branch: 0.05},
					WorkingSet: 512 << 10, StrideFrac: 0.8, DepMean: 6},
				{Frac: 0.4, Mix: intMix(0.46, 0.03, 0.24, 0.12, 0.15),
					WorkingSet: 256 << 10, StrideFrac: 0.8, DepMean: 6},
			}},
		},
		{
			Name: "mpeg2", Suite: SuiteMediaBench,
			Datasets: "ref: encode (0-171M), decode (0-200M)", PaperWindowM: 371,
			Profile: Profile{Name: "mpeg2", Seed: 0x3be9, Phases: []Phase{{
				Mix: Mix{IntALU: 0.46, IntMul: 0.06, FPAdd: 0.02, FPMul: 0.02,
					Load: 0.24, Store: 0.08, Branch: 0.12},
				WorkingSet: 512 << 10, StrideFrac: 0.85, DepMean: 7,
			}}},
		},
		{
			Name: "pegwit", Suite: SuiteMediaBench,
			Datasets: "ref: encrypt key (12.3M), encrypt (32.4M), decrypt (17.7M)", PaperWindowM: 62.4,
			Profile: Profile{Name: "pegwit", Seed: 0xbe9, Phases: []Phase{{
				Mix: intMix(0.50, 0.10, 0.20, 0.08, 0.12), WorkingSet: 64 << 10,
				StrideFrac: 0.8, DepMean: 4,
			}}},
		},
	}

	olden := []Benchmark{
		{
			Name: "bh", Suite: SuiteOlden,
			Datasets: "2048 1: 0-200M", PaperWindowM: 200,
			Profile: Profile{Name: "bh", Seed: 0xb4, Phases: []Phase{{
				Mix: Mix{IntALU: 0.32, IntMul: 0.02, FPAdd: 0.16, FPMul: 0.12, FPDiv: 0.03,
					Load: 0.22, Store: 0.06, Branch: 0.07},
				WorkingSet: 2 << 20, StrideFrac: 0.4, ChaseFrac: 0.3, DepMean: 4,
			}}},
		},
		{
			Name: "bisort", Suite: SuiteOlden,
			Datasets: "65000 0: entire program (127M)", PaperWindowM: 127,
			Profile: Profile{Name: "bisort", Seed: 0xb150, Phases: []Phase{{
				Mix: intMix(0.45, 0, 0.28, 0.12, 0.15), WorkingSet: 2 << 20,
				StrideFrac: 0.3, ChaseFrac: 0.5, DepMean: 4,
			}}},
		},
		{
			Name: "em3d", Suite: SuiteOlden,
			Datasets: "4000 10: 70M-119M (49M)", PaperWindowM: 49,
			Profile: Profile{Name: "em3d", Seed: 0xe3d, Phases: []Phase{{
				Mix: Mix{IntALU: 0.35, FPAdd: 0.08, FPMul: 0.05,
					Load: 0.35, Store: 0.05, Branch: 0.12},
				WorkingSet: 8 << 20, StrideFrac: 0.2, ChaseFrac: 0.6, DepMean: 3,
			}}},
		},
		{
			Name: "health", Suite: SuiteOlden,
			Datasets: "4 1000 1: 80M-127M (47M)", PaperWindowM: 47,
			Profile: Profile{Name: "health", Seed: 0x4ea1, Phases: []Phase{{
				Mix: intMix(0.40, 0, 0.32, 0.13, 0.15), WorkingSet: 4 << 20,
				StrideFrac: 0.2, ChaseFrac: 0.6, DepMean: 3,
			}}},
		},
		{
			Name: "mst", Suite: SuiteOlden,
			Datasets: "1024 1: 70M-170M (100M)", PaperWindowM: 100,
			Profile: Profile{Name: "mst", Seed: 0x357, Phases: []Phase{{
				Mix: intMix(0.42, 0, 0.30, 0.10, 0.18), WorkingSet: 4 << 20,
				StrideFrac: 0.25, ChaseFrac: 0.55, DepMean: 4,
			}}},
		},
		{
			Name: "perimeter", Suite: SuiteOlden,
			Datasets: "12 1: 0-200M", PaperWindowM: 200,
			Profile: Profile{Name: "perimeter", Seed: 0xbe2, Phases: []Phase{{
				Mix: intMix(0.44, 0, 0.26, 0.10, 0.20), WorkingSet: 2 << 20,
				StrideFrac: 0.3, ChaseFrac: 0.5, DepMean: 4,
			}}},
		},
		{
			Name: "power", Suite: SuiteOlden,
			Datasets: "1 1: 0-200M", PaperWindowM: 200,
			Profile: Profile{Name: "power", Seed: 0xb0e2, Phases: []Phase{{
				Mix: Mix{IntALU: 0.34, IntMul: 0.02, FPAdd: 0.20, FPMul: 0.14, FPDiv: 0.04,
					Load: 0.15, Store: 0.06, Branch: 0.05},
				WorkingSet: 256 << 10, StrideFrac: 0.7, DepMean: 5,
			}}},
		},
		{
			Name: "treeadd", Suite: SuiteOlden,
			Datasets: "20 1: entire program (189M)", PaperWindowM: 189,
			Profile: Profile{Name: "treeadd", Seed: 0x72ee, Phases: []Phase{{
				Mix: intMix(0.40, 0, 0.30, 0.12, 0.18), WorkingSet: 4 << 20,
				StrideFrac: 0.25, ChaseFrac: 0.6, DepMean: 4,
			}}},
		},
		{
			Name: "tsp", Suite: SuiteOlden,
			Datasets: "100000 1: 0-200M", PaperWindowM: 200,
			Profile: Profile{Name: "tsp", Seed: 0x75b, Phases: []Phase{{
				Mix: Mix{IntALU: 0.36, IntMul: 0.02, FPAdd: 0.14, FPMul: 0.12, FPDiv: 0.03,
					Load: 0.20, Store: 0.06, Branch: 0.07},
				WorkingSet: 1 << 20, StrideFrac: 0.45, ChaseFrac: 0.35, DepMean: 5,
			}}},
		},
		{
			Name: "voronoi", Suite: SuiteOlden,
			Datasets: "60000 1 0: 0-200M", PaperWindowM: 200,
			Profile: Profile{Name: "voronoi", Seed: 0x6020, Phases: []Phase{{
				Mix: Mix{IntALU: 0.38, IntMul: 0.02, FPAdd: 0.10, FPMul: 0.08, FPDiv: 0.04,
					Load: 0.22, Store: 0.08, Branch: 0.08},
				WorkingSet: 2 << 20, StrideFrac: 0.4, ChaseFrac: 0.4, DepMean: 5,
			}}},
		},
	}

	specInt := []Benchmark{
		{
			Name: "bzip2", Suite: SuiteSpecInt,
			Datasets: "source 58: 1000M-1100M", PaperWindowM: 100,
			Profile: Profile{Name: "bzip2", Seed: 0xb2, Phases: []Phase{{
				Mix: intMix(0.50, 0.02, 0.24, 0.10, 0.14), WorkingSet: 4 << 20,
				StrideFrac: 0.55, RandomSiteFrac: 0.10, BranchSites: 512, DepMean: 6,
			}}},
		},
		{
			Name: "gcc", Suite: SuiteSpecInt,
			Datasets: "166.i: 2000M-2100M", PaperWindowM: 100,
			Profile: Profile{Name: "gcc", Seed: 0x9cc, Phases: []Phase{{
				Mix: intMix(0.44, 0.01, 0.24, 0.12, 0.19), WorkingSet: 4 << 20,
				StrideFrac: 0.5, ChaseFrac: 0.15, CodeBytes: 256 << 10,
				BranchSites: 4096, RandomSiteFrac: 0.06, DepMean: 6,
			}}},
		},
		{
			Name: "gzip", Suite: SuiteSpecInt,
			Datasets: "source 60: 1000M-1100M", PaperWindowM: 100,
			Profile: Profile{Name: "gzip", Seed: 0x921b, Phases: []Phase{{
				Mix: intMix(0.50, 0.01, 0.22, 0.11, 0.16), WorkingSet: 512 << 10,
				StrideFrac: 0.6, RandomSiteFrac: 0.08, BranchSites: 512, DepMean: 5,
			}}},
		},
		{
			Name: "mcf", Suite: SuiteSpecInt,
			Datasets: "ref: 1000M-1100M", PaperWindowM: 100,
			Profile: Profile{Name: "mcf", Seed: 0x3cf, Phases: []Phase{{
				Mix: intMix(0.38, 0, 0.34, 0.08, 0.20), WorkingSet: 32 << 20,
				StrideFrac: 0.1, ChaseFrac: 0.7, RandomSiteFrac: 0.25,
				BranchSites: 1024, DepMean: 3,
			}}},
		},
		{
			Name: "parser", Suite: SuiteSpecInt,
			Datasets: "ref: 1000M-1100M", PaperWindowM: 100,
			Profile: Profile{Name: "parser", Seed: 0xba2, Phases: []Phase{{
				Mix: intMix(0.46, 0.01, 0.24, 0.10, 0.19), WorkingSet: 2 << 20,
				StrideFrac: 0.45, ChaseFrac: 0.3, RandomSiteFrac: 0.10,
				BranchSites: 2048, DepMean: 5,
			}}},
		},
		{
			Name: "vortex", Suite: SuiteSpecInt,
			Datasets: "ref: 1000M-1100M", PaperWindowM: 100,
			Profile: Profile{Name: "vortex", Seed: 0x602e, Phases: []Phase{{
				Mix: intMix(0.44, 0.01, 0.26, 0.12, 0.17), WorkingSet: 4 << 20,
				StrideFrac: 0.5, ChaseFrac: 0.2, CodeBytes: 128 << 10,
				BranchSites: 2048, DepMean: 6,
			}}},
		},
		{
			Name: "vpr", Suite: SuiteSpecInt,
			Datasets: "ref: 1000M-1100M", PaperWindowM: 100,
			Profile: Profile{Name: "vpr", Seed: 0x6b2, Phases: []Phase{{
				Mix: Mix{IntALU: 0.44, IntMul: 0.02, FPAdd: 0.03, FPMul: 0.02,
					Load: 0.24, Store: 0.10, Branch: 0.15},
				WorkingSet: 2 << 20, StrideFrac: 0.45, ChaseFrac: 0.25,
				RandomSiteFrac: 0.10, BranchSites: 1024, DepMean: 5,
			}}},
		},
	}

	specFP := []Benchmark{
		{
			Name: "art", Suite: SuiteSpecFP,
			Datasets: "ref: 300M-400M", PaperWindowM: 100,
			Profile: Profile{Name: "art", Seed: 0xa27, Phases: []Phase{{
				Mix: Mix{IntALU: 0.28, IntMul: 0.01, FPAdd: 0.22, FPMul: 0.16, FPDiv: 0.01,
					Load: 0.22, Store: 0.05, Branch: 0.05},
				WorkingSet: 8 << 20, StrideFrac: 0.75, DepMean: 5,
			}}},
		},
		{
			Name: "equake", Suite: SuiteSpecFP,
			Datasets: "ref: 1000M-1100M", PaperWindowM: 100,
			Profile: Profile{Name: "equake", Seed: 0xe9e, Phases: []Phase{{
				Mix: Mix{IntALU: 0.30, IntMul: 0.01, FPAdd: 0.20, FPMul: 0.14, FPDiv: 0.03,
					Load: 0.22, Store: 0.05, Branch: 0.05},
				WorkingSet: 8 << 20, StrideFrac: 0.6, ChaseFrac: 0.2, DepMean: 4,
			}}},
		},
		{
			Name: "mesa.spec", Suite: SuiteSpecFP,
			Datasets: "ref: 1000M-1100M", PaperWindowM: 100,
			Profile: Profile{Name: "mesa.spec", Seed: 0x3e5b, Phases: []Phase{{
				Mix: Mix{IntALU: 0.34, IntMul: 0.02, FPAdd: 0.18, FPMul: 0.12, FPDiv: 0.02,
					Load: 0.19, Store: 0.08, Branch: 0.05},
				WorkingSet: 1 << 20, StrideFrac: 0.8, DepMean: 6,
			}}},
		},
		{
			Name: "swim", Suite: SuiteSpecFP,
			Datasets: "ref: 1000M-1100M", PaperWindowM: 100,
			Profile: Profile{Name: "swim", Seed: 0x5013, Phases: []Phase{{
				Mix: Mix{IntALU: 0.24, IntMul: 0.01, FPAdd: 0.26, FPMul: 0.18, FPDiv: 0.01,
					Load: 0.20, Store: 0.05, Branch: 0.05},
				WorkingSet: 16 << 20, StrideFrac: 0.9, DepMean: 7,
			}}},
		},
	}

	out := make([]Benchmark, 0, 30)
	out = append(out, media...)
	out = append(out, olden...)
	out = append(out, specInt...)
	out = append(out, specFP...)
	return out
}

// Lookup finds a benchmark by name. The special name "epic.decode" returns
// the decode-only profile used by Figures 2 and 3.
func Lookup(name string) (Benchmark, bool) {
	if name == "epic.decode" {
		return Benchmark{
			Name: "epic.decode", Suite: SuiteMediaBench,
			Datasets: "ref: decode (6.7M)", PaperWindowM: 6.7,
			Profile: EpicDecodeProfile(),
		}, true
	}
	for _, b := range Catalog() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
