module mcd

go 1.24
