package dvfs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultScaleEndpoints(t *testing.T) {
	s := DefaultScale()
	if s.Points() != 320 {
		t.Fatalf("points = %d, want 320", s.Points())
	}
	lo := s.Quantize(0)
	if lo.FreqMHz != 250 || math.Abs(lo.Voltage-0.65) > 1e-12 {
		t.Errorf("low point = %+v, want 250 MHz / 0.65 V", lo)
	}
	hi := s.Quantize(5000)
	if hi.FreqMHz != 1000 || math.Abs(hi.Voltage-1.20) > 1e-12 {
		t.Errorf("high point = %+v, want 1000 MHz / 1.20 V", hi)
	}
}

func TestScaleStepSpacing(t *testing.T) {
	s := DefaultScale()
	want := 750.0 / 319.0
	if math.Abs(s.StepMHz()-want) > 1e-9 {
		t.Errorf("step = %v MHz, want %v", s.StepMHz(), want)
	}
}

func TestQuantizeSnapsToNearest(t *testing.T) {
	s := DefaultScale()
	step := s.StepMHz()
	f := 250 + 10*step + 0.4*step
	if got := s.Quantize(f).FreqMHz; math.Abs(got-(250+10*step)) > 1e-9 {
		t.Errorf("quantize(%v) = %v, want %v", f, got, 250+10*step)
	}
	f = 250 + 10*step + 0.6*step
	if got := s.Quantize(f).FreqMHz; math.Abs(got-(250+11*step)) > 1e-9 {
		t.Errorf("quantize(%v) = %v, want %v", f, got, 250+11*step)
	}
}

func TestVoltageLinearMidpoint(t *testing.T) {
	s := DefaultScale()
	if v := s.VoltageAt(625); math.Abs(v-0.925) > 1e-12 {
		t.Errorf("voltage at 625 MHz = %v, want 0.925", v)
	}
}

func TestNewScalePanicsOnBadParams(t *testing.T) {
	cases := []func(){
		func() { NewScale(1, 250, 1000, 0.65, 1.2) },
		func() { NewScale(320, 1000, 250, 0.65, 1.2) },
		func() { NewScale(320, 250, 1000, 1.2, 0.65) },
		func() { NewScale(320, 0, 1000, 0.65, 1.2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRegulatorSlewDuration(t *testing.T) {
	r := NewRegulator(DefaultScale(), 1000, DefaultSlewNsPerMHz)
	r.SetTargetMHz(250)
	if !r.Transitioning() {
		t.Fatal("regulator should be transitioning")
	}
	// Full swing is 750 MHz * 49.1 ns/MHz = 36,825 ns.
	var elapsedPS float64
	const dt = 1000.0 // 1 ns steps
	for r.Transitioning() {
		r.Step(dt)
		elapsedPS += dt
		if elapsedPS > 1e9 {
			t.Fatal("transition never completed")
		}
	}
	wantNS := 750 * 49.1
	if gotNS := elapsedPS / 1000; math.Abs(gotNS-wantNS) > 2 {
		t.Errorf("transition took %v ns, want ~%v", gotNS, wantNS)
	}
	if r.CurrentMHz() != 250 {
		t.Errorf("final frequency %v, want 250", r.CurrentMHz())
	}
}

func TestRegulatorUpwardSlew(t *testing.T) {
	r := NewRegulator(DefaultScale(), 250, DefaultSlewNsPerMHz)
	r.SetTargetMHz(500)
	prevV := r.Voltage()
	for r.Transitioning() {
		r.Step(49.1 * 1000) // exactly 1 MHz per step
		if v := r.Voltage(); v < prevV {
			t.Fatal("voltage decreased during upward transition")
		} else {
			prevV = v
		}
	}
	got := r.CurrentMHz()
	want := DefaultScale().Quantize(500).FreqMHz
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("final = %v, want %v", got, want)
	}
}

func TestRegulatorZeroSlewIsInstant(t *testing.T) {
	r := NewRegulator(DefaultScale(), 1000, 0)
	r.SetTargetMHz(250)
	r.Step(1)
	if r.CurrentMHz() != 250 {
		t.Errorf("instant regulator at %v, want 250", r.CurrentMHz())
	}
}

func TestRegulatorTransitionCountIgnoresNoops(t *testing.T) {
	r := NewRegulator(DefaultScale(), 1000, DefaultSlewNsPerMHz)
	r.SetTargetMHz(1000) // same point: no-op
	if r.Transitions() != 0 {
		t.Errorf("transitions = %d, want 0", r.Transitions())
	}
	r.SetTargetMHz(900)
	r.SetTargetMHz(900) // quantizes to the same point: no-op
	if r.Transitions() != 1 {
		t.Errorf("transitions = %d, want 1", r.Transitions())
	}
}

// Property: quantize is idempotent and always lands on a legal point with
// the voltage given by the linear map.
func TestQuantizeIdempotentProperty(t *testing.T) {
	s := DefaultScale()
	f := func(raw float64) bool {
		fMHz := math.Mod(math.Abs(raw), 2000)
		p := s.Quantize(fMHz)
		q := s.Quantize(p.FreqMHz)
		if math.Abs(p.FreqMHz-q.FreqMHz) > 1e-9 {
			return false
		}
		if p.FreqMHz < 250-1e-9 || p.FreqMHz > 1000+1e-9 {
			return false
		}
		return math.Abs(p.Voltage-s.VoltageAt(p.FreqMHz)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: stepping never overshoots the target.
func TestRegulatorNeverOvershootsProperty(t *testing.T) {
	s := DefaultScale()
	f := func(startSel, targetSel uint16, dtRaw uint32) bool {
		start := 250 + float64(startSel%320)*s.StepMHz()
		target := 250 + float64(targetSel%320)*s.StepMHz()
		dt := float64(dtRaw%1000000) + 1
		r := NewRegulator(s, start, DefaultSlewNsPerMHz)
		r.SetTargetMHz(target)
		lo, hi := math.Min(start, target), math.Max(start, target)
		for i := 0; i < 200 && r.Transitioning(); i++ {
			c := r.Step(dt)
			if c < lo-1e-9 || c > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
