// Package journal is the persistent job log behind crash-safe
// mcdserve: every submitted job's request and every state transition is
// appended, fsynced, to an NDJSON file, so a restarted process can
// replay the log and re-queue whatever was queued or running when the
// previous one died. Determinism makes this cheap — a journaled job is
// just its wire-encoded request, and rerunning it yields byte-identical
// results (completed cells hit the result cache, so replay rarely even
// simulates).
//
// Records are one JSON object per line:
//
//	{"t":"submit","job":{"id":"j000001","kind":"run","client":"a","run":{...}}}
//	{"t":"state","id":"j000001","state":"running"}
//
// Append-only with per-record fsync means a crash can lose at most the
// record being written; a torn trailing line is tolerated on replay.
// Compaction — at open, and whenever the caller asks after enough
// terminal jobs accumulate — rewrites the file to just the live jobs'
// submit records with the same atomic temp-file + rename + directory
// fsync discipline the result cache's disk tier uses, so the log is
// bounded by the live job set, not by server uptime.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mcd/internal/wire"
)

// Job kinds a Submit record can carry. They mirror the service's
// submission entry points; the journal only stores and replays them.
const (
	KindRun        = "run"
	KindStream     = "stream"
	KindBatch      = "batch"
	KindExperiment = "experiment"
)

// Submit is the replayable description of one job: everything the
// service needs to reconstruct and re-queue it after a restart.
// Exactly one of Run, Runs and Experiment is set, matching Kind.
type Submit struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Client string `json:"client,omitempty"`

	Run        *wire.RunRequest        `json:"run,omitempty"`
	Runs       []wire.RunRequest       `json:"runs,omitempty"`
	Experiment *wire.ExperimentRequest `json:"experiment,omitempty"`
}

// record is one journal line.
type record struct {
	T     string  `json:"t"`
	Job   *Submit `json:"job,omitempty"`   // t=submit
	ID    string  `json:"id,omitempty"`    // t=state, t=result
	State string  `json:"state,omitempty"` // t=state
	Body  []byte  `json:"body,omitempty"`  // t=result (base64; exact bytes round-trip)
}

// CompletedJob is a finished job recovered from the journal: its
// submission plus the exact result bytes it produced. The service
// restores these as Done jobs so a restart does not lose results that
// no cache tier could reproduce (uncacheable controllers, cache-less
// servers).
type CompletedJob struct {
	Submit Submit
	Body   []byte
}

// MaxResultBytes bounds one journaled result body — comfortably under
// maxRecordBytes after base64 framing. Larger results are simply not
// journaled (the job still completes; only replay-as-Done is lost).
const MaxResultBytes = 1 << 20

// Terminal states as the journal understands them: a job whose last
// state record is one of these is never replayed and is dropped at the
// next compaction. The strings match service.State values, but the
// journal treats them opaquely except for this test.
var terminalStates = map[string]bool{"done": true, "failed": true}

func isTerminal(state string) bool { return terminalStates[state] }

// Journal is an open job log. All methods are safe for concurrent use.
// A nil *Journal is valid everywhere and records nothing, so the
// service needs no conditionals around its append calls.
type Journal struct {
	path string

	mu        sync.Mutex
	f         *os.File
	pending   []Submit       // live jobs found at Open, submission order
	completed []CompletedJob // done jobs with journaled results found at Open
	terminal  int            // terminal state records appended since last compaction
	closed    bool
}

// CompactEvery is how many terminal-state records may accumulate before
// ShouldCompact suggests a rewrite: large enough that compaction cost
// is amortized over many jobs, small enough that the log stays within a
// few hundred records of the live set.
const CompactEvery = 256

// Open reads (or creates) the journal at path, replays it, compacts it
// down to the live jobs' submit records, and returns it ready for
// appends. The live set is available from Pending, in original
// submission order.
func Open(path string) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	pending, completed, err := replay(path)
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, pending: pending, completed: completed}
	// Compact immediately: the replayed file may be mostly terminal
	// history, and rewriting now means the new process starts from a log
	// that is exactly its live set.
	if err := j.rewrite(pending); err != nil {
		return nil, err
	}
	return j, nil
}

// replay reads every well-formed record and reduces them to two sets:
// the live submits (jobs with no terminal state record, in submission
// order) and the completed jobs whose result bytes were journaled
// (last terminal state "done" plus a result record). A torn trailing
// line (the crash interrupted an append) is skipped; a malformed line
// elsewhere is skipped too rather than holding the whole log hostage —
// the worst case is forgetting one job, never serving a corrupted one.
func replay(path string) ([]Submit, []CompletedJob, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	var (
		order  []string
		subs   = map[string]Submit{}
		state  = map[string]string{}
		bodies = map[string][]byte{}
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), maxRecordBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec record
		if json.Unmarshal(line, &rec) != nil {
			continue
		}
		switch rec.T {
		case "submit":
			if rec.Job == nil || rec.Job.ID == "" {
				continue
			}
			if _, seen := subs[rec.Job.ID]; !seen {
				order = append(order, rec.Job.ID)
			}
			subs[rec.Job.ID] = *rec.Job
		case "state":
			if isTerminal(rec.State) {
				state[rec.ID] = rec.State
			}
		case "result":
			if rec.ID != "" && len(rec.Body) > 0 && len(rec.Body) <= MaxResultBytes {
				bodies[rec.ID] = rec.Body
			}
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	byID := func(a, b string) bool {
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	}
	var live []Submit
	var done []CompletedJob
	for _, id := range order {
		switch {
		case state[id] == "":
			live = append(live, subs[id])
		case state[id] == "done" && bodies[id] != nil:
			done = append(done, CompletedJob{Submit: subs[id], Body: bodies[id]})
		}
	}
	sort.SliceStable(live, func(a, b int) bool { return byID(live[a].ID, live[b].ID) })
	sort.SliceStable(done, func(a, b int) bool { return byID(done[a].Submit.ID, done[b].Submit.ID) })
	return live, done, nil
}

// maxRecordBytes bounds one journal line on replay. The largest
// legitimate record is a full batch submit, which the service bounds
// well under its 1 MiB request-body cap; lines beyond this are treated
// as corruption.
const maxRecordBytes = 4 << 20

// Pending returns the jobs that were queued or running when the journal
// was last opened — the replay set, in submission order. The slice is
// the journal's own; callers must not mutate it.
func (j *Journal) Pending() []Submit {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pending
}

// Completed returns the finished jobs whose result bytes survived in
// the journal at last open — the replay-as-Done set. Results live in
// the log only until the next compaction (Open compacts immediately),
// so the set covers completions since the previous restart, which is
// exactly the window a crash can lose. The slice is the journal's own;
// callers must not mutate it.
func (j *Journal) Completed() []CompletedJob {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.completed
}

// Submit appends a job's submit record.
func (j *Journal) Submit(s Submit) error {
	return j.append(record{T: "submit", Job: &s})
}

// Result appends the completed result bytes for job id, so a restart
// can replay the job as Done with the exact bytes it produced — the
// persistence tier for results no cache could reproduce. Bodies over
// MaxResultBytes are rejected.
func (j *Journal) Result(id string, body []byte) error {
	if j == nil {
		return nil
	}
	if len(body) > MaxResultBytes {
		return fmt.Errorf("journal: result body %d bytes exceeds the %d-byte bound", len(body), MaxResultBytes)
	}
	return j.append(record{T: "result", ID: id, Body: body})
}

// State appends a state transition for job id.
func (j *Journal) State(id, state string) error {
	if j == nil {
		return nil
	}
	err := j.append(record{T: "state", ID: id, State: state})
	if err == nil && isTerminal(state) {
		j.mu.Lock()
		j.terminal++
		j.mu.Unlock()
	}
	return err
}

// ShouldCompact reports whether enough terminal history has accumulated
// since the last compaction to be worth rewriting. The caller (which
// owns the live job set) follows up with Compact.
func (j *Journal) ShouldCompact() bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.terminal >= CompactEvery
}

// Compact rewrites the journal to exactly the given live jobs' submit
// records, dropping all terminal history.
func (j *Journal) Compact(live []Submit) error {
	if j == nil {
		return nil
	}
	return j.rewrite(live)
}

// append writes one NDJSON record and fsyncs it, so an acknowledged
// submission survives an immediate power cut. The file is opened lazily
// (Open compacts first, which replaces the handle anyway).
func (j *Journal) append(rec record) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	if j.f == nil {
		f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		j.f = f
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// rewrite atomically replaces the log with the given submit records:
// temp file in the same directory, fsync, rename over the log, fsync
// the directory — the same discipline as the result cache's disk tier,
// so a crash mid-compaction leaves either the old complete log or the
// new one, never a mix.
func (j *Journal) rewrite(live []Submit) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, "journal-*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for i := range live {
		s := live[i]
		b, err := json.Marshal(record{T: "submit", Job: &s})
		if err == nil {
			_, err = w.Write(append(b, '\n'))
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("journal: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	// Future appends go to the freshly compacted file.
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	j.terminal = 0
	return nil
}

// Close releases the file handle. Further appends fail; a crash-style
// shutdown that must not write anything more uses Close alone.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true
	if j.f != nil {
		err := j.f.Close()
		j.f = nil
		return err
	}
	return nil
}
