package bench

import "context"

// Cell is the wire-free description of one grid cell the Exec hook
// receives: everything needed to re-execute the cell out of process,
// plus the content address the harness derived for it. It is wire-free
// by necessity — internal/wire imports this package, so the dispatch
// hook cannot speak wire types; the serving layer converts a Cell into
// its wire.RunRequest (wire.CellRequest) and the two address spaces
// provably coincide.
type Cell struct {
	Label      string             `json:"label"`
	Key        string             `json:"key"`
	Benchmark  string             `json:"benchmark"`
	Controller string             `json:"controller"`
	Params     map[string]float64 `json:"params,omitempty"`
	Window     uint64             `json:"window"`
	Warmup     uint64             `json:"warmup"`
	Interval   uint64             `json:"interval"`
	Slew       float64            `json:"slew"`
	// Fidelity and SampleEvery carry the cell's simulation tier (empty:
	// exact), so a sampled cell dispatched to a fabric worker re-executes
	// at the tier it was keyed under.
	Fidelity    string `json:"fidelity,omitempty"`
	SampleEvery int    `json:"sample_every,omitempty"`
}

// ExecFunc executes one grid cell out of process and returns its
// canonical result encoding. The harness decodes the bytes, so a
// dispatched cell is byte-identical to a locally computed one by the
// determinism contract; the hook owns cache probing and storing (the
// harness's own Cache is not consulted for dispatched cells).
type ExecFunc func(ctx context.Context, c Cell) ([]byte, error)

// cell assembles the Cell description of one registry-resolved grid
// cell from the harness scale and the cell's own identity. Params are
// copied: callers reuse their maps across cells.
func (o Options) cell(label, bench, ctrl, key string, p map[string]float64) Cell {
	var params map[string]float64
	if len(p) > 0 {
		params = make(map[string]float64, len(p))
		for k, v := range p {
			params[k] = v
		}
	}
	return Cell{
		Label:       label,
		Key:         key,
		Benchmark:   bench,
		Controller:  ctrl,
		Params:      params,
		Window:      o.Window,
		Warmup:      o.Warmup,
		Interval:    o.IntervalLength,
		Slew:        o.SlewNsPerMHz,
		Fidelity:    o.Fidelity,
		SampleEvery: o.SampleEvery,
	}
}
