// Package branch implements the front-end branch prediction substrate of
// the simulated Alpha-21264-like processor: a combining (tournament)
// predictor selecting between a bimodal table and a two-level
// history-based predictor, plus a set-associative branch target buffer.
// Sizes default to Table 4 of the paper.
package branch

// Config sizes the predictor structures. All sizes must be powers of two.
type Config struct {
	L1Size      int // level-1 per-branch history registers
	HistoryBits int // history length feeding the level-2 table
	L2Size      int // level-2 pattern counters
	BimodalSize int
	ChooserSize int // combining predictor
	BTBSets     int
	BTBAssoc    int
}

// DefaultConfig returns the configuration from Table 4.
func DefaultConfig() Config {
	return Config{
		L1Size:      1024,
		HistoryBits: 10,
		L2Size:      1024,
		BimodalSize: 1024,
		ChooserSize: 4096,
		BTBSets:     4096,
		BTBAssoc:    2,
	}
}

// counter is a 2-bit saturating counter; values 2 and 3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
	lru    uint64
}

// Stats holds predictor accuracy counters.
type Stats struct {
	Lookups    uint64
	Mispredict uint64
	BTBLookups uint64
	BTBHits    uint64
}

// Accuracy returns the fraction of direction predictions that were correct.
func (s Stats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 1
	}
	return 1 - float64(s.Mispredict)/float64(s.Lookups)
}

// Predictor is the combining predictor plus BTB. It is not safe for
// concurrent use; the simulator drives it from a single goroutine.
type Predictor struct {
	cfg      Config
	bimodal  []counter
	history  []uint32 // level-1 history registers
	pattern  []counter
	chooser  []counter // high = prefer two-level
	histMask uint32
	btb      []btbEntry // BTBSets*BTBAssoc, set-major
	tick     uint64
	stats    Stats
}

// New returns a predictor with all counters initialized weakly not-taken
// (the SimpleScalar convention) and an empty BTB. It panics if any size is
// not a power of two, since index masking depends on it.
func New(cfg Config) *Predictor {
	for _, v := range []int{cfg.L1Size, cfg.L2Size, cfg.BimodalSize, cfg.ChooserSize, cfg.BTBSets} {
		if v <= 0 || v&(v-1) != 0 {
			panic("branch: table sizes must be powers of two")
		}
	}
	if cfg.HistoryBits <= 0 || cfg.HistoryBits > 30 || cfg.BTBAssoc <= 0 {
		panic("branch: invalid history length or BTB associativity")
	}
	p := &Predictor{
		cfg:      cfg,
		bimodal:  make([]counter, cfg.BimodalSize),
		history:  make([]uint32, cfg.L1Size),
		pattern:  make([]counter, cfg.L2Size),
		chooser:  make([]counter, cfg.ChooserSize),
		histMask: (1 << cfg.HistoryBits) - 1,
		btb:      make([]btbEntry, cfg.BTBSets*cfg.BTBAssoc),
	}
	for i := range p.chooser {
		p.chooser[i] = 1 // weakly prefer bimodal, as in SimpleScalar's comb
	}
	return p
}

// Reset returns every table to its freshly constructed state — counters
// weakly not-taken, chooser weakly bimodal, BTB empty, stats zero —
// reusing the allocations for a reused core.
func (p *Predictor) Reset() {
	clear(p.bimodal)
	clear(p.history)
	clear(p.pattern)
	for i := range p.chooser {
		p.chooser[i] = 1
	}
	clear(p.btb)
	p.tick = 0
	p.stats = Stats{}
}

func (p *Predictor) bimodalIdx(pc uint64) int { return int(pc>>2) & (p.cfg.BimodalSize - 1) }
func (p *Predictor) l1Idx(pc uint64) int      { return int(pc>>2) & (p.cfg.L1Size - 1) }
func (p *Predictor) chooserIdx(pc uint64) int { return int(pc>>2) & (p.cfg.ChooserSize - 1) }

func (p *Predictor) l2Idx(pc uint64) int {
	h := p.history[p.l1Idx(pc)] & p.histMask
	return int(h) & (p.cfg.L2Size - 1)
}

// Predict returns the predicted direction for the branch at pc.
func (p *Predictor) Predict(pc uint64) bool {
	bi := p.bimodal[p.bimodalIdx(pc)].taken()
	tw := p.pattern[p.l2Idx(pc)].taken()
	if p.chooser[p.chooserIdx(pc)].taken() {
		return tw
	}
	return bi
}

// Update trains the predictor with the actual outcome and returns whether
// the prediction (recomputed pre-update, as the front end saw it) was
// correct. Both component predictors and the chooser are updated following
// the standard tournament scheme.
func (p *Predictor) Update(pc uint64, taken bool) bool {
	biIdx, l2, chIdx := p.bimodalIdx(pc), p.l2Idx(pc), p.chooserIdx(pc)
	biPred := p.bimodal[biIdx].taken()
	twPred := p.pattern[l2].taken()
	useTW := p.chooser[chIdx].taken()
	pred := biPred
	if useTW {
		pred = twPred
	}

	// The chooser trains toward whichever component was right when they
	// disagree.
	if biPred != twPred {
		p.chooser[chIdx] = p.chooser[chIdx].update(twPred == taken)
	}
	p.bimodal[biIdx] = p.bimodal[biIdx].update(taken)
	p.pattern[l2] = p.pattern[l2].update(taken)
	h := &p.history[p.l1Idx(pc)]
	*h = ((*h << 1) | b2u(taken)) & p.histMask

	p.stats.Lookups++
	if pred != taken {
		p.stats.Mispredict++
	}
	return pred == taken
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (p *Predictor) btbSet(pc uint64) []btbEntry {
	set := int(pc>>2) & (p.cfg.BTBSets - 1)
	return p.btb[set*p.cfg.BTBAssoc : (set+1)*p.cfg.BTBAssoc]
}

// Target looks up the BTB, returning the stored target and whether it hit.
func (p *Predictor) Target(pc uint64) (uint64, bool) {
	p.stats.BTBLookups++
	set := p.btbSet(pc)
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			p.tick++
			set[i].lru = p.tick
			p.stats.BTBHits++
			return set[i].target, true
		}
	}
	return 0, false
}

// SetTarget installs pc→target in the BTB with LRU replacement.
func (p *Predictor) SetTarget(pc, target uint64) {
	set := p.btbSet(pc)
	p.tick++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			set[i].target = target
			set[i].lru = p.tick
			return
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = btbEntry{tag: pc, target: target, valid: true, lru: p.tick}
}

// Stats returns a copy of the accuracy counters.
func (p *Predictor) Stats() Stats { return p.stats }

// Clone returns a deep copy of the predictor — an independent snapshot
// for checkpointed warmup reuse.
func (p *Predictor) Clone() *Predictor {
	q := &Predictor{cfg: p.cfg, histMask: p.histMask, tick: p.tick, stats: p.stats}
	q.bimodal = append([]counter(nil), p.bimodal...)
	q.history = append([]uint32(nil), p.history...)
	q.pattern = append([]counter(nil), p.pattern...)
	q.chooser = append([]counter(nil), p.chooser...)
	q.btb = append([]btbEntry(nil), p.btb...)
	return q
}

// CopyFrom restores the predictor to src's exact state, reusing the
// receiver's tables. Both predictors must share a configuration (the
// warm-restore path guarantees it: snapshot keys include the config).
func (p *Predictor) CopyFrom(src *Predictor) {
	copy(p.bimodal, src.bimodal)
	copy(p.history, src.history)
	copy(p.pattern, src.pattern)
	copy(p.chooser, src.chooser)
	copy(p.btb, src.btb)
	p.histMask = src.histMask
	p.tick = src.tick
	p.stats = src.stats
}
