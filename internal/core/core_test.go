package core

import (
	"math"
	"testing"

	"mcd/internal/clock"
	"mcd/internal/pipeline"
	"mcd/internal/sim"
	"mcd/internal/workload"
)

// view builds an IntervalView with the given per-domain utilization and IPC.
func view(intU, fpU, lsU, ipc float64) pipeline.IntervalView {
	var v pipeline.IntervalView
	v.QueueUtil[clock.Integer] = intU
	v.QueueUtil[clock.FloatingPoint] = fpU
	v.QueueUtil[clock.LoadStore] = lsU
	v.IPC = ipc
	return v
}

func TestAttackDecayPinsFrontEnd(t *testing.T) {
	a := NewAttackDecay(DefaultParams())
	tg := a.Observe(view(5, 5, 5, 2))
	if tg[clock.FrontEnd] != 1000 {
		t.Errorf("front end target = %v, want 1000", tg[clock.FrontEnd])
	}
}

func TestAttackDecayAttacksUpOnUtilizationSpike(t *testing.T) {
	a := NewAttackDecay(DefaultParams())
	a.Observe(view(4, 4, 4, 2))
	// Drop the integer domain well below max so the attack is visible
	// without clamping.
	a.domains[clock.Integer].freqMHz = 600
	before := a.domains[clock.Integer].freqMHz
	tg := a.Observe(view(8, 4, 4, 2)) // +100% integer utilization
	after := a.domains[clock.Integer].freqMHz
	if after <= before {
		t.Errorf("frequency did not rise on utilization spike: %v -> %v", before, after)
	}
	scale := (1 / after) / (1 / before)
	if math.Abs(scale-(1-DefaultParams().ReactionChange)) > 1e-9 {
		t.Errorf("period scale = %v, want 1-ReactionChange", scale)
	}
	if tg[clock.Integer] != after {
		t.Errorf("returned target %v != internal state %v", tg[clock.Integer], after)
	}
}

func TestAttackDecayDecaysWhenQuiet(t *testing.T) {
	p := DefaultParams()
	a := NewAttackDecay(p)
	a.Observe(view(4, 0, 4, 2))
	f0 := a.domains[clock.FloatingPoint].freqMHz
	for i := 0; i < 20; i++ {
		a.Observe(view(4, 0, 4, 2)) // FP unused, steady state
	}
	f1 := a.domains[clock.FloatingPoint].freqMHz
	if f1 >= f0 {
		t.Errorf("unused FP domain did not decay: %v -> %v", f0, f1)
	}
	want := 1000.0
	for i := 0; i < 21; i++ {
		want = 1 / ((1 / want) * (1 + p.Decay))
	}
	if math.Abs(f1-want) > 1e-6 {
		t.Errorf("decay arithmetic: got %v, want %v (Listing 1 period scaling)", f1, want)
	}
}

func TestAttackDecayAttacksDownOnUtilizationDrop(t *testing.T) {
	a := NewAttackDecay(DefaultParams())
	a.Observe(view(4, 4, 10, 2))
	before := a.domains[clock.LoadStore].freqMHz
	a.Observe(view(4, 4, 2, 2)) // -80% LSQ utilization
	after := a.domains[clock.LoadStore].freqMHz
	scale := (1 / after) / (1 / before)
	if after >= before {
		t.Fatalf("load/store freq did not drop on utilization drop: %v -> %v", before, after)
	}
	if math.Abs(scale-(1+DefaultParams().ReactionChange)) > 1e-9 {
		t.Errorf("period scale = %v, want 1+ReactionChange", scale)
	}
}

func TestAttackDecayPerfDegThresholdBlocksDecreases(t *testing.T) {
	a := NewAttackDecay(DefaultParams())
	a.Observe(view(4, 4, 10, 2.0))
	before := a.domains[clock.LoadStore].freqMHz
	// Utilization drops sharply, but IPC also collapsed (natural
	// performance dip): the decrease must be suppressed.
	a.Observe(view(4, 4, 2, 1.0))
	after := a.domains[clock.LoadStore].freqMHz
	if after != before {
		t.Errorf("frequency changed (%v -> %v) despite IPC drop beyond threshold", before, after)
	}
}

func TestAttackDecayEndstopForcing(t *testing.T) {
	p := DefaultParams()
	p.EndstopCount = 3
	a := NewAttackDecay(p)
	// Rising FP utilization every interval keeps attacking toward max.
	// (The very first interval decays — no previous utilization — so
	// the endstop counter starts counting one interval later.)
	for i := 0; i < 4; i++ {
		a.Observe(view(4, float64(10+i*5), 4, 2))
	}
	if f := a.domains[clock.FloatingPoint].freqMHz; f != 1000 {
		t.Fatalf("FP domain should sit at max, got %v", f)
	}
	// Next interval hits the upper endstop (3 consecutive at max): a
	// forced decrease probe must fire even though utilization keeps rising.
	a.Observe(view(4, 40, 4, 2))
	if f := a.domains[clock.FloatingPoint].freqMHz; f >= 1000 {
		t.Errorf("upper endstop did not force a probe away from max: %v", f)
	}
}

func TestAttackDecayLowerEndstopForcesProbeUp(t *testing.T) {
	p := DefaultParams()
	p.EndstopCount = 2
	a := NewAttackDecay(p)
	for d := range a.domains {
		a.domains[d].freqMHz = p.MinMHz
	}
	a.Observe(view(0, 0, 0, 2)) // at min: lowerEnds -> 1
	a.Observe(view(0, 0, 0, 2)) // lowerEnds -> 2
	a.Observe(view(0, 0, 0, 2)) // forced increase
	if f := a.domains[clock.Integer].freqMHz; f <= p.MinMHz {
		t.Errorf("lower endstop did not force a probe up: %v", f)
	}
}

func TestAttackDecayFrequencyStaysInRange(t *testing.T) {
	a := NewAttackDecay(DefaultParams())
	for i := 0; i < 200; i++ {
		u := float64((i * 37) % 23)
		tg := a.Observe(view(u, 23-u, u/2, 1+u/10))
		for _, d := range []clock.Domain{clock.Integer, clock.FloatingPoint, clock.LoadStore} {
			if tg[d] < 250-1e-9 || tg[d] > 1000+1e-9 {
				t.Fatalf("interval %d: domain %v target %v out of range", i, d, tg[d])
			}
		}
	}
}

func TestParamsLabelMatchesPaperFormat(t *testing.T) {
	if got := DefaultParams().Label(); got != "1.750_06.0_0.175_2.5" {
		t.Errorf("label = %q, want paper-style 1.750_06.0_0.175_2.5", got)
	}
}

// ----- end-to-end behaviour -----

func adRun(t *testing.T, prof workload.Profile, window uint64) (ad, base struct {
	TimePS, EnergyPJ float64
	FPFreq           float64
}) {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.SlewNsPerMHz = 4.91 // time-scale compression to match interval 1000
	const warm = 250_000
	b := sim.Run(sim.Spec{Config: cfg, Profile: prof, Window: window, Warmup: warm, Name: "mcd-base"})
	a := sim.Run(sim.Spec{
		Config: cfg, Profile: prof, Window: window, Warmup: warm, IntervalLength: 1000,
		Controller: NewAttackDecay(DefaultParams()), Name: "attack-decay",
	})
	ad.TimePS, ad.EnergyPJ, ad.FPFreq = a.TimePS, a.EnergyPJ, a.AvgFreqMHz[clock.FloatingPoint]
	base.TimePS, base.EnergyPJ, base.FPFreq = b.TimePS, b.EnergyPJ, b.AvgFreqMHz[clock.FloatingPoint]
	return ad, base
}

func TestAttackDecaySavesEnergyOnIntegerCode(t *testing.T) {
	bench, ok := workload.Lookup("gzip")
	if !ok {
		t.Fatal("gzip missing")
	}
	ad, base := adRun(t, bench.Profile, 500_000)
	deg := ad.TimePS/base.TimePS - 1
	sav := 1 - ad.EnergyPJ/base.EnergyPJ
	if sav <= 0.02 {
		t.Errorf("energy savings = %v, want clearly positive", sav)
	}
	if deg > 0.10 {
		t.Errorf("performance degradation = %v, want modest", deg)
	}
	if ad.FPFreq > 800 {
		t.Errorf("FP domain averaged %v MHz on FP-free code; expected sustained decay", ad.FPFreq)
	}
}

func TestAttackDecayKeepsFPFastOnFPCode(t *testing.T) {
	bench, ok := workload.Lookup("swim")
	if !ok {
		t.Fatal("swim missing")
	}
	ad, _ := adRun(t, bench.Profile, 500_000)
	if ad.FPFreq < 500 {
		t.Errorf("FP domain averaged %v MHz on FP-heavy swim; algorithm over-throttled a critical domain", ad.FPFreq)
	}
}

func TestOfflineBuilderMeetsTarget(t *testing.T) {
	bench, ok := workload.Lookup("jpeg")
	if !ok {
		t.Fatal("jpeg missing")
	}
	cfg := pipeline.DefaultConfig()
	const window = 200_000
	const warm = 50_000
	ctrl, base := BuildOffline(cfg, bench.Profile, window, OfflineOptions{TargetDeg: 0.05, Warmup: warm})
	res := sim.Run(sim.Spec{
		Config: cfg, Profile: bench.Profile, Window: window, Warmup: warm,
		Controller: ctrl, InitialFreqMHz: ctrl.Initial(), Name: ctrl.Name(),
	})
	deg := res.TimePS/base.TimePS - 1
	sav := 1 - res.EnergyPJ/base.EnergyPJ
	if deg > 0.10 {
		t.Errorf("offline Dynamic-5%% degradation = %v, want <= ~2x target", deg)
	}
	if sav <= 0 {
		t.Errorf("offline schedule saved no energy (%v)", sav)
	}
}

func TestGlobalMatchHitsDegradationTarget(t *testing.T) {
	bench, ok := workload.Lookup("gsm")
	if !ok {
		t.Fatal("gsm missing")
	}
	cfg := pipeline.DefaultConfig()
	const window = 150_000
	const warm = 50_000
	base := sim.RunSynchronousAt(cfg, bench.Profile, window, warm, 1000, "sync-base")
	freq, res := GlobalMatch(cfg, bench.Profile, window, warm, base.TimePS, 0.04, "global-4%")
	deg := res.TimePS/base.TimePS - 1
	if math.Abs(deg-0.04) > 0.02 {
		t.Errorf("global scaling degradation = %v, want ~0.04 (freq %v)", deg, freq)
	}
	if freq >= 1000 {
		t.Error("global match did not reduce frequency")
	}
	if sav := 1 - res.EnergyPJ/base.EnergyPJ; sav <= 0 {
		t.Errorf("global scaling saved no energy (%v)", sav)
	}
}

func TestGlobalMatchZeroTargetStaysAtMax(t *testing.T) {
	bench, _ := workload.Lookup("adpcm")
	cfg := pipeline.DefaultConfig()
	base := sim.RunSynchronousAt(cfg, bench.Profile, 50_000, 0, 1000, "sync-base")
	freq, _ := GlobalMatch(cfg, bench.Profile, 50_000, 0, base.TimePS, 0, "global-0")
	if freq != 1000 {
		t.Errorf("zero-degradation target should stay at 1000 MHz, got %v", freq)
	}
}

func TestOfflineControllerLeadsByOneInterval(t *testing.T) {
	sched := Schedule{
		{1000, 1000, 1000, 1000},
		{1000, 900, 800, 700},
		{1000, 500, 400, 300},
	}
	o := NewOfflineController("test", sched)
	if got := o.Initial(); got != sched[0] {
		t.Errorf("Initial = %v, want %v", got, sched[0])
	}
	var iv pipeline.IntervalView
	if got := o.Observe(iv); got != sched[1] {
		t.Errorf("first Observe = %v, want schedule[1]", got)
	}
	if got := o.Observe(iv); got != sched[2] {
		t.Errorf("second Observe = %v, want schedule[2]", got)
	}
	// Past the end: hold the last entry.
	if got := o.Observe(iv); got != sched[2] {
		t.Errorf("post-end Observe = %v, want last entry held", got)
	}
}
