// epicdecode walks through the paper's Figures 2 and 3: running `epic
// decode` under Attack/Decay and watching the floating-point domain decay
// while the FP unit is idle, attack up during the two FP bursts, and the
// load/store domain adapt to the memory phases.
package main

import (
	"fmt"

	"mcd"
)

func main() {
	bench, _ := mcd.LookupBenchmark("epic.decode")

	cfg := mcd.DefaultConfig()
	cfg.SlewNsPerMHz = 4.91
	res := mcd.Run(mcd.Spec{
		Config:          cfg,
		Profile:         bench.Profile,
		Window:          500_000,
		Warmup:          50_000,
		IntervalLength:  1000,
		Controller:      mcd.NewAttackDecay(mcd.DefaultParams()),
		RecordIntervals: true,
		Name:            "attack-decay",
	})

	fmt.Println("epic decode under Attack/Decay (cf. paper Figures 2 and 3)")
	fmt.Println("instrs(k)  FP-util  FP-GHz   LSQ-util  LS-GHz   IPC")
	for i, iv := range res.Intervals {
		if i%25 != 0 {
			continue
		}
		fmt.Printf("%8d  %7.2f  %6.3f   %8.2f  %6.3f  %5.2f\n",
			(i+1)*int(iv.Instructions)/1000,
			iv.QueueUtil[mcd.FloatingPoint], iv.FreqMHz[mcd.FloatingPoint]/1000,
			iv.QueueUtil[mcd.LoadStore], iv.FreqMHz[mcd.LoadStore]/1000,
			iv.IPC)
	}
	fmt.Printf("\naverage frequencies: fp %.0f MHz, ls %.0f MHz (max 1000)\n",
		res.AvgFreqMHz[mcd.FloatingPoint], res.AvgFreqMHz[mcd.LoadStore])
	fmt.Println("expect: FP near max only inside the two FP phases, decaying elsewhere.")
}
