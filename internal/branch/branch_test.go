package branch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter underflowed to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter saturated at %d, want 3", c)
	}
	if !c.taken() {
		t.Error("saturated counter must predict taken")
	}
}

func TestNewPanicsOnNonPowerOfTwo(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Size = 1000
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two table")
		}
	}()
	New(cfg)
}

func TestAlwaysTakenBranchLearned(t *testing.T) {
	p := New(DefaultConfig())
	const pc = 0x4000
	for i := 0; i < 8; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("always-taken branch not learned")
	}
	if acc := p.Stats().Accuracy(); acc < 0.6 {
		t.Errorf("accuracy %v too low for trivially biased branch", acc)
	}
}

func TestAlternatingBranchLearnedByHistory(t *testing.T) {
	// A strictly alternating branch defeats bimodal but is perfectly
	// predictable from 10 bits of local history once the two-level
	// component and chooser warm up.
	p := New(DefaultConfig())
	const pc = 0x8888
	taken := false
	correct := 0
	const warm, measure = 4096, 1024
	for i := 0; i < warm+measure; i++ {
		pred := p.Predict(pc)
		if i >= warm && pred == taken {
			correct++
		}
		p.Update(pc, taken)
		taken = !taken
	}
	if frac := float64(correct) / measure; frac < 0.95 {
		t.Errorf("alternating branch accuracy = %v, want >= 0.95", frac)
	}
}

func TestRandomBranchAccuracyNearHalf(t *testing.T) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	const pc = 0x1234
	correct, n := 0, 20000
	for i := 0; i < n; i++ {
		taken := rng.Intn(2) == 0
		if p.Predict(pc) == taken {
			correct++
		}
		p.Update(pc, taken)
	}
	frac := float64(correct) / float64(n)
	if frac < 0.40 || frac > 0.60 {
		t.Errorf("random branch accuracy = %v, want ~0.5", frac)
	}
}

func TestMixedPopulationAccuracy(t *testing.T) {
	// 90% strongly biased branches + 10% random ones should land
	// comfortably above 85% overall, mimicking real integer codes.
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(11))
	correct, n := 0, 50000
	for i := 0; i < n; i++ {
		pc := uint64(rng.Intn(256)) * 4
		var taken bool
		if pc < 232*4 {
			taken = pc%8 != 0 // biased per-PC
		} else {
			taken = rng.Intn(2) == 0
		}
		if p.Predict(pc) == taken {
			correct++
		}
		p.Update(pc, taken)
	}
	if frac := float64(correct) / float64(n); frac < 0.85 {
		t.Errorf("mixed population accuracy = %v, want >= 0.85", frac)
	}
}

func TestBTBStoresAndEvicts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBSets = 4
	cfg.BTBAssoc = 2
	p := New(cfg)
	// Three PCs mapping to the same set (stride = sets*4 bytes).
	stride := uint64(cfg.BTBSets * 4)
	a, b, c := uint64(0), stride, 2*stride
	p.SetTarget(a, 100)
	p.SetTarget(b, 200)
	if tgt, ok := p.Target(a); !ok || tgt != 100 {
		t.Fatalf("Target(a) = (%d,%v), want (100,true)", tgt, ok)
	}
	// Touch a so b becomes LRU, then insert c: b must be evicted.
	p.SetTarget(c, 300)
	if _, ok := p.Target(b); ok {
		t.Error("expected b evicted as LRU victim")
	}
	if tgt, ok := p.Target(c); !ok || tgt != 300 {
		t.Errorf("Target(c) = (%d,%v), want (300,true)", tgt, ok)
	}
	if s := p.Stats(); s.BTBLookups == 0 {
		t.Error("BTB lookups not counted")
	}
}

func TestBTBUpdateExistingEntry(t *testing.T) {
	p := New(DefaultConfig())
	p.SetTarget(0x40, 1)
	p.SetTarget(0x40, 2)
	if tgt, ok := p.Target(0x40); !ok || tgt != 2 {
		t.Errorf("Target = (%d,%v), want (2,true)", tgt, ok)
	}
}

// Property: Update returns true iff the pre-update Predict matched.
func TestUpdateConsistentWithPredictProperty(t *testing.T) {
	p := New(DefaultConfig())
	f := func(pcRaw uint16, taken bool) bool {
		pc := uint64(pcRaw) * 4
		pred := p.Predict(pc)
		got := p.Update(pc, taken)
		return got == (pred == taken)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
