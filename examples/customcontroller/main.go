// customcontroller plugs a user-defined control algorithm into the
// simulator through the public Controller interface, and races it against
// the paper's Attack/Decay on the same workload.
//
// The custom policy is a simple occupancy proportional controller: each
// domain's frequency is set proportional to how full its issue queue is.
// It reacts faster than Attack/Decay but, lacking the attack/decay
// asymmetry and the IPC guard, it trades more performance for its energy.
package main

import (
	"fmt"

	"mcd"
)

// proportional implements mcd.Controller.
type proportional struct {
	capOf [mcd.NumControllable]float64
}

func newProportional() *proportional {
	p := &proportional{}
	cfg := mcd.DefaultConfig()
	p.capOf[mcd.Integer] = float64(cfg.IntIQSize)
	p.capOf[mcd.FloatingPoint] = float64(cfg.FPIQSize)
	p.capOf[mcd.LoadStore] = float64(cfg.LSQSize)
	return p
}

func (p *proportional) Name() string { return "proportional" }

func (p *proportional) Observe(iv mcd.IntervalView) [mcd.NumControllable]float64 {
	var targets [mcd.NumControllable]float64
	targets[mcd.FrontEnd] = 1000 // pinned, like the paper
	for _, d := range []mcd.Domain{mcd.Integer, mcd.FloatingPoint, mcd.LoadStore} {
		fill := iv.QueueAvg[d] / p.capOf[d] // 0..1 occupancy
		f := 250 + fill*3*(1000-250)        // full at 1/3 occupancy
		if f > 1000 {
			f = 1000
		}
		targets[d] = f
	}
	return targets
}

func main() {
	bench, _ := mcd.LookupBenchmark("jpeg")
	cfg := mcd.DefaultConfig()
	cfg.SlewNsPerMHz = 4.91
	spec := mcd.Spec{
		Config: cfg, Profile: bench.Profile,
		Window: 300_000, Warmup: 150_000, IntervalLength: 1000,
	}

	base := mcd.Run(spec)

	spec.Controller = newProportional()
	spec.Name = "proportional"
	prop := mcd.Run(spec)

	spec.Controller = mcd.NewAttackDecay(mcd.DefaultParams())
	spec.Name = "attack-decay"
	ad := mcd.Run(spec)

	fmt.Printf("%-14s %9s %11s %11s\n", "controller", "perf-deg", "energy-sav", "EDP-improv")
	for _, r := range []mcd.Result{prop, ad} {
		c := mcd.Compare(r, base)
		fmt.Printf("%-14s %8.1f%% %10.1f%% %10.1f%%\n",
			r.Config, c.PerfDegradation*100, c.EnergySavings*100, c.EDPImprovement*100)
	}
}
