// Package queue implements the decoupling structures of the MCD pipeline:
// the per-domain issue queues whose occupancy drives the Attack/Decay
// algorithm, the load/store queue, the reorder buffer, and the completion
// ring used for cross-domain wakeup with synchronization-window latching.
package queue

import (
	"math"

	"mcd/internal/workload"
)

// None marks an absent source operand.
const None int64 = -1

// Entry is an issue-queue entry. Producer seqs (Src1/Src2) are resolved
// against the CompletionRing at issue time; VisibleAt is the time the
// dispatched entry itself becomes visible in the consuming domain (it
// crossed from the front end through the domain-interface FIFO).
type Entry struct {
	Seq       uint64
	Class     workload.Class
	Src1      int64
	Src2      int64
	VisibleAt float64
	Addr      uint64
}

// IssueQueue is a small in-order-storage, out-of-order-select queue.
type IssueQueue struct {
	entries []Entry
	cap     int
}

// NewIssueQueue returns a queue with the given capacity.
func NewIssueQueue(capacity int) *IssueQueue {
	return &IssueQueue{entries: make([]Entry, 0, capacity), cap: capacity}
}

// Len returns current occupancy; Cap the capacity; Free the open slots.
func (q *IssueQueue) Len() int  { return len(q.entries) }
func (q *IssueQueue) Cap() int  { return q.cap }
func (q *IssueQueue) Free() int { return q.cap - len(q.entries) }

// Push inserts an entry, reporting false when the queue is full.
func (q *IssueQueue) Push(e Entry) bool {
	if len(q.entries) >= q.cap {
		return false
	}
	q.entries = append(q.entries, e)
	return true
}

// Select removes and returns up to max entries satisfying ready, oldest
// first, appending to out. The scan models the wakeup/select CAM: every
// resident entry is examined.
func (q *IssueQueue) Select(max int, ready func(*Entry) bool, out []Entry) []Entry {
	if max <= 0 || len(q.entries) == 0 {
		return out
	}
	w := 0
	for i := range q.entries {
		e := &q.entries[i]
		if max > 0 && ready(e) {
			out = append(out, *e)
			max--
			continue
		}
		q.entries[w] = *e
		w++
	}
	q.entries = q.entries[:w]
	return out
}

// CompletionRing maps a dynamic instruction seq to its completion time and
// executing domain. Slots are recycled; because the ROB bounds in-flight
// distance well below the ring size, an overwritten slot can only belong
// to a much older instruction, which is by construction long complete.
type CompletionRing struct {
	seq    []uint64
	doneAt []float64
	domain []uint8
	mask   uint64
}

// NewCompletionRing returns a ring of the given power-of-two size.
func NewCompletionRing(size uint64) *CompletionRing {
	if size == 0 || size&(size-1) != 0 {
		panic("queue: completion ring size must be a power of two")
	}
	r := &CompletionRing{
		seq:    make([]uint64, size),
		doneAt: make([]float64, size),
		domain: make([]uint8, size),
		mask:   size - 1,
	}
	for i := range r.doneAt {
		r.doneAt[i] = math.Inf(-1) // empty slots read as "long complete"
		r.seq[i] = math.MaxUint64
	}
	return r
}

// Dispatch registers seq as in flight in the given domain.
func (r *CompletionRing) Dispatch(seq uint64, domain uint8) {
	i := seq & r.mask
	r.seq[i] = seq
	r.doneAt[i] = math.Inf(1)
	r.domain[i] = domain
}

// Complete records seq's completion time.
func (r *CompletionRing) Complete(seq uint64, t float64) {
	i := seq & r.mask
	if r.seq[i] == seq {
		r.doneAt[i] = t
	}
}

// Lookup returns the completion time and domain of seq. Overwritten or
// never-seen slots return (-Inf, 0): the producer is ancient history.
func (r *CompletionRing) Lookup(seq uint64) (float64, uint8) {
	i := seq & r.mask
	if r.seq[i] != seq {
		return math.Inf(-1), 0
	}
	return r.doneAt[i], r.domain[i]
}

// ROBEntry is one reorder-buffer slot.
type ROBEntry struct {
	Seq    uint64
	DoneAt float64 // +Inf until complete
	Domain uint8
	Class  workload.Class
}

// ROB is the in-order retirement window.
type ROB struct {
	buf        []ROBEntry
	head, size int
}

// NewROB returns a reorder buffer with the given capacity.
func NewROB(capacity int) *ROB {
	return &ROB{buf: make([]ROBEntry, capacity)}
}

// Len returns occupancy; Cap capacity; Free open slots.
func (r *ROB) Len() int  { return r.size }
func (r *ROB) Cap() int  { return len(r.buf) }
func (r *ROB) Free() int { return len(r.buf) - r.size }

// Push appends an entry in program order, reporting false when full.
func (r *ROB) Push(e ROBEntry) bool {
	if r.size == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.size)%len(r.buf)] = e
	r.size++
	return true
}

// Head returns the oldest entry, or nil when empty.
func (r *ROB) Head() *ROBEntry {
	if r.size == 0 {
		return nil
	}
	return &r.buf[r.head]
}

// Complete marks seq complete at time t (linear probe from head; the
// window is at most Cap entries).
func (r *ROB) Complete(seq uint64, t float64) {
	for i := 0; i < r.size; i++ {
		e := &r.buf[(r.head+i)%len(r.buf)]
		if e.Seq == seq {
			e.DoneAt = t
			return
		}
	}
}

// Pop removes the head entry.
func (r *ROB) Pop() {
	if r.size == 0 {
		return
	}
	r.head = (r.head + 1) % len(r.buf)
	r.size--
}

// LSQEntry is one load/store queue slot, kept in program order from
// dispatch to retirement.
type LSQEntry struct {
	Seq       uint64
	IsStore   bool
	Addr      uint64
	Block     uint64 // Addr >> blockBits, for disambiguation
	Src1      int64
	Src2      int64
	VisibleAt float64
	Issued    bool
	DoneAt    float64 // +Inf until the access (or store address resolve) completes
}

// LSQ is the load/store queue.
type LSQ struct {
	entries   []LSQEntry
	cap       int
	blockBits uint
}

// NewLSQ returns a load/store queue with the given capacity and cache
// block size (for store-to-load disambiguation granularity).
func NewLSQ(capacity int, blockBytes int) *LSQ {
	bb := uint(0)
	for 1<<bb < blockBytes {
		bb++
	}
	return &LSQ{entries: make([]LSQEntry, 0, capacity), cap: capacity, blockBits: bb}
}

// Len returns occupancy; Cap capacity; Free open slots.
func (l *LSQ) Len() int  { return len(l.entries) }
func (l *LSQ) Cap() int  { return l.cap }
func (l *LSQ) Free() int { return l.cap - len(l.entries) }

// Push appends a memory op in program order, reporting false when full.
func (l *LSQ) Push(e LSQEntry) bool {
	if len(l.entries) >= l.cap {
		return false
	}
	e.Block = e.Addr >> l.blockBits
	l.entries = append(l.entries, e)
	return true
}

// Entries exposes the backing slice for the issue scan. Callers may mutate
// Issued/DoneAt in place.
func (l *LSQ) Entries() []LSQEntry { return l.entries }

// OlderStores inspects stores older than the entry at index idx:
// allResolved is true when every older store has issued (address known);
// forwarded is true when the youngest older store to the same block has
// completed, making store-to-load forwarding possible.
func (l *LSQ) OlderStores(idx int, now float64) (allResolved, match, forwardable bool) {
	e := &l.entries[idx]
	allResolved = true
	for i := idx - 1; i >= 0; i-- {
		s := &l.entries[i]
		if !s.IsStore {
			continue
		}
		if !s.Issued || s.DoneAt > now {
			allResolved = false
		}
		if !match && s.Block == e.Block {
			match = true
			forwardable = s.Issued && s.DoneAt <= now
		}
	}
	return allResolved, match, forwardable
}

// Retire removes the oldest entry if it matches seq (entries retire in
// program order with the ROB).
func (l *LSQ) Retire(seq uint64) {
	if len(l.entries) > 0 && l.entries[0].Seq == seq {
		l.entries = l.entries[:copy(l.entries, l.entries[1:])]
	}
}
