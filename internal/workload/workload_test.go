package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeneratorWindowExhaustion(t *testing.T) {
	p := Profile{Name: "t", Phases: []Phase{{Mix: Mix{IntALU: 1}}}, Seed: 1}
	g := p.NewGenerator(100)
	var in Instr
	n := 0
	for g.Next(&in) {
		if in.Seq != uint64(n) {
			t.Fatalf("seq = %d at position %d", in.Seq, n)
		}
		n++
	}
	if n != 100 {
		t.Fatalf("generated %d instructions, want 100", n)
	}
	if g.Next(&in) {
		t.Error("Next after exhaustion must return false")
	}
}

func TestGeneratorDeterministicAcrossReset(t *testing.T) {
	b, ok := Lookup("gcc")
	if !ok {
		t.Fatal("gcc missing from catalog")
	}
	g := b.Profile.NewGenerator(5000)
	first := make([]Instr, 0, 5000)
	var in Instr
	for g.Next(&in) {
		first = append(first, in)
	}
	g.Reset()
	i := 0
	for g.Next(&in) {
		if in != first[i] {
			t.Fatalf("instruction %d differs after reset: %+v vs %+v", i, in, first[i])
		}
		i++
	}
	if i != len(first) {
		t.Fatalf("replay length %d != original %d", i, len(first))
	}
}

func TestMixProportionsRespected(t *testing.T) {
	p := Profile{Name: "t", Seed: 9, Phases: []Phase{{
		Mix: Mix{IntALU: 0.5, Load: 0.3, Branch: 0.2},
	}}}
	g := p.NewGenerator(200000)
	var counts [NumClasses]int
	var in Instr
	for g.Next(&in) {
		counts[in.Class]++
	}
	tot := 200000.0
	if f := float64(counts[IntALU]) / tot; math.Abs(f-0.5) > 0.02 {
		t.Errorf("IntALU fraction = %v, want ~0.5", f)
	}
	if f := float64(counts[Load]) / tot; math.Abs(f-0.3) > 0.02 {
		t.Errorf("Load fraction = %v, want ~0.3", f)
	}
	if f := float64(counts[Branch]) / tot; math.Abs(f-0.2) > 0.02 {
		t.Errorf("Branch fraction = %v, want ~0.2", f)
	}
	if counts[FPAdd]+counts[FPMul]+counts[FPDiv] != 0 {
		t.Error("integer-only mix generated FP instructions")
	}
}

func TestDependencyDistancesBounded(t *testing.T) {
	b, _ := Lookup("mcf")
	g := b.Profile.NewGenerator(50000)
	var in Instr
	for g.Next(&in) {
		if uint64(in.Dep1) > in.Seq || uint64(in.Dep2) > in.Seq {
			t.Fatalf("dependency before program start at seq %d: %+v", in.Seq, in)
		}
		if in.Dep1 > MaxDepDistance || in.Dep2 > MaxDepDistance {
			t.Fatalf("dependency distance exceeds ring depth: %+v", in)
		}
	}
}

func TestEpicDecodePhaseStructure(t *testing.T) {
	// Figure 3's premise: the FP unit is unused except during two bursts.
	g := EpicDecodeProfile().NewGenerator(500000)
	const buckets = 50
	var fp [buckets]int
	var tot [buckets]int
	var in Instr
	for g.Next(&in) {
		bkt := int(in.Seq * buckets / 500000)
		tot[bkt]++
		if in.Class.FP() {
			fp[bkt]++
		}
	}
	// Opening and closing stretches must be FP-free; the interior must
	// contain two separated FP bursts.
	if fp[0] != 0 || fp[buckets-1] != 0 {
		t.Errorf("epic.decode has FP at the window edges: first=%d last=%d", fp[0], fp[buckets-1])
	}
	active := 0
	inBurst := false
	for i := 0; i < buckets; i++ {
		isFP := float64(fp[i]) > 0.05*float64(tot[i])
		if isFP && !inBurst {
			active++
		}
		inBurst = isFP
	}
	if active != 2 {
		t.Errorf("epic.decode FP bursts = %d, want 2", active)
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 30 {
		t.Fatalf("catalog has %d benchmarks, want 30", len(cat))
	}
	suites := map[string]int{}
	names := map[string]bool{}
	for _, b := range cat {
		if names[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		names[b.Name] = true
		suites[b.Suite]++
		if b.Datasets == "" || b.PaperWindowM <= 0 {
			t.Errorf("%s: missing Table 5 metadata", b.Name)
		}
		if len(b.Profile.Phases) == 0 {
			t.Errorf("%s: profile has no phases", b.Name)
		}
	}
	want := map[string]int{SuiteMediaBench: 9, SuiteOlden: 10, SuiteSpecInt: 7, SuiteSpecFP: 4}
	for s, n := range want {
		if suites[s] != n {
			t.Errorf("suite %s has %d benchmarks, want %d", s, suites[s], n)
		}
	}
}

func TestCatalogSuiteCharacteristics(t *testing.T) {
	// SPECint must be FP-free; SPECfp must be FP-heavy.
	for _, b := range Catalog() {
		var fpW float64
		for _, ph := range b.Profile.Phases {
			fpW += ph.Mix.FPFraction()
		}
		fpW /= float64(len(b.Profile.Phases))
		switch b.Suite {
		case SuiteSpecInt:
			if fpW > 0.06 {
				t.Errorf("%s (SPECint) has FP fraction %v", b.Name, fpW)
			}
		case SuiteSpecFP:
			if fpW < 0.25 {
				t.Errorf("%s (SPECfp) has FP fraction %v, want >= 0.25", b.Name, fpW)
			}
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("nonesuch"); ok {
		t.Error("Lookup should fail for unknown benchmark")
	}
	b, ok := Lookup("epic.decode")
	if !ok || b.Name != "epic.decode" {
		t.Error("epic.decode lookup failed")
	}
	for _, name := range []string{"adpcm", "mcf", "swim", "treeadd"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
}

func TestLoopingProfileRepeatsPhases(t *testing.T) {
	p := Profile{
		Name: "looper", Seed: 3, Loop: true, LoopInstr: 1000,
		Phases: []Phase{
			{Frac: 0.5, Mix: Mix{IntALU: 1}},
			{Frac: 0.5, Mix: Mix{FPAdd: 1}},
		},
	}
	g := p.NewGenerator(4000)
	var in Instr
	fpByQuarter := [4]int{}
	for g.Next(&in) {
		if in.Class.FP() {
			fpByQuarter[in.Seq/1000]++
		}
	}
	for q, n := range fpByQuarter {
		if n < 300 || n > 700 {
			t.Errorf("loop quarter %d has %d FP instrs, want ~500", q, n)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if !FPAdd.FP() || !FPMul.FP() || !FPDiv.FP() || IntALU.FP() || Load.FP() {
		t.Error("FP predicate wrong")
	}
	if !Load.Memory() || !Store.Memory() || Branch.Memory() {
		t.Error("Memory predicate wrong")
	}
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == "unknown" {
			t.Errorf("class %d unnamed", c)
		}
	}
}

// Property: generated branch outcomes at biased sites are mostly taken, and
// addresses stay within the working set.
func TestGeneratorInvariantsProperty(t *testing.T) {
	f := func(seed int64, wsel uint8) bool {
		ws := uint64(64<<10) << (wsel % 6)
		p := Profile{Name: "prop", Seed: seed, Phases: []Phase{{
			Mix:        Mix{IntALU: 0.4, Load: 0.3, Store: 0.1, Branch: 0.2},
			WorkingSet: ws,
		}}}
		g := p.NewGenerator(2000)
		var in Instr
		taken, branches := 0, 0
		for g.Next(&in) {
			if in.Class.Memory() {
				if in.Addr < 0x4000_0000 || in.Addr >= 0x4000_0000+ws {
					return false
				}
			}
			if in.Class == Branch {
				branches++
				if in.Taken {
					taken++
				}
			}
		}
		if branches == 0 {
			return true
		}
		return float64(taken)/float64(branches) > 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
