// Command mcdserve is the long-running experiment service: an HTTP
// front end over the job manager (internal/service) and the
// content-addressed deterministic result store (internal/resultcache).
// Because every simulation is a pure function of its spec, identical
// requests are served from the store byte-identically to a recompute —
// the second POST of the same run costs a hash lookup, not a
// simulation.
//
// Usage:
//
//	mcdserve -addr :8080 -cache /var/cache/mcd
//
// then:
//
//	curl localhost:8080/v1/controllers                # the controller registry
//	curl -d '{"benchmark":"mcf","config":"attack-decay","window":40000,"warmup":20000}' localhost:8080/v1/runs
//	curl -d '{"benchmark":"mcf","controller":"pi","params":{"kp":0.08},"window":40000}' localhost:8080/v1/runs
//	curl -N -d '{"stream":true,"benchmark":"mcf","window":40000}' localhost:8080/v1/runs   # live NDJSON interval frames
//	curl -d '{"name":"table6","quick":true}' localhost:8080/v1/experiments
//	curl -d '{"name":"sweep-controller","controller":"coord","param":"budget_mhz","quick":true}' localhost:8080/v1/experiments
//	curl localhost:8080/v1/jobs/j000001/events        # NDJSON progress
//	curl localhost:8080/v1/jobs/j000001/result
//	curl localhost:8080/v1/cache/stats
//	curl localhost:8080/metrics                       # Prometheus text format
//
// With -journal DIR every submission is persisted before it is
// acknowledged, and a restarted server replays whatever was queued or
// running when the previous process died — byte-identical results by
// the determinism contract (completed cells come straight from the
// result cache). -client-quota N bounds the queued jobs one client (the
// X-Client header, or the remote address) may hold at once.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"mcd/internal/journal"
	"mcd/internal/resultcache"
	"mcd/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		cacheDir = flag.String("cache", "", "result-store directory (empty: memory tier only)")
		cacheMem = flag.Int64("cache-mem", 0, "in-memory result-store bound in bytes (0: default 64 MiB, <0: disk only)")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel simulations per job")
		runners  = flag.Int("runners", 2, "jobs executing concurrently")
		queue    = flag.Int("queue", 64, "queued-job bound; beyond it submissions get 429")
		journalD = flag.String("journal", "", "job-journal directory; submitted jobs survive crashes and restarts (empty: no persistence)")
		quota    = flag.Int("client-quota", 0, "queued jobs one client may hold at once (0: unlimited)")
	)
	flag.Parse()
	if err := run(*addr, *cacheDir, *cacheMem, *workers, *runners, *queue, *journalD, *quota); err != nil {
		fmt.Fprintf(os.Stderr, "mcdserve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, cacheDir string, cacheMem int64, workers, runners, queue int, journalDir string, quota int) error {
	cache, err := resultcache.New(resultcache.Options{Dir: cacheDir, MaxMemBytes: cacheMem})
	if err != nil {
		return err
	}
	var jnl *journal.Journal
	if journalDir != "" {
		jnl, err = journal.Open(filepath.Join(journalDir, "jobs.ndjson"))
		if err != nil {
			return err
		}
		if n := len(jnl.Pending()); n > 0 {
			log.Printf("mcdserve: journal replay re-queueing %d interrupted job(s)", n)
		}
	}
	// No deferred Close: the shutdown path below closes the manager
	// with a bounded wait, and every other exit ends the process, which
	// reaps the workers anyway.
	mgr := service.New(service.Options{
		Runners:     runners,
		QueueDepth:  queue,
		Workers:     workers,
		Cache:       cache,
		Journal:     jnl,
		ClientQuota: quota,
	})

	srv := &http.Server{Addr: addr, Handler: service.NewHandler(mgr)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("mcdserve: listening on %s (cache dir %q, %d workers, %d runners)",
		addr, cacheDir, workers, runners)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("mcdserve: shutting down")
	// Close the manager first: failing every job lands each watcher on
	// a terminal snapshot, so open NDJSON streams and synchronous run
	// waits end immediately — otherwise Shutdown (which does not cancel
	// request contexts) would block on them until its deadline. The
	// wait is bounded: cancellation only takes effect between
	// simulations, so a job mid-run could otherwise pin shutdown for
	// the length of its longest simulation; past the deadline the
	// worker goroutines are abandoned to die with the process.
	closed := make(chan struct{})
	go func() { mgr.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		log.Printf("mcdserve: a running simulation outlived the close deadline; abandoning it")
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
