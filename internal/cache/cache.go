// Package cache implements the memory hierarchy substrate: generic
// set-associative write-allocate caches with LRU replacement, composed into
// the paper's hierarchy (64 KB 2-way split L1s, 1 MB direct-mapped unified
// L2, fixed-latency main memory on its own uncontrollable clock domain).
package cache

// Config sizes one cache.
type Config struct {
	SizeBytes  int
	BlockBytes int
	Assoc      int
}

// Lines returns the total number of cache lines.
func (c Config) Lines() int { return c.SizeBytes / c.BlockBytes }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Lines() / c.Assoc }

type line struct {
	tag   uint64
	valid bool
	lru   uint64
}

// Stats counts accesses and misses.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses (0 for an untouched cache).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache with LRU replacement. Tag state only —
// the simulator is trace driven, so no data is stored.
type Cache struct {
	cfg       Config
	sets      []line // Sets()*Assoc, set-major
	setMask   uint64
	blockBits uint
	tick      uint64
	stats     Stats
}

// New builds a cache. It panics on non-power-of-two geometry, which the
// index masking requires.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.BlockBytes <= 0 || cfg.Assoc <= 0 {
		panic("cache: sizes must be positive")
	}
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 || cfg.BlockBytes&(cfg.BlockBytes-1) != 0 {
		panic("cache: geometry must be a power of two")
	}
	bb := uint(0)
	for 1<<bb < cfg.BlockBytes {
		bb++
	}
	return &Cache{
		cfg:       cfg,
		sets:      make([]line, sets*cfg.Assoc),
		setMask:   uint64(sets - 1),
		blockBits: bb,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Reset invalidates every line and zeroes the counters, returning the
// cache to its freshly constructed state while reusing the tag arrays.
func (c *Cache) Reset() {
	clear(c.sets)
	c.tick = 0
	c.stats = Stats{}
}

// Access looks up addr, allocating the block on a miss, and reports whether
// it hit. Reads and writes behave identically at this fidelity
// (write-allocate; write-back traffic is not modeled).
func (c *Cache) Access(addr uint64) bool {
	c.stats.Accesses++
	c.tick++
	blk := addr >> c.blockBits
	set := int(blk & c.setMask)
	ways := c.sets[set*c.cfg.Assoc : (set+1)*c.cfg.Assoc]
	victim := 0
	for i := range ways {
		if ways[i].valid && ways[i].tag == blk {
			ways[i].lru = c.tick
			return true
		}
		if !ways[i].valid {
			victim = i
		} else if ways[victim].valid && ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	c.stats.Misses++
	ways[victim] = line{tag: blk, valid: true, lru: c.tick}
	return false
}

// Probe looks up addr without updating LRU state or allocating.
func (c *Cache) Probe(addr uint64) bool {
	blk := addr >> c.blockBits
	set := int(blk & c.setMask)
	ways := c.sets[set*c.cfg.Assoc : (set+1)*c.cfg.Assoc]
	for i := range ways {
		if ways[i].valid && ways[i].tag == blk {
			return true
		}
	}
	return false
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Clone returns a deep copy — an independent snapshot of the tag state
// and counters for checkpointed warmup reuse.
func (c *Cache) Clone() *Cache {
	q := *c
	q.sets = append([]line(nil), c.sets...)
	return &q
}

// CopyFrom restores src's exact state into the receiver, reusing its tag
// array. Both caches must share a geometry.
func (c *Cache) CopyFrom(src *Cache) {
	copy(c.sets, src.sets)
	c.tick = src.tick
	c.stats = src.stats
}

// Level identifies where in the hierarchy an access was satisfied.
type Level uint8

// Hierarchy levels.
const (
	L1 Level = iota
	L2
	Mem
)

func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	default:
		return "memory"
	}
}

// Hierarchy is the paper's split-L1 / unified-L2 / main-memory stack.
type Hierarchy struct {
	L1I, L1D, L2C *Cache
}

// DefaultHierarchy builds the Table 4 configuration with 64-byte blocks.
func DefaultHierarchy() *Hierarchy {
	return &Hierarchy{
		L1I: New(Config{SizeBytes: 64 << 10, BlockBytes: 64, Assoc: 2}),
		L1D: New(Config{SizeBytes: 64 << 10, BlockBytes: 64, Assoc: 2}),
		L2C: New(Config{SizeBytes: 1 << 20, BlockBytes: 64, Assoc: 1}),
	}
}

// Reset invalidates all three caches for a reused core.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2C.Reset()
}

// Clone returns a deep copy of all three caches.
func (h *Hierarchy) Clone() *Hierarchy {
	return &Hierarchy{L1I: h.L1I.Clone(), L1D: h.L1D.Clone(), L2C: h.L2C.Clone()}
}

// CopyFrom restores src's exact state into the receiver's caches.
func (h *Hierarchy) CopyFrom(src *Hierarchy) {
	h.L1I.CopyFrom(src.L1I)
	h.L1D.CopyFrom(src.L1D)
	h.L2C.CopyFrom(src.L2C)
}

// Inst performs an instruction fetch access and returns the satisfying
// level and whether the L2 was accessed (for energy accounting).
func (h *Hierarchy) Inst(addr uint64) (Level, bool) {
	if h.L1I.Access(addr) {
		return L1, false
	}
	if h.L2C.Access(addr) {
		return L2, true
	}
	return Mem, true
}

// Data performs a load/store access.
func (h *Hierarchy) Data(addr uint64) (Level, bool) {
	if h.L1D.Access(addr) {
		return L1, false
	}
	if h.L2C.Access(addr) {
		return L2, true
	}
	return Mem, true
}
