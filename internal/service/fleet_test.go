package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"mcd/internal/journal"
	"mcd/internal/wire"
)

// TestFleetGate429 pins the fleet-wide backpressure surface: when the
// configured admission gate reports saturation, a submit is rejected
// before taking a queue slot — 429, reason "fleet", with a Retry-After
// estimate — and admitted again the moment the gate clears.
func TestFleetGate429(t *testing.T) {
	saturated := true
	m := New(Options{Runners: 1, Gate: func() error {
		if saturated {
			return ErrFleet
		}
		return nil
	}})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	req := wire.RunRequest{Benchmark: "adpcm", Config: "attack-decay", Window: 8_000, Warmup: wire.U64(4_000)}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Reason     string `json:"reason"`
		RetryAfter int    `json:"retry_after_seconds"`
	}
	derr := json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: status %d, want 429", resp.StatusCode)
	}
	if derr != nil {
		t.Fatal(derr)
	}
	if body.Reason != "fleet" {
		t.Fatalf("rejection reason %q, want fleet", body.Reason)
	}
	if resp.Header.Get("Retry-After") == "" || body.RetryAfter < 1 {
		t.Fatalf("429 without a sane Retry-After: header %q, body %d",
			resp.Header.Get("Retry-After"), body.RetryAfter)
	}

	saturated = false
	resp2, err := http.Post(srv.URL+"/v1/runs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-drain submit: status %d, want 200", resp2.StatusCode)
	}

	var scrape strings.Builder
	if err := m.Metrics().Render(&scrape); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scrape.String(), `mcd_jobs_rejected_total{reason="fleet"} 1`) {
		t.Fatalf("scrape missing fleet rejection counter:\n%s", scrape.String())
	}
}

// TestJournalResultReplayAsDone pins the uncacheable-result journal: a
// manager with no result store behind it persists completed bytes, and
// a restart over the same journal restores the job as Done with the
// identical body instead of losing or recomputing it.
func TestJournalResultReplayAsDone(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "jobs.ndjson")
	jnl, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Options{Runners: 1, Journal: jnl}) // no cache: nothing else can reproduce the bytes
	req := wire.RunRequest{Benchmark: "adpcm", Config: "attack-decay", Window: 8_000, Warmup: wire.U64(4_000)}
	j, err := m.SubmitRun(req)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := j.WaitResult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	id := j.ID()
	m.Kill() // hard stop after completion, as SIGKILL would

	jnl2, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	done := jnl2.Completed()
	if len(done) != 1 || done[0].Submit.ID != id {
		t.Fatalf("replay found %d completed jobs (want 1 with ID %s)", len(done), id)
	}
	m2 := New(Options{Runners: 1, Journal: jnl2})
	defer m2.Close()
	j2, ok := m2.Job(id)
	if !ok {
		t.Fatalf("job %s not restored after restart", id)
	}
	got, snap, err := j2.WaitResult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != Done {
		t.Fatalf("restored job state %s, want done", snap.State)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restored body diverged (%d vs %d bytes)", len(got), len(want))
	}
	var scrape strings.Builder
	if err := m2.Metrics().Render(&scrape); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scrape.String(), "mcd_journal_replayed_results 1") {
		t.Fatalf("scrape missing replayed-results gauge:\n%s", scrape.String())
	}
}
