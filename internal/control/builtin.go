package control

import (
	"fmt"

	"mcd/internal/core"
	"mcd/internal/pipeline"
	"mcd/internal/resultcache"
	"mcd/internal/sim"
)

// The built-in registrations: the paper's evaluation matrix (the five
// names cmd/mcdsim has always accepted) expressed as registry entries.
// "dynamic-1" and "dynamic-5" are aliases of the parameterized
// "dynamic" definition, so legacy requests stay byte-compatible while
// the target becomes an ordinary sweepable parameter.
func init() {
	Register(Definition{
		Name: "sync",
		Doc:  "conventional fully synchronous processor (single clock, no MCD overheads)",
		Schema: Schema{
			{Name: "freq_mhz", Default: 0, Min: 250, Max: 1000,
				Doc: "global clock frequency (0: the configuration's maximum)"},
		},
		Build: func(r Run, p Params) (sim.Spec, error) {
			f := p["freq_mhz"]
			if f == 0 {
				// Follow the configured chip maximum, as the bench
				// harness's sync column always has.
				f = r.Config.MaxFreqMHz
			}
			return r.syncSpec(f), nil
		},
	})

	Register(Definition{
		Name: "mcd",
		Doc:  "baseline MCD processor, every domain fixed at maximum frequency",
		New: func(Params) (pipeline.Controller, error) {
			return nil, nil // fixed-frequency run: no controller
		},
	})

	Register(Definition{
		Name:   "attack-decay",
		Doc:    "the paper's on-line Attack/Decay controller (Listing 1)",
		Schema: attackDecaySchema(),
		New: func(p Params) (pipeline.Controller, error) {
			return core.NewAttackDecay(attackDecayParams(p)), nil
		},
	})

	Register(Definition{
		Name:             "dynamic",
		Doc:              "off-line Dynamic-X% comparator: global-knowledge slack schedule targeting a degradation cap",
		SearchItersParam: "iters",
		Schema: Schema{
			{Name: "target", Default: 0.05, Min: 0.01, Max: 0.12,
				Doc: "performance-degradation cap vs the baseline MCD processor"},
			{Name: "iters", Default: 6, Min: 1, Max: 10,
				Doc: "schedule-search refinement iterations"},
			{Name: "adapt", Default: 0, Min: 0, Max: 1,
				Doc: "1: bisect the down-step toward the cap when every candidate overshoots (for compressed quick scales); 0: classic fixed-step search"},
		},
		Build: func(r Run, p Params) (sim.Spec, error) {
			ctrl, _ := core.BuildOffline(r.Config, r.Profile, r.Window, offlineOpts(r, p))
			spec := r.spec()
			spec.Controller = ctrl
			spec.InitialFreqMHz = ctrl.Initial()
			return spec, nil
		},
		// The schedule search is the expensive part; the content address
		// must not pay it, so the key is the controller-less spec plus
		// the search parameters (exactly what determines the outcome).
		KeySpec: func(r Run, p Params) (sim.Spec, string, error) {
			return r.spec(), offlineOpts(r, p).CacheExtra(), nil
		},
	})
	Alias("dynamic-1", "dynamic", Params{"target": 0.01})
	Alias("dynamic-5", "dynamic", Params{"target": 0.05})

	Register(Definition{
		Name: "global",
		Doc:  "conventional global voltage/frequency scaling matched to a target slowdown (the Global(·) rows of Table 6)",
		Schema: Schema{
			{Name: "deg", Default: 0.02, Min: 0, Max: 0.12,
				Doc: "target performance degradation vs the synchronous baseline at maximum frequency"},
			{Name: "base_ps", Default: 0, Min: 0, Max: 1e12,
				Doc: "baseline synchronous run time in ps (0: measure it first)"},
		},
		Build: func(r Run, p Params) (sim.Spec, error) {
			base := p["base_ps"]
			if base == 0 {
				base = sim.Run(r.syncSpec(r.Config.MaxFreqMHz)).TimePS
			}
			// GlobalMatch's result is itself a synchronous run at the
			// matched frequency, so re-running the returned spec is
			// byte-identical by purity (the contract the registry tests
			// pin). Build can only hand back a spec, so a cold cell pays
			// one window-length run beyond the bisection's probes — the
			// price of making Global(·) a content-addressed registry
			// citizen; warm caches never pay it.
			freq, _ := core.GlobalMatchFidelity(r.Config, r.Profile, r.Window, r.Warmup, base, p["deg"], r.Name,
				r.Fidelity, r.SampleEvery, r.IntervalLength)
			return r.syncSpec(freq), nil
		},
		// The bisection is the expensive part; the content address is the
		// max-frequency synchronous spec plus the search parameters —
		// the exact extra format the bench harness has always used for
		// its Global(·) compound cells. The fidelity line rides on the
		// spec, so sampled Global(·) cells key apart from exact ones.
		KeySpec: func(r Run, p Params) (sim.Spec, string, error) {
			return r.syncSpec(r.Config.MaxFreqMHz),
				fmt.Sprintf("global|base=%s|deg=%s", resultcache.Float(p["base_ps"]), resultcache.Float(p["deg"])), nil
		},
	})
}

// FromAttackDecay translates the legacy core.Params struct into the
// attack-decay schema's parameter map, materializing the effective
// values core applies to zero RefIPCDecay/IPCSmoothing fields. A
// resolution over the returned map constructs a controller
// behaviourally identical to core.NewAttackDecay(p), which lets the
// experiment harness key its Attack/Decay grid cells by the same
// canonical encoding registry requests use.
func FromAttackDecay(p core.Params) Params {
	refdecay := p.RefIPCDecay
	if refdecay == 0 {
		refdecay = 0.01
	}
	smoothing := p.IPCSmoothing
	if smoothing == 0 {
		smoothing = 0.25
	}
	return Params{
		"deviation": p.DeviationThreshold,
		"reaction":  p.ReactionChange,
		"decay":     p.Decay,
		"perfdeg":   p.PerfDegThreshold,
		"refdecay":  refdecay,
		"smoothing": smoothing,
		"endstop":   float64(p.EndstopCount),
		"fe_mhz":    p.FrontEndMHz,
		"min_mhz":   p.MinMHz,
		"max_mhz":   p.MaxMHz,
	}
}

func offlineOpts(r Run, p Params) core.OfflineOptions {
	return core.OfflineOptions{
		TargetDeg:      p["target"],
		Iterations:     int(p["iters"]),
		AdaptiveStep:   p["adapt"] != 0,
		Warmup:         r.Warmup,
		IntervalLength: r.IntervalLength,
		Fidelity:       r.Fidelity,
		SampleEvery:    r.SampleEvery,
	}
}

// attackDecaySchema mirrors core.Params (Table 2) field for field; the
// defaults are the paper's headline configuration. refdecay and
// smoothing default to the effective values core applies when its
// struct fields are zero, so the registry's defaults and the legacy
// core.DefaultParams() construction behave identically.
func attackDecaySchema() Schema {
	d := core.DefaultParams()
	return Schema{
		{Name: "deviation", Default: d.DeviationThreshold, Min: 0, Max: 0.025,
			Doc: "relative queue-utilization change that triggers an attack"},
		{Name: "reaction", Default: d.ReactionChange, Min: 0.005, Max: 0.155,
			Doc: "period scale factor applied in attack mode"},
		{Name: "decay", Default: d.Decay, Min: 0, Max: 0.02,
			Doc: "period scale factor applied every quiet interval"},
		{Name: "perfdeg", Default: d.PerfDegThreshold, Min: 0, Max: 0.12,
			Doc: "performance degradation target"},
		{Name: "refdecay", Default: 0.01, Min: 0.001, Max: 0.1,
			Doc: "per-interval decay of the reference IPC"},
		{Name: "smoothing", Default: 0.25, Min: 0.05, Max: 1,
			Doc: "EMA coefficient applied to the interval IPC"},
		{Name: "endstop", Default: float64(d.EndstopCount), Min: 1, Max: 25,
			Doc: "consecutive end-stop intervals before a forced probe"},
		{Name: "fe_mhz", Default: d.FrontEndMHz, Min: 250, Max: 1000,
			Doc: "pinned front-end frequency"},
		{Name: "min_mhz", Default: d.MinMHz, Min: 250, Max: 1000,
			Doc: "lower frequency bound"},
		{Name: "max_mhz", Default: d.MaxMHz, Min: 250, Max: 1000,
			Doc: "upper frequency bound"},
	}
}

func attackDecayParams(p Params) core.Params {
	return core.Params{
		DeviationThreshold: p["deviation"],
		ReactionChange:     p["reaction"],
		Decay:              p["decay"],
		PerfDegThreshold:   p["perfdeg"],
		RefIPCDecay:        p["refdecay"],
		IPCSmoothing:       p["smoothing"],
		EndstopCount:       int(p["endstop"]),
		FrontEndMHz:        p["fe_mhz"],
		MinMHz:             p["min_mhz"],
		MaxMHz:             p["max_mhz"],
	}
}
