package sim

import (
	"errors"
	"sync"
	"sync/atomic"

	"mcd/internal/clock"
	"mcd/internal/pipeline"
	"mcd/internal/stats"
)

// corePool recycles pipeline cores across runs: a grid sweep reuses each
// worker's predictor, cache and queue allocations instead of rebuilding
// ~800 KB of tables per cell. Reset returns a pooled core to the freshly
// constructed state, so results are byte-identical to unpooled runs (the
// registry-wide byte-identity suite pins this).
var corePool = sync.Pool{}

// simulated counts instructions retired (warmup included) by every
// session closed in this process — the denominator for the harness's
// simulated-MIPS reporting.
var simulated atomic.Uint64

// SimulatedInstructions returns the process-wide count of instructions
// simulated by completed sessions, warmup included. Benchmarks read the
// delta across a measured region to report simulated MIPS.
func SimulatedInstructions() uint64 { return simulated.Load() }

// Session is a resumable simulation: the run loop of pipeline.Core
// inverted into caller-driven stepping, so a long run can be observed,
// steered and stopped early while it executes. Open a session, attach
// observers and an optional early-termination predicate, Step it (from
// a loop, a job runner, a handler), and Close it for the Result.
//
// Determinism: stepping only pauses the core's event loop between
// iterations — no simulation state depends on where the pauses fall —
// so a session drained in any step sizes produces a Result
// byte-identical to Run(spec) for the same spec. Run itself is an
// Open + drain + Close over this type, which makes the identity hold
// by construction; the registry-wide contract test at the repository
// root enforces it for every registered controller.
//
// A Session is not safe for concurrent use; drive it from one
// goroutine.
type Session struct {
	spec      Spec
	core      *pipeline.Core
	observers []func(stats.Interval)
	stop      func(stats.Progress) bool
	last      stats.Interval
	haveIV    bool
	stopped   bool
	done      bool
	closed    bool
	result    stats.Result
	// final freezes the core's progress at Close, after which the core
	// itself returns to the pool for reuse by another run.
	final stats.Progress
}

// Open starts a session over the spec. The simulation is initialized
// but no cycle executes until Step. It fails only when the spec has
// nothing to run (zero window and warmup).
func Open(s Spec) (*Session, error) {
	if s.Window == 0 && s.Warmup == 0 {
		return nil, errors.New("sim: session spec has nothing to run (zero window and warmup)")
	}
	return open(s), nil
}

// open is Open without the validation, shared with Run so the two stay
// behaviourally identical for every spec Run has ever accepted.
func open(s Spec) *Session {
	ses := &Session{spec: s}
	gen := s.Profile.NewGenerator(s.Warmup + s.Window)
	if c, ok := corePool.Get().(*pipeline.Core); ok {
		c.Reset(s.Config, gen)
		ses.core = c
	} else {
		ses.core = pipeline.New(s.Config, gen)
	}
	ses.core.Start(pipeline.RunOptions{
		Window:          s.Window,
		Warmup:          s.Warmup,
		IntervalLength:  s.IntervalLength,
		Controller:      s.Controller,
		InitialFreqMHz:  s.InitialFreqMHz,
		RecordIntervals: s.RecordIntervals,
		SampleEvery:     s.EffectiveSampleEvery(),
		ConfigName:      s.Name,
		OnInterval:      ses.onInterval,
	})
	if s.Sampled() {
		// Checkpointed warmup reuse: restore the shared warmed prefix
		// instead of re-simulating it. The restored core is byte-identical
		// to one that warmed itself (the warm pin test asserts it), so the
		// reuse is invisible to results.
		if w := warmFor(s); w != nil {
			ses.core.RestoreWarm(w)
		}
	}
	return ses
}

// onInterval fans one measured interval record out to the observers,
// then evaluates the early-termination predicate.
func (s *Session) onInterval(iv stats.Interval) {
	s.last, s.haveIV = iv, true
	for _, fn := range s.observers {
		fn(iv)
	}
	if s.stop != nil && !s.stopped && s.stop(s.Snapshot()) {
		s.stopped = true
		s.core.Halt()
	}
}

// Observe registers fn to be called with every measured control
// interval as it is produced — exactly the records RecordIntervals
// would retain, without buffering them. Attach observers before
// stepping; they run on the stepping goroutine.
func (s *Session) Observe(fn func(stats.Interval)) {
	s.observers = append(s.observers, fn)
}

// ObserveDecision registers fn to be called at every measured interval
// boundary with the interval record and the frequency targets the
// controller chose at that boundary. The distinction matters: the
// interval record's own FreqMHz holds the frequencies the interval ran
// at (pre-decision), while the core applies the controller's new
// targets before observers fire — so the session's current regulator
// targets are the decision. This is the serving layer's controller
// decision audit hook; like Observe, attach before stepping.
func (s *Session) ObserveDecision(fn func(iv stats.Interval, chosen [clock.NumControllable]float64)) {
	s.Observe(func(iv stats.Interval) {
		fn(iv, s.core.Progress().FreqMHz)
	})
}

// StopWhen installs an early-termination predicate, evaluated with the
// session's progress at every measured interval boundary: once it
// returns true the session halts, Step returns false, and Close
// finalizes a well-formed partial Result covering the measured region
// so far. See Converged for the EPI/CPI-stability family of predicates.
func (s *Session) StopWhen(cond func(stats.Progress) bool) {
	s.stop = cond
}

// Step advances the simulation until at least n more control intervals
// have been emitted (n <= 0 drains the run), returning true while the
// run can still advance. Warmup intervals count toward n but are not
// observed.
func (s *Session) Step(n int) bool {
	if s.done || s.closed {
		return false
	}
	if !s.core.StepIntervals(n) {
		s.done = true
	}
	return !s.done
}

// Snapshot reports resumable progress: measured instructions retired,
// time, energy, the current regulator frequency targets, the last
// interval's IPC, and whether the run finished or stopped early.
func (s *Session) Snapshot() stats.Progress {
	p := s.final
	if !s.closed {
		p = s.core.Progress()
	}
	if s.haveIV {
		p.IPC = s.last.IPC
	}
	p.Stopped = s.stopped
	if s.closed {
		p.Done = true
	}
	return p
}

// Close finalizes the session at its current position — it does not
// advance the run — and returns the Result: complete after a full
// drain, a well-formed partial otherwise. Close is idempotent;
// subsequent calls return the same Result and further Steps are no-ops.
// Closing releases the core back to the pool for reuse by another run;
// the Result and the frozen Snapshot remain valid.
func (s *Session) Close() stats.Result {
	if !s.closed {
		s.closed = true
		s.done = true
		s.result = s.core.Finish()
		s.final = s.core.Progress()
		simulated.Add(s.core.Retired())
		// Drop the run's object graph (generator, observer closures, the
		// interval buffer now owned by the Result) before pooling, so an
		// idle pooled core pins nothing from this session.
		s.core.Release()
		corePool.Put(s.core)
		s.core = nil
	}
	return s.result
}

// Converged returns a StopWhen predicate that fires once metric has
// moved by at most eps (relatively) across k consecutive measured
// intervals — e.g.
//
//	ses.StopWhen(sim.Converged(stats.Progress.EPI, 0.001, 20))
//
// stops a run whose energy per instruction has settled.
func Converged(metric func(stats.Progress) float64, eps float64, k int) func(stats.Progress) bool {
	var prev float64
	have, stable := false, 0
	return func(p stats.Progress) bool {
		v := metric(p)
		if have {
			d := v - prev
			if d < 0 {
				d = -d
			}
			bound := prev
			if bound < 0 {
				bound = -bound
			}
			if d <= eps*bound {
				stable++
			} else {
				stable = 0
			}
		}
		prev, have = v, true
		return stable >= k
	}
}
