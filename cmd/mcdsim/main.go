// Command mcdsim runs a single benchmark under one configuration and
// prints the measurements.
//
// Usage:
//
//	mcdsim -bench mcf -config attack-decay -window 400000 -warmup 200000
//
// Configurations: sync (fully synchronous 1 GHz), mcd (baseline MCD, all
// domains at maximum), attack-decay (the paper's on-line algorithm),
// dynamic-1 / dynamic-5 (off-line comparators).
package main

import (
	"flag"
	"fmt"
	"os"

	"mcd"
)

func main() {
	var (
		benchName = flag.String("bench", "epic.decode", "benchmark name (see mcdbench -exp table5)")
		config    = flag.String("config", "attack-decay", "sync | mcd | attack-decay | dynamic-1 | dynamic-5")
		window    = flag.Uint64("window", 400_000, "measured instructions")
		warmup    = flag.Uint64("warmup", 200_000, "warmup instructions")
		interval  = flag.Uint64("interval", 1000, "controller sampling interval (instructions)")
		slew      = flag.Float64("slew", 4.91, "regulator slew in ns/MHz (paper scale: 49.1)")
	)
	flag.Parse()

	bench, ok := mcd.LookupBenchmark(*benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "mcdsim: unknown benchmark %q\n", *benchName)
		os.Exit(1)
	}
	cfg := mcd.DefaultConfig()
	cfg.SlewNsPerMHz = *slew
	spec := mcd.Spec{
		Config:         cfg,
		Profile:        bench.Profile,
		Window:         *window,
		Warmup:         *warmup,
		IntervalLength: *interval,
		Name:           *config,
	}

	var res mcd.Result
	switch *config {
	case "sync":
		res = mcd.RunSynchronousAt(cfg, bench.Profile, *window, *warmup, 1000, "sync")
	case "mcd":
		res = mcd.Run(spec)
	case "attack-decay":
		spec.Controller = mcd.NewAttackDecay(mcd.DefaultParams())
		res = mcd.Run(spec)
	case "dynamic-1", "dynamic-5":
		target := 0.01
		if *config == "dynamic-5" {
			target = 0.05
		}
		ctrl, _ := mcd.BuildOffline(cfg, bench.Profile, *window, mcd.OfflineOptions{
			TargetDeg: target, Warmup: *warmup,
		})
		spec.Controller = ctrl
		spec.InitialFreqMHz = ctrl.Initial()
		res = mcd.Run(spec)
	default:
		fmt.Fprintf(os.Stderr, "mcdsim: unknown config %q\n", *config)
		os.Exit(1)
	}

	fmt.Printf("benchmark    %s (%s)\n", bench.Name, bench.Suite)
	fmt.Printf("config       %s\n", *config)
	fmt.Printf("instructions %d\n", res.Instructions)
	fmt.Printf("time         %.3f µs\n", res.TimePS/1e6)
	fmt.Printf("CPI (1 GHz)  %.4f\n", res.CPI())
	fmt.Printf("energy       %.3f µJ (EPI %.1f pJ)\n", res.EnergyPJ/1e6, res.EPI())
	fmt.Printf("power        %.3f W\n", res.PowerW())
	fmt.Printf("branch acc   %.2f%%   L1D miss %.2f%%   L2 miss %.2f%%\n",
		res.BranchAccuracy*100, res.L1DMissRate*100, res.L2MissRate*100)
	fmt.Printf("avg freq MHz fe=%.0f int=%.0f fp=%.0f ls=%.0f (transitions %d)\n",
		res.AvgFreqMHz[mcd.FrontEnd], res.AvgFreqMHz[mcd.Integer],
		res.AvgFreqMHz[mcd.FloatingPoint], res.AvgFreqMHz[mcd.LoadStore], res.Transitions)
}
