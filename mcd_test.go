package mcd_test

import (
	"testing"

	"mcd"
)

// The facade is exercised end to end: an Attack/Decay run on a real
// catalog benchmark must save energy against the MCD baseline at a small
// performance cost.
func TestPublicAPIEndToEnd(t *testing.T) {
	bench, ok := mcd.LookupBenchmark("g721")
	if !ok {
		t.Fatal("g721 missing from catalog")
	}
	cfg := mcd.DefaultConfig()
	cfg.SlewNsPerMHz = 4.91
	spec := mcd.Spec{
		Config:         cfg,
		Profile:        bench.Profile,
		Window:         200_000,
		Warmup:         100_000,
		IntervalLength: 1000,
	}
	base := mcd.Run(spec)
	spec.Controller = mcd.NewAttackDecay(mcd.DefaultParams())
	spec.Name = "attack-decay"
	ad := mcd.Run(spec)

	c := mcd.Compare(ad, base)
	if c.EnergySavings <= 0 {
		t.Errorf("no energy savings: %+v", c)
	}
	if c.PerfDegradation > 0.10 {
		t.Errorf("degradation %v too high", c.PerfDegradation)
	}
	s := mcd.Summarize([]mcd.Comparison{c})
	if s.N != 1 || s.EnergySavings != c.EnergySavings {
		t.Errorf("summary inconsistent: %+v", s)
	}
}

func TestPublicAPISynchronousBaseline(t *testing.T) {
	bench, _ := mcd.LookupBenchmark("adpcm")
	res := mcd.RunSynchronousAt(mcd.DefaultConfig(), bench.Profile, 50_000, 10_000, 1000, "sync")
	if res.Instructions != 50_000 {
		t.Fatalf("retired %d", res.Instructions)
	}
	if res.CPI() <= 0 {
		t.Error("CPI not positive")
	}
}

func TestCatalogExposed(t *testing.T) {
	if got := len(mcd.Catalog()); got != 30 {
		t.Errorf("catalog = %d benchmarks, want 30", got)
	}
}
