package control

import (
	"reflect"
	"strings"
	"testing"

	"mcd/internal/core"
	"mcd/internal/pipeline"
	"mcd/internal/resultcache"
	"mcd/internal/sim"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

func testRun(t *testing.T) Run {
	t.Helper()
	b, ok := workload.Lookup("adpcm")
	if !ok {
		t.Fatal("adpcm missing from catalog")
	}
	return Run{
		Config:         pipeline.DefaultConfig(),
		Profile:        b.Profile,
		Window:         8_000,
		Warmup:         4_000,
		IntervalLength: 500,
	}
}

// The five legacy configuration names and both new controllers must all
// be registered.
func TestBuiltinNamesRegistered(t *testing.T) {
	names := Names()
	for _, want := range []string{
		"sync", "mcd", "attack-decay", "dynamic", "dynamic-1", "dynamic-5", "pi", "coord",
	} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("controller %q not registered (have %v)", want, names)
		}
	}
	if !sorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
}

func sorted(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// Every registered controller resolves with defaults, keys
// deterministically, and no two names share a content address for the
// same base run.
func TestEveryControllerKeysDeterministically(t *testing.T) {
	run := testRun(t)
	seen := map[string]string{}
	for _, name := range Names() {
		res, err := Resolve(name, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		k1, err := res.Key(run)
		if err != nil {
			t.Fatalf("%s: Key: %v", name, err)
		}
		res2, _ := Resolve(name, nil)
		k2, err := res2.Key(run)
		if err != nil {
			t.Fatalf("%s: re-Key: %v", name, err)
		}
		if k1 != k2 {
			t.Errorf("%s: key not deterministic: %s vs %s", name, k1, k2)
		}
		if prev, dup := seen[k1]; dup {
			t.Errorf("controllers %s and %s share key %s", prev, name, k1)
		}
		seen[k1] = name
	}
}

// Parameter overrides must move the content address; resolving the same
// overrides twice must not.
func TestParamsChangeKey(t *testing.T) {
	run := testRun(t)
	base, err := Resolve("pi", nil)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Resolve("pi", Params{"kp": 0.125})
	if err != nil {
		t.Fatal(err)
	}
	kb, err := base.Key(run)
	if err != nil {
		t.Fatal(err)
	}
	kt, err := tuned.Key(run)
	if err != nil {
		t.Fatal(err)
	}
	if kb == kt {
		t.Error("kp override did not change the content address")
	}
	if base.Canonical() == tuned.Canonical() {
		t.Error("kp override did not change the canonical encoding")
	}
}

// Unknown controller names are rejected with the sorted valid set in
// the error.
func TestUnknownNameListsSortedValidSet(t *testing.T) {
	_, err := Resolve("bogus", nil)
	if err == nil {
		t.Fatal("unknown controller accepted")
	}
	msg := err.Error()
	idx := -1
	for _, n := range Names() {
		i := strings.Index(msg, n)
		if i < 0 {
			t.Fatalf("error %q does not list %q", msg, n)
		}
		if i < idx {
			t.Fatalf("error %q does not list names in sorted order", msg)
		}
		idx = i
	}
}

func TestUnknownParameterListsSchema(t *testing.T) {
	_, err := Resolve("pi", Params{"nope": 1})
	if err == nil {
		t.Fatal("unknown parameter accepted")
	}
	for _, f := range []string{"setpoint", "kp", "ki", "windup"} {
		if !strings.Contains(err.Error(), f) {
			t.Errorf("error %q does not list schema field %q", err, f)
		}
	}
}

// Alias pins are not overridable: dynamic-1's target is fixed; the
// parameterized form is the canonical "dynamic" name.
func TestAliasPinsParameters(t *testing.T) {
	if _, err := Resolve("dynamic-1", Params{"target": 0.05}); err == nil {
		t.Fatal("pinned parameter override accepted")
	} else if !strings.Contains(err.Error(), `"dynamic"`) {
		t.Errorf("pin error %q does not point at the canonical name", err)
	}
	one, err := Resolve("dynamic-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := one.Params()["target"]; got != 0.01 {
		t.Errorf("dynamic-1 target = %v, want 0.01", got)
	}
	// iters stays tunable through the alias.
	if _, err := Resolve("dynamic-1", Params{"iters": 3}); err != nil {
		t.Errorf("unpinned parameter rejected through alias: %v", err)
	}
}

// The same name resolved through the alias and through the canonical
// definition with identical parameters must describe behaviourally
// identical controllers (equal canonical encodings) — but distinct
// result labels, hence distinct content addresses.
func TestAliasCanonicalEquivalence(t *testing.T) {
	run := testRun(t)
	alias, err := Resolve("dynamic-5", nil)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := Resolve("dynamic", Params{"target": 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if alias.Canonical() != canon.Canonical() {
		t.Errorf("canonical encodings differ: %q vs %q", alias.Canonical(), canon.Canonical())
	}
	ka, _ := alias.Key(run)
	kc, _ := canon.Key(run)
	if ka == kc {
		t.Error("alias and canonical name share a key despite different result labels")
	}
}

func TestRegisterRejectsBrokenDefinitions(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { Register(Definition{}) })
	mustPanic("both nil", func() { Register(Definition{Name: "t-bothnil"}) })
	mustPanic("duplicate", func() {
		Register(Definition{Name: "pi", New: func(Params) (pipeline.Controller, error) { return nil, nil }})
	})
	mustPanic("dup field", func() {
		Register(Definition{
			Name:   "t-dupfield",
			Schema: Schema{{Name: "a"}, {Name: "a"}},
			New:    func(Params) (pipeline.Controller, error) { return nil, nil },
		})
	})
	mustPanic("alias of alias", func() { Alias("t-aa", "dynamic-1", nil) })
	mustPanic("alias unknown pin", func() { Alias("t-up", "dynamic", Params{"nope": 1}) })
}

// A freshly registered controller is immediately resolvable, runnable
// and content-addressable — the "one registration" contract the
// customcontroller example relies on.
func TestRegistrationIsSufficient(t *testing.T) {
	if _, ok := Lookup("t-fixed"); ok {
		t.Fatal("t-fixed already registered (test re-run in one process?)")
	}
	Register(Definition{
		Name:   "t-fixed",
		Doc:    "test controller",
		Schema: Schema{{Name: "f_mhz", Default: 500, Min: 250, Max: 1000}},
		New: func(p Params) (pipeline.Controller, error) {
			return fixedFreq{f: p["f_mhz"]}, nil
		},
	})
	run := testRun(t)
	res, err := Resolve("t-fixed", nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := res.Spec(run)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.Run(spec)
	if r.Config != "t-fixed" {
		t.Errorf("result labeled %q, want t-fixed", r.Config)
	}
	// The run starts at 1000 MHz and the regulator slews, so the average
	// sits between the start and the 500 MHz command; it must still have
	// moved well below max.
	if got := r.AvgFreqMHz[1]; got > 900 {
		t.Errorf("fixed 500 MHz controller averaged %v MHz, never left max", got)
	}
	if _, err := res.Key(run); err != nil {
		t.Errorf("registered controller not content-addressable: %v", err)
	}
}

type fixedFreq struct{ f float64 }

func (c fixedFreq) Name() string     { return "t-fixed" }
func (c fixedFreq) CacheKey() string { return "t-fixed" }
func (c fixedFreq) Observe(pipeline.IntervalView) (t [4]float64) {
	t[0] = 1000
	t[1], t[2], t[3] = c.f, c.f, c.f
	return t
}

// Both new controllers actually control: on a benchmark with idle
// domains they save energy versus the all-max baseline while staying
// deterministic run to run (byte-identical canonical encodings, the
// property the result store rests on).
func TestPIAndCoordBehave(t *testing.T) {
	run := testRun(t)
	run.Window, run.Warmup = 40_000, 20_000

	base := runByName(t, "mcd", run)

	for _, name := range []string{"pi", "coord"} {
		r1 := runByName(t, name, run)
		r2 := runByName(t, name, run)
		b1, err := resultcache.EncodeResult(r1)
		if err != nil {
			t.Fatal(err)
		}
		b2, _ := resultcache.EncodeResult(r2)
		if string(b1) != string(b2) {
			t.Errorf("%s: repeated runs differ", name)
		}
		if r1.EnergyPJ >= base.EnergyPJ {
			t.Errorf("%s: no energy savings (%.0f vs base %.0f pJ)", name, r1.EnergyPJ, base.EnergyPJ)
		}
		if deg := r1.TimePS/base.TimePS - 1; deg > 0.15 {
			t.Errorf("%s: degradation %.1f%% is implausibly high", name, deg*100)
		}
		if r1.Transitions == 0 {
			t.Errorf("%s: controller never changed a frequency", name)
		}
	}
}

// TestSchemaFieldsAllMoveKeys guards key-material completeness for the
// New-based controllers: changing any single schema parameter must
// change both the registry content address (canonical-params path) and
// the instance's CacheKey (the hand-built-spec path) — a field added to
// a schema but forgotten by a CacheKey format string fails here instead
// of silently aliasing distinct runs in the cache.
func TestSchemaFieldsAllMoveKeys(t *testing.T) {
	run := testRun(t)
	for _, name := range []string{"pi", "coord", "attack-decay"} {
		reg, ok := Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		base, err := Resolve(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		baseKey, err := base.Key(run)
		if err != nil {
			t.Fatal(err)
		}
		baseCtrl, err := reg.New(base.Params())
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range reg.Schema {
			tweaked, err := Resolve(name, Params{f.Name: f.Default*1.5 + 1})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, f.Name, err)
			}
			k, err := tweaked.Key(run)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, f.Name, err)
			}
			if k == baseKey {
				t.Errorf("%s: parameter %s does not move the registry key", name, f.Name)
			}
			ctrl, err := reg.New(tweaked.Params())
			if err != nil {
				t.Fatal(err)
			}
			ck, ok := ctrl.(resultcache.Keyer)
			bk, ok2 := baseCtrl.(resultcache.Keyer)
			if !ok || !ok2 {
				t.Fatalf("%s: instances do not implement CacheKey", name)
			}
			if ck.CacheKey() == bk.CacheKey() {
				t.Errorf("%s: parameter %s missing from CacheKey", name, f.Name)
			}
		}
	}
}

func runByName(t *testing.T, name string, run Run) stats.Result {
	t.Helper()
	res, err := Resolve(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := res.Spec(run)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Run(spec)
}

// The "global" definition must reproduce core.GlobalMatch exactly:
// building its spec and running it yields the same Result the direct
// search returns (the bisection's best probe is itself a synchronous
// run at the matched frequency, so purity closes the loop).
func TestGlobalDefinitionMatchesGlobalMatch(t *testing.T) {
	run := testRun(t)
	base := sim.RunSynchronousAt(run.Config, run.Profile, run.Window, run.Warmup,
		run.Config.MaxFreqMHz, "global")
	_, want := core.GlobalMatch(run.Config, run.Profile, run.Window, run.Warmup,
		base.TimePS, 0.03, "global")

	res, err := Resolve("global", Params{"deg": 0.03, "base_ps": base.TimePS})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := res.Spec(run)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Run(spec); !reflect.DeepEqual(want, got) {
		t.Errorf("global definition run differs from core.GlobalMatch:\nwant %+v\ngot  %+v", want, got)
	}

	// base_ps 0 measures the baseline itself and must land on the same
	// schedule (the measured base is bit-equal to the explicit one).
	res0, err := Resolve("global", Params{"deg": 0.03})
	if err != nil {
		t.Fatal(err)
	}
	spec0, err := res0.Spec(run)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Run(spec0); !reflect.DeepEqual(want, got) {
		t.Error("global with measured baseline differs from explicit base_ps")
	}

	// The content address never pays for the bisection and separates by
	// parameters.
	k1, err := res.Key(run)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Resolve("global", Params{"deg": 0.05, "base_ps": base.TimePS})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := res2.Key(run)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("distinct global targets share a content address")
	}
}

// FromAttackDecay must be behaviour-preserving: resolving the schema
// map it produces constructs a controller whose run is byte-identical
// to core.NewAttackDecay over the original struct — zero
// RefIPCDecay/IPCSmoothing (core's implicit defaults) included.
func TestFromAttackDecayEquivalence(t *testing.T) {
	run := testRun(t)
	p := core.DefaultParams() // RefIPCDecay and IPCSmoothing are zero here
	direct := run.spec()
	direct.Controller = core.NewAttackDecay(p)
	direct.Name = "attack-decay"
	want := sim.Run(direct)

	res, err := Resolve("attack-decay", FromAttackDecay(p))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := res.Spec(run)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Run(spec); !reflect.DeepEqual(want, got) {
		t.Error("FromAttackDecay resolution runs differently from core.NewAttackDecay")
	}

	// And its canonical encoding equals the schema defaults', so bench
	// grid cells built from core.DefaultParams() share addresses with
	// parameterless service requests.
	def, err := Resolve("attack-decay", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Canonical() != def.Canonical() {
		t.Errorf("FromAttackDecay(DefaultParams()) canonical %q != schema defaults %q",
			res.Canonical(), def.Canonical())
	}
}

// FromAttackDecay must cover every core.Params field: a field added
// without extending the mapping would silently drop behaviour AND
// alias behaviourally distinct runs onto one cache address (the map is
// key material through the canonical encoding). Same pattern as
// resultcache's TestKeyCoversEveryField.
func TestFromAttackDecayCoversEveryField(t *testing.T) {
	const covered = 10
	if n := reflect.TypeOf(core.Params{}).NumField(); n != covered {
		t.Errorf("core.Params has %d fields, FromAttackDecay maps %d: extend the mapping (and the attack-decay schema)", n, covered)
	}
	if n := len(FromAttackDecay(core.DefaultParams())); n != covered {
		t.Errorf("FromAttackDecay returns %d parameters, want %d", n, covered)
	}
}
