package service

import (
	"time"

	"mcd/internal/clock"
	"mcd/internal/resultcache"
	"mcd/internal/stats"
	"mcd/internal/trace"
	"mcd/internal/wire"
)

// maxJobTraceRecords bounds one job's retained trace. A quick run's
// full lifecycle plus per-interval decisions fits comfortably; a
// paper-scale run keeps its newest records and the export reports the
// overwritten remainder explicitly (trace.WriteChrome's truncation
// instant), so a long run can never grow server memory without bound.
const maxJobTraceRecords = 4096

// tracing reports whether the flight recorder is configured; every
// trace-producing call site is behind it, so a server without -trace
// takes no timestamps and allocates no records.
func (m *Manager) tracing() bool { return m.opts.Trace != nil }

// addTrace stamps the job identity onto one record and lands it in both
// sinks: the job's own bounded trace (GET /v1/jobs/{id}/trace) and the
// process-wide ring (GET /debug/trace).
func (m *Manager) addTrace(j *Job, rec trace.Record) {
	rec.Job = j.id
	rec.Client = j.client
	j.Trace().Add(rec)
	m.opts.Trace.Add(rec)
}

// spanRec builds a lifecycle span record.
func spanRec(name, key, tier string, start, end time.Time) trace.Record {
	return trace.Record{
		Kind: trace.KindSpan, Name: name, Key: key, Tier: tier,
		StartUS: start.UnixMicro(), DurUS: end.Sub(start).Microseconds(),
	}
}

// instantRec builds a point-event record.
func instantRec(name string, at time.Time) trace.Record {
	return trace.Record{Kind: trace.KindInstant, Name: name, StartUS: at.UnixMicro()}
}

// runHooks builds the observation surface of one run-family job: the
// interval emitter always, plus — when tracing — cache probe/run/store
// spans and the per-interval controller decision audit. The spec key is
// computed once here and stamped on the job for logs and trace records
// ("" for opaque controllers, which still trace).
func (m *Manager) runHooks(j *Job, r wire.RunRequest, emit func(stats.Interval)) wire.RunHooks {
	h := wire.RunHooks{Emit: emit}
	if !m.tracing() {
		return h
	}
	key, _ := r.Key()
	j.setKey(key)
	h.Cache = &resultcache.Obs{
		Probe: func(tier string, start, end time.Time) {
			m.addTrace(j, spanRec("probe", key, tier, start, end))
		},
		Compute: func(start, end time.Time) {
			m.addTrace(j, spanRec("run", key, "", start, end))
		},
		Store: func(start, end time.Time, err error) {
			rec := spanRec("store", key, "", start, end)
			if err != nil {
				rec.Note = err.Error()
			}
			m.addTrace(j, rec)
		},
	}
	h.Decide = func(iv stats.Interval, chosen [clock.NumControllable]float64, note string) {
		m.addTrace(j, trace.Record{
			Kind: trace.KindDecision, Name: "decision", Key: key,
			Interval: iv.Index, SimPS: iv.EndPS, IPC: iv.IPC,
			QueueAvg: iv.QueueAvg, FreqMHz: chosen, Note: note,
		})
	}
	return h
}

// Trace returns the job's bounded trace buffer (nil when tracing is
// disabled or the buffer has been released; a nil Ring is inert).
func (j *Job) Trace() *trace.Ring {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trc
}

// setKey stamps the job's content-addressed spec key once computed.
func (j *Job) setKey(key string) {
	j.mu.Lock()
	j.key = key
	j.mu.Unlock()
}

// Key returns the job's spec key, if one has been computed.
func (j *Job) Key() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.key
}

// dropTrace releases the job's trace buffer; like dropIntervals it runs
// when a terminal job ages past the retained observability window.
func (j *Job) dropTrace() {
	j.mu.Lock()
	j.trc = nil
	j.mu.Unlock()
}
