package mcd_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"mcd"
)

// TestSessionByteIdentityAllControllers is the loop-inversion contract,
// registry-driven like the PR 3 round-trip test: for every registered
// controller name, a session stepped in small increments produces a
// Result byte-identical to mcd.Run of the same spec. Because mcd.Run is
// itself an Open + drain + Close, this pins one-shot output across the
// inversion for the whole registry — compound Build controllers
// (dynamic schedules, the global bisection) included.
func TestSessionByteIdentityAllControllers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full registry")
	}
	bench, ok := mcd.LookupBenchmark("adpcm")
	if !ok {
		t.Fatal("adpcm missing from catalog")
	}
	cfg := mcd.DefaultConfig()
	cfg.SlewNsPerMHz = 4.91
	run := mcd.ControllerRun{
		Config:         cfg,
		Profile:        bench.Profile,
		Window:         20_000,
		Warmup:         8_000,
		IntervalLength: 500,
	}
	// Keep the compound searches cheap; schemas without these
	// parameters get no overrides.
	params := map[string]mcd.ControllerParams{
		"dynamic":   {"iters": 2},
		"dynamic-1": {"iters": 2},
		"dynamic-5": {"iters": 2},
	}
	for _, name := range mcd.ControllerNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := mcd.ControllerSpec(name, params[name], run)
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(mcd.Run(spec))
			if err != nil {
				t.Fatal(err)
			}

			// A fresh spec: controllers are stateful, one instance per run.
			spec2, err := mcd.ControllerSpec(name, params[name], run)
			if err != nil {
				t.Fatal(err)
			}
			ses, err := mcd.Open(spec2)
			if err != nil {
				t.Fatal(err)
			}
			intervals := 0
			ses.Observe(func(mcd.Interval) { intervals++ })
			for ses.Step(3) {
			}
			got, err := json.Marshal(ses.Close())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Errorf("stepped session result differs from mcd.Run:\n run: %s\nstep: %s", want, got)
			}
			if intervals == 0 {
				t.Error("session emitted no measured intervals")
			}
		})
	}
}
