package resultcache_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcd/internal/clock"
	"mcd/internal/core"
	"mcd/internal/pipeline"
	"mcd/internal/resultcache"
	"mcd/internal/sim"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

func testSpec(t *testing.T, ctrl pipeline.Controller, name string) sim.Spec {
	t.Helper()
	b, ok := workload.Lookup("adpcm")
	if !ok {
		t.Fatal("adpcm not in catalog")
	}
	return sim.Spec{
		Config:         pipeline.DefaultConfig(),
		Profile:        b.Profile,
		Window:         8_000,
		Warmup:         4_000,
		IntervalLength: 250,
		Controller:     ctrl,
		Name:           name,
	}
}

func TestSpecKeyDeterministicAndSensitive(t *testing.T) {
	s := testSpec(t, nil, "mcd-base")
	k1, err := resultcache.SpecKey(s)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := resultcache.SpecKey(s)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("same spec, different keys: %s vs %s", k1, k2)
	}

	// Every mutation below must change the address.
	muts := map[string]func(*sim.Spec){
		"window":     func(s *sim.Spec) { s.Window++ },
		"warmup":     func(s *sim.Spec) { s.Warmup++ },
		"interval":   func(s *sim.Spec) { s.IntervalLength++ },
		"name":       func(s *sim.Spec) { s.Name = "other" },
		"record":     func(s *sim.Spec) { s.RecordIntervals = true },
		"seed":       func(s *sim.Spec) { s.Config.Seed++ },
		"slew":       func(s *sim.Spec) { s.Config.SlewNsPerMHz *= 2 },
		"single":     func(s *sim.Spec) { s.Config.SingleClock = true },
		"init":       func(s *sim.Spec) { s.InitialFreqMHz[clock.Integer] = 500 },
		"profile":    func(s *sim.Spec) { s.Profile.Seed++ },
		"phase":      func(s *sim.Spec) { s.Profile.Phases[0].DepMean += 1 },
		"controller": func(s *sim.Spec) { s.Controller = core.NewAttackDecay(core.DefaultParams()) },
		"fidelity":   func(s *sim.Spec) { s.Fidelity = sim.FidelitySampled },
		"sample": func(s *sim.Spec) {
			s.Fidelity = sim.FidelitySampled
			s.SampleEvery = sim.DefaultSampleEvery * 2
		},
	}
	for label, mut := range muts {
		m := testSpec(t, nil, "mcd-base")
		mut(&m)
		km, err := resultcache.SpecKey(m)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if km == k1 {
			t.Errorf("mutating %s did not change the key", label)
		}
	}

	// Controller parameters are part of the address.
	ka1, _ := resultcache.SpecKey(testSpec(t, core.NewAttackDecay(core.DefaultParams()), "ad"))
	p := core.DefaultParams()
	p.Decay *= 2
	ka2, _ := resultcache.SpecKey(testSpec(t, core.NewAttackDecay(p), "ad"))
	if ka1 == ka2 {
		t.Error("attack-decay params did not change the key")
	}

	// Extra material is part of the address.
	ke, _ := resultcache.SpecKeyExtra(s, "offline|target=1")
	if ke == k1 {
		t.Error("extra material did not change the key")
	}
}

type opaqueController struct{}

func (opaqueController) Name() string { return "opaque" }
func (opaqueController) Observe(pipeline.IntervalView) [clock.NumControllable]float64 {
	return [clock.NumControllable]float64{}
}

func TestSpecKeyUncacheableController(t *testing.T) {
	_, err := resultcache.SpecKey(testSpec(t, opaqueController{}, "opaque"))
	if err == nil || !strings.Contains(err.Error(), "CacheKey") {
		t.Fatalf("want ErrUncacheable, got %v", err)
	}
}

// TestKeyCoversEveryField pins the field counts of every struct the
// canonical encoding covers. When this test fails, a field was added or
// removed: update encodeSpec/CacheKey to cover it AND bump
// specKeyVersion so stale disk entries cannot satisfy new requests.
func TestKeyCoversEveryField(t *testing.T) {
	want := map[string]struct {
		typ reflect.Type
		n   int
	}{
		// 10th/11th fields, Fidelity and SampleEvery: covered by the
		// unconditional normalized fidelity line (see SpecKeyExtra),
		// which forced the v2 → v3 version bump.
		"sim.Spec":         {reflect.TypeOf(sim.Spec{}), 11},
		"pipeline.Config":  {reflect.TypeOf(pipeline.Config{}), 29},
		"workload.Profile": {reflect.TypeOf(workload.Profile{}), 5},
		"workload.Phase":   {reflect.TypeOf(workload.Phase{}), 11},
		"workload.Mix":     {reflect.TypeOf(workload.Mix{}), 8},
		"core.Params":      {reflect.TypeOf(core.Params{}), 10},
		// OfflineOptions is key material through CacheExtra: a new
		// result-affecting search field must be added there (and the
		// version bumped) or stale dynamic-1%/5% entries get served.
		// (9th field, AdaptiveStep: covered by a conditional "|adapt=1"
		// suffix with no version bump — the zero value encodes exactly
		// as before, so every legacy address is preserved, and the
		// suffix cannot collide with a legacy extra, which always ends
		// in "cands=N". TestAdaptiveCacheExtraPreservesLegacyAddresses
		// pins both halves. 10th/11th fields, Fidelity and SampleEvery:
		// deliberately NOT in CacheExtra — they are run-surface, not
		// search-surface, and the outer spec's fidelity line already
		// addresses them.)
		"core.OfflineOptions": {reflect.TypeOf(core.OfflineOptions{}), 11},
	}
	for name, w := range want {
		if n := w.typ.NumField(); n != w.n {
			t.Errorf("%s has %d fields, encoder covers %d: extend the canonical encoding and bump specKeyVersion",
				name, n, w.n)
		}
	}
}

// TestSpecKeyV3Migration pins the fidelity tier's addressing rules.
// The recorded constant is the v2 ("mcd-spec-v2", no fidelity line)
// address of the same base spec: a v3 binary must never produce it, so
// stale pre-fidelity disk entries can never satisfy new requests. On
// the v3 surface, exact is one computation however it is spelled
// (empty or explicit fidelity, any SampleEvery — exact ignores it),
// and each sampled cadence is a distinct one.
func TestSpecKeyV3Migration(t *testing.T) {
	const v2Key = "21877937e1fe69f6ff468a0c043cf40996f71def59feae08208fe8c9069e910d"
	s := testSpec(t, nil, "mcd-base")
	k, err := resultcache.SpecKey(s)
	if err != nil {
		t.Fatal(err)
	}
	if k == v2Key {
		t.Error("v3 encoder reproduced the v2 address: stale entries would be served")
	}

	// Every spelling of exact addresses the same computation.
	e := s
	e.Fidelity = sim.FidelityExact
	e.SampleEvery = 7
	if ke, _ := resultcache.SpecKey(e); ke != k {
		t.Error("explicit exact (with a stray SampleEvery) does not share the implicit exact address")
	}

	// Sampled never collides with exact; the defaulted cadence resolves
	// to its effective value; distinct cadences are distinct addresses.
	sm := s
	sm.Fidelity = sim.FidelitySampled
	kDef, _ := resultcache.SpecKey(sm)
	if kDef == k {
		t.Error("sampled shares the exact address")
	}
	sm.SampleEvery = sim.DefaultSampleEvery
	if kRes, _ := resultcache.SpecKey(sm); kRes != kDef {
		t.Error("defaulted cadence does not resolve to its effective value")
	}
	sm.SampleEvery = sim.DefaultSampleEvery * 2
	if k2, _ := resultcache.SpecKey(sm); k2 == kDef {
		t.Error("distinct sampled cadences share an address")
	}
}

// TestCachedByteIdentical is the determinism-under-caching contract:
// the cached result is byte-identical to a recompute, and the decoded
// hit is indistinguishable from the directly computed Result.
func TestCachedByteIdentical(t *testing.T) {
	c, err := resultcache.New(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(t, core.NewAttackDecay(core.DefaultParams()), "attack-decay")
	key, err := resultcache.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (stats.Result, error) {
		s := spec
		s.Controller = core.NewAttackDecay(core.DefaultParams())
		return sim.Run(s), nil
	}

	r1, hit1, err := c.DoResult(key, run)
	if err != nil || hit1 {
		t.Fatalf("first Do: hit=%v err=%v", hit1, err)
	}
	r2, hit2, err := c.DoResult(key, run)
	if err != nil || !hit2 {
		t.Fatalf("second Do: hit=%v err=%v", hit2, err)
	}
	direct, _ := run()

	b1, _ := resultcache.EncodeResult(r1)
	b2, _ := resultcache.EncodeResult(r2)
	bd, _ := resultcache.EncodeResult(direct)
	if !bytes.Equal(b1, b2) {
		t.Error("cached result not byte-identical to first compute")
	}
	if !bytes.Equal(b2, bd) {
		t.Error("cached result not byte-identical to a recompute")
	}
	if !reflect.DeepEqual(r2, direct) {
		t.Error("decoded hit differs structurally from a recompute")
	}
}

func TestSingleFlight(t *testing.T) {
	c, err := resultcache.New(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 8
	var computes atomic.Int32
	release := make(chan struct{})
	compute := func() ([]byte, error) {
		computes.Add(1)
		<-release
		return []byte("payload\n"), nil
	}

	var wg sync.WaitGroup
	results := make([][]byte, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _, err := c.DoBytes("k", compute)
			if err != nil {
				t.Error(err)
			}
			results[i] = b
		}(i)
	}
	// Wait until every follower has joined the in-flight call, then let
	// the one compute finish.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Dedups != waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d dedups after 5s", c.Stats().Dedups)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, b := range results {
		if string(b) != "payload\n" {
			t.Fatalf("waiter %d got %q", i, b)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Dedups != waiters-1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskStoreSurvivesProcessRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := resultcache.New(resultcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var computes int
	payload := []byte(`{"x":1}` + "\n")
	if _, hit, _ := c1.DoBytes("k", func() ([]byte, error) { computes++; return payload, nil }); hit {
		t.Fatal("unexpected hit on empty cache")
	}
	// Atomic write discipline: only the final file, no temp debris.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".json" {
			t.Fatalf("unexpected debris in cache dir: %s", e.Name())
		}
	}

	// A fresh cache over the same directory — a new process — hits disk.
	c2, err := resultcache.New(resultcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b, hit, err := c2.DoBytes("k", func() ([]byte, error) { computes++; return nil, nil })
	if err != nil || !hit || !bytes.Equal(b, payload) {
		t.Fatalf("disk reload: hit=%v err=%v b=%q", hit, err, b)
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	if s := c2.Stats(); s.DiskHits != 1 {
		t.Fatalf("stats = %+v, want one disk hit", s)
	}
}

// TestCorruptDiskEntryIsAMiss: an unreadable on-disk encoding (bit
// rot, fs truncation, operator edit) must cost a recompute, never a
// served-garbage hit.
func TestCorruptDiskEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c1, err := resultcache.New(resultcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"x":1}` + "\n")
	if err := c1.PutBytes("k", payload); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "k.json"), []byte("garbage{"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := resultcache.New(resultcache.Options{Dir: dir}) // no memory copy
	if err != nil {
		t.Fatal(err)
	}
	computes := 0
	b, hit, err := c2.DoBytes("k", func() ([]byte, error) { computes++; return payload, nil })
	if err != nil || hit || computes != 1 || !bytes.Equal(b, payload) {
		t.Fatalf("corrupt entry: b=%q hit=%v computes=%d err=%v", b, hit, computes, err)
	}
	// The corrupt file was replaced by the recompute's persist.
	if got, ok := c2.GetBytes("k"); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("store not repaired: %q %v", got, ok)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	c, err := resultcache.New(resultcache.Options{MaxMemBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	blob := func(i int) []byte { return bytes.Repeat([]byte{byte('a' + i)}, 30) }
	for i := 0; i < 4; i++ {
		c.PutBytes(fmt.Sprintf("k%d", i), blob(i))
	}
	s := c.Stats()
	if s.MemBytes > 64 {
		t.Fatalf("memory bound exceeded: %d bytes", s.MemBytes)
	}
	if s.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	// The most recent entry survives; the oldest is gone (no disk tier).
	if _, ok := c.GetBytes("k3"); !ok {
		t.Error("most recent entry evicted")
	}
	if _, ok := c.GetBytes("k0"); ok {
		t.Error("oldest entry still resident")
	}
}

// TestPanickingComputeDoesNotStrandFlight: a panic inside the compute
// closure must unwind (the runner's recovery handles it) without
// leaving a single-flight entry behind — the next request for the key
// must compute, not block forever, and concurrent followers must get an
// error instead of hanging.
func TestPanickingComputeDoesNotStrandFlight(t *testing.T) {
	c, err := resultcache.New(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.DoBytes("k", func() ([]byte, error) { panic("boom") })
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		b, hit, err := c.DoBytes("k", func() ([]byte, error) { return []byte("ok\n"), nil })
		if err != nil || hit || string(b) != "ok\n" {
			t.Errorf("post-panic Do: b=%q hit=%v err=%v", b, hit, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("request after a panicked compute blocked: flight entry leaked")
	}
}

func TestNilCacheComputes(t *testing.T) {
	var c *resultcache.Cache
	r, hit, err := c.DoResult("k", func() (stats.Result, error) {
		return stats.Result{Benchmark: "x"}, nil
	})
	if err != nil || hit || r.Benchmark != "x" {
		t.Fatalf("nil cache: r=%+v hit=%v err=%v", r, hit, err)
	}
	if s := c.Stats(); s != (resultcache.Stats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
}

// A flight leader cancelled by its own caller (a streamed run whose
// client disconnected) must not fail unrelated followers: they retry —
// becoming the leader — instead of inheriting context.Canceled.
func TestCancelledLeaderDoesNotPoisonFollowers(t *testing.T) {
	c, err := resultcache.New(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	leaderStarted := make(chan struct{})
	leaderAbort := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.DoBytes("k", func() ([]byte, error) {
			close(leaderStarted)
			<-leaderAbort
			return nil, context.Canceled
		})
		leaderDone <- err
	}()
	<-leaderStarted

	followerDone := make(chan error, 1)
	var followerBody []byte
	go func() {
		b, _, err := c.DoBytes("k", func() ([]byte, error) {
			return []byte(`{"ok":true}` + "\n"), nil
		})
		followerBody = b
		followerDone <- err
	}()
	// Give the follower time to join the flight, then cancel the leader.
	time.Sleep(20 * time.Millisecond)
	close(leaderAbort)

	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Errorf("leader error = %v, want context.Canceled", err)
	}
	if err := <-followerDone; err != nil {
		t.Errorf("follower inherited the leader's cancellation: %v", err)
	}
	if string(followerBody) != `{"ok":true}`+"\n" {
		t.Errorf("follower body %q", followerBody)
	}
	// The retried computation stored normally.
	if _, ok := c.GetBytes("k"); !ok {
		t.Error("retried computation not stored")
	}
}
