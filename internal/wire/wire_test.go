package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestEveryControllerRoundTrips is the registry contract at the wire
// layer: for every registered controller (legacy names, aliases, pi,
// coord, ...), a request round-tripped through its JSON encoding
// resolves to the same Spec surface and the same deterministic SpecKey;
// no two controllers share a key; and both request spellings
// ("controller" and legacy "config") address the same computation.
func TestEveryControllerRoundTrips(t *testing.T) {
	seen := map[string]string{}
	for _, name := range Controllers() {
		req := RunRequest{
			Benchmark:  "adpcm",
			Controller: name,
			Window:     8_000,
			Warmup:     U64(4_000),
			Interval:   U64(500),
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		b, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back RunRequest
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}

		k1, err := req.Key()
		if err != nil {
			t.Fatalf("%s: Key: %v", name, err)
		}
		k2, err := back.Key()
		if err != nil {
			t.Fatalf("%s: round-tripped Key: %v", name, err)
		}
		k3, _ := back.Key()
		if k1 != k2 || k2 != k3 {
			t.Errorf("%s: key not deterministic across the JSON round trip: %s %s %s", name, k1, k2, k3)
		}
		if prev, dup := seen[k1]; dup {
			t.Errorf("controllers %s and %s share key %s", prev, name, k1)
		}
		seen[k1] = name

		// The legacy "config" spelling is the same field.
		legacy := req
		legacy.Controller, legacy.Config = "", name
		kl, err := legacy.Key()
		if err != nil {
			t.Fatalf("%s: legacy-spelled Key: %v", name, err)
		}
		if kl != k1 {
			t.Errorf("%s: config and controller spellings key differently", name)
		}
	}
}

// Unknown controller names are rejected with the sorted valid set; a
// request that spells the controller twice inconsistently is rejected;
// parameter overrides are validated against the schema and move the key.
func TestControllerFieldValidation(t *testing.T) {
	err := RunRequest{Benchmark: "adpcm", Controller: "bogus"}.Validate()
	if err == nil {
		t.Fatal("unknown controller accepted")
	}
	idx := -1
	for _, n := range Controllers() {
		i := strings.Index(err.Error(), n)
		if i < 0 {
			t.Fatalf("error %q does not list %q", err, n)
		}
		if i < idx {
			t.Fatalf("error %q does not list the valid set in sorted order", err)
		}
		idx = i
	}

	if err := (RunRequest{Controller: "pi", Config: "coord"}).Validate(); err == nil {
		t.Fatal("conflicting controller/config accepted")
	}

	if err := (RunRequest{Controller: "pi", Params: map[string]float64{"nope": 1}}).Validate(); err == nil {
		t.Fatal("unknown parameter accepted")
	}

	base := RunRequest{Controller: "pi", Window: 8000, Warmup: U64(4000)}
	tuned := base
	tuned.Params = map[string]float64{"kp": 0.125}
	kb, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	kt, err := tuned.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kb == kt {
		t.Error("params override did not change the content address")
	}
}

// The experiment layer validates sweep-controller requests through the
// registry too.
func TestSweepControllerValidation(t *testing.T) {
	if err := (ExperimentRequest{Name: ExpSweepController}).Validate(); err == nil {
		t.Fatal("sweep-controller without controller/param accepted")
	}
	if err := (ExperimentRequest{Name: ExpSweepController, Controller: "bogus", Param: "kp"}).Validate(); err == nil {
		t.Fatal("unknown controller accepted")
	}
	if err := (ExperimentRequest{Name: ExpSweepController, Controller: "pi", Param: "nope"}).Validate(); err == nil {
		t.Fatal("unknown swept parameter accepted")
	}
	if err := (ExperimentRequest{Name: ExpSweepController, Controller: "dynamic-1", Param: "target"}).Validate(); err == nil {
		t.Fatal("sweeping an alias-pinned parameter accepted")
	}
	if err := (ExperimentRequest{
		Name: ExpSweepController, Controller: "coord", Param: "budget_mhz",
		Params: map[string]float64{"step_mhz": 50},
	}).Validate(); err != nil {
		t.Fatalf("valid sweep-controller request rejected: %v", err)
	}
}

func TestValidateListsValidSets(t *testing.T) {
	err := RunRequest{Benchmark: "adpcm", Config: "bogus"}.Validate()
	if err == nil {
		t.Fatal("unknown config accepted")
	}
	for _, c := range Configs() {
		if !strings.Contains(err.Error(), c) {
			t.Errorf("config error %q does not list %q", err, c)
		}
	}
	if err := (RunRequest{Benchmark: "nonesuch"}).Validate(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := (ExperimentRequest{Name: "bogus"}).Validate(); err == nil {
		t.Fatal("unknown experiment accepted")
	} else {
		for _, e := range Experiments() {
			if !strings.Contains(err.Error(), e) {
				t.Errorf("experiment error %q does not list %q", err, e)
			}
		}
	}
}

// TestKeysDistinguishRequests: every config of the same benchmark gets
// its own content address, and the defaults are part of it (an explicit
// default-valued request equals a zero-valued one).
func TestKeysDistinguishRequests(t *testing.T) {
	seen := map[string]string{}
	for _, cfg := range Configs() {
		k, err := (RunRequest{Benchmark: "adpcm", Config: cfg, Window: 8000, Warmup: U64(4000)}).Key()
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("configs %s and %s share a key", prev, cfg)
		}
		seen[k] = cfg
	}

	implicit, err := RunRequest{}.Key()
	if err != nil {
		t.Fatal(err)
	}
	slew := DefaultSlewNsPerMHz
	explicit, err := RunRequest{
		Benchmark: "epic.decode", Config: ConfigAttackDecay,
		Window: 400_000, Warmup: U64(200_000), Interval: U64(1000), SlewNsPerMHz: &slew,
	}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if implicit != explicit {
		t.Fatal("normalization is not part of the key: defaults and explicit values differ")
	}

	// Explicit zeros (ideal regulator, cold start, paper-scale default
	// interval) are distinct configurations, not "unset".
	zero := 0.0
	for label, req := range map[string]RunRequest{
		"slew 0":     {SlewNsPerMHz: &zero},
		"warmup 0":   {Warmup: U64(0)},
		"interval 0": {Interval: U64(0)},
	} {
		k, err := req.Key()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if k == implicit {
			t.Fatalf("%s collapsed onto the default", label)
		}
	}
}
