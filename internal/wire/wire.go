// Package wire defines the machine-readable request and result
// encodings shared by the command-line tools (-json flags) and the
// mcdserve HTTP service, so a result printed by a CLI is byte-for-byte
// the body the service would serve for the same request. Result bytes
// themselves use the canonical encoding owned by internal/resultcache.
package wire

import (
	"fmt"
	"sort"
	"strings"

	"mcd/internal/core"
	"mcd/internal/pipeline"
	"mcd/internal/resultcache"
	"mcd/internal/sim"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// Configuration names accepted by RunRequest.Config — the same set
// cmd/mcdsim accepts.
const (
	ConfigSync        = "sync"
	ConfigMCD         = "mcd"
	ConfigAttackDecay = "attack-decay"
	ConfigDynamic1    = "dynamic-1"
	ConfigDynamic5    = "dynamic-5"
)

// Configs returns the valid configuration names, sorted.
func Configs() []string {
	c := []string{ConfigSync, ConfigMCD, ConfigAttackDecay, ConfigDynamic1, ConfigDynamic5}
	sort.Strings(c)
	return c
}

// RunRequest describes one simulation run: the JSON body of
// POST /v1/runs and the programmatic form of cmd/mcdsim's flags.
// Zero-valued fields take the mcdsim defaults.
type RunRequest struct {
	Benchmark string `json:"benchmark"`        // catalog name (default epic.decode)
	Config    string `json:"config"`           // see Configs (default attack-decay)
	Window    uint64 `json:"window,omitempty"` // measured instructions (default 400000; 0 would measure nothing)
	// Warmup, Interval and SlewNsPerMHz are pointers because their
	// explicit zeros are meaningful configurations distinct from
	// "unset": warmup 0 measures from a cold start, interval 0 selects
	// the pipeline's paper-scale 10,000-instruction default, slew 0 is
	// an ideal instant regulator. nil takes the documented default.
	Warmup       *uint64  `json:"warmup,omitempty"`          // default 200000
	Interval     *uint64  `json:"interval,omitempty"`        // default 1000
	SlewNsPerMHz *float64 `json:"slew_ns_per_mhz,omitempty"` // default 4.91
}

// DefaultSlewNsPerMHz is the compressed-scale regulator slew a request
// gets when SlewNsPerMHz is nil (DESIGN.md, "time-scale compression").
const DefaultSlewNsPerMHz = 4.91

// U64 is a literal-pointer helper for the optional request fields.
func U64(v uint64) *uint64 { return &v }

// Normalize fills defaulted fields in, returning the canonical request.
func (r RunRequest) Normalize() RunRequest {
	if r.Benchmark == "" {
		r.Benchmark = "epic.decode"
	}
	if r.Config == "" {
		r.Config = ConfigAttackDecay
	}
	if r.Window == 0 {
		r.Window = 400_000
	}
	if r.Warmup == nil {
		r.Warmup = U64(200_000)
	}
	if r.Interval == nil {
		r.Interval = U64(1000)
	}
	if r.SlewNsPerMHz == nil {
		slew := DefaultSlewNsPerMHz
		r.SlewNsPerMHz = &slew
	}
	return r
}

// Validate checks the benchmark and configuration names; its error
// messages list the valid sets, making it the one source of truth for
// CLI usage errors and HTTP 400 bodies.
func (r RunRequest) Validate() error {
	r = r.Normalize()
	if _, ok := workload.Lookup(r.Benchmark); !ok {
		return fmt.Errorf("unknown benchmark %q (see mcdbench -exp table5 for the catalog)", r.Benchmark)
	}
	if !knownConfig(r.Config) {
		return fmt.Errorf("unknown config %q (valid: %s)", r.Config, strings.Join(Configs(), ", "))
	}
	return nil
}

func knownConfig(name string) bool {
	for _, c := range Configs() {
		if c == name {
			return true
		}
	}
	return false
}

// spec builds the simulation spec the request describes. The returned
// spec has no controller for the off-line configs (the controller is
// the product of the schedule search Run performs).
func (r RunRequest) spec() (sim.Spec, workload.Benchmark, error) {
	r = r.Normalize()
	if err := r.Validate(); err != nil {
		return sim.Spec{}, workload.Benchmark{}, err
	}
	b, _ := workload.Lookup(r.Benchmark)
	cfg := pipeline.DefaultConfig()
	cfg.SlewNsPerMHz = *r.SlewNsPerMHz
	if r.Config == ConfigSync {
		return sim.SynchronousSpec(cfg, b.Profile, r.Window, *r.Warmup, cfg.MaxFreqMHz, ConfigSync), b, nil
	}
	spec := sim.Spec{
		Config:         cfg,
		Profile:        b.Profile,
		Window:         r.Window,
		Warmup:         *r.Warmup,
		IntervalLength: *r.Interval,
		Name:           r.Config,
	}
	if r.Config == ConfigAttackDecay {
		spec.Controller = core.NewAttackDecay(core.DefaultParams())
	}
	return spec, b, nil
}

func (r RunRequest) offlineTarget() (float64, bool) {
	switch r.Normalize().Config {
	case ConfigDynamic1:
		return 0.01, true
	case ConfigDynamic5:
		return 0.05, true
	}
	return 0, false
}

// offlineOpts is the search configuration an off-line request runs
// with; both Run and Key derive from it, and core.OfflineOptions.
// CacheExtra owns the canonical encoding of its resolved defaults.
func offlineOpts(spec sim.Spec, target float64) core.OfflineOptions {
	return core.OfflineOptions{
		TargetDeg:      target,
		Warmup:         spec.Warmup,
		IntervalLength: spec.IntervalLength,
	}
}

// Key returns the request's content address in the result store.
func (r RunRequest) Key() (string, error) {
	spec, _, err := r.spec()
	if err != nil {
		return "", err
	}
	if target, ok := r.offlineTarget(); ok {
		return resultcache.SpecKeyExtra(spec, offlineOpts(spec, target).CacheExtra())
	}
	return resultcache.SpecKey(spec)
}

// Run executes the request. It is a pure function of the request —
// exactly what cmd/mcdsim computes for the same flags — which is what
// makes the result cacheable under the request's Key.
func (r RunRequest) Run() (stats.Result, error) {
	spec, _, err := r.spec()
	if err != nil {
		return stats.Result{}, err
	}
	if target, ok := r.offlineTarget(); ok {
		ctrl, _ := core.BuildOffline(spec.Config, spec.Profile, spec.Window, offlineOpts(spec, target))
		spec.Controller = ctrl
		spec.InitialFreqMHz = ctrl.Initial()
	}
	return sim.Run(spec), nil
}

// RunCachedBytes executes the request through the result store and
// returns only the canonical body — the hot serving path, which never
// pays a decode: hit reports whether the bytes came from the cache (or
// an in-flight identical computation) rather than a fresh simulation.
// A nil cache always computes.
func (r RunRequest) RunCachedBytes(c *resultcache.Cache) (body []byte, hit bool, err error) {
	if err := r.Validate(); err != nil {
		return nil, false, err
	}
	compute := func() ([]byte, error) {
		rr, err := r.Run()
		if err != nil {
			return nil, err
		}
		return resultcache.EncodeResult(rr)
	}
	if c == nil {
		body, err = compute()
		return body, false, err
	}
	key, err := r.Key()
	if err != nil {
		return nil, false, err
	}
	return c.DoBytes(key, compute)
}
