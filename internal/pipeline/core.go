package pipeline

import (
	"fmt"
	"math"
	"math/rand"

	"mcd/internal/branch"
	"mcd/internal/cache"
	"mcd/internal/clock"
	"mcd/internal/dvfs"
	"mcd/internal/power"
	"mcd/internal/queue"
	"mcd/internal/stats"
	"mcd/internal/workload"
	"mcd/internal/xrand"
)

// execDomain maps an instruction class to the domain that executes it.
// Branches resolve on the integer ALUs, as in the Alpha 21264.
func execDomain(c workload.Class) clock.Domain {
	switch {
	case c.FP():
		return clock.FloatingPoint
	case c.Memory():
		return clock.LoadStore
	default:
		return clock.Integer
	}
}

// writesInt reports whether the class allocates an integer rename register.
func writesInt(c workload.Class) bool {
	return c == workload.IntALU || c == workload.IntMul || c == workload.Load
}

// writesFP reports whether the class allocates an FP rename register.
func writesFP(c workload.Class) bool { return c.FP() }

// Issue-pipe class sets. Dispatch routes only IntALU, IntMul and Branch
// to the integer queue and only the FP classes to the FP queue, so these
// masks reproduce the per-pipe predicates (e.g. "anything but IntMul" on
// the integer ALUs) without a per-entry indirect call in the CAM scan.
var (
	intALUClasses = queue.MaskOf(workload.IntALU, workload.Branch)
	intMulClasses = queue.MaskOf(workload.IntMul)
	fpALUClasses  = queue.MaskOf(workload.FPAdd)
	fpMulClasses  = queue.MaskOf(workload.FPMul, workload.FPDiv)
)

type storeRec struct {
	block  uint64
	issued bool
}

// Core is one simulated processor instance. Construct with New, then
// either Run once, or Start once, advance with StepIntervals and read the
// Result from Finish. A finished core can be recycled for another run
// with Reset — table-sized structures (predictor, caches, queues, the
// completion ring) are reused instead of reallocated, which is what the
// harness's core pool rides on.
type Core struct {
	cfg  Config
	gen  workload.Generator
	opts RunOptions

	scale *dvfs.Scale
	sched *clock.Scheduler
	regs  [clock.NumControllable]*dvfs.Regulator
	clks  [clock.NumControllable]*clock.Clock
	jrng  [clock.NumControllable]*rand.Rand
	jsrc  [clock.NumControllable]*xrand.Counting // jrng's sources, counted so warm snapshots can restore them
	last  [clock.NumControllable]float64

	// curFreq mirrors each domain clock's programmed frequency so the
	// per-edge regulator step only reprograms the clock (a division plus
	// an edge-cache refresh) when the frequency actually moved.
	curFreq [clock.NumControllable]float64
	// periods mirrors each domain clock's current period; every
	// visibility test reads it instead of chasing clock pointers. It is
	// the same float64 the clock holds, so results are unchanged.
	periods [clock.NumControllable]float64
	// wake is the per-tick wakeup context handed to the issue-queue CAM
	// scans; Periods aliases c.periods and Ring the completion ring.
	wake queue.Wakeup

	meter *power.Meter
	pred  *branch.Predictor
	hier  *cache.Hierarchy

	iiq  *queue.IssueQueue
	fiq  *queue.IssueQueue
	lsq  *queue.LSQ
	rob  *queue.ROB
	ring *queue.CompletionRing

	intRegsFree int
	fpRegsFree  int

	pending    workload.Instr
	havePend   bool
	genDone    bool
	fetchStall float64 // no fetch before this time (I-cache miss service)
	branchSeq  int64   // unresolved mispredicted branch (-1: none)
	fetchBlock uint64  // current I-cache block (+1; 0 = none)

	retired    uint64
	lastRetire float64

	// Stepping state: Run is Start + StepIntervals(-1) + Finish, and the
	// session API (internal/sim.Session) drives the same three entry
	// points interval by interval.
	total   uint64  // retire target (warmup + window)
	now     float64 // current simulated time
	emitted int     // control intervals emitted since Start (warmup included)
	halted  bool    // the loop can no longer advance (done, exhausted, or Halt)

	// Warmup bookkeeping: measurement starts at the mark.
	marked     bool
	markTime   float64
	markEnergy [clock.NumDomains]float64

	// Interval accumulation.
	ivStart  float64
	ivIndex  int
	occupSum [clock.NumControllable]float64
	ivTicks  [clock.NumControllable]float64
	nextIvAt uint64

	freqIntegral [clock.NumControllable]float64

	// Sampled fidelity tier (opts.SampleEvery > 1): skipPending counts the
	// control intervals scheduled for analytical fast-forward before the
	// next detailed one; detail seeds the fast-forward model with the most
	// recent detailed interval; ivStartEnergy anchors per-interval energy
	// deltas; the err accumulators collect per-detailed-interval CPI/EPI
	// samples for the confidence bounds Finish reports.
	skipPending   int
	detail        detailModel
	ivStartEnergy [clock.NumControllable]float64
	// ivStartEv anchors the cumulative event counters (L1 misses, L2
	// misses, branch recoveries) and ivStartClkPJ each domain's clock
	// energy at the interval start: the fast-forward model calibrates a
	// penalty-per-event coefficient from each detailed interval's deltas
	// and prices the skipped intervals by the events functional warming
	// observes in them.
	ivStartEv    [3]uint64
	ivStartClkPJ [clock.NumControllable]float64
	errCPI       errAcc
	errEPI       errAcc
	detailedIv   int
	sampledIv    int
	// ctrlPrev/ctrlQuiet drive adaptive skip scheduling: the last targets
	// the controller commanded, and how many consecutive observations made
	// no attack-sized move (see noteTargets). Skips are only scheduled
	// once the controller has been quiet for a couple of observations, so
	// reactive phases run detailed and quiet phases fast-forward.
	ctrlPrev  [clock.NumControllable]float64
	ctrlQuiet int
	// stretchPenSum/stretchPenN accumulate the per-interval (full-interval
	// normalized) warming penalties of the current skip stretch, feeding
	// the penalty-basis ratio calibration (detailModel.rho) at the next
	// detailed interval.
	stretchPenSum float64
	stretchPenN   int
	// walkS/walkOff memoize the sampling-offset random walk (a pure
	// function of the stratum index; see sampleOffset). Not part of a
	// warm snapshot: a restored core replays the walk from scratch.
	walkS   int
	walkOff int

	selBuf   []queue.Entry
	selBuf2  []queue.Entry
	storeBuf []storeRec

	intervals []stats.Interval
}

// New builds a core over the given workload generator.
func New(cfg Config, gen workload.Generator) *Core {
	// walkS = -1 is the sampling-walk "not started" sentinel (see
	// sampleOffset); Reset sets the same value so New and Reset cores
	// schedule identical sample grids.
	return &Core{cfg: cfg, gen: gen, branchSeq: -1, walkS: -1}
}

// Reset recycles a finished core for a new run over cfg and gen: all run
// state is returned to the freshly constructed state, but component
// allocations (predictor and cache tables, queues, the completion ring,
// clocks and regulators) are reused by the following Start. A Reset core
// produces byte-identical results to a New one — the byte-identity suite
// pins this across the whole controller registry.
func (c *Core) Reset(cfg Config, gen workload.Generator) {
	c.cfg, c.gen = cfg, gen
	c.opts = RunOptions{}
	c.last = [clock.NumControllable]float64{}
	c.pending = workload.Instr{}
	c.havePend, c.genDone = false, false
	c.fetchStall = 0
	c.branchSeq = -1
	c.fetchBlock = 0
	c.retired, c.lastRetire = 0, 0
	c.total = 0
	c.now = 0
	c.emitted = 0
	c.halted = false
	c.marked, c.markTime = false, 0
	c.markEnergy = [clock.NumDomains]float64{}
	c.ivStart, c.ivIndex = 0, 0
	c.occupSum = [clock.NumControllable]float64{}
	c.ivTicks = [clock.NumControllable]float64{}
	c.nextIvAt = 0
	c.freqIntegral = [clock.NumControllable]float64{}
	c.skipPending = 0
	c.detail = detailModel{}
	c.ivStartEnergy = [clock.NumControllable]float64{}
	c.ivStartEv = [3]uint64{}
	c.ivStartClkPJ = [clock.NumControllable]float64{}
	c.errCPI, c.errEPI = errAcc{}, errAcc{}
	c.detailedIv, c.sampledIv = 0, 0
	c.ctrlPrev = [clock.NumControllable]float64{}
	c.ctrlQuiet = 0
	c.stretchPenSum, c.stretchPenN = 0, 0
	c.walkS, c.walkOff = -1, 0
	// The previous Result owns the recorded intervals; never reuse them.
	c.intervals = nil
}

// Release drops the finished run's object references — the generator,
// the options (controller and observer hooks), and the recorded
// intervals — so an idle pooled core retains none of the previous run's
// object graph. Reset + Start rebuild all of it; only Finish/Progress
// become unusable until then.
func (c *Core) Release() {
	c.gen = nil
	c.opts = RunOptions{}
	c.intervals = nil
}

// Run simulates until opts.Window instructions retire (or the workload is
// exhausted) and returns the measurements. It is exactly
// Start + StepIntervals(-1) + Finish, so a stepped run produces
// byte-identical measurements: pausing between loop iterations touches
// no simulation state.
func (c *Core) Run(opts RunOptions) stats.Result {
	c.Start(opts)
	c.StepIntervals(-1)
	return c.Finish()
}

// Start initializes the core for stepped execution: clocks, regulators,
// queues and accumulators are built (or, after Reset, reused in place),
// but no cycle executes until StepIntervals.
func (c *Core) Start(opts RunOptions) {
	c.opts = opts
	if c.opts.IntervalLength == 0 {
		c.opts.IntervalLength = 10_000
	}
	cfg := c.cfg

	if c.scale == nil {
		c.scale = dvfs.DefaultScale()
	}
	jitter := cfg.JitterPS
	if cfg.SingleClock {
		jitter = 0
	}
	for d := 0; d < clock.NumControllable; d++ {
		f := opts.InitialFreqMHz[d]
		if f == 0 {
			f = cfg.MaxFreqMHz
		}
		if c.regs[d] == nil {
			c.regs[d] = dvfs.NewRegulator(c.scale, f, cfg.SlewNsPerMHz)
		} else {
			c.regs[d].Reset(f, cfg.SlewNsPerMHz)
		}
		// All PLLs derive from one reference oscillator, so domain clocks
		// start phase aligned; window violations then come from jitter
		// and inter-domain rate differences, the two penalty sources the
		// paper's clocking model describes.
		var jrng *rand.Rand
		if jitter > 0 {
			seed := cfg.Seed + int64(d)*7919
			if c.jrng[d] == nil {
				// The source is wrapped in a call counter purely so warm
				// snapshots can capture the jitter stream position; the
				// wrapper is stream transparent (see xrand).
				c.jsrc[d] = xrand.NewCounting(seed)
				c.jrng[d] = rand.New(c.jsrc[d])
			} else {
				c.jrng[d].Seed(seed)
			}
			jrng = c.jrng[d]
		}
		if c.clks[d] == nil {
			c.clks[d] = clock.New(c.regs[d].CurrentMHz(), jitter, 0, jrng)
		} else {
			c.clks[d].Reset(c.regs[d].CurrentMHz(), jitter, 0, jrng)
		}
		c.curFreq[d] = c.clks[d].FrequencyMHz()
		c.periods[d] = c.clks[d].PeriodPS()
	}
	if c.sched == nil {
		c.sched = clock.NewScheduler(c.clks[:])
	} else {
		c.sched.Refresh()
	}

	if c.meter == nil {
		c.meter = power.NewMeter(power.DefaultParams(), !cfg.SingleClock)
	} else {
		c.meter.Reset(power.DefaultParams(), !cfg.SingleClock)
	}
	if c.pred == nil {
		c.pred = branch.New(branch.DefaultConfig())
	} else {
		c.pred.Reset()
	}
	if c.hier == nil {
		c.hier = cache.DefaultHierarchy()
	} else {
		c.hier.Reset()
	}
	if c.iiq == nil {
		c.iiq = queue.NewIssueQueue(cfg.IntIQSize)
	} else {
		c.iiq.Reset(cfg.IntIQSize)
	}
	if c.fiq == nil {
		c.fiq = queue.NewIssueQueue(cfg.FPIQSize)
	} else {
		c.fiq.Reset(cfg.FPIQSize)
	}
	if c.lsq == nil {
		c.lsq = queue.NewLSQ(cfg.LSQSize, cfg.CacheBlockBytes)
	} else {
		c.lsq.Reset(cfg.LSQSize, cfg.CacheBlockBytes)
	}
	if c.rob == nil {
		c.rob = queue.NewROB(cfg.ROBSize)
	} else {
		c.rob.Reset(cfg.ROBSize)
	}
	if c.ring == nil {
		c.ring = queue.NewCompletionRing(1024)
	} else {
		c.ring.Reset()
	}
	c.wake = queue.Wakeup{
		SingleClock:  cfg.SingleClock,
		SyncWindowPS: cfg.SyncWindowPS,
		Periods:      c.periods,
		Ring:         c.ring,
	}
	c.intRegsFree = cfg.IntRenameRegs
	c.fpRegsFree = cfg.FPRenameRegs
	c.nextIvAt = c.opts.IntervalLength
	if opts.Warmup == 0 {
		c.marked = true
	}
	c.total = opts.Warmup + opts.Window
	if opts.RecordIntervals {
		// Pre-size the recording from the known interval count so the
		// steady-state loop never grows it (+1 for the possible final
		// partial boundary overshoot).
		c.intervals = make([]stats.Interval, 0, opts.Window/c.opts.IntervalLength+1)
	}
}

// StepIntervals advances the simulation until at least n more control
// intervals have been emitted or the run completes; n <= 0 drains it.
// (A single front-end cycle can retire past two interval boundaries
// when the interval is shorter than the retire width, so a step may
// occasionally overshoot by one.) It returns true while the run can
// still advance.
func (c *Core) StepIntervals(n int) bool {
	target := -1
	if n > 0 {
		target = c.emitted + n
	}
	for !c.halted && c.retired < c.total && (target < 0 || c.emitted < target) {
		if c.skipPending > 0 {
			c.fastForwardInterval()
			continue
		}
		d, t := c.sched.Advance()
		c.now = t
		dt := t - c.last[d]
		if dt < 0 {
			dt = 0
		}
		f := c.regs[d].Step(dt)
		if f != c.curFreq[d] {
			// Reprogramming the PLL (and refreshing the edge cache) is
			// only needed when the regulator actually moved; a settled
			// regulator returns the frequency the clock already runs at.
			c.curFreq[d] = f
			c.sched.SetFrequencyMHz(d, f)
			c.periods[d] = c.clks[d].PeriodPS()
			c.wake.Periods[d] = c.periods[d]
		}
		c.freqIntegral[d] += f * dt
		c.last[d] = t

		switch d {
		case clock.FrontEnd:
			c.feTick(t)
		case clock.Integer:
			c.intTick(t)
		case clock.FloatingPoint:
			c.fpTick(t)
		case clock.LoadStore:
			c.lsTick(t)
		}

		if t-c.lastRetire > 5e8 && c.retired > 0 {
			panic(fmt.Sprintf("pipeline: no retirement for 0.5 ms at t=%.0f ps (retired %d/%d, rob=%d iiq=%d fiq=%d lsq=%d)",
				t, c.retired, c.total, c.rob.Len(), c.iiq.Len(), c.fiq.Len(), c.lsq.Len()))
		}
		if c.genDone && c.rob.Len() == 0 {
			c.halted = true // workload shorter than the window
		}
	}
	if c.retired >= c.total {
		c.halted = true
	}
	return !c.halted
}

// Halt stops the run at the current loop boundary: subsequent
// StepIntervals calls advance nothing and Finish reports the
// measurements accumulated so far — the early-termination hook behind
// sim.Session.StopWhen. Safe to call from an OnInterval observer (the
// in-flight cycle completes first).
func (c *Core) Halt() { c.halted = true }

// Retired reports the total instructions retired so far, warmup included
// — the simulated-work denominator behind the harness's throughput
// accounting.
func (c *Core) Retired() uint64 { return c.retired }

// Progress reports the measured aggregates accumulated so far; all but
// the regulator targets are zero until warmup completes.
func (c *Core) Progress() stats.Progress {
	p := stats.Progress{Done: c.halted}
	for d := 0; d < clock.NumControllable; d++ {
		p.FreqMHz[d] = c.regs[d].TargetMHz()
	}
	if !c.marked {
		return p
	}
	p.Intervals = c.ivIndex
	p.Instructions = c.retired
	if p.Instructions > c.opts.Warmup {
		p.Instructions -= c.opts.Warmup
	}
	p.TimePS = c.now - c.markTime
	for d := clock.Domain(0); d < clock.NumDomains; d++ {
		p.EnergyPJ += c.meter.DomainPJ(d) - c.markEnergy[d]
	}
	return p
}

// Finish assembles the measurements accumulated so far into a Result.
// After a full drain it is the Result Run returns; after Halt (or
// mid-stepping) it is a well-formed partial Result covering the
// measured region up to the current time.
func (c *Core) Finish() stats.Result {
	measured := c.retired
	if measured > c.opts.Warmup {
		measured -= c.opts.Warmup
	}
	span := c.now - c.markTime
	res := stats.Result{
		Benchmark:    c.gen.Name(),
		Config:       c.opts.ConfigName,
		Instructions: measured,
		TimePS:       span,
		Intervals:    c.intervals,
	}
	for d := clock.Domain(0); d < clock.NumDomains; d++ {
		res.DomainEnergyPJ[d] = c.meter.DomainPJ(d) - c.markEnergy[d]
		res.EnergyPJ += res.DomainEnergyPJ[d]
	}
	for d := 0; d < clock.NumControllable; d++ {
		if span > 0 {
			res.AvgFreqMHz[d] = c.freqIntegral[d] / span
		}
		res.Transitions += c.regs[d].Transitions()
	}
	res.BranchAccuracy = c.pred.Stats().Accuracy()
	res.L1DMissRate = c.hier.L1D.Stats().MissRate()
	res.L2MissRate = c.hier.L2C.Stats().MissRate()
	if c.opts.SampleEvery > 1 {
		res.DetailedIntervals = c.detailedIv
		res.SampledIntervals = c.sampledIv
		res.CPIErr95 = c.errCPI.rel95()
		res.EPIErr95 = c.errEPI.rel95()
	}
	return res
}

func (c *Core) peek() (*workload.Instr, bool) {
	if !c.havePend && !c.genDone {
		if c.gen.Next(&c.pending) {
			c.havePend = true
		} else {
			c.genDone = true
		}
	}
	if c.havePend {
		return &c.pending, true
	}
	return nil, false
}

// xvisible returns the earliest time a datum completed at done in domain
// from can be used by domain to. Within a domain (and in the fully
// synchronous configuration) the completion time itself is the bypass
// point. Across domains, the wakeup broadcast is launched one producer
// cycle before the result registers (standard speculative wakeup, which
// lets dependents issue back to back), and the Sjogren–Myers arbitration
// requires the destination edge to trail that launch by the
// synchronization window. Penalties therefore arise from window
// violations (clock jitter) and from inter-domain rate differences — the
// two sources the paper's clocking model describes. The issue-queue CAM
// scans evaluate the same rule through queue.Wakeup, over the same
// periods table.
func (c *Core) xvisible(done float64, from, to clock.Domain) float64 {
	if c.cfg.SingleClock || from == to {
		// Completion times are computed as issue edge + latency×period,
		// so they carry the issuing edge's jitter while the consuming
		// edge carries its own; a half-cycle guard keeps the edge-count
		// semantics (back-to-back issue at the L-th following edge)
		// independent of jitter.
		return done - 0.5*c.periods[from]
	}
	return done - c.periods[from] + c.cfg.SyncWindowPS
}

func (c *Core) complete(seq uint64, at float64) {
	c.ring.Complete(seq, at)
	c.rob.Complete(seq, at)
}

func src(seq uint64, dist uint32) int64 {
	if dist == 0 {
		return queue.None
	}
	return int64(seq - uint64(dist))
}

// ---------------------------------------------------------------- front end

func (c *Core) feTick(t float64) {
	v := c.regs[clock.FrontEnd].Voltage()
	active := false

	// Retire in order, up to RetireWidth, as results become visible to the
	// front end (the ROB lives there).
	for n := 0; n < c.cfg.RetireWidth; n++ {
		h := c.rob.Head()
		if h == nil {
			break
		}
		if t < c.xvisible(h.DoneAt, clock.Domain(h.Domain), clock.FrontEnd) {
			break
		}
		if h.Class.Memory() {
			c.lsq.Retire(h.Seq)
		}
		if writesInt(h.Class) {
			c.intRegsFree++
		} else if writesFP(h.Class) {
			c.fpRegsFree++
		}
		c.meter.Access(power.ROB, v, 1)
		c.rob.Pop()
		c.retired++
		c.lastRetire = t
		active = true
		if !c.marked && c.retired >= c.opts.Warmup {
			c.mark(t)
		}
	}
	for c.skipPending == 0 && c.retired >= c.nextIvAt {
		c.emitInterval(t)
	}

	// Resolve an outstanding mispredicted branch: fetch resumes a fixed
	// penalty after the resolution becomes visible in the front end.
	if c.branchSeq >= 0 {
		done, dom := c.ring.Lookup(uint64(c.branchSeq))
		if !math.IsInf(done, 1) {
			resume := c.xvisible(done, clock.Domain(dom), clock.FrontEnd) +
				float64(c.cfg.MispredictPenalty)*c.periods[clock.FrontEnd]
			if t >= resume {
				c.branchSeq = -1
			}
		}
	}

	if c.branchSeq < 0 && t >= c.fetchStall {
		c.fetch(t, v, &active)
	}

	c.meter.ClockTick(clock.FrontEnd, v, active)
}

func (c *Core) fetch(t float64, v float64, active *bool) {
	cfg := &c.cfg
	for n := 0; n < cfg.DecodeWidth; n++ {
		in, ok := c.peek()
		if !ok {
			return
		}
		// Structural resources must all be available before rename.
		if c.rob.Free() == 0 {
			return
		}
		switch {
		case in.Class.FP():
			if c.fiq.Free() == 0 {
				return
			}
		case in.Class.Memory():
			if c.lsq.Free() == 0 {
				return
			}
		default:
			if c.iiq.Free() == 0 {
				return
			}
		}
		if writesInt(in.Class) && c.intRegsFree == 0 {
			return
		}
		if writesFP(in.Class) && c.fpRegsFree == 0 {
			return
		}

		// Instruction cache: one access per fetch block. A miss stalls
		// fetch while the L2 (load/store domain) or memory services it.
		blk := in.PC>>6 + 1
		if blk != c.fetchBlock {
			c.fetchBlock = blk
			c.meter.Access(power.ICache, v, 1)
			lvl, l2 := c.hier.Inst(in.PC)
			if l2 {
				lsV := c.regs[clock.LoadStore].Voltage()
				c.meter.Access(power.L2Cache, lsV, 1)
			}
			if lvl != cache.L1 {
				lsPeriod := c.periods[clock.LoadStore]
				var cross float64
				if !cfg.SingleClock {
					cross = 2 * cfg.SyncWindowPS // request and fill crossings
				}
				stall := cross + float64(cfg.L2Lat)*lsPeriod
				if lvl == cache.Mem {
					stall += cfg.MemLatPS
				}
				c.fetchStall = t + stall
				return // instruction not consumed; retried after the fill
			}
		}

		c.havePend = false // consume
		*active = true
		seq := in.Seq
		dom := execDomain(in.Class)
		c.ring.Dispatch(seq, uint8(dom))
		c.rob.Push(queue.ROBEntry{Seq: seq, DoneAt: math.Inf(1), Domain: uint8(dom), Class: in.Class})
		// A dispatched entry is consumable at the destination's next edge
		// (one-cycle dispatch-to-issue in the synchronous machine); across
		// clock domains the interface FIFO additionally imposes the
		// synchronization window on that edge.
		vis := t + 0.5*c.periods[clock.FrontEnd]
		if !c.cfg.SingleClock {
			vis = t + c.cfg.SyncWindowPS
		}
		s1, s2 := src(seq, in.Dep1), src(seq, in.Dep2)

		switch {
		case in.Class.Memory():
			c.lsq.Push(queue.LSQEntry{
				Seq: seq, IsStore: in.Class == workload.Store, Addr: in.Addr,
				Src1: s1, Src2: s2, VisibleAt: vis, DoneAt: math.Inf(1),
			})
		case in.Class.FP():
			c.fiq.Push(queue.Entry{Seq: seq, Class: in.Class, Src1: s1, Src2: s2, VisibleAt: vis})
		default:
			c.iiq.Push(queue.Entry{Seq: seq, Class: in.Class, Src1: s1, Src2: s2, VisibleAt: vis})
		}
		if writesInt(in.Class) {
			c.intRegsFree--
		} else if writesFP(in.Class) {
			c.fpRegsFree--
		}
		c.meter.Access(power.Rename, v, 1)
		c.meter.Access(power.ROB, v, 1)

		if in.Class == workload.Branch {
			c.meter.Access(power.BPred, v, 1)
			c.meter.Access(power.BTB, v, 1)
			correct := c.pred.Update(in.PC, in.Taken)
			btbHit := true
			if in.Taken {
				_, btbHit = c.pred.Target(in.PC)
				c.pred.SetTarget(in.PC, in.Target)
			}
			if !correct || !btbHit {
				// Mispredict: fetch stops until the branch resolves in
				// the integer domain plus the recovery penalty.
				c.branchSeq = int64(seq)
				return
			}
			if in.Taken {
				return // fetch discontinuity ends the fetch group
			}
		}
	}
}

// ------------------------------------------------------------- integer side

func (c *Core) intTick(t float64) {
	d := clock.Integer
	v := c.regs[d].Voltage()
	period := c.periods[d]
	occ := c.iiq.Len()
	c.occupSum[d] += float64(occ)
	c.ivTicks[d]++
	c.meter.Access(power.IntCAM, v, occ)

	c.wake.SetTick(t, uint8(d))
	// One fused CAM walk selects both pipes (the class sets are
	// disjoint); the ALU selections are processed before the multiplier
	// ones, exactly as the two-pass formulation did. Completions stamped
	// here cannot flip a later readiness test in the same walk: a
	// latency of ≥1 producer cycle puts every bypass point after t.
	c.selBuf, c.selBuf2 = c.iiq.SelectReady2(
		c.cfg.IntALUs, intALUClasses, c.cfg.IntMuls, intMulClasses,
		&c.wake, c.selBuf[:0], c.selBuf2[:0])
	for i := range c.selBuf {
		e := &c.selBuf[i]
		c.complete(e.Seq, t+float64(c.cfg.IntALULat)*period)
		c.chargeIssue(power.IntIQ, power.IntRF, power.IntALU, v, e.Src1, e.Src2, e.Class != workload.Branch)
	}
	for i := range c.selBuf2 {
		e := &c.selBuf2[i]
		c.complete(e.Seq, t+float64(c.cfg.IntMulLat)*period)
		c.chargeIssue(power.IntIQ, power.IntRF, power.IntMul, v, e.Src1, e.Src2, true)
	}
	issued := len(c.selBuf) + len(c.selBuf2)

	c.meter.ClockTick(d, v, issued > 0 || occ > 0)
}

// chargeIssue accounts the energy of issuing one instruction: issue-queue
// access, register-file reads for present sources, the functional-unit
// operation, and the result write (when the instruction produces one).
func (c *Core) chargeIssue(iq, rf, fu power.Component, v float64, s1, s2 int64, writes bool) {
	c.meter.Access(iq, v, 1)
	reads := 0
	if s1 != queue.None {
		reads++
	}
	if s2 != queue.None {
		reads++
	}
	c.meter.Access(rf, v, reads)
	c.meter.Access(fu, v, 1)
	if writes {
		c.meter.Access(rf, v, 1)
	}
}

// ------------------------------------------------------- floating-point side

func (c *Core) fpTick(t float64) {
	d := clock.FloatingPoint
	v := c.regs[d].Voltage()
	period := c.periods[d]
	occ := c.fiq.Len()
	c.occupSum[d] += float64(occ)
	c.ivTicks[d]++
	c.meter.Access(power.FPCAM, v, occ)

	c.wake.SetTick(t, uint8(d))
	// Fused two-pipe walk; see intTick for the ordering argument.
	c.selBuf, c.selBuf2 = c.fiq.SelectReady2(
		c.cfg.FPALUs, fpALUClasses, c.cfg.FPMuls, fpMulClasses,
		&c.wake, c.selBuf[:0], c.selBuf2[:0])
	for i := range c.selBuf {
		e := &c.selBuf[i]
		c.complete(e.Seq, t+float64(c.cfg.FPALULat)*period)
		c.chargeIssue(power.FPIQ, power.FPRF, power.FPALU, v, e.Src1, e.Src2, true)
	}
	for i := range c.selBuf2 {
		e := &c.selBuf2[i]
		lat := c.cfg.FPMulLat
		if e.Class == workload.FPDiv {
			lat = c.cfg.FPDivLat
		}
		c.complete(e.Seq, t+float64(lat)*period)
		c.chargeIssue(power.FPIQ, power.FPRF, power.FPMul, v, e.Src1, e.Src2, true)
	}
	issued := len(c.selBuf) + len(c.selBuf2)

	c.meter.ClockTick(d, v, issued > 0 || occ > 0)
}

// ----------------------------------------------------------- load/store side

func (c *Core) lsTick(t float64) {
	d := clock.LoadStore
	v := c.regs[d].Voltage()
	period := c.periods[d]
	entries := c.lsq.Entries()
	occ := len(entries)
	c.occupSum[d] += float64(occ)
	c.ivTicks[d]++
	c.meter.Access(power.LSQCAM, v, occ)

	ports := c.cfg.MemPorts
	issuedAny := false
	c.storeBuf = c.storeBuf[:0]
	allIssued := true // all older stores issued so far in the scan
	c.wake.SetTick(t, uint8(d))
	wk := c.wake // registerized copy, as in the issue-queue scans

	for i := range entries {
		e := &entries[i]
		if ports == 0 {
			// No port can issue anything further this cycle, and the
			// rest of the scan only feeds the forwarding buffer loads
			// would read — nothing below can have an effect. Stop.
			break
		}
		if e.IsStore {
			if !e.Issued && e.VisibleAt <= t &&
				wk.SrcReady(e.Src1) && wk.SrcReady(e.Src2) {
				// Address resolution; data is written at retirement, but
				// the access energy belongs to the store.
				e.Issued = true
				e.DoneAt = t + period
				c.complete(e.Seq, e.DoneAt)
				_, l2 := c.hier.Data(e.Addr)
				c.meter.Access(power.LSQ, v, 1)
				c.meter.Access(power.DCache, v, 1)
				if l2 {
					c.meter.Access(power.L2Cache, v, 1)
				}
				ports--
				issuedAny = true
			}
			c.storeBuf = append(c.storeBuf, storeRec{block: e.Block, issued: e.Issued})
			if !e.Issued {
				allIssued = false
			}
			continue
		}

		if e.Issued {
			continue
		}
		if e.VisibleAt > t || !wk.SrcReady(e.Src1) || !wk.SrcReady(e.Src2) {
			continue
		}
		// Loads wait until every older store address is known, then
		// forward from the youngest matching store or access the cache.
		if !allIssued {
			continue
		}
		forwarded := false
		for j := len(c.storeBuf) - 1; j >= 0; j-- {
			if c.storeBuf[j].block == e.Block {
				forwarded = true
				break
			}
		}
		e.Issued = true
		issuedAny = true
		ports--
		c.meter.Access(power.LSQ, v, 1)
		if forwarded {
			e.DoneAt = t + period
			c.complete(e.Seq, e.DoneAt)
			continue
		}
		lvl, l2 := c.hier.Data(e.Addr)
		cycles := c.cfg.L1Lat
		var extra float64
		if lvl != cache.L1 {
			cycles += c.cfg.L2Lat
		}
		if lvl == cache.Mem {
			extra = c.cfg.MemLatPS
		}
		e.DoneAt = t + float64(cycles)*period + extra
		c.complete(e.Seq, e.DoneAt)
		c.meter.Access(power.DCache, v, 1)
		if l2 {
			c.meter.Access(power.L2Cache, v, 1)
		}
	}

	c.meter.ClockTick(d, v, issuedAny || occ > 0)
}

// mark begins the measured region: energy, time, frequency integrals and
// interval accumulators all restart here, so warmup (cache/predictor
// training) does not contaminate the measurements.
func (c *Core) mark(t float64) {
	c.marked = true
	c.markTime = t
	for d := clock.Domain(0); d < clock.NumDomains; d++ {
		c.markEnergy[d] = c.meter.DomainPJ(d)
	}
	c.ivStart = t
	c.ivIndex = 0
	c.nextIvAt = c.retired + c.opts.IntervalLength
	for d := 0; d < clock.NumControllable; d++ {
		c.freqIntegral[d] = 0
		c.occupSum[d] = 0
		c.ivTicks[d] = 0
		c.ivStartEnergy[d] = c.meter.DomainPJ(clock.Domain(d))
		c.ivStartClkPJ[d] = c.meter.DomainClockPJ(clock.Domain(d))
	}
	c.ivStartEv = c.eventCounts()
}

// ----------------------------------------------------------------- intervals

func (c *Core) emitInterval(t float64) {
	ivLen := c.opts.IntervalLength
	sampling := c.opts.SampleEvery > 1
	if sampling {
		// Seed the fast-forward model before the accumulators roll over.
		c.noteDetailInterval(t, ivLen)
	}
	iv := IntervalView{
		Index:        c.ivIndex,
		Instructions: ivLen,
		EndPS:        t,
		Warmup:       !c.marked,
	}
	for d := 0; d < clock.NumControllable; d++ {
		iv.QueueUtil[d] = c.occupSum[d] / float64(ivLen)
		if c.ivTicks[d] > 0 {
			iv.QueueAvg[d] = c.occupSum[d] / c.ivTicks[d]
		}
		iv.FreqMHz[d] = c.regs[d].TargetMHz()
		c.occupSum[d] = 0
		c.ivTicks[d] = 0
	}
	if dt := t - c.ivStart; dt > 0 {
		iv.IPC = float64(ivLen) / (dt / 1000)
	}
	if sampling {
		// Skipped intervals hold the last detailed interval's occupancy
		// view in front of the controller.
		c.detail.util = iv.QueueUtil
		c.detail.qavg = iv.QueueAvg
	}
	// At exact fidelity on-line controllers adapt through warmup; at
	// sampled fidelity warmup is left uncontrolled so the warmed state is
	// controller-independent and checkpointed warmup reuse stays sound.
	if c.opts.Controller != nil && (c.marked || c.opts.SampleEvery == 0) {
		targets := c.opts.Controller.Observe(iv)
		for d := 0; d < clock.NumControllable; d++ {
			if targets[d] > 0 {
				c.regs[d].SetTargetMHz(targets[d])
			}
		}
		if sampling {
			c.noteTargets(targets)
		}
	}
	var siv stats.Interval
	notify := c.marked && (c.opts.RecordIntervals || c.opts.OnInterval != nil)
	if notify {
		siv = stats.Interval{
			Index:        iv.Index,
			Instructions: iv.Instructions,
			EndPS:        iv.EndPS,
			QueueUtil:    iv.QueueUtil,
			QueueAvg:     iv.QueueAvg,
			FreqMHz:      iv.FreqMHz,
			IPC:          iv.IPC,
		}
		if c.opts.RecordIntervals {
			c.intervals = append(c.intervals, siv)
		}
	}
	c.ivStart = t
	c.ivIndex++
	c.emitted++
	c.nextIvAt += ivLen
	if sampling {
		for d := 0; d < clock.NumControllable; d++ {
			c.ivStartEnergy[d] = c.meter.DomainPJ(clock.Domain(d))
			c.ivStartClkPJ[d] = c.meter.DomainClockPJ(clock.Domain(d))
		}
		c.ivStartEv = c.eventCounts()
		c.scheduleSkips()
	}
	// The observer runs after the counters roll over, so a Progress read
	// from inside it counts the interval it is being shown.
	if notify && c.opts.OnInterval != nil {
		c.opts.OnInterval(siv)
	}
}
