// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Tables 1–6, Figures 2–7) on the
// synthetic-workload substrate, printing the same rows and series the
// paper reports. See DESIGN.md for the per-experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
//
// Every grid of independent runs is executed through internal/runner, so
// the harness scales across cores; results are assembled in submission
// order, making table output byte-identical for any Workers value.
package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"mcd/internal/control"
	"mcd/internal/core"
	"mcd/internal/pipeline"
	"mcd/internal/resultcache"
	"mcd/internal/runner"
	"mcd/internal/sim"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// Options scales the experiments. The paper simulates 50–400 M
// instructions per benchmark; these runs are scaled down (DESIGN.md,
// "time-scale compression"): the control interval and regulator slew are
// shrunk with the window so each run spans a paper-like number of control
// intervals.
type Options struct {
	Window         uint64  // measured instructions per run
	Warmup         uint64  // cache/predictor warmup instructions
	IntervalLength uint64  // controller sampling period
	SlewNsPerMHz   float64 // regulator slew (compressed with the interval)
	Params         core.Params
	OfflineIters   int
	// Fidelity selects the simulation tier for every grid cell ("" or
	// sim.FidelityExact: the default cycle-exact engine,
	// sim.FidelitySampled: interval sampling with checkpointed warmup
	// reuse); SampleEvery is the sampled tier's detailed-interval cadence
	// (zero: sim.DefaultSampleEvery). Sampled cells key apart from exact
	// ones in the result store, so the tiers never alias.
	Fidelity    string
	SampleEvery int
	// Workers bounds the number of simulations running concurrently;
	// zero or negative means GOMAXPROCS. Results do not depend on it.
	Workers int
	// Benchmarks filters the catalog by name; empty means all 30.
	Benchmarks []string
	// Log receives progress lines; nil discards them. Writes are
	// serialized by the harness.
	Log io.Writer
	// Progress, if non-nil, is called (serialized) as each run of a
	// batch finishes — the hook the serving layer's job progress rides
	// on. It never changes results.
	Progress func(done, total int, name string)
	// Cache, if non-nil, is consulted before every grid cell — including
	// the compound off-line and Global(·) cells, which are keyed by
	// their spec plus search parameters — so repeated sweeps and tables
	// skip completed simulations. A hit is byte-identical to a
	// recompute, so output does not depend on cache state.
	Cache *resultcache.Cache
	// Context, if non-nil, cancels the harness between runs: after
	// cancellation no new simulation starts and the batch panics with
	// the context error once running tasks drain (the serving layer
	// recovers it into a failed job).
	Context context.Context
	// Exec, if non-nil, executes registry-resolved grid cells out of
	// process (the distributed fabric's dispatch hook): each cell is
	// handed over with its content address and re-executable
	// description, and the returned canonical encoding is decoded in
	// place of a local simulation — byte-identical by the determinism
	// contract. Cells whose key cannot be computed run locally; the
	// hook owns all caching, so Cache is not consulted for dispatched
	// cells.
	Exec ExecFunc
}

// DefaultOptions returns the full-scale configuration used for
// EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{
		Window:         400_000,
		Warmup:         200_000,
		IntervalLength: 1_000,
		SlewNsPerMHz:   4.91,
		Params:         core.DefaultParams(),
		OfflineIters:   5,
	}
}

// QuickOptions returns a reduced scale suitable for `go test -bench`.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Window = 120_000
	o.Warmup = 60_000
	o.IntervalLength = 500
	o.OfflineIters = 3
	o.Benchmarks = []string{
		"adpcm", "epic", "mesa", "em3d", "mcf", "power",
		"gzip", "vortex", "art", "swim",
	}
	return o
}

// logMu serializes progress output across a parallel batch; Options is
// copied by value, so the lock must live outside it.
var logMu sync.Mutex

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(o.Log, format, args...)
	}
}

func (o Options) config() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.SlewNsPerMHz = o.SlewNsPerMHz
	return cfg
}

func (o Options) catalog() []workload.Benchmark {
	all := workload.Catalog()
	if len(o.Benchmarks) == 0 {
		return all
	}
	want := map[string]bool{}
	for _, n := range o.Benchmarks {
		want[n] = true
	}
	var out []workload.Benchmark
	for _, b := range all {
		if want[b.Name] {
			out = append(out, b)
		}
	}
	return out
}

// Comparison bundles every configuration's run of one benchmark.
type Comparison struct {
	Bench workload.Benchmark

	Sync    stats.Result // fully synchronous, 1 GHz
	MCDBase stats.Result // MCD, all domains at maximum
	AD      stats.Result // Attack/Decay
	Dyn1    stats.Result // off-line Dynamic-1%
	Dyn5    stats.Result // off-line Dynamic-5%

	GlobalAD stats.Result // global scaling matched to AD's degradation
	GlobalD1 stats.Result
	GlobalD5 stats.Result
}

// AttachCache wires a disk-backed result store into the options — the
// CLIs' -cache flag. An empty dir is a no-op.
func (o *Options) AttachCache(dir string) error {
	if dir == "" {
		return nil
	}
	c, err := resultcache.New(resultcache.Options{Dir: dir})
	if err != nil {
		return err
	}
	o.Cache = c
	return nil
}

// task builds one cache-aware grid-cell task: with a cache configured
// the cell is addressed by its spec's content hash and skipped when a
// previous sweep already computed it; without one it is a plain run.
func (o Options) task(name string, spec sim.Spec) runner.Task[stats.Result] {
	return resultcache.Task(o.Cache, name, spec)
}

// controlRun is the controller-independent run description of one grid
// cell — exactly what a service request for the same cell resolves, so
// the two address spaces coincide.
func (o Options) controlRun(b workload.Benchmark) control.Run {
	return control.Run{
		Config:         o.config(),
		Profile:        b.Profile,
		Window:         o.Window,
		Warmup:         o.Warmup,
		IntervalLength: o.IntervalLength,
		Fidelity:       o.Fidelity,
		SampleEvery:    o.SampleEvery,
	}
}

// resolvedTask builds one grid-cell task through the controller
// registry: the cell is addressed by the control.Resolve-derived
// canonical key (like SweepController's cells and every service
// request), so a -cache DIR shared between the harness CLIs and
// mcdserve reuses equivalent cells instead of double-computing them. A
// resolution error surfaces as the task's error.
func (o Options) resolvedTask(bench, label, name string, p control.Params, run control.Run) runner.Task[stats.Result] {
	res, err := control.Resolve(name, p)
	if err != nil {
		return runner.Task[stats.Result]{Name: label, Run: func(context.Context) (stats.Result, error) {
			return stats.Result{}, err
		}}
	}
	return o.controlTask(bench, label, name, p, res, run)
}

// mapTasks fans tasks out on the options' pool, logging progress and
// returning results in submission order. A run that panicked re-panics
// here with its task name attached (*runner.PanicError), after the rest
// of the batch has drained; so does the context error when Options.
// Context is cancelled.
func (o Options) mapTasks(tasks []runner.Task[stats.Result]) []stats.Result {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	outs, _ := runner.Map(ctx, tasks, runner.Options{
		Workers: o.Workers,
		OnDone: func(done, total int, name string) {
			o.logf("[%3d/%3d] %s\n", done, total, name)
			if o.Progress != nil {
				o.Progress(done, total, name)
			}
		},
	})
	res := make([]stats.Result, len(outs))
	for i, u := range outs {
		if u.Err != nil {
			runner.Repanic(u.Err)
		}
		res[i] = u.Value
	}
	return res
}

// SplitNames parses a comma-separated benchmark list as the CLIs accept
// it: surrounding whitespace is trimmed and empty entries dropped.
func SplitNames(s string) []string {
	var names []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// Index layout of the phase-1 task block per benchmark.
const (
	cSync = iota
	cBase
	cAD
	cDyn1
	cDyn5
	nPhase1
)

// phase1Tasks builds the five independent runs of one benchmark's row:
// fully synchronous, baseline MCD, Attack/Decay, and both off-line
// schedules (each a compound BuildOffline + replay). Every cell
// resolves through the controller registry, so its content address (and
// its Result's Config label) is the registry's.
func (o Options) phase1Tasks(b workload.Benchmark) []runner.Task[stats.Result] {
	run := o.controlRun(b)
	iters := control.Params{"iters": float64(o.OfflineIters)}
	return []runner.Task[stats.Result]{
		cSync: o.resolvedTask(b.Name, b.Name+"/sync", "sync", nil, run),
		cBase: o.resolvedTask(b.Name, b.Name+"/mcd-base", "mcd", nil, run),
		cAD:   o.resolvedTask(b.Name, b.Name+"/attack-decay", "attack-decay", control.FromAttackDecay(o.Params), run),
		cDyn1: o.resolvedTask(b.Name, b.Name+"/dynamic-1%", "dynamic-1", iters, run),
		cDyn5: o.resolvedTask(b.Name, b.Name+"/dynamic-5%", "dynamic-5", iters, run),
	}
}

// globalTasks builds the three Global(·) searches of one row; they depend
// on the phase-1 results, so they form the batch's second phase. Each is
// the registered "global" controller with the measured baseline time and
// target degradation as parameters.
func (o Options) globalTasks(c *Comparison) []runner.Task[stats.Result] {
	run := o.controlRun(c.Bench)
	mk := func(label string, deg float64) runner.Task[stats.Result] {
		return o.resolvedTask(c.Bench.Name, c.Bench.Name+"/"+label, "global",
			control.Params{"deg": deg, "base_ps": c.Sync.TimePS}, run)
	}
	return []runner.Task[stats.Result]{
		mk("global-ad", c.AD.TimePS/c.MCDBase.TimePS-1),
		mk("global-d1", c.Dyn1.TimePS/c.MCDBase.TimePS-1),
		mk("global-d5", c.Dyn5.TimePS/c.MCDBase.TimePS-1),
	}
}

// RunComparison executes the Table 6 / Figure 4 configuration matrix for
// one benchmark.
func (o Options) RunComparison(b workload.Benchmark) Comparison {
	return o.runAllOn([]workload.Benchmark{b})[0]
}

// RunAll runs the comparison matrix over the selected benchmarks.
func (o Options) RunAll() []Comparison {
	return o.runAllOn(o.catalog())
}

// runAllOn flattens the whole benchmark grid into two batches — the
// independent runs of every row first, then every row's Global(·)
// searches — so a single GOMAXPROCS-bounded pool sees maximal
// parallelism. Comparisons come back in catalog order regardless of the
// worker count.
func (o Options) runAllOn(cat []workload.Benchmark) []Comparison {
	var p1 []runner.Task[stats.Result]
	for _, b := range cat {
		p1 = append(p1, o.phase1Tasks(b)...)
	}
	r1 := o.mapTasks(p1)

	cs := make([]Comparison, len(cat))
	for i, b := range cat {
		row := r1[i*nPhase1 : (i+1)*nPhase1]
		cs[i] = Comparison{
			Bench:   b,
			Sync:    row[cSync],
			MCDBase: row[cBase],
			AD:      row[cAD],
			Dyn1:    row[cDyn1],
			Dyn5:    row[cDyn5],
		}
	}

	var p2 []runner.Task[stats.Result]
	for i := range cs {
		p2 = append(p2, o.globalTasks(&cs[i])...)
	}
	r2 := o.mapTasks(p2)
	for i := range cs {
		cs[i].GlobalAD = r2[i*3+0]
		cs[i].GlobalD1 = r2[i*3+1]
		cs[i].GlobalD5 = r2[i*3+2]
	}
	return cs
}

// summarize reduces one configuration across benchmarks against a chosen
// baseline extractor.
func summarize(cs []Comparison, pick func(Comparison) stats.Result, base func(Comparison) stats.Result) stats.Summary {
	var comps []stats.Comparison
	for _, c := range cs {
		comps = append(comps, stats.Compare(pick(c), base(c)))
	}
	return stats.Summarize(comps)
}

// Table6 computes the paper's Table 6: each algorithm versus the baseline
// MCD processor, plus the Global(·) rows versus the fully synchronous
// processor at 1 GHz.
func Table6(cs []Comparison) string {
	type row struct {
		name string
		s    stats.Summary
	}
	rows := []row{
		{"Attack/Decay", summarize(cs, func(c Comparison) stats.Result { return c.AD }, func(c Comparison) stats.Result { return c.MCDBase })},
		{"Dynamic-1%", summarize(cs, func(c Comparison) stats.Result { return c.Dyn1 }, func(c Comparison) stats.Result { return c.MCDBase })},
		{"Dynamic-5%", summarize(cs, func(c Comparison) stats.Result { return c.Dyn5 }, func(c Comparison) stats.Result { return c.MCDBase })},
		{"Global (Attack/Decay)", summarize(cs, func(c Comparison) stats.Result { return c.GlobalAD }, func(c Comparison) stats.Result { return c.Sync })},
		{"Global (Dynamic-1%)", summarize(cs, func(c Comparison) stats.Result { return c.GlobalD1 }, func(c Comparison) stats.Result { return c.Sync })},
		{"Global (Dynamic-5%)", summarize(cs, func(c Comparison) stats.Result { return c.GlobalD5 }, func(c Comparison) stats.Result { return c.Sync })},
	}
	s := "Table 6: algorithm comparison (averages over " + fmt.Sprint(len(cs)) + " benchmarks)\n"
	s += fmt.Sprintf("%-24s %12s %10s %12s %12s\n", "Algorithm", "Perf Deg", "Energy Sav", "EDP Improv", "Power/Perf")
	for _, r := range rows {
		s += fmt.Sprintf("%-24s %11.1f%% %9.1f%% %11.1f%% %12.1f\n",
			r.name, r.s.PerfDegradation*100, r.s.EnergySavings*100, r.s.EDPImprovement*100, r.s.PowerPerfRatio)
	}
	return s
}

// Headline computes the paper's abstract numbers: Attack/Decay vs the
// baseline MCD processor and vs the conventional fully synchronous
// processor.
func Headline(cs []Comparison) string {
	vsMCD := summarize(cs, func(c Comparison) stats.Result { return c.AD }, func(c Comparison) stats.Result { return c.MCDBase })
	vsSync := summarize(cs, func(c Comparison) stats.Result { return c.AD }, func(c Comparison) stats.Result { return c.Sync })
	d1 := summarize(cs, func(c Comparison) stats.Result { return c.Dyn1 }, func(c Comparison) stats.Result { return c.MCDBase })
	mcdBase := summarize(cs, func(c Comparison) stats.Result { return c.MCDBase }, func(c Comparison) stats.Result { return c.Sync })

	s := "Headline results (paper values in parentheses)\n"
	s += fmt.Sprintf("  vs baseline MCD:       EPI -%.1f%% (19.0%%), CPI +%.1f%% (3.2%%), EDP +%.1f%% (16.7%%), ratio %.1f (4.6)\n",
		vsMCD.EnergySavings*100, vsMCD.PerfDegradation*100, vsMCD.EDPImprovement*100, vsMCD.PowerPerfRatio)
	s += fmt.Sprintf("  vs fully synchronous:  EPI -%.1f%% (17.5%%), CPI +%.1f%% (4.5%%), EDP +%.1f%% (13.8%%)\n",
		vsSync.EnergySavings*100, vsSync.PerfDegradation*100, vsSync.EDPImprovement*100)
	if d1.EDPImprovement != 0 {
		s += fmt.Sprintf("  A/D EDP vs Dynamic-1%% EDP: %.1f%% (85.5%%)\n", vsMCD.EDPImprovement/d1.EDPImprovement*100)
	}
	s += fmt.Sprintf("  inherent MCD degradation: %.1f%% (paper <2%%), MCD energy overhead: %.1f%% (2.9%%)\n",
		mcdBase.PerfDegradation*100, -mcdBase.EnergySavings*100)
	return s
}

// Fig4 prints the three per-application series of Figure 4 (performance
// degradation, energy savings, EDP improvement), all relative to the
// fully synchronous processor, for the four configurations the paper
// plots.
func Fig4(cs []Comparison) string {
	s := "Figure 4: per-application results vs fully synchronous processor\n"
	header := fmt.Sprintf("%-12s %38s\n%-12s %9s %9s %9s %9s\n",
		"", "Baseline-MCD  Dyn-1%  Dyn-5%  A/D", "benchmark", "base", "dyn1", "dyn5", "ad")
	metric := func(title string, f func(r, b stats.Result) float64) string {
		out := "\n(" + title + ")\n" + header
		var sums [4]float64
		for _, c := range cs {
			v := [4]float64{
				f(c.MCDBase, c.Sync), f(c.Dyn1, c.Sync), f(c.Dyn5, c.Sync), f(c.AD, c.Sync),
			}
			for i := range sums {
				sums[i] += v[i]
			}
			out += fmt.Sprintf("%-12s %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
				c.Bench.Name, v[0]*100, v[1]*100, v[2]*100, v[3]*100)
		}
		n := float64(len(cs))
		out += fmt.Sprintf("%-12s %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			"average", sums[0]/n*100, sums[1]/n*100, sums[2]/n*100, sums[3]/n*100)
		return out
	}
	s += metric("a: performance degradation", func(r, b stats.Result) float64 {
		return r.TimePS/b.TimePS - 1
	})
	s += metric("b: energy savings", func(r, b stats.Result) float64 {
		return 1 - r.EnergyPJ/b.EnergyPJ
	})
	s += metric("c: energy-delay product improvement", func(r, b stats.Result) float64 {
		return 1 - r.EDP()/b.EDP()
	})
	return s
}
