// Package stats defines the measurement records produced by simulation
// runs and the derived metrics the paper reports: CPI, energy per
// instruction, energy-delay product, and the comparison metrics
// (performance degradation, energy savings, EDP improvement, and the
// power-savings to performance-degradation ratio).
package stats

import "mcd/internal/clock"

// Interval is one control-interval record (the paper samples every 10,000
// instructions). QueueUtil follows the paper's metric: queue occupancy is
// accumulated every domain cycle and divided by the interval's instruction
// count, so values can exceed the queue capacity when the interval takes
// more cycles than instructions.
type Interval struct {
	Index        int
	Instructions uint64
	EndPS        float64
	QueueUtil    [clock.NumControllable]float64
	QueueAvg     [clock.NumControllable]float64 // mean occupancy per domain cycle
	FreqMHz      [clock.NumControllable]float64
	IPC          float64 // instructions per 1 GHz reference cycle
	// Estimated marks intervals the sampled fidelity tier fast-forwarded
	// analytically instead of simulating cycle by cycle; their time,
	// occupancy and IPC are model extrapolations from the nearest detailed
	// interval. Always false at exact fidelity (and omitted from JSON, so
	// exact results stay byte-identical).
	Estimated bool `json:",omitempty"`
}

// Result is the outcome of one simulation run.
type Result struct {
	Benchmark string
	Config    string

	Instructions uint64
	TimePS       float64
	EnergyPJ     float64

	DomainEnergyPJ [clock.NumDomains]float64
	AvgFreqMHz     [clock.NumControllable]float64
	BranchAccuracy float64
	L1DMissRate    float64
	L2MissRate     float64
	Transitions    uint64 // PLL retarget count across domains

	// Sampled-fidelity error accounting (zero, and omitted from JSON, at
	// exact fidelity): the number of measured intervals simulated in
	// detail vs fast-forwarded, and 95% confidence half-widths on CPI and
	// EPI relative to their means, derived from the spread of the
	// per-detailed-interval samples. They bound the sampling noise, not
	// the analytical model's bias; mcdbench -validate-fidelity measures
	// the latter against exact runs.
	DetailedIntervals int     `json:",omitempty"`
	SampledIntervals  int     `json:",omitempty"`
	CPIErr95          float64 `json:",omitempty"`
	EPIErr95          float64 `json:",omitempty"`

	Intervals []Interval // populated when interval tracing is enabled
}

// CPI returns cycles per instruction at the 1 GHz reference clock (1 cycle
// = 1000 ps), the normalization the paper uses for cross-configuration
// performance comparisons.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return r.TimePS / 1000 / float64(r.Instructions)
}

// EPI returns energy per instruction in picojoules.
func (r Result) EPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return r.EnergyPJ / float64(r.Instructions)
}

// EDP returns the energy-delay product (pJ·ps); meaningful only relative
// to another run of the same workload.
func (r Result) EDP() float64 { return r.EnergyPJ * r.TimePS }

// PowerW returns average power in watts (pJ/ps ≡ W).
func (r Result) PowerW() float64 {
	if r.TimePS == 0 {
		return 0
	}
	return r.EnergyPJ / r.TimePS
}

// Progress is the incrementally finalized view of an in-progress run:
// the same aggregates a full Result reports, readable at any control
// interval boundary while the simulation is still executing. The
// session API's snapshots (sim.Session.Snapshot) and the serving
// layer's interval streams are built from it. Aggregates cover the
// measured region only — during warmup everything but FreqMHz is zero.
type Progress struct {
	// Intervals counts the measured control intervals emitted so far.
	Intervals int `json:"intervals"`
	// Instructions is the number of measured instructions retired.
	Instructions uint64  `json:"instructions"`
	TimePS       float64 `json:"time_ps"`
	EnergyPJ     float64 `json:"energy_pj"`
	// FreqMHz is each domain's current regulator target.
	FreqMHz [clock.NumControllable]float64 `json:"freq_mhz"`
	// IPC is the last measured interval's IPC (zero before the first).
	IPC float64 `json:"ipc,omitempty"`
	// Done reports that the run cannot advance further.
	Done bool `json:"done"`
	// Stopped reports that an early-termination predicate fired.
	Stopped bool `json:"stopped,omitempty"`
}

// CPI returns the running cycles per instruction at the 1 GHz reference
// clock, the same normalization Result.CPI uses.
func (p Progress) CPI() float64 {
	if p.Instructions == 0 {
		return 0
	}
	return p.TimePS / 1000 / float64(p.Instructions)
}

// EPI returns the running energy per instruction in picojoules.
func (p Progress) EPI() float64 {
	if p.Instructions == 0 {
		return 0
	}
	return p.EnergyPJ / float64(p.Instructions)
}

// PowerW returns the running average power in watts.
func (p Progress) PowerW() float64 {
	if p.TimePS == 0 {
		return 0
	}
	return p.EnergyPJ / p.TimePS
}

// Comparison holds the paper's four headline metrics for one run measured
// against a baseline run of the same workload.
type Comparison struct {
	Benchmark       string
	PerfDegradation float64 // (T − T₀)/T₀
	EnergySavings   float64 // 1 − E/E₀
	EDPImprovement  float64 // 1 − (E·T)/(E₀·T₀)
	PowerSavings    float64 // 1 − (E/T)/(E₀/T₀)
}

// Compare measures r against base.
func Compare(r, base Result) Comparison {
	return Comparison{
		Benchmark:       r.Benchmark,
		PerfDegradation: r.TimePS/base.TimePS - 1,
		EnergySavings:   1 - r.EnergyPJ/base.EnergyPJ,
		EDPImprovement:  1 - r.EDP()/base.EDP(),
		PowerSavings:    1 - r.PowerW()/base.PowerW(),
	}
}

// Summary aggregates comparisons over a benchmark suite.
type Summary struct {
	N                 int
	PerfDegradation   float64 // arithmetic means
	EnergySavings     float64
	EDPImprovement    float64
	PowerSavings      float64
	PowerPerfRatio    float64 // mean power savings / mean perf degradation
	MeanPerBenchRatio float64 // mean of per-benchmark power/perf ratios
}

// Summarize averages the comparisons the way the paper reports suite-wide
// numbers. The power/performance ratio is reported both as the ratio of
// the averages and as the average of per-benchmark ratios (the paper is
// ambiguous between the two; see EXPERIMENTS.md).
func Summarize(cs []Comparison) Summary {
	var s Summary
	if len(cs) == 0 {
		return s
	}
	var ratioSum float64
	var ratioN int
	for _, c := range cs {
		s.PerfDegradation += c.PerfDegradation
		s.EnergySavings += c.EnergySavings
		s.EDPImprovement += c.EDPImprovement
		s.PowerSavings += c.PowerSavings
		if c.PerfDegradation > 0.001 {
			ratioSum += c.PowerSavings / c.PerfDegradation
			ratioN++
		}
	}
	n := float64(len(cs))
	s.N = len(cs)
	s.PerfDegradation /= n
	s.EnergySavings /= n
	s.EDPImprovement /= n
	s.PowerSavings /= n
	if s.PerfDegradation != 0 {
		s.PowerPerfRatio = s.PowerSavings / s.PerfDegradation
	}
	if ratioN > 0 {
		s.MeanPerBenchRatio = ratioSum / float64(ratioN)
	}
	return s
}
