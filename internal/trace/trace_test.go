package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRingBoundsAndCountsDrops(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Add(Record{Kind: KindInstant, Interval: i})
	}
	recs, dropped := r.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want 4", len(recs))
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	for i, rec := range recs {
		if want := 6 + i; rec.Interval != want {
			t.Fatalf("recs[%d].Interval = %d, want %d (oldest-first order)", i, rec.Interval, want)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
}

func TestNilRingIsInert(t *testing.T) {
	var r *Ring
	r.Add(Record{}) // must not panic
	recs, dropped := r.Snapshot()
	if recs != nil || dropped != 0 || r.Total() != 0 {
		t.Fatalf("nil ring leaked state: recs=%v dropped=%d total=%d", recs, dropped, r.Total())
	}
}

// chromeDoc mirrors the exported JSON shape for validation.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChrome(t *testing.T) {
	recs := []Record{
		{Kind: KindInstant, Name: "submit", Job: "j000003", Client: "c1", StartUS: 100},
		{Kind: KindSpan, Name: "queue", Job: "j000003", StartUS: 100, DurUS: 50},
		{Kind: KindSpan, Name: "probe", Job: "j000003", Key: "k", Tier: "miss", StartUS: 150, DurUS: 2},
		{Kind: KindDecision, Name: "decision", Job: "j000003", Interval: 7, SimPS: 2e6,
			IPC: 1.5, FreqMHz: [NumDomains]float64{1000, 750, 500, 250},
			QueueAvg: [NumDomains]float64{0, 1, 2, 3}, Note: "budget_mhz=100"},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, recs, 5); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	byName := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name]++
		switch ev.Name {
		case "queue":
			if ev.Ph != "X" || ev.TS != 100 || ev.Dur != 50 || ev.TID != 3 {
				t.Fatalf("queue span mis-rendered: %+v", ev)
			}
		case "probe":
			if ev.Args["cache_tier"] != "miss" || ev.Args["spec_key"] != "k" {
				t.Fatalf("probe span lost its attributes: %+v", ev)
			}
		case "decision":
			if ev.Ph != "i" || ev.TS != 2.0 { // 2e6 ps = 2 µs
				t.Fatalf("decision mis-positioned: %+v", ev)
			}
			if ev.Args["integer_mhz"] != 750.0 || ev.Args["loadstore_queue"] != 3.0 {
				t.Fatalf("decision lost per-domain payload: %+v", ev)
			}
			if ev.Args["note"] != "budget_mhz=100" {
				t.Fatalf("decision lost controller note: %+v", ev)
			}
		}
	}
	for _, want := range []string{"submit", "queue", "probe", "decision",
		"freq_mhz j000003", "queue_avg j000003", "process_name", "trace-truncated"} {
		if byName[want] == 0 {
			t.Fatalf("export missing %q event; have %v", want, byName)
		}
	}
	if byName["process_name"] != 2 {
		t.Fatalf("want 2 process_name metadata events, got %d", byName["process_name"])
	}
}

func TestWriteChromeZeroDurSpanVisible(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChrome(&buf, []Record{{Kind: KindSpan, Name: "store", Job: "j1", StartUS: 9}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "store" && ev.Dur < 1 {
			t.Fatalf("zero-duration span exported with dur %v; Perfetto would drop it", ev.Dur)
		}
	}
}
