// Single-run throughput benchmarks: the within-run hot path every
// experiment in this repo bottoms out in (PR 5). BenchmarkSingleRun is
// the number the perf-regression gate tracks in BENCH_5.json; the
// internal/pipeline benchmarks isolate the cycle engine below the
// session layer.
package mcd_test

import (
	"testing"

	"mcd"
)

// singleRunSpec is one QuickOptions-scale Attack/Decay run — the
// canonical cache-miss unit of work behind every table cell, sweep
// point and streamed session.
func singleRunSpec(b *testing.B) mcd.Spec {
	bench, ok := mcd.LookupBenchmark("epic")
	if !ok {
		b.Fatal("benchmark epic missing from catalog")
	}
	cfg := mcd.DefaultConfig()
	cfg.SlewNsPerMHz = 4.91
	return mcd.Spec{
		Config:         cfg,
		Profile:        bench.Profile,
		Window:         120_000,
		Warmup:         60_000,
		IntervalLength: 500,
		Controller:     mcd.NewAttackDecay(mcd.DefaultParams()),
		Name:           "attack-decay",
	}
}

// BenchmarkSingleRun measures one full mcd.Run per iteration (session
// open, drain, close) and reports simulated MIPS: retired instructions
// (warmup included — those cycles are simulated too) per wall-clock
// second.
func BenchmarkSingleRun(b *testing.B) {
	spec := singleRunSpec(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mcd.Run(spec)
		if res.Instructions != spec.Window {
			b.Fatalf("run retired %d measured instructions, want %d", res.Instructions, spec.Window)
		}
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(spec.Warmup+spec.Window)*float64(b.N)/1e6/s, "sim-MIPS")
	}
}
