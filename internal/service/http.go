package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"mcd/internal/control"
	"mcd/internal/trace"
	"mcd/internal/wire"
)

// NewHandler exposes a Manager as the mcdserve HTTP API:
//
//	POST   /v1/runs          one run ({"async":true} to queue, {"stream":true} for a live NDJSON interval feed) or {"runs":[...]} batch
//	POST   /v1/experiments   {"name":"table6"|...,"quick":true,...} — always a job
//	GET    /v1/controllers   the controller registry: names, docs, parameter schemas
//	GET    /v1/jobs          job list, newest first
//	GET    /v1/jobs/{id}     job snapshot
//	GET    /v1/jobs/{id}/events   NDJSON progress stream until terminal
//	GET    /v1/jobs/{id}/result   the finished job's body
//	GET    /v1/jobs/{id}/trace    the job's flight-recorder trace (Chrome trace-event JSON; needs Options.Trace)
//	DELETE /v1/jobs/{id}     cancel
//	GET    /v1/healthz       liveness
//	GET    /v1/cache/stats   result-store counters
//	GET    /metrics          Prometheus text-format instruments
//	GET    /debug/trace      the rolling process-wide flight recorder (Chrome trace-event JSON)
//
// Synchronous single runs answer with the canonical result encoding and
// an X-Cache: hit|miss header — the byte-identity contract makes a hit
// indistinguishable from a recompute except for that header.
//
// Submissions are attributed to the X-Client header (falling back to
// the remote address) for per-client quota accounting; 429 responses
// carry a Retry-After estimate and distinguish "queue" from "quota" in
// the body.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", m.Metrics())
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) { handleRuns(m, w, r) })
	mux.HandleFunc("POST /v1/experiments", func(w http.ResponseWriter, r *http.Request) { handleExperiments(m, w, r) })
	mux.HandleFunc("GET /v1/controllers", func(w http.ResponseWriter, r *http.Request) {
		// The registry self-describes: this is the same set request
		// validation accepts, so a client can discover every runnable
		// controller and its parameter schema without a round trip per
		// guess.
		writeJSON(w, http.StatusOK, map[string]any{"controllers": control.Describe()})
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.Jobs()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		writeJSON(w, http.StatusOK, j.Snapshot())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) { handleEvents(m, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) { handleResult(m, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) { handleJobTrace(m, w, r) })
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if !m.tracing() {
			writeError(w, http.StatusNotFound, errTracingDisabled)
			return
		}
		recs, dropped := m.opts.Trace.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChrome(w, recs, dropped)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		if snap := j.Snapshot(); snap.Terminal() {
			writeError(w, http.StatusConflict, fmt.Errorf("job %s already %s", snap.ID, snap.State))
			return
		}
		m.Cancel(j.ID())
		writeJSON(w, http.StatusOK, map[string]string{"status": "cancelling"})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/cache/stats", func(w http.ResponseWriter, r *http.Request) {
		if m.Cache() == nil {
			writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"enabled": true, "stats": m.Cache().Stats()})
	})
	return mux
}

// runsPayload is the POST /v1/runs body: one run's fields inline, or a
// batch under "runs"; async turns the single-run form into a queued
// job, stream turns it into a live NDJSON interval feed (async+stream
// queues a stream job whose intervals arrive on its /events feed).
type runsPayload struct {
	wire.RunRequest
	Async  bool              `json:"async,omitempty"`
	Stream bool              `json:"stream,omitempty"`
	Runs   []wire.RunRequest `json:"runs,omitempty"`
}

func handleRuns(m *Manager, w http.ResponseWriter, r *http.Request) {
	var p runsPayload
	if err := decodeBody(w, r, &p); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(p.Runs) > 0 {
		if p.Stream {
			writeError(w, http.StatusBadRequest, errors.New("stream applies to a single run, not a batch"))
			return
		}
		j, err := m.SubmitBatchAs(clientID(r), p.Runs)
		if err != nil {
			writeSubmitError(m, w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.Snapshot())
		return
	}
	if p.Async {
		submit := m.SubmitRunAs
		if p.Stream {
			submit = m.SubmitStreamAs
		}
		j, err := submit(clientID(r), p.RunRequest)
		if err != nil {
			writeSubmitError(m, w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.Snapshot())
		return
	}
	if p.Stream {
		handleStreamRun(m, w, r, p.RunRequest)
		return
	}
	// Synchronous: a stored result is served straight from the cache —
	// a hash lookup, never queued behind running experiments. Only a
	// miss costs a job, so the concurrency/queue bounds apply exactly
	// to the requests that simulate.
	if key, err := p.RunRequest.Key(); err == nil {
		if body, ok := m.Cache().GetBytes(key); ok {
			w.Header().Set("X-Cache", "hit")
			w.Header().Set("Content-Type", "application/json")
			w.Write(body)
			return
		}
	}
	j, err := m.SubmitRunAs(clientID(r), p.RunRequest)
	if err != nil {
		writeSubmitError(m, w, err)
		return
	}
	body, snap, err := j.WaitResult(r.Context())
	if err != nil {
		// A client that gave up must not leave its job consuming queue
		// or runner capacity; cancelling is also harmless for a job
		// that already failed.
		m.Cancel(j.ID())
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if snap.CacheHit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handleStreamRun answers a {"stream":true} run with NDJSON
// wire.StreamFrame lines: one "interval" frame per measured control
// interval as the simulation produces it, then a terminal "result"
// frame whose bytes are exactly the non-streamed response body (or an
// "error" frame). The X-Cache header comes from a store probe before
// streaming starts: a stored result answers as a single hit frame
// without simulating, so the identical follow-up to a completed
// streamed run is a hit — the byte-identity contract extends to
// streams. The terminal frame's "cache" field is the authoritative
// report: when an identical computation lands in flight between the
// probe and the run, a stream that began as X-Cache: miss can legally
// end with zero interval frames and a "cache":"hit" result. A client
// that disconnects cancels the job, which closes the stepped session
// at the next interval boundary.
func handleStreamRun(m *Manager, w http.ResponseWriter, r *http.Request, req wire.RunRequest) {
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	if key, err := req.Key(); err == nil {
		if body, ok := m.Cache().GetBytes(key); ok {
			w.Header().Set("X-Cache", "hit")
			enc.Encode(wire.ResultFrame(body, true))
			return
		}
	}
	j, err := m.SubmitStreamAs(clientID(r), req)
	if err != nil {
		w.Header().Del("Content-Type")
		writeSubmitError(m, w, err)
		return
	}
	w.Header().Set("X-Cache", "miss")
	next := 0
	for {
		ch := j.Watch()
		snap := j.Snapshot()
		ivs, n, dropped := j.IntervalsSince(next)
		next = n
		if dropped > 0 {
			// This consumer outran the bounded interval log; the gap is
			// explicit in the stream, never silent, and the metric counts
			// exactly the records each gap frame reports dropped.
			m.met.gapFrames.Add(float64(dropped))
			if enc.Encode(wire.GapFrame(dropped)) != nil {
				m.Cancel(j.ID())
				return
			}
		}
		for i := range ivs {
			if enc.Encode(wire.IntervalFrame(&ivs[i])) != nil {
				m.Cancel(j.ID())
				return
			}
		}
		if flusher != nil && len(ivs) > 0 {
			flusher.Flush()
		}
		if snap.Terminal() {
			if snap.State == Done {
				body, _ := j.Result()
				enc.Encode(wire.ResultFrame(body, snap.CacheHit))
			} else {
				enc.Encode(wire.ErrorFrame(snap.Error))
			}
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			// A departed client must not keep simulating; cancellation
			// closes the session between intervals.
			m.Cancel(j.ID())
			return
		}
	}
}

// errTracingDisabled answers trace requests on an untraced server.
var errTracingDisabled = errors.New("tracing disabled (start mcdserve with -trace)")

// handleJobTrace serves one job's flight-recorder trace as Chrome
// trace-event JSON — drag the body into Perfetto (ui.perfetto.dev) or
// chrome://tracing. Lifecycle spans (queue wait, cache probe, run,
// store write) render on a wall-clock track; the controller decision
// audit renders on a simulated-time track with per-domain frequency and
// occupancy counters. A trace that aged past the retained window
// answers with an empty (but valid) document.
func handleJobTrace(m *Manager, w http.ResponseWriter, r *http.Request) {
	j, ok := m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	if !m.tracing() {
		writeError(w, http.StatusNotFound, errTracingDisabled)
		return
	}
	recs, dropped := j.Trace().Snapshot()
	w.Header().Set("Content-Type", "application/json")
	trace.WriteChrome(w, recs, dropped)
}

func handleExperiments(m *Manager, w http.ResponseWriter, r *http.Request) {
	var e wire.ExperimentRequest
	if err := decodeBody(w, r, &e); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := m.SubmitExperimentAs(clientID(r), e)
	if err != nil {
		writeSubmitError(m, w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Snapshot())
}

// handleEvents streams one NDJSON snapshot line per progress update,
// closing after the terminal line (or when the client goes away). For
// stream jobs the snapshots are interleaved with "interval" frames
// (wire.StreamFrame lines) as the simulation produces them, so an
// async streamed run is observable live through its /events feed.
func handleEvents(m *Manager, w http.ResponseWriter, r *http.Request) {
	j, ok := m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	var last Snapshot
	haveLast := false
	for {
		ch := j.Watch()
		snap := j.Snapshot()
		ivs, n, dropped := j.IntervalsSince(next)
		next = n
		if dropped > 0 {
			m.met.gapFrames.Add(float64(dropped))
			if enc.Encode(wire.GapFrame(dropped)) != nil {
				return
			}
		}
		for i := range ivs {
			if enc.Encode(wire.IntervalFrame(&ivs[i])) != nil {
				return
			}
		}
		// Stream jobs wake watchers once per interval; the snapshot line
		// is only worth a flush when it actually changed.
		if !haveLast || snap != last {
			if err := enc.Encode(snap); err != nil {
				return
			}
			last, haveLast = snap, true
		}
		if flusher != nil {
			flusher.Flush()
		}
		if snap.Terminal() {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

func handleResult(m *Manager, w http.ResponseWriter, r *http.Request) {
	j, ok := m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	snap := j.Snapshot()
	switch snap.State {
	case Done:
		body, _ := j.Result()
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case Failed:
		writeError(w, http.StatusInternalServerError, errors.New(snap.Error))
	default:
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s", snap.ID, snap.State))
	}
}

// maxBodyBytes bounds every request body: the largest legitimate
// payload (a full batch of run requests) is well under 1 MiB, and an
// unbounded body would be the one way a single request could grow
// memory past the queue bound.
const maxBodyBytes = 1 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// clientID is the quota identity of a request: the X-Client header when
// the caller supplies one, otherwise the remote host (so unlabelled
// clients behind one address share a budget rather than escaping it).
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil && host != "" {
		return host
	}
	return r.RemoteAddr
}

// writeSubmitError maps a submission failure to its response. Both
// rejection flavors answer 429 with a Retry-After estimate (the queue
// drained at recent job latency) and name their reason — "queue" means
// everyone is waiting, "quota" means this client specifically should
// back off — so clients can distinguish server pressure from their own.
func writeSubmitError(m *Manager, w http.ResponseWriter, err error) {
	reason := ""
	switch {
	case errors.Is(err, ErrQueueFull):
		reason = "queue"
	case errors.Is(err, ErrQuota):
		reason = "quota"
	case errors.Is(err, ErrFleet):
		reason = "fleet"
	default:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	retry := m.RetryAfter()
	secs := int(retry / time.Second)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":               err.Error(),
		"reason":              reason,
		"retry_after_seconds": secs,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
