package pipeline

import (
	"math"

	"mcd/internal/clock"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// This file implements the sampled fidelity tier: SMARTS-style interval
// sampling with functional warming. Every opts.SampleEvery-th control
// interval is simulated cycle by cycle; the intervals between them are
// fast-forwarded analytically. During a fast-forward the workload stream
// keeps flowing — caches, the branch predictor and the BTB are updated
// with every instruction's real accesses (functional warming), so the
// next detailed interval starts against trained structures — but no
// cycles execute. Time, energy and the controller's occupancy view for
// the skipped interval are extrapolated from the most recent detailed
// interval, rescaled to the current frequency and voltage operating
// point.
//
// The pipeline is frozen, not drained, across a skip: in-flight ROB, IQ
// and LSQ entries keep their (now stale) completion times and burst
// through issue and retirement when detail resumes, so detailed intervals
// never start from an artificially empty machine. The instructions
// consumed functionally never enter the pipeline; their seqs are a gap in
// the dispatch stream, which the completion ring treats as ancient
// history (ready) and the ROB's completion lookup handles with a bounded
// fallback scan.

// detailModel is the fast-forward model's seed: the most recent detailed
// interval's duration, per-domain cycle shares, operating point, energy
// and occupancy view, plus the calibrated event-penalty model.
//
// The duration model is event-driven rather than a flat extrapolation:
// functional warming observes every skipped instruction's cache misses
// and branch recoveries, so a skipped interval's stall budget is known
// even though no cycles execute. Each detailed interval calibrates
//
//	cycles = ideal + alpha·penalty
//
// where ideal = instructions/DecodeWidth, penalty is the interval's
// miss/recovery events weighted by their architectural latencies (L2Lat,
// MemLatPS, MispredictPenalty), and alpha absorbs everything the event
// counts do not see (overlap, queueing, sync-window crossings). Skipped
// intervals then price their own observed events with the same alpha,
// which tracks interval-scale phase changes (a memory-bound burst, a
// mispredict storm) that a flat model aliases away. When a detailed
// interval has no penalty events to calibrate on, alpha is negative and
// the fast-forward falls back to flat extrapolation.
type detailModel struct {
	valid bool
	dtPS  float64
	tickW [clock.NumControllable]float64 // per-domain share of domain cycles
	freq  [clock.NumControllable]float64 // effective frequency during the interval
	volt  [clock.NumControllable]float64 // supply voltage at the interval's end
	engPJ [clock.NumControllable]float64 // per-domain energy of the interval
	util  [clock.NumControllable]float64
	qavg  [clock.NumControllable]float64

	perPS   float64 // cycle-share-weighted picoseconds per cycle
	alpha   float64 // marginal stall cycles per penalty cycle (<0: uncalibrated)
	base    float64 // penalty-free cycles per full interval (ideal + dependency stalls)
	lastCyc float64 // the last detailed interval's cycle count
	lastPen float64 // the last detailed interval's penalty cycles
	// rho corrects the measurement-basis mismatch between the two penalty
	// sources: detailed execution counts wrong-path events (speculative
	// refetches, BTB probes) in the same cumulative counters, functional
	// warming sees only the correct path, so a skipped interval's penalty
	// reads systematically low against the detailed-basis calibration.
	// rho tracks the observed skip/detailed penalty ratio (EMA over skip
	// stretches, both ends detailed-bracketed); the skip estimate divides
	// by it. Zero until first observed; an effective 1 until then.
	rho float64
	// gamma is each domain's time-proportional (clock) fraction of its
	// interval energy. It is per-domain because controllers drive the
	// domains' voltages apart, and a domain's clock/access split — not the
	// chip-wide aggregate — decides how its energy scales with estimated
	// time versus instruction count.
	gamma [clock.NumControllable]float64

	// Decayed least-squares accumulators behind (base, alpha): each
	// detailed interval contributes one (penalty, cycles) observation and
	// the fit cycles = base + alpha·penalty is solved over the recent
	// ones, newest weighted heaviest. The intercept keeps dependency and
	// structural stalls (invisible to the event counters) out of alpha; a
	// penalty spread too small to regress on degenerates to alpha = 0 with
	// base the smoothed cycle count — flat extrapolation.
	fitN, fitX, fitY, fitXX, fitXY float64
}

// alphaDecay is the per-detailed-interval decay of the model fit: ~3-4
// recent intervals carry most of the weight, so the coefficients adapt
// across program phases without tracking single-interval noise.
const alphaDecay = 0.7

// rhoSmoothing is the per-stretch EMA coefficient of the penalty-basis
// ratio (detailModel.rho): the ratio is a structural property of the
// workload's wrong-path behaviour, so it moves slowly.
const rhoSmoothing = 0.3

// errAcc accumulates per-detailed-interval metric samples for the 95%
// confidence bounds the sampled tier reports.
type errAcc struct {
	n, sum, sumSq float64
}

func (a *errAcc) add(x float64) {
	a.n++
	a.sum += x
	a.sumSq += x * x
}

// rel95 returns the 95% confidence half-width of the mean, relative to
// the mean (1.96·stderr/mean), or 0 with fewer than two samples.
func (a *errAcc) rel95() float64 {
	if a.n < 2 || a.sum <= 0 {
		return 0
	}
	mean := a.sum / a.n
	variance := (a.sumSq - a.n*mean*mean) / (a.n - 1)
	if variance <= 0 {
		return 0
	}
	return 1.96 * math.Sqrt(variance/a.n) / mean
}

// eventCounts reads the cumulative microarchitectural event counters the
// fast-forward penalty model is built on: combined L1 misses (I + D), L2
// misses, and branch recoveries (mispredicts plus BTB misses on taken
// branches — both restart fetch in the detailed front end).
func (c *Core) eventCounts() [3]uint64 {
	bs := c.pred.Stats()
	return [3]uint64{
		c.hier.L1I.Stats().Misses + c.hier.L1D.Stats().Misses,
		c.hier.L2C.Stats().Misses,
		bs.Mispredict + bs.BTBLookups - bs.BTBHits,
	}
}

// penaltyCycles prices a batch of events in front-end cycles: L1 misses
// pay the L2 access latency, L2 misses additionally pay the (fixed-time)
// memory latency converted at perPS, branch recoveries pay the mispredict
// penalty. Overlap between concurrent misses is not modeled here — the
// calibrated alpha absorbs it.
func (c *Core) penaltyCycles(perPS float64, ev, since [3]uint64) float64 {
	var d [3]float64
	for i := range ev {
		if ev[i] > since[i] {
			d[i] = float64(ev[i] - since[i])
		}
	}
	p := d[0]*float64(c.cfg.L2Lat) + d[2]*float64(c.cfg.MispredictPenalty)
	if perPS > 0 {
		p += d[1] * c.cfg.MemLatPS / perPS
	}
	return p
}

// noteDetailInterval seeds the fast-forward model from the detailed
// interval ending at t, before emitInterval rolls the accumulators over.
func (c *Core) noteDetailInterval(t float64, ivLen uint64) {
	m := &c.detail
	dt := t - c.ivStart
	m.valid = dt > 0
	m.dtPS = dt
	var ticks float64
	for d := 0; d < clock.NumControllable; d++ {
		ticks += c.ivTicks[d]
	}
	var ePJ float64
	for d := 0; d < clock.NumControllable; d++ {
		if ticks > 0 {
			m.tickW[d] = c.ivTicks[d] / ticks
		} else {
			m.tickW[d] = 1.0 / clock.NumControllable
		}
		m.freq[d] = c.curFreq[d]
		m.volt[d] = c.regs[d].Voltage()
		m.engPJ[d] = c.meter.DomainPJ(clock.Domain(d)) - c.ivStartEnergy[d]
		ePJ += m.engPJ[d]
	}

	// Calibrate the event-penalty model: how many effective stall cycles
	// this interval paid per modeled penalty cycle.
	m.perPS = 0
	for d := 0; d < clock.NumControllable; d++ {
		if m.freq[d] > 0 {
			m.perPS += m.tickW[d] * 1e6 / m.freq[d]
		}
	}
	m.alpha = -1
	if m.perPS > 0 && dt > 0 && c.cfg.DecodeWidth > 0 {
		pen := c.penaltyCycles(m.perPS, c.eventCounts(), c.ivStartEv)
		cyc := dt / m.perPS
		// Update the warming/detailed penalty-basis ratio from the stretch
		// of skips this detailed interval closes, comparing their mean
		// functional-warming penalty against the bracketing detailed ones.
		if c.stretchPenN > 0 && m.lastPen > 0 && pen > 0 {
			obs := (c.stretchPenSum / float64(c.stretchPenN)) / ((m.lastPen + pen) / 2)
			if obs < 0.5 {
				obs = 0.5
			} else if obs > 2 {
				obs = 2
			}
			if m.rho == 0 {
				m.rho = obs
			} else {
				m.rho += rhoSmoothing * (obs - m.rho)
			}
			if m.rho < 0.7 {
				m.rho = 0.7
			} else if m.rho > 1.3 {
				m.rho = 1.3
			}
		}
		c.stretchPenSum, c.stretchPenN = 0, 0
		m.fitN = alphaDecay*m.fitN + 1
		m.fitX = alphaDecay*m.fitX + pen
		m.fitY = alphaDecay*m.fitY + cyc
		m.fitXX = alphaDecay*m.fitXX + pen*pen
		m.fitXY = alphaDecay*m.fitXY + pen*cyc
		alpha := 0.0
		varX := m.fitXX - m.fitX*m.fitX/m.fitN
		if den := varX; den > 1e-6*m.fitXX {
			alpha = (m.fitXY - m.fitX*m.fitY/m.fitN) / den
		}
		// The penalty prices every event at its full serialized latency, so
		// the marginal stall per penalty cycle lives in [0, 1] (overlap can
		// only shrink it); a slope outside that range is single-phase
		// overfit, and the intercept is recomputed against the clamp.
		if alpha < 0 {
			alpha = 0
		} else if alpha > 1 {
			alpha = 1
		}
		base := (m.fitY - alpha*m.fitX) / m.fitN
		if ideal := float64(ivLen) / float64(c.cfg.DecodeWidth); base < ideal {
			base = ideal
		}
		m.alpha, m.base = alpha, base
		m.lastCyc, m.lastPen = cyc, pen
	}
	// Split each domain's interval energy into a time-proportional
	// (clock) part and an activity-proportional (access) part, so a
	// skipped interval's estimate tracks both its estimated duration and
	// its instruction count.
	for d := 0; d < clock.NumControllable; d++ {
		m.gamma[d] = 0
		if m.engPJ[d] > 0 {
			g := (c.meter.DomainClockPJ(clock.Domain(d)) - c.ivStartClkPJ[d]) / m.engPJ[d]
			if g < 0 {
				g = 0
			} else if g > 1 {
				g = 1
			}
			m.gamma[d] = g
		}
	}

	if c.marked {
		c.detailedIv++
		if dt > 0 {
			c.errCPI.add(dt / 1000 / float64(ivLen))
			c.errEPI.add(ePJ / float64(ivLen))
		}
	}
}

// noteTargets tracks controller activity for adaptive skip scheduling.
// An attack-sized retarget (more than 1% in one observation — decay moves
// are an order of magnitude smaller) marks the controller active;
// scheduleSkips keeps execution detailed until the controller has been
// quiet for ctrlQuietMin consecutive observations. A reactive controller
// therefore runs its transients against measured data and only
// fast-forwards through the quiet phases its replayed view (frozen
// utilization → decay) models faithfully.
func (c *Core) noteTargets(targets [clock.NumControllable]float64) {
	active := false
	for d := 0; d < clock.NumControllable; d++ {
		t := targets[d]
		if t <= 0 {
			continue // zero: hold, not a move
		}
		if p := c.ctrlPrev[d]; p > 0 {
			if r := t / p; r < 1/ctrlMoveRatio || r > ctrlMoveRatio {
				active = true
			}
		}
		c.ctrlPrev[d] = t
	}
	if active {
		c.ctrlQuiet = 0
	} else {
		c.ctrlQuiet++
	}
}

const (
	// ctrlMoveRatio is the single-observation retarget ratio that counts
	// as controller activity.
	ctrlMoveRatio = 1.01
	// ctrlQuietMin is how many consecutive quiet observations re-arm skip
	// scheduling after activity.
	ctrlQuietMin = 2
)

// sampleOffset picks which interval of stratum s (a block of SampleEvery
// consecutive intervals) runs detailed. The offset follows a seed-keyed
// reflected ±1 random walk across strata (splitmix64 finalizer per
// step), fully deterministic so re-runs of a spec stay byte-identical.
// The walk shape is a deliberate compromise between two error sources:
// consecutive samples stay N−1..N+1 intervals apart — near-uniform
// spacing, which the strongly local fast-forward extrapolation needs
// (an i.i.d. stratified draw lets gaps reach 2N−1 and measurably hurts
// phase-structured workloads) — while the sampling phase slowly diffuses
// across all residues, so program structure periodic at a multiple of
// the interval length cannot alias with a fixed stride.
func (c *Core) sampleOffset(s int) int {
	if c.walkS < 0 || s < c.walkS { // fresh run or restart behind the memo
		c.walkS, c.walkOff = 0, c.opts.SampleEvery/2
	}
	for c.walkS < s {
		c.walkS++
		x := uint64(c.cfg.Seed)*0x9E3779B97F4A7C15 + uint64(c.walkS)
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		switch x % 3 {
		case 0:
			if c.walkOff > 0 {
				c.walkOff--
			}
		case 2:
			if c.walkOff < c.opts.SampleEvery-1 {
				c.walkOff++
			}
		}
	}
	return c.walkOff
}

// nextDetailIndex returns the first interval index ≥ i chosen for
// detailed execution: each stratum's chosen slot, or the following
// stratum's when i has already passed it (extra detailed intervals — a
// controller transient, the warmup mark — never cost a stratum its
// sample).
func (c *Core) nextDetailIndex(i int) int {
	n := c.opts.SampleEvery
	for {
		s := i / n
		if j := s*n + c.sampleOffset(s); j >= i {
			return j
		}
		i = (s + 1) * n
	}
}

// scheduleSkips decides, at a detailed interval boundary, how many of the
// upcoming intervals to fast-forward: everything up to the next stratum's
// chosen detailed interval, except that skips never cross the warmup mark
// (the mark must fire inside detailed execution, with a retire-width
// guard for boundary overshoot) and never swallow the run's final
// interval, so every run ends in detail.
func (c *Core) scheduleSkips() {
	if !c.detail.valid {
		c.skipPending = 0
		return
	}
	if c.opts.Controller != nil && c.marked && c.ctrlQuiet < ctrlQuietMin {
		c.skipPending = 0
		return
	}
	ivLen := c.opts.IntervalLength
	next := c.nextDetailIndex(c.ivIndex)
	k := 0
	for c.ivIndex+k < next {
		end := c.nextIvAt + uint64(k)*ivLen
		if !c.marked && end+uint64(c.cfg.RetireWidth) > c.opts.Warmup {
			break
		}
		if end+ivLen > c.total {
			break
		}
		k++
	}
	c.skipPending = k
}

// fastForwardInterval advances the run across one control interval
// without executing cycles: the interval's instructions are consumed
// functionally (warming caches and predictors), its duration is estimated
// from the last detailed interval rescaled by per-domain frequency
// ratios, regulators slew and clocks jump across the estimated span, and
// the interval's energy is injected as the detailed interval's per-domain
// energy rescaled by (V/V_detail)².
func (c *Core) fastForwardInterval() {
	ivLen := c.opts.IntervalLength
	m := &c.detail
	ev0 := c.eventCounts()

	// Functional warming over the interval's instruction budget. A
	// peeked-but-unfetched instruction is consumed first so the stream
	// stays gapless.
	need := c.nextIvAt - c.retired
	var done uint64
	if c.havePend {
		c.warmInstr(&c.pending)
		c.havePend = false
		done++
	}
	for done < need && !c.genDone {
		if !c.gen.Next(&c.pending) {
			c.genDone = true
			break
		}
		c.warmInstr(&c.pending)
		done++
	}
	c.retired += done
	if done < need {
		// Workload exhausted mid-skip: abandon sampling and let the
		// detailed loop drain what remains in flight.
		c.skipPending = 0
		return
	}

	// Operating-point scale: the ratio of each domain's detailed-interval
	// frequency to its current target, weighted by cycle share (a slower
	// domain stretches its share of the time).
	var scale float64
	for d := 0; d < clock.NumControllable; d++ {
		f := c.regs[d].TargetMHz()
		if f > 0 && m.freq[d] > 0 {
			scale += m.tickW[d] * m.freq[d] / f
		} else {
			scale += m.tickW[d]
		}
	}
	// Estimated duration. With a calibrated event model, this interval's
	// own miss/recovery events (observed by the functional warming above)
	// price its stall time, so phase changes between detailed samples move
	// the estimate; without calibration, flat extrapolation of the last
	// detailed interval.
	var dt float64
	if m.alpha >= 0 {
		pen := c.penaltyCycles(m.perPS, c.eventCounts(), ev0)
		frac := float64(done) / float64(ivLen)
		if frac > 0 {
			c.stretchPenSum += pen / frac
			c.stretchPenN++
		}
		// The warming-observed penalty is rescaled onto the detailed
		// measurement basis before entering the delta (see detailModel.rho).
		effPen := pen / frac
		if m.rho > 0 {
			effPen /= m.rho
		}
		// Flat extrapolation of the last detailed interval, corrected by
		// the marginal cost of this interval's own event delta: when the
		// skip's misses and mispredicts match the last detailed interval's
		// the correction vanishes, so the estimator inherits flat's local
		// accuracy and only moves on evidence of a phase change.
		cyc := (m.lastCyc + m.alpha*(effPen-m.lastPen)) * frac
		if ideal := float64(done) / float64(c.cfg.DecodeWidth); cyc < ideal {
			cyc = ideal
		}
		dt = m.perPS * cyc * scale
	} else {
		dt = m.dtPS * scale * float64(done) / float64(ivLen)
	}
	newNow := c.now + dt

	// The pipeline is frozen across the skip: shift every in-flight
	// timestamp (issue-queue visibility, ROB/LSQ/ring completion, the
	// I-cache fill stall) along with the clock, so detail resumes
	// mid-steady-state. Without this the stale entries all read as ready
	// at once and the first detailed interval measures an unrepresentative
	// burst drain — which the extrapolation then spreads over every
	// skipped interval.
	c.iiq.ShiftTimes(dt)
	c.fiq.ShiftTimes(dt)
	c.lsq.ShiftTimes(dt)
	c.rob.ShiftTimes(dt)
	c.ring.ShiftTimes(dt)
	c.fetchStall += dt

	actRatio := float64(done) / float64(ivLen)
	for d := 0; d < clock.NumControllable; d++ {
		f0 := c.curFreq[d]
		f := c.regs[d].Step(dt)
		// Trapezoidal frequency integral across the slew.
		c.freqIntegral[d] += 0.5 * (f0 + f) * dt
		if f != c.curFreq[d] {
			c.curFreq[d] = f
			c.clks[d].SetFrequencyMHz(f)
			c.periods[d] = c.clks[d].PeriodPS()
			c.wake.Periods[d] = c.periods[d]
		}
		c.clks[d].FastForwardTo(newNow)
		c.last[d] = newNow
		// Energy: the clock fraction follows elapsed cycles (estimated
		// time × current frequency), the access fraction follows the
		// instruction count; both at the current voltage.
		clkRatio := actRatio
		if m.dtPS > 0 {
			clkRatio = dt / m.dtPS
			if f > 0 && m.freq[d] > 0 {
				clkRatio *= f / m.freq[d]
			}
		}
		e := m.engPJ[d] * (m.gamma[d]*clkRatio + (1-m.gamma[d])*actRatio)
		if v := c.regs[d].Voltage(); m.volt[d] > 0 {
			r := v / m.volt[d]
			e *= r * r
		}
		c.meter.Inject(clock.Domain(d), e)
	}
	c.sched.Refresh()
	c.now = newNow
	c.lastRetire = newNow

	c.emitEstimated(newNow, dt, ivLen)
	if c.skipPending > 0 { // emitEstimated may abandon the stretch
		c.skipPending--
	}
}

// warmInstr updates the caches, branch predictor and BTB with one
// functionally consumed instruction, mirroring the detailed front end's
// access pattern (one I-cache access per fetch-block transition, a
// predictor update plus BTB lookup/install per branch, one D-cache access
// per memory op) without executing cycles or charging per-access energy —
// the fast-forward's energy is injected analytically.
func (c *Core) warmInstr(in *workload.Instr) {
	blk := in.PC>>6 + 1
	if blk != c.fetchBlock {
		c.fetchBlock = blk
		c.hier.Inst(in.PC)
	}
	switch {
	case in.Class == workload.Branch:
		c.pred.Update(in.PC, in.Taken)
		if in.Taken {
			c.pred.Target(in.PC)
			c.pred.SetTarget(in.PC, in.Target)
		}
	case in.Class.Memory():
		c.hier.Data(in.Addr)
	}
}

// emitEstimated emits the bookkeeping for one fast-forwarded interval:
// the controller observes it (post-mark) with the last detailed
// interval's occupancy view and the extrapolated IPC, recording and
// streaming mark it Estimated, and the interval counters advance exactly
// as a detailed emission would.
func (c *Core) emitEstimated(t, dt float64, ivLen uint64) {
	m := &c.detail
	iv := IntervalView{
		Index:        c.ivIndex,
		Instructions: ivLen,
		EndPS:        t,
		Warmup:       !c.marked,
		QueueUtil:    m.util,
		QueueAvg:     m.qavg,
		Estimated:    true,
	}
	for d := 0; d < clock.NumControllable; d++ {
		iv.FreqMHz[d] = c.regs[d].TargetMHz()
	}
	if dt > 0 {
		iv.IPC = float64(ivLen) / (dt / 1000)
	}
	if c.opts.Controller != nil && c.marked {
		targets := c.opts.Controller.Observe(iv)
		for d := 0; d < clock.NumControllable; d++ {
			if targets[d] > 0 {
				c.regs[d].SetTargetMHz(targets[d])
			}
		}
		// A schedule step or end-stop probe during a skip counts as
		// activity too: the remaining skips of this stretch are abandoned
		// so the controller's response lands on measured data.
		c.noteTargets(targets)
		if c.ctrlQuiet < ctrlQuietMin {
			c.skipPending = 0
		}
	}
	var siv stats.Interval
	notify := c.marked && (c.opts.RecordIntervals || c.opts.OnInterval != nil)
	if notify {
		siv = stats.Interval{
			Index:        iv.Index,
			Instructions: iv.Instructions,
			EndPS:        iv.EndPS,
			QueueUtil:    iv.QueueUtil,
			QueueAvg:     iv.QueueAvg,
			FreqMHz:      iv.FreqMHz,
			IPC:          iv.IPC,
			Estimated:    true,
		}
		if c.opts.RecordIntervals {
			c.intervals = append(c.intervals, siv)
		}
	}
	if c.marked {
		c.sampledIv++
	}
	c.ivStart = t
	c.ivIndex++
	c.emitted++
	c.nextIvAt += ivLen
	for d := 0; d < clock.NumControllable; d++ {
		c.ivStartEnergy[d] = c.meter.DomainPJ(clock.Domain(d))
		c.ivStartClkPJ[d] = c.meter.DomainClockPJ(clock.Domain(d))
	}
	c.ivStartEv = c.eventCounts()
	if notify && c.opts.OnInterval != nil {
		c.opts.OnInterval(siv)
	}
}
