// Package prof wires runtime/pprof into the CLIs: every binary that can
// drive long simulations takes -cpuprofile/-memprofile flags, so hot-loop
// regressions are diagnosed from real captures instead of guesses (see
// DESIGN.md, "Hot loop & performance budget").
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the two flag values (either may be empty)
// and returns a stop function to call on clean exit: it stops the CPU
// profile and writes the heap profile. On error nothing is started.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize the live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
