package core

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math"

	"mcd/internal/clock"
	"mcd/internal/pipeline"
	"mcd/internal/resultcache"
	"mcd/internal/runner"
	"mcd/internal/sim"
	"mcd/internal/stats"
	"mcd/internal/workload"
)

// Schedule is a per-interval table of domain frequency targets (MHz).
type Schedule [][clock.NumControllable]float64

// OfflineController replays a precomputed schedule, standing in for the
// Dynamic-1%/Dynamic-5% off-line algorithm of the paper (ref [22]): the
// schedule is built with full knowledge of the application's future, and —
// like the paper's off-line algorithm — frequency changes are requested
// one interval ahead of where they are needed, so regulator slew is not a
// source of error.
type OfflineController struct {
	name  string
	sched Schedule
	idx   int
}

var _ pipeline.Controller = (*OfflineController)(nil)

// NewOfflineController wraps a schedule. Interval i's targets are issued
// at the end of interval i-1 (one interval of lead).
func NewOfflineController(name string, sched Schedule) *OfflineController {
	return &OfflineController{name: name, sched: sched}
}

// Name implements pipeline.Controller.
func (o *OfflineController) Name() string { return o.name }

// CacheKey implements resultcache.Keyer: the name plus a SHA-256 over
// the exact (hex-encoded) schedule, so a replay run can be cached like
// any fixed-policy run.
func (o *OfflineController) CacheKey() string {
	h := sha256.New()
	fmt.Fprintf(h, "%q\n", o.name)
	for _, iv := range o.sched {
		for d, f := range iv {
			if d > 0 {
				h.Write([]byte{','})
			}
			h.Write([]byte(resultcache.Float(f)))
		}
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("offline-replay|%s|%x", o.name, h.Sum(nil))
}

// Initial returns the frequencies for interval 0, to be applied before the
// run starts.
func (o *OfflineController) Initial() [clock.NumControllable]float64 {
	if len(o.sched) == 0 {
		return [clock.NumControllable]float64{}
	}
	return o.sched[0]
}

// Observe implements pipeline.Controller: at the end of measured interval
// i it issues the schedule entry for interval i+1. Warmup intervals are
// ignored so the schedule stays aligned with the measured intervals it was
// profiled against; the warmup region runs at the Initial() frequencies.
func (o *OfflineController) Observe(iv pipeline.IntervalView) [clock.NumControllable]float64 {
	if iv.Warmup {
		return [clock.NumControllable]float64{}
	}
	o.idx++
	i := o.idx
	if i >= len(o.sched) {
		i = len(o.sched) - 1
	}
	if i < 0 {
		return [clock.NumControllable]float64{}
	}
	return o.sched[i]
}

// OfflineOptions tunes the schedule search.
type OfflineOptions struct {
	// TargetDeg is the performance-degradation cap relative to the
	// baseline MCD processor (0.01 for Dynamic-1%, 0.05 for Dynamic-5%).
	TargetDeg float64
	// Iterations bounds the refinement passes (default 6).
	Iterations int
	// StepDown/StepUp are the multiplicative frequency adjustments
	// (defaults 0.90 and 1.15).
	StepDown, StepUp float64
	// AdaptiveStep softens the down-step instead of committing an
	// overshooting schedule: whenever every candidate of an iteration
	// lands beyond the dilation cap, the step is bisected toward 1
	// ((1+step)/2) and the iteration retried from the last good
	// schedule. At compressed quick scales a window holds so few
	// intervals that one fixed 10% down-step can jump straight past a
	// tight cap; bisection finds the step size the scale actually
	// affords. Off by default: the classic fixed-step search (and its
	// content addresses) stays byte-identical.
	AdaptiveStep bool
	// Warmup instructions run before each profiled window.
	Warmup uint64
	// IntervalLength is the sampling period used during profiling and
	// replay; it must match the final run's interval length for the
	// schedule indices to line up. Zero uses the pipeline default.
	IntervalLength uint64
	// Fidelity and SampleEvery select the simulation tier for the
	// profiling and candidate-evaluation runs (sim.FidelityExact /
	// sim.FidelitySampled), so a sampled request pays sampled prices for
	// the schedule search too. They are part of the run spec, not the
	// search parameters, so CacheExtra never encodes them — the outer
	// spec key line does.
	Fidelity    string
	SampleEvery int
	// Candidates is how many step-aggressiveness variants of the
	// refinement rule each iteration evaluates (concurrently, through the
	// runner pool) before committing to the best one. 1 — the default —
	// reproduces the classic single-schedule refinement; higher values
	// widen the search at no wall-clock cost on a multicore host. The
	// candidate set is fixed by this value alone, so results never depend
	// on Workers.
	Candidates int
	// Workers bounds the concurrent candidate evaluations; zero or
	// negative means GOMAXPROCS.
	Workers int
}

// withDefaults resolves the zero-valued search parameters to the
// defaults BuildOffline applies — the one place those defaults live.
func (o OfflineOptions) withDefaults() OfflineOptions {
	if o.Iterations == 0 {
		o.Iterations = 6
	}
	if o.StepDown == 0 {
		o.StepDown = 0.90
	}
	if o.StepUp == 0 {
		o.StepUp = 1.15
	}
	if o.Candidates < 1 {
		o.Candidates = 1
	}
	return o
}

// CacheExtra canonically encodes the resolved search parameters that
// determine a BuildOffline outcome beyond its profiling spec (which
// already carries config, profile, window, warmup and interval) — the
// extra material for resultcache.SpecKeyExtra. Keeping it next to
// withDefaults means a changed default changes every derived content
// address, so stale store entries can never be served. Workers is
// excluded: it never affects results (see DESIGN.md, "Runner
// determinism").
func (o OfflineOptions) CacheExtra() string {
	r := o.withDefaults()
	h := resultcache.Float
	extra := fmt.Sprintf("offline|target=%s|iters=%d|down=%s|up=%s|cands=%d",
		h(r.TargetDeg), r.Iterations, h(r.StepDown), h(r.StepUp), r.Candidates)
	// The adaptive marker is appended only when the knob is on, so every
	// legacy address (computed before the knob existed) is unchanged.
	if r.AdaptiveStep {
		extra += "|adapt=1"
	}
	return extra
}

// stepExponent spreads candidate k's refinement aggressiveness around the
// configured step factors: candidate 0 applies them as-is, odd candidates
// soften them (exponent 1/2, 1/3, …) and even candidates sharpen them
// (exponent 2, 3, …). The sequence depends only on k, never on the worker
// count, so the search is deterministic.
func stepExponent(k int) float64 {
	switch {
	case k == 0:
		return 1
	case k%2 == 1:
		return 1 / (1 + float64(k+1)/2)
	default:
		return 1 + float64(k)/2
	}
}

// refine returns a copy of sched with one pass of the slack rule applied:
// speed up intervals whose queues backed up versus the full-speed
// profile, slow down everything else while the dilation budget has slack.
func refine(sched Schedule, cur, base stats.Result, deg float64, cfg pipeline.Config, opts OfflineOptions, down, up float64) Schedule {
	controlled := []clock.Domain{clock.Integer, clock.FloatingPoint, clock.LoadStore}
	out := make(Schedule, len(sched))
	copy(out, sched)
	for i := 0; i < len(out) && i < len(cur.Intervals); i++ {
		for _, d := range controlled {
			occ := cur.Intervals[i].QueueAvg[d]
			ref := base.Intervals[i].QueueAvg[d]
			// A queue holding substantially more than it did at full
			// speed means the domain is now too slow for this phase.
			backedUp := occ > ref*1.6+1.0
			switch {
			case backedUp:
				out[i][d] *= up
			case deg < opts.TargetDeg*0.9:
				out[i][d] *= down
			}
			if out[i][d] > cfg.MaxFreqMHz {
				out[i][d] = cfg.MaxFreqMHz
			}
			if out[i][d] < 250 {
				out[i][d] = 250
			}
		}
	}
	return out
}

// BuildOffline profiles the workload at maximum frequencies, then
// iteratively lowers per-interval domain frequencies where the decoupling
// queues show slack, re-simulating until the end-to-end dilation meets the
// target. It returns the controller and the baseline (all-max MCD) result
// used as its reference.
//
// Each refinement iteration proposes opts.Candidates variant schedules
// (step factors spread by stepExponent) and evaluates them concurrently
// through the runner pool, committing to the best: the lowest-energy
// candidate within the dilation cap, or failing that the one closest to
// it. With the default single candidate this degenerates to the classic
// serial refinement and produces bit-identical schedules to it.
//
// This reproduces the *global knowledge* property of the paper's off-line
// shaker — it sees every interval of the whole run before choosing any
// frequency, pays no reactive lag, and can therefore cap the dilation
// tightly — without reimplementing the shaker's dependence-graph passes.
func BuildOffline(cfg pipeline.Config, prof workload.Profile, window uint64, opts OfflineOptions) (*OfflineController, stats.Result) {
	opts = opts.withDefaults()
	name := fmt.Sprintf("dynamic-%.0f%%", opts.TargetDeg*100)

	base := sim.Run(sim.Spec{
		Config: cfg, Profile: prof, Window: window, Warmup: opts.Warmup,
		IntervalLength:  opts.IntervalLength,
		RecordIntervals: true, Name: "mcd-baseline",
		Fidelity: opts.Fidelity, SampleEvery: opts.SampleEvery,
	})
	nIv := len(base.Intervals)
	sched := make(Schedule, max(nIv, 1))
	for i := range sched {
		for d := 0; d < clock.NumControllable; d++ {
			sched[i][d] = cfg.MaxFreqMHz
		}
	}
	if nIv == 0 {
		return NewOfflineController(name, sched), base
	}

	cur := base
	down := opts.StepDown
	for it := 0; it < opts.Iterations; it++ {
		deg := cur.TimePS/base.TimePS - 1

		cands := make([]Schedule, opts.Candidates)
		tasks := make([]runner.Task[stats.Result], opts.Candidates)
		for k := range cands {
			e := stepExponent(k)
			cands[k] = refine(sched, cur, base, deg, cfg, opts,
				math.Pow(down, e), math.Pow(opts.StepUp, e))
			ctrl := NewOfflineController(name, cands[k])
			tasks[k] = runner.SpecTask(fmt.Sprintf("%s/cand%d", name, k), sim.Spec{
				Config: cfg, Profile: prof, Window: window, Warmup: opts.Warmup,
				IntervalLength: opts.IntervalLength,
				Controller:     ctrl, InitialFreqMHz: ctrl.Initial(),
				RecordIntervals: true, Name: name,
				Fidelity: opts.Fidelity, SampleEvery: opts.SampleEvery,
			})
		}
		outs, _ := runner.Map(context.Background(), tasks, runner.Options{Workers: opts.Workers})

		// Commit to the best candidate: lowest energy within the cap,
		// else closest to it; ties break toward the lowest index, so the
		// choice is a pure function of the candidate set.
		best := -1
		for k, o := range outs {
			if o.Err != nil {
				runner.Repanic(o.Err)
			}
			dk := o.Value.TimePS/base.TimePS - 1
			if dk > opts.TargetDeg*1.1 {
				continue
			}
			if best < 0 || o.Value.EnergyPJ < outs[best].Value.EnergyPJ {
				best = k
			}
		}
		if best < 0 { // every candidate overshot
			if opts.AdaptiveStep {
				// Bisect the down-step toward a no-op and retry from the
				// last schedule that respected the cap, instead of
				// committing an overshooting one. The retry spends an
				// iteration, so the search still terminates.
				down = (1 + down) / 2
				continue
			}
			// Fixed-step legacy behavior: take the least dilated.
			bestDeg := math.Inf(1)
			for k, o := range outs {
				if dk := o.Value.TimePS/base.TimePS - 1; dk < bestDeg {
					best, bestDeg = k, dk
				}
			}
		}
		sched = cands[best]
		cur = outs[best].Value
		if deg2 := cur.TimePS/base.TimePS - 1; deg2 > opts.TargetDeg*0.9 && deg2 <= opts.TargetDeg*1.1 {
			break
		}
	}
	return NewOfflineController(name, sched), base
}
