package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcd/internal/resultcache"
	"mcd/internal/stats"
	"mcd/internal/wire"
)

// blockingJob submits a job that parks until release is closed,
// pinning the single runner so queue behaviour is deterministic.
func blockingJob(t *testing.T, m *Manager, release <-chan struct{}) *Job {
	t.Helper()
	j, err := m.submit("block", 1, func(ctx context.Context, j *Job) ([]byte, error) {
		select {
		case <-release:
			return []byte("done\n"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func waitState(t *testing.T, j *Job, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ch := j.Watch()
		snap := j.Snapshot()
		if snap.State == want {
			return snap
		}
		if snap.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s in state %s (err %q), want %s", snap.ID, snap.State, snap.Error, want)
		}
		select {
		case <-ch:
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// TestQueueDegradesThenRejects pins the overload contract: with one
// runner and depth N, N jobs queue and job N+1 is refused with
// ErrQueueFull instead of growing memory without bound.
func TestQueueDegradesThenRejects(t *testing.T) {
	m := New(Options{Runners: 1, QueueDepth: 2})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)

	running := blockingJob(t, m, release)
	waitState(t, running, Running)

	q1 := blockingJob(t, m, release)
	q2 := blockingJob(t, m, release)
	if s := q1.Snapshot().State; s != Queued {
		t.Fatalf("q1 state %s, want queued", s)
	}

	if _, err := m.submit("block", 1, func(ctx context.Context, j *Job) ([]byte, error) {
		return nil, nil
	}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}

	// Cancelling a queued job frees its slot immediately — the next
	// submission fits while the runner is still pinned.
	if !m.Cancel(q2.id) {
		t.Fatal("cancel queued job returned false")
	}
	waitState(t, q2, Failed)
	if _, err := m.submit("block", 1, func(ctx context.Context, j *Job) ([]byte, error) {
		return nil, nil
	}); err != nil {
		t.Fatalf("submit after cancelling a queued job: %v", err)
	}
}

// TestCancelQueuedJob cancels a job before it runs: it must fail with
// the context error without ever executing.
func TestCancelQueuedJob(t *testing.T) {
	m := New(Options{Runners: 1, QueueDepth: 4})
	defer m.Close()
	release := make(chan struct{})

	running := blockingJob(t, m, release)
	waitState(t, running, Running)

	executed := false
	victim, err := m.submit("victim", 1, func(ctx context.Context, j *Job) ([]byte, error) {
		executed = true
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(victim.id) {
		t.Fatal("cancel returned false")
	}
	close(release) // unblock the runner; it should skip the victim

	snap := waitState(t, victim, Failed)
	if executed {
		t.Fatal("cancelled job still executed")
	}
	if snap.Error == "" {
		t.Fatal("cancelled job carries no error")
	}
}

// TestCancelRunningJob cancels mid-flight: the job's context wakes it
// and the state lands in Failed.
func TestCancelRunningJob(t *testing.T) {
	m := New(Options{Runners: 1, QueueDepth: 4})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)

	j := blockingJob(t, m, release)
	waitState(t, j, Running)
	m.Cancel(j.id)
	waitState(t, j, Failed)
}

// TestSyncRunHitBypassesBusyRunners: a stored result is served even
// when every runner is pinned and the queue is full — a hit is a hash
// lookup, not a job.
func TestSyncRunHitBypassesBusyRunners(t *testing.T) {
	cache, err := resultcache.New(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(Options{Runners: 1, QueueDepth: 1, Cache: cache})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)

	// Pin the runner and fill the queue.
	waitState(t, blockingJob(t, m, release), Running)
	blockingJob(t, m, release)

	// Seed the store with the request's canonical bytes, as a previous
	// simulation would have.
	req := wire.RunRequest{Benchmark: "adpcm", Config: "mcd", Window: 8000, Warmup: wire.U64(4000)}
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"seeded":true}` + "\n")
	if err := cache.PutBytes(key, payload); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"benchmark":"adpcm","config":"mcd","window":8000,"warmup":4000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" || string(body) != string(payload) {
		t.Fatalf("hit with busy runners: status=%d x-cache=%q body=%q",
			resp.StatusCode, resp.Header.Get("X-Cache"), body)
	}
}

// TestCloseFailsQueuedJobs: Close must leave every job in a terminal
// state — a queued job's watchers (NDJSON streams, synchronous
// waiters) would otherwise never wake.
func TestCloseFailsQueuedJobs(t *testing.T) {
	m := New(Options{Runners: 1, QueueDepth: 4})
	release := make(chan struct{})
	defer close(release)

	running := blockingJob(t, m, release)
	waitState(t, running, Running)
	queued := blockingJob(t, m, release)

	closed := make(chan struct{})
	go func() { m.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
	for _, j := range []*Job{running, queued} {
		if s := j.Snapshot(); s.State != Failed || s.Error == "" {
			t.Errorf("job %s after Close: state=%s err=%q, want failed with an error", s.ID, s.State, s.Error)
		}
	}
}

// TestRetentionBoundsJobTable: finished jobs beyond RetainJobs are
// dropped oldest-first; live jobs are never dropped.
func TestRetentionBoundsJobTable(t *testing.T) {
	m := New(Options{Runners: 1, QueueDepth: 8, RetainJobs: 3})
	defer m.Close()

	var last *Job
	for i := 0; i < 6; i++ {
		j, err := m.submit("quick", 1, func(ctx context.Context, j *Job) ([]byte, error) {
			return []byte("x\n"), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, Done)
		last = j
	}
	m.mu.Lock()
	n := len(m.jobs)
	m.mu.Unlock()
	if n > 3 {
		t.Fatalf("job table holds %d jobs, want ≤ 3", n)
	}
	if _, ok := m.Job(last.id); !ok {
		t.Fatal("newest job was pruned")
	}
	if _, ok := m.Job("j000001"); ok {
		t.Fatal("oldest terminal job survived pruning")
	}
}

// TestJobPanicIsIsolated: a panicking job fails; the runner survives to
// execute the next one.
func TestJobPanicIsIsolated(t *testing.T) {
	m := New(Options{Runners: 1, QueueDepth: 4})
	defer m.Close()

	bad, err := m.submit("bad", 1, func(ctx context.Context, j *Job) ([]byte, error) {
		panic("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, bad, Failed)

	good, err := m.submit("good", 1, func(ctx context.Context, j *Job) ([]byte, error) {
		return []byte("ok\n"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, good, Done)
	if b, ok := good.Result(); !ok || string(b) != "ok\n" {
		t.Fatalf("result = %q, %v", b, ok)
	}
}

// The bounded interval log reports what it overwrote: a consumer that
// lags past maxJobIntervals gets an explicit dropped count, never a
// silent hole.
func TestIntervalLogReportsDrops(t *testing.T) {
	j := &Job{watch: make(chan struct{})}
	total := maxJobIntervals + 100
	for i := 0; i < total; i++ {
		j.pushInterval(stats.Interval{Index: i})
	}
	ivs, next, dropped := j.IntervalsSince(0)
	if dropped != 100 {
		t.Errorf("dropped = %d, want 100", dropped)
	}
	if len(ivs) != maxJobIntervals || next != total {
		t.Errorf("got %d records, next %d; want %d, %d", len(ivs), next, maxJobIntervals, total)
	}
	if ivs[0].Index != 100 || ivs[len(ivs)-1].Index != total-1 {
		t.Errorf("log window [%d, %d], want [100, %d]", ivs[0].Index, ivs[len(ivs)-1].Index, total-1)
	}
	// A caught-up consumer sees no drops and no records.
	ivs, next2, dropped := j.IntervalsSince(next)
	if len(ivs) != 0 || dropped != 0 || next2 != next {
		t.Errorf("caught-up read: %d records, %d dropped", len(ivs), dropped)
	}
}
