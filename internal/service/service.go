// Package service is the job layer of the serving subsystem: a bounded
// queue of simulation jobs — single runs, batches over mcd.RunBatch,
// and whole table/figure/sweep experiments — executed by a fixed pool
// of job runners, with states, per-task progress, context cancellation
// and result-store integration. cmd/mcdserve exposes it over HTTP via
// NewHandler; the bounded queue means a flood of requests degrades to
// queuing (then ErrQueueFull) rather than unbounded memory growth.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mcd"
	"mcd/internal/resultcache"
	"mcd/internal/stats"
	"mcd/internal/wire"
)

// State is a job's lifecycle position.
type State string

// Job states. A cancelled job reports Failed with a context error.
const (
	Queued  State = "queued"
	Running State = "running"
	Done    State = "done"
	Failed  State = "failed"
)

// ErrQueueFull reports that the job queue is at its configured depth;
// the client should retry later (the HTTP layer maps it to 429).
var ErrQueueFull = errors.New("service: job queue full")

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("service: no such job")

// maxBatchRuns bounds one batch job's size: a larger grid belongs in an
// experiment (which streams cells through the pool) or several batches.
const maxBatchRuns = 1024

// Options configures a Manager.
type Options struct {
	// Runners is the number of jobs executing concurrently (default 1:
	// one experiment at a time, each internally parallel).
	Runners int
	// QueueDepth bounds jobs waiting to run (default 64).
	QueueDepth int
	// Workers bounds the simulations running concurrently inside one
	// job; zero or negative means GOMAXPROCS.
	Workers int
	// RetainJobs bounds the job table: beyond it the oldest *terminal*
	// jobs (and their result bodies) are dropped, so a long-lived server
	// under a flood of requests holds bounded memory. Queued and running
	// jobs are never dropped. Default 512.
	RetainJobs int
	// Cache, if non-nil, backs every run with the content-addressed
	// result store.
	Cache *resultcache.Cache
}

// Manager owns the job table, the bounded queue and the runner pool.
// The queue is a slice guarded by mu/cond rather than a channel, so
// cancelling a queued job can remove it immediately — a departed
// client's job frees its slot instead of occupying the queue until a
// runner drains it.
type Manager struct {
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond // signalled on pending growth and on close
	pending []*Job
	closed  bool
	jobs    map[string]*Job
	// terminal lists finished jobs still in the table, completion order
	// — the pruner's eviction queue, so pruning is O(evicted) instead
	// of a full-table scan per submission.
	terminal []string
	seq      int
}

// New starts a manager and its runner pool.
func New(opts Options) *Manager {
	if opts.Runners <= 0 {
		opts.Runners = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.RetainJobs <= 0 {
		opts.RetainJobs = 512
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:   opts,
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*Job),
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < opts.Runners; i++ {
		m.wg.Add(1)
		go m.runLoop()
	}
	return m
}

// Cache returns the manager's result store (may be nil).
func (m *Manager) Cache() *resultcache.Cache { return m.opts.Cache }

// Close cancels every job, waits for the runners to drain, and fails
// whatever never got to run — so watchers (NDJSON streams, synchronous
// waiters) always observe a terminal state and shutdown never hangs on
// a queued job.
func (m *Manager) Close() {
	m.cancel()
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	for _, j := range m.jobs {
		j.cancel()
	}
	m.mu.Unlock()
	m.wg.Wait()
	m.mu.Lock()
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()
	for _, j := range pending {
		j.fail(m.ctx.Err())
	}
}

func (m *Manager) runLoop() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending = m.pending[1:]
		m.mu.Unlock()
		m.execute(j)
	}
}

// execute runs one job, translating panics (including the harness's
// re-panicked task failures and context cancellations) into a Failed
// state so a bad run can never kill the server.
func (m *Manager) execute(j *Job) {
	// Every exit leaves the job terminal: release its context (a
	// cancelCtx stays registered on the manager's root context until
	// cancelled — a leak over a long-lived server otherwise) and let
	// the pruner see it.
	defer func() {
		j.cancel()
		m.noteTerminal(j.id)
	}()
	if err := j.ctx.Err(); err != nil {
		j.fail(err)
		return
	}
	j.update(func(j *Job) {
		j.state = Running
		j.started = time.Now()
	})
	var (
		body []byte
		err  error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("job panicked: %v", r)
			}
		}()
		body, err = j.run(j.ctx, j)
	}()
	if err == nil {
		err = j.ctx.Err() // a cancelled job that limped to a result still failed
	}
	if err != nil {
		j.fail(err)
		return
	}
	j.update(func(j *Job) {
		j.state = Done
		j.result = body
		j.finished = time.Now()
	})
}

// submit registers and enqueues a job; kind and total label it, run
// produces the result body.
func (m *Manager) submit(kind string, total int, run func(ctx context.Context, j *Job) ([]byte, error)) (*Job, error) {
	jctx, jcancel := context.WithCancel(m.ctx)
	m.mu.Lock()
	if m.closed || len(m.pending) >= m.opts.QueueDepth {
		closed := m.closed
		m.mu.Unlock()
		jcancel()
		if closed {
			return nil, errors.New("service: manager closed")
		}
		return nil, ErrQueueFull
	}
	m.seq++
	j := &Job{
		id:      fmt.Sprintf("j%06d", m.seq),
		kind:    kind,
		state:   Queued,
		total:   total,
		created: time.Now(),
		ctx:     jctx,
		cancel:  jcancel,
		watch:   make(chan struct{}),
		run:     run,
	}
	m.jobs[j.id] = j
	m.pending = append(m.pending, j)
	m.pruneLocked()
	m.cond.Signal()
	m.mu.Unlock()
	return j, nil
}

// SubmitRun enqueues one simulation run. It executes through the
// stepped session (RunStream with no observer): byte-identical to
// RunCachedBytes by the session contract, but the job's context is
// consulted every control interval, so cancellation — DELETE, a
// departed synchronous client, shutdown — aborts the simulation at the
// next interval boundary instead of after the full window.
func (m *Manager) SubmitRun(r wire.RunRequest) (*Job, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return m.submit("run", 1, func(ctx context.Context, j *Job) ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		body, hit, err := r.RunStream(ctx, m.opts.Cache, nil)
		if err != nil {
			return nil, err
		}
		j.update(func(j *Job) {
			j.done = 1
			j.task = r.Normalize().Benchmark + "/" + r.ControllerName()
			j.hit = hit
		})
		return body, nil
	})
}

// SubmitStream enqueues one simulation run whose measured control
// intervals are published on the job as they are produced (the backing
// of the service's "stream" run mode): watchers drain them with
// IntervalsSince, interleaved with the usual progress snapshots.
// Cancellation — DELETE, a departed client, shutdown — closes the
// stepped session at the next interval boundary; the partial result is
// discarded and the job reports Failed with the context error. A
// completed streamed run stores bytes identical to a one-shot run of
// the same request, so the follow-up identical request is a cache hit.
func (m *Manager) SubmitStream(r wire.RunRequest) (*Job, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return m.submit("stream", 1, func(ctx context.Context, j *Job) ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		j.update(func(j *Job) {
			j.task = r.Normalize().Benchmark + "/" + r.ControllerName()
		})
		body, hit, err := r.RunStream(ctx, m.opts.Cache, j.pushInterval)
		if err != nil {
			return nil, err
		}
		j.update(func(j *Job) {
			j.done = 1
			j.hit = hit
		})
		return body, nil
	})
}

// SubmitBatch enqueues a set of runs fanned out through mcd.RunBatch on
// the manager's worker bound and result store; the result body is a
// JSON array of canonical result encodings in submission order.
func (m *Manager) SubmitBatch(reqs []wire.RunRequest) (*Job, error) {
	if len(reqs) == 0 {
		return nil, errors.New("service: empty batch")
	}
	if len(reqs) > maxBatchRuns {
		return nil, fmt.Errorf("service: batch of %d runs exceeds the %d-run bound", len(reqs), maxBatchRuns)
	}
	for i, r := range reqs {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("run %d: %w", i, err)
		}
	}
	return m.submit("batch", len(reqs), func(ctx context.Context, j *Job) ([]byte, error) {
		// Each run keeps its canonical body (indexes are distinct, so
		// the slice needs no lock); the assembled array reuses those
		// bytes instead of a decode/re-encode round trip per run.
		bodies := make([][]byte, len(reqs))
		batch := make([]mcd.RunRequest, len(reqs))
		for i, r := range reqs {
			i, r := i, r
			n := r.Normalize()
			batch[i] = mcd.RunRequest{
				Name: fmt.Sprintf("%s/%s", n.Benchmark, r.ControllerName()),
				Do: func(context.Context) (mcd.Result, error) {
					b, _, err := r.RunCachedBytes(m.opts.Cache)
					bodies[i] = b
					return mcd.Result{}, err
				},
			}
		}
		outs, err := mcd.RunBatch(ctx, batch, mcd.BatchOptions{
			Workers: m.opts.Workers,
			Progress: func(done, total int, name string) {
				j.update(func(j *Job) { j.done, j.total, j.task = done, total, name })
			},
		})
		if err != nil {
			return nil, err
		}
		results := make([]json.RawMessage, len(outs))
		for i, o := range outs {
			if o.Err != nil {
				return nil, fmt.Errorf("%s: %w", o.Name, o.Err)
			}
			b := bodies[i]
			results[i] = b[:len(b)-1] // strip canonical trailing newline inside the array
		}
		body, err := json.Marshal(results)
		if err != nil {
			return nil, err
		}
		return append(body, '\n'), nil
	})
}

// SubmitExperiment enqueues a whole table/figure/sweep; the result body
// is the canonical wire.ExperimentResult encoding.
func (m *Manager) SubmitExperiment(e wire.ExperimentRequest) (*Job, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return m.submit("experiment:"+e.Name, 0, func(ctx context.Context, j *Job) ([]byte, error) {
		opts := e.Options()
		opts.Workers = m.opts.Workers
		opts.Cache = m.opts.Cache
		opts.Context = ctx
		opts.Progress = func(done, total int, name string) {
			j.update(func(j *Job) { j.done, j.total, j.task = done, total, name })
		}
		res, err := wire.RunExperimentRequest(opts, e)
		if err != nil {
			return nil, err
		}
		return wire.EncodeExperiment(res)
	})
}

// maxTerminalIntervalLogs is how many finished jobs keep their interval
// logs. A terminal stream job's log exists only for watchers still
// draining its final frames; beyond the most recent few, the records
// are dead weight (up to ~maxJobIntervals × the record size per job,
// across up to RetainJobs jobs), so older logs are released and a late
// watcher sees an explicit gap frame instead.
const maxTerminalIntervalLogs = 8

// noteTerminal records a finished job for the pruner and releases the
// interval log of the job that just aged past the retained window.
func (m *Manager) noteTerminal(id string) {
	m.mu.Lock()
	m.terminal = append(m.terminal, id)
	if idx := len(m.terminal) - 1 - maxTerminalIntervalLogs; idx >= 0 {
		if j, ok := m.jobs[m.terminal[idx]]; ok {
			j.dropIntervals()
		}
	}
	m.pruneLocked()
	m.mu.Unlock()
}

// pruneLocked drops the oldest-finished jobs (and their result bodies)
// once the table exceeds RetainJobs, bounding a long-lived server's
// memory. Queued and running jobs are never dropped. Callers hold m.mu.
func (m *Manager) pruneLocked() {
	for len(m.jobs) > m.opts.RetainJobs && len(m.terminal) > 0 {
		delete(m.jobs, m.terminal[0])
		m.terminal = m.terminal[1:]
	}
}

// Job returns a job by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel cancels a job: a still-queued job is removed from the queue —
// freeing its slot — and fails immediately; a running experiment's
// context aborts it between simulations.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return false
	}
	dequeued := false
	for i, q := range m.pending {
		if q == j {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			dequeued = true
			break
		}
	}
	m.mu.Unlock()
	j.cancel()
	if dequeued {
		j.fail(context.Canceled)
		m.noteTerminal(j.id)
	}
	return true
}

// Jobs snapshots every known job, newest first.
func (m *Manager) Jobs() []Snapshot {
	m.mu.Lock()
	js := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	snaps := make([]Snapshot, len(js))
	for i, j := range js {
		snaps[i] = j.Snapshot()
	}
	// IDs are sequence numbers zero-padded to six digits; comparing by
	// (length, string) keeps submission order even past a million jobs
	// in one process lifetime. Newest first.
	sort.Slice(snaps, func(a, b int) bool {
		x, y := snaps[a].ID, snaps[b].ID
		if len(x) != len(y) {
			return len(x) > len(y)
		}
		return x > y
	})
	return snaps
}

// Job is one unit of queued work. All fields are guarded by mu and read
// through Snapshot.
type Job struct {
	id   string
	kind string

	ctx    context.Context
	cancel context.CancelFunc
	run    func(ctx context.Context, j *Job) ([]byte, error)

	mu       sync.Mutex
	state    State
	done     int
	total    int
	task     string
	errMsg   string
	result   []byte
	hit      bool
	created  time.Time
	started  time.Time
	finished time.Time
	watch    chan struct{}

	// Interval log of a stream job: ivs[0] is interval number ivBase of
	// the run (the log is bounded; a watcher that lags more than
	// maxJobIntervals skips the overwritten records).
	ivBase int
	ivs    []stats.Interval
}

// maxJobIntervals bounds one job's retained interval log, so a streamed
// run over an enormous window cannot grow server memory without bound:
// live watchers drain the log far faster than simulation fills it, and
// a lagging watcher observes a gap rather than the server an OOM.
const maxJobIntervals = 8192

// pushInterval appends one measured interval record and wakes watchers.
func (j *Job) pushInterval(iv stats.Interval) {
	j.update(func(j *Job) {
		j.ivs = append(j.ivs, iv)
		if drop := len(j.ivs) - maxJobIntervals; drop > 0 {
			j.ivBase += drop
			j.ivs = j.ivs[:copy(j.ivs, j.ivs[drop:])]
		}
	})
}

// dropIntervals releases the job's interval log; remaining watchers
// observe the dropped records as an explicit gap.
func (j *Job) dropIntervals() {
	j.mu.Lock()
	j.ivBase += len(j.ivs)
	j.ivs = nil
	j.mu.Unlock()
}

// IntervalsSince returns copies of the interval records produced at or
// after absolute interval index n, the next index to resume from, and
// how many records between n and the first returned one were already
// overwritten (a consumer lagging past the log bound — report it, never
// drop it silently). Pair it with Watch/Snapshot exactly like progress
// polling: take the watch channel, read the snapshot, then drain
// intervals.
func (j *Job) IntervalsSince(n int) (ivs []stats.Interval, next, dropped int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n < j.ivBase {
		dropped = j.ivBase - n
		n = j.ivBase
	}
	end := j.ivBase + len(j.ivs)
	if n >= end {
		return nil, end, dropped
	}
	return append([]stats.Interval(nil), j.ivs[n-j.ivBase:]...), end, dropped
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// update applies fn under the job lock and wakes every watcher.
func (j *Job) update(fn func(*Job)) {
	j.mu.Lock()
	fn(j)
	close(j.watch)
	j.watch = make(chan struct{})
	j.mu.Unlock()
}

func (j *Job) fail(err error) {
	j.update(func(j *Job) {
		j.state = Failed
		j.errMsg = err.Error()
		j.finished = time.Now()
	})
}

// Watch returns a channel closed at the next state/progress change;
// callers grab it before Snapshot so no update is missed.
func (j *Job) Watch() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.watch
}

// Result returns the finished job's body.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Done {
		return nil, false
	}
	return j.result, true
}

// Snapshot is the JSON shape of a job's observable state.
type Snapshot struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State State  `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total,omitempty"`
	Task  string `json:"task,omitempty"`
	Error string `json:"error,omitempty"`
	// CacheHit reports that a single-run job was served from the result
	// store.
	CacheHit bool      `json:"cache_hit,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// Terminal reports whether the job has stopped moving.
func (s Snapshot) Terminal() bool { return s.State == Done || s.State == Failed }

// Snapshot copies the job's observable state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID: j.id, Kind: j.kind, State: j.state,
		Done: j.done, Total: j.total, Task: j.task,
		Error: j.errMsg, CacheHit: j.hit,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
}

// WaitResult blocks until the job finishes (or ctx is cancelled) and
// returns the result body and final snapshot.
func (j *Job) WaitResult(ctx context.Context) ([]byte, Snapshot, error) {
	for {
		ch := j.Watch()
		snap := j.Snapshot()
		if snap.Terminal() {
			if snap.State == Failed {
				return nil, snap, errors.New(snap.Error)
			}
			body, _ := j.Result()
			return body, snap, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, snap, ctx.Err()
		}
	}
}
