// customcontroller plugs a user-defined control algorithm into the
// controller registry and races it — by name, exactly the way the CLIs
// and the service run controllers — against the paper's Attack/Decay
// and the two registry-native alternatives (pi, coord) on the same
// workload.
//
// The custom policy is a simple occupancy proportional controller: each
// domain's frequency is set proportional to how full its issue queue
// is. It reacts faster than Attack/Decay but, lacking the attack/decay
// asymmetry and the IPC guard, it trades more performance for its
// energy.
//
// The point of the example is the registration: one RegisterController
// call makes "proportional" a first-class controller — resolvable by
// name, parameterized through its schema, content-addressable in the
// result cache (via CacheKey) — with no edits to any CLI or service
// code.
package main

import (
	"fmt"

	"mcd"
)

// proportional implements mcd.Controller.
type proportional struct {
	gain  float64
	capOf [mcd.NumControllable]float64
}

func newProportional(gain float64) *proportional {
	p := &proportional{gain: gain}
	cfg := mcd.DefaultConfig()
	p.capOf[mcd.Integer] = float64(cfg.IntIQSize)
	p.capOf[mcd.FloatingPoint] = float64(cfg.FPIQSize)
	p.capOf[mcd.LoadStore] = float64(cfg.LSQSize)
	return p
}

func (p *proportional) Name() string { return "proportional" }

// CacheKey makes proportional runs content-addressable in the result
// store: two fresh instances with the same gain behave identically.
func (p *proportional) CacheKey() string {
	return fmt.Sprintf("proportional|gain=%g", p.gain)
}

func (p *proportional) Observe(iv mcd.IntervalView) [mcd.NumControllable]float64 {
	var targets [mcd.NumControllable]float64
	targets[mcd.FrontEnd] = 1000 // pinned, like the paper
	for _, d := range []mcd.Domain{mcd.Integer, mcd.FloatingPoint, mcd.LoadStore} {
		fill := iv.QueueAvg[d] / p.capOf[d] // 0..1 occupancy
		f := 250 + fill*p.gain*(1000-250)   // full speed at 1/gain occupancy
		if f > 1000 {
			f = 1000
		}
		targets[d] = f
	}
	return targets
}

func main() {
	// The single registration: after this, "proportional" is a name the
	// whole system understands.
	mcd.RegisterController(mcd.ControllerDef{
		Name: "proportional",
		Doc:  "occupancy-proportional frequency (example controller)",
		Schema: mcd.ControllerSchema{
			{Name: "gain", Default: 3, Min: 1, Max: 8,
				Doc: "occupancy fraction at which a domain reaches full speed (inverse)"},
		},
		New: func(p mcd.ControllerParams) (mcd.Controller, error) {
			return newProportional(p["gain"]), nil
		},
	})

	bench, _ := mcd.LookupBenchmark("jpeg")
	cfg := mcd.DefaultConfig()
	cfg.SlewNsPerMHz = 4.91
	run := mcd.ControllerRun{
		Config: cfg, Profile: bench.Profile,
		Window: 300_000, Warmup: 150_000, IntervalLength: 1000,
	}

	// The baseline MCD processor is a registered controller too.
	baseSpec, err := mcd.ControllerSpec("mcd", nil, run)
	if err != nil {
		panic(err)
	}
	base := mcd.Run(baseSpec)

	fmt.Printf("%-14s %9s %11s %11s\n", "controller", "perf-deg", "energy-sav", "EDP-improv")
	for _, name := range []string{"proportional", "attack-decay", "pi", "coord"} {
		spec, err := mcd.ControllerSpec(name, nil, run)
		if err != nil {
			panic(err)
		}
		r := mcd.Run(spec)
		c := mcd.Compare(r, base)
		fmt.Printf("%-14s %8.1f%% %10.1f%% %10.1f%%\n",
			r.Config, c.PerfDegradation*100, c.EnergySavings*100, c.EDPImprovement*100)
	}
}
